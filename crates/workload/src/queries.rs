//! Query workloads (paper §V-D).
//!
//! * [`RecentQueries`] — the real-time-monitoring pattern: while data is
//!   being written, periodically query the latest `window` of generation
//!   time (`SELECT * FROM TS WHERE time > max_time − window`).
//! * [`HistoricalQueries`] — random historical windows
//!   (`WHERE time > rand AND time < rand + window`), guaranteed not to
//!   exceed the maximum generation time in the database.
//!
//! The generators produce [`TimeRange`] predicates; the bench harness drives
//! them against an engine and aggregates the query statistics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seplsm_types::{TimeRange, Timestamp};

/// The paper's three query-window lengths, in milliseconds.
pub const PAPER_WINDOWS_MS: [i64; 3] = [500, 1_000, 5_000];

/// Recent-data query generator.
#[derive(Debug, Clone, Copy)]
pub struct RecentQueries {
    /// Window length (ms of generation time).
    pub window: i64,
    /// Issue one query every this many written points (the paper queries on
    /// a 100 ms wall-clock timer; per-point cadence is its deterministic
    /// equivalent).
    pub every_points: u64,
}

impl RecentQueries {
    /// Creates a recent-data workload.
    pub fn new(window: i64, every_points: u64) -> Self {
        assert!(window > 0 && every_points > 0);
        Self {
            window,
            every_points,
        }
    }

    /// `true` if a query should fire after the `written`-th point.
    pub fn due(&self, written: u64) -> bool {
        written % self.every_points == 0
    }

    /// The predicate for the current maximum generation time:
    /// `time ∈ (max_time − window, max_time]`.
    pub fn range(&self, max_gen_time: Timestamp) -> TimeRange {
        TimeRange::new(max_gen_time - self.window + 1, max_gen_time)
    }
}

/// Historical query generator.
#[derive(Debug, Clone, Copy)]
pub struct HistoricalQueries {
    /// Window length (ms of generation time).
    pub window: i64,
    /// Number of queries to generate.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl HistoricalQueries {
    /// Creates a historical workload.
    pub fn new(window: i64, count: usize, seed: u64) -> Self {
        assert!(window > 0 && count > 0);
        Self {
            window,
            count,
            seed,
        }
    }

    /// Random windows within `[min_gen_time, max_gen_time]`; the upper bound
    /// of each query never exceeds `max_gen_time` (paper §V-D2).
    pub fn ranges(
        &self,
        min_gen_time: Timestamp,
        max_gen_time: Timestamp,
    ) -> Vec<TimeRange> {
        assert!(min_gen_time <= max_gen_time);
        let hi = (max_gen_time - self.window).max(min_gen_time);
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.count)
            .map(|_| {
                let lo = if hi > min_gen_time {
                    rng.gen_range(min_gen_time..hi)
                } else {
                    min_gen_time
                };
                TimeRange::new(lo, (lo + self.window).min(max_gen_time))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recent_range_covers_exactly_the_window() {
        let q = RecentQueries::new(500, 100);
        let r = q.range(10_000);
        assert_eq!(r.end, 10_000);
        assert_eq!(r.span(), 499);
        assert!(r.contains(9_501) && !r.contains(9_500));
    }

    #[test]
    fn recent_cadence_fires_on_multiples() {
        let q = RecentQueries::new(500, 100);
        assert!(q.due(100) && q.due(200));
        assert!(!q.due(150));
    }

    #[test]
    fn historical_ranges_stay_in_bounds() {
        let q = HistoricalQueries::new(5_000, 200, 7);
        for r in q.ranges(0, 100_000) {
            assert!(r.start >= 0);
            assert!(r.end <= 100_000);
            assert!(r.span() <= 5_000);
        }
    }

    #[test]
    fn historical_is_deterministic_per_seed() {
        let a = HistoricalQueries::new(1_000, 50, 3).ranges(0, 1_000_000);
        let b = HistoricalQueries::new(1_000, 50, 3).ranges(0, 1_000_000);
        assert_eq!(a, b);
        let c = HistoricalQueries::new(1_000, 50, 4).ranges(0, 1_000_000);
        assert_ne!(a, c);
    }

    #[test]
    fn degenerate_domain_is_handled() {
        let q = HistoricalQueries::new(5_000, 10, 1);
        // Domain narrower than the window.
        for r in q.ranges(100, 2_000) {
            assert_eq!(r.start, 100);
            assert_eq!(r.end, 2_000);
        }
    }
}
