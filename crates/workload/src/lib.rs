//! Workload generators reproducing the paper's datasets and query loads.
//!
//! * [`synthetic`] — grid-generated time series with i.i.d. delays; the
//!   twelve synthetic datasets **M1–M12** of Table II are in [`datasets`].
//! * [`s9`] — a simulator of the real-world **S-9** dataset (Weiss et al.):
//!   mobile-device → server transmissions with a heavy straggler tail and
//!   (for the robustness experiment of Fig. 18) irregular generation
//!   intervals.
//! * [`vehicle`] — a simulator of the industrial-partner dataset **H**
//!   (§VI): vehicle telemetry at 1 s resolution where network outages
//!   buffer points on-device and a periodic re-send flushes them in a
//!   batch, producing systematic ≈5×10⁴ ms delays and autocorrelation.
//! * [`dynamic`] — piecewise-distribution streams for the adaptive
//!   experiments (Figs. 10, 17).
//! * [`queries`] — the recent-data and historical query workloads of
//!   §V-D.
//! * [`aggregation`] — the windowed-aggregation query mix over bursty
//!   out-of-order arrivals that exercises the v3 aggregation pushdown.
//!
//! All generators are seeded and deterministic: the same configuration
//! always produces the same dataset.

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod aggregation;
pub mod datasets;
pub mod dynamic;
pub mod queries;
pub mod s9;
pub mod synthetic;
pub mod vehicle;

pub use aggregation::{AggQuery, AggregationWorkload};
pub use datasets::{paper_dataset, PaperDataset, PAPER_DATASETS};
pub use dynamic::DynamicWorkload;
pub use queries::{HistoricalQueries, RecentQueries, PAPER_WINDOWS_MS};
pub use s9::S9Workload;
pub use synthetic::{fraction_out_of_order, SyntheticWorkload};
pub use vehicle::VehicleWorkload;
