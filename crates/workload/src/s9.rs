//! A simulator of the real-world **S-9** dataset (Weiss et al. 2017).
//!
//! The paper uses S-9 — sensor messages sent from a Samsung Galaxy Tab 2 to
//! a Windows PC — through two marginals:
//!
//! * the *delay* distribution (Fig. 8): most points arrive promptly, a
//!   skewed minority suffers delays orders of magnitude longer; ≈7 % of
//!   points are out of order in the Definition 3 sense;
//! * the *generation interval* distribution (Fig. 18a): intervals vary
//!   widely from pair to pair (the data is not generated at a fixed rate).
//!
//! We do not have the original file, so this generator reproduces those
//! marginals: jittered lognormal generation intervals and a prompt/straggler
//! delay mixture. 30 000 points, like the original.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seplsm_dist::{
    DelayDistribution, Exponential, LogNormal, Mixture, Shifted,
};
use seplsm_types::DataPoint;

/// Generator for the simulated S-9 dataset.
pub struct S9Workload {
    /// Number of points (the original has 30 000).
    pub points: usize,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of straggler (heavily delayed) transmissions.
    pub straggler_fraction: f64,
}

impl Default for S9Workload {
    fn default() -> Self {
        // straggler_fraction = 0.05 calibrates the Definition-3 out-of-order
        // share to ≈7 %, matching the paper's 7.05 % for the original S-9.
        Self {
            points: 30_000,
            seed: 9,
            straggler_fraction: 0.05,
        }
    }
}

impl S9Workload {
    /// Generator with the paper's size and disorder level.
    pub fn new(points: usize, seed: u64) -> Self {
        Self {
            points,
            seed,
            ..Self::default()
        }
    }

    /// The delay distribution: prompt lognormal transmissions plus a
    /// shifted-exponential straggler mode (device-side buffering and
    /// retries).
    pub fn delay_distribution(&self) -> Mixture {
        Mixture::of_two(
            1.0 - self.straggler_fraction,
            LogNormal::new(3.2, 0.6), // prompt: median ≈ 25 ms
            self.straggler_fraction,
            Shifted::new(Exponential::with_mean(20_000.0), 5_000.0),
        )
    }

    /// Generation intervals: lognormal around ≈100 ms, spanning roughly two
    /// orders of magnitude (Fig. 18a's spread).
    fn interval_distribution(&self) -> LogNormal {
        LogNormal::new(100.0f64.ln(), 0.8)
    }

    /// The dataset in arrival order.
    pub fn generate(&self) -> Vec<DataPoint> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let delays = self.delay_distribution();
        let intervals = self.interval_distribution();
        let mut points = Vec::with_capacity(self.points);
        let mut tg: i64 = 0;
        for i in 0..self.points {
            // Strictly positive integer interval keeps gen times unique.
            let step = intervals.sample(&mut rng).round().max(1.0) as i64;
            tg += step;
            let delay = delays.sample(&mut rng).max(0.0).round() as i64;
            points.push(DataPoint::with_delay(tg, delay, (i % 100) as f64));
        }
        points.sort_by_key(|p| (p.arrival_time, p.gen_time));
        points
    }

    /// The sorted generation intervals of the generated dataset — the series
    /// plotted in Fig. 18(a).
    pub fn sorted_intervals(&self) -> Vec<i64> {
        let mut pts = self.generate();
        pts.sort_by_key(|p| p.gen_time);
        let mut intervals: Vec<i64> = pts
            .windows(2)
            .map(|w| w[1].gen_time - w[0].gen_time)
            .collect();
        intervals.sort_unstable();
        intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::fraction_out_of_order;

    #[test]
    fn dataset_has_paper_like_disorder() {
        let w = S9Workload::default();
        let pts = w.generate();
        assert_eq!(pts.len(), 30_000);
        let frac = fraction_out_of_order(&pts);
        // The paper reports 7.05 %; the simulator is calibrated to the band.
        assert!(
            (0.04..=0.11).contains(&frac),
            "out-of-order fraction {frac} far from the paper's 7%"
        );
    }

    #[test]
    fn delays_are_skewed() {
        let w = S9Workload::default();
        let pts = w.generate();
        let mut delays: Vec<i64> = pts.iter().map(DataPoint::delay).collect();
        delays.sort_unstable();
        let median = delays[delays.len() / 2];
        let p99 = delays[delays.len() * 99 / 100];
        assert!(
            p99 > median * 20,
            "tail not skewed enough: median {median}, p99 {p99}"
        );
    }

    #[test]
    fn generation_times_are_unique_and_increasing() {
        let w = S9Workload::new(5_000, 3);
        let mut pts = w.generate();
        pts.sort_by_key(|p| p.gen_time);
        assert!(pts.windows(2).all(|w| w[0].gen_time < w[1].gen_time));
    }

    #[test]
    fn intervals_vary_widely() {
        let w = S9Workload::default();
        let intervals = w.sorted_intervals();
        let lo = intervals[intervals.len() / 100];
        let hi = intervals[intervals.len() * 99 / 100];
        assert!(
            hi > lo * 10,
            "interval spread too narrow: p1 {lo}, p99 {hi}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            S9Workload::new(1000, 5).generate(),
            S9Workload::new(1000, 5).generate()
        );
    }
}
