//! A simulator of the industrial-partner dataset **H** (paper §VI).
//!
//! The paper describes the mechanism behind H's delays precisely: vehicle
//! devices normally transmit each point immediately; when the network is
//! unstable the device buffers points locally and a re-send cycle transmits
//! the whole buffer in a batch roughly every 5×10⁴ ms. Consequences the
//! simulator reproduces:
//!
//! * most delays are short; a systematic cluster sits near the re-send
//!   period (Fig. 19b);
//! * consecutive delays are strongly autocorrelated (points buffered in the
//!   same outage share a decreasing delay ramp — Fig. 16a);
//! * despite the long batch delays, almost nothing is *out of order*
//!   (≈0.04 %): a batch arrives in generation order and everything in it is
//!   still newer than what reached the disk before the outage. Only jitter
//!   between consecutive online transmissions reorders points, so the mean
//!   delay of out-of-order points is small (≈2.5 s).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seplsm_dist::{DelayDistribution, LogNormal};
use seplsm_types::{DataPoint, Timestamp};

/// Generator for the simulated vehicle-fleet dataset H.
pub struct VehicleWorkload {
    /// Number of points (the original has 1 million).
    pub points: usize,
    /// Generation interval (the original records once per second).
    pub delta_t: Timestamp,
    /// The batch re-send period (≈5×10⁴ ms in the original).
    pub resend_period: Timestamp,
    /// Probability, per point, of a network outage starting.
    pub outage_start_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VehicleWorkload {
    fn default() -> Self {
        Self {
            points: 1_000_000,
            delta_t: 1_000,
            resend_period: 50_000,
            outage_start_prob: 0.002,
            seed: 6,
        }
    }
}

impl VehicleWorkload {
    /// Generator with the paper's parameters but `points` points.
    pub fn new(points: usize, seed: u64) -> Self {
        Self {
            points,
            seed,
            ..Self::default()
        }
    }

    /// Online-transmission jitter: lognormal, median ≈200 ms, rare
    /// multi-second excursions (the source of the few out-of-order points).
    fn jitter(&self) -> LogNormal {
        LogNormal::new(200.0f64.ln(), 0.6)
    }

    /// The dataset in arrival order.
    pub fn generate(&self) -> Vec<DataPoint> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let jitter = self.jitter();
        let mut points = Vec::with_capacity(self.points);
        let mut offline_until: Option<Timestamp> = None;
        for i in 0..self.points {
            let tg = (i as Timestamp + 1) * self.delta_t;
            // Resolve network state.
            if let Some(until) = offline_until {
                if tg >= until {
                    offline_until = None;
                }
            }
            if offline_until.is_none()
                && rng.gen::<f64>() < self.outage_start_prob
            {
                // Outage ends at the next re-send tick strictly after now.
                let next_tick =
                    (tg / self.resend_period + 1) * self.resend_period;
                offline_until = Some(next_tick);
            }
            let arrival = match offline_until {
                // Buffered: transmitted at the re-send tick, tiny serialisation
                // jitter keeps batch arrivals distinct but ordered.
                Some(until) => until + (i % 50) as Timestamp,
                None => {
                    tg + jitter.sample(&mut rng).max(1.0).round() as Timestamp
                }
            };
            points.push(DataPoint::new(tg, arrival, (i % 360) as f64));
        }
        points.sort_by_key(|p| (p.arrival_time, p.gen_time));
        points
    }

    /// Delay sequence in arrival order (the series behind Figs. 16a/19).
    pub fn delays(&self) -> Vec<f64> {
        self.generate().iter().map(|p| p.delay() as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::fraction_out_of_order;
    use seplsm_dist::stats::{autocorr_confidence, autocorrelation};

    fn small() -> VehicleWorkload {
        VehicleWorkload::new(60_000, 6)
    }

    #[test]
    fn disorder_is_tiny_despite_long_delays() {
        let pts = small().generate();
        let frac = fraction_out_of_order(&pts);
        assert!(
            frac < 0.01,
            "H-like workloads are nearly in order, got {frac}"
        );
        let max_delay = pts.iter().map(DataPoint::delay).max().expect("points");
        assert!(
            max_delay > 10_000,
            "batch re-sends should produce multi-second delays, max {max_delay}"
        );
    }

    #[test]
    fn out_of_order_points_have_short_delays() {
        // The paper: avg delay of out-of-order points ≈ 2.49 s even though
        // batch delays reach ~50 s.
        let pts = small().generate();
        let mut max_tg = i64::MIN;
        let mut ooo_delays = Vec::new();
        for p in &pts {
            if p.gen_time < max_tg {
                ooo_delays.push(p.delay() as f64);
            } else {
                max_tg = p.gen_time;
            }
        }
        assert!(!ooo_delays.is_empty(), "expected some out-of-order points");
        let avg = ooo_delays.iter().sum::<f64>() / ooo_delays.len() as f64;
        assert!(
            avg < 20_000.0,
            "out-of-order delays should be jitter-scale, avg {avg}"
        );
    }

    #[test]
    fn delays_are_strongly_autocorrelated() {
        // Fig. 16a: dataset H violates the independence assumption.
        let delays = small().delays();
        let acf = autocorrelation(&delays, 10);
        let bound = autocorr_confidence(delays.len());
        assert!(
            acf[1] > 10.0 * bound,
            "lag-1 autocorrelation {} not significant (bound {bound})",
            acf[1]
        );
    }

    #[test]
    fn systematic_delay_cluster_near_resend_period() {
        let w = small();
        let delays = w.delays();
        let near_period = delays
            .iter()
            .filter(|&&d| d > 10_000.0 && d <= w.resend_period as f64 + 5_000.0)
            .count();
        assert!(
            near_period > 100,
            "expected a visible batch-delay cluster, got {near_period}"
        );
        // But the majority of points are prompt.
        let prompt = delays.iter().filter(|&&d| d < 5_000.0).count();
        assert!(prompt as f64 / delays.len() as f64 > 0.8);
    }

    #[test]
    fn generation_grid_is_exact() {
        let mut pts = VehicleWorkload::new(1_000, 1).generate();
        pts.sort_by_key(|p| p.gen_time);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.gen_time, (i as i64 + 1) * 1_000);
        }
    }
}
