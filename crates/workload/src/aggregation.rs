//! Windowed-aggregation query mix over bursty out-of-order arrivals — the
//! analytics-pushdown scenario.
//!
//! Monitoring fleets rarely read raw points: dashboards ask for
//! `min`/`max`/`mean` over a recent window, downsampled into fixed buckets.
//! Meanwhile the write side is a steady in-order stream punctuated by
//! *bursts* of stragglers (a device reconnecting and re-sending buffered
//! history), so at any moment some generation-time region near the
//! re-sends is overlapped by fresh MemTable data while the rest of the run
//! is cold and clean. That split is exactly what the v3 aggregation
//! pushdown exploits: clean blocks fold from index pre-aggregates, the
//! burst-touched region decodes.
//!
//! [`AggregationWorkload`] generates both halves deterministically: the
//! bursty arrival stream ([`generate`](AggregationWorkload::generate)) and
//! the query mix ([`queries`](AggregationWorkload::queries)) of
//! whole-window aggregates interleaved with bucketed downsamples. Values
//! are integer-valued `f64`s, keeping the folded `sum` bit-identical to a
//! per-point fold (the pushdown equivalence domain).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seplsm_types::{DataPoint, TimeRange, Timestamp};

/// One query of the mix: a window, aggregated whole or downsampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggQuery {
    /// The generation-time window to aggregate.
    pub range: TimeRange,
    /// `Some(width)` for a downsampling query (one aggregate per
    /// `width`-sized bucket); `None` for a single whole-window aggregate.
    pub bucket_width: Option<Timestamp>,
}

/// Generator for the windowed-aggregation scenario.
#[derive(Debug, Clone, Copy)]
pub struct AggregationWorkload {
    /// In-order points in the base stream.
    pub points: usize,
    /// Generation interval of the base stream.
    pub delta_t: Timestamp,
    /// Per-point probability that a straggler burst fires after it.
    pub burst_prob: f64,
    /// Stragglers per burst (a device draining its re-send buffer).
    pub burst_len: usize,
    /// How far back (in generation time) burst stragglers reach.
    pub max_lag: Timestamp,
    /// Number of queries in the mix.
    pub query_count: usize,
    /// Window length of each query.
    pub window: Timestamp,
    /// Bucket width used by the downsampling share of the mix.
    pub bucket_width: Timestamp,
    /// Every n-th query downsamples instead of aggregating whole.
    pub downsample_every: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AggregationWorkload {
    fn default() -> Self {
        Self {
            points: 50_000,
            delta_t: 50,
            burst_prob: 0.01,
            burst_len: 40,
            max_lag: 20_000,
            query_count: 64,
            window: 100_000,
            bucket_width: 10_000,
            downsample_every: 3,
            seed: 11,
        }
    }
}

impl AggregationWorkload {
    /// The default scenario scaled to `points` base points.
    pub fn new(points: usize, seed: u64) -> Self {
        Self {
            points,
            seed,
            ..Self::default()
        }
    }

    /// The arrival stream: the in-order base grid with straggler bursts
    /// spliced in at the moment they arrive. Base points sit on the
    /// `delta_t` grid; stragglers land strictly off-grid (so a burst never
    /// silently upserts a base point) at lags up to
    /// [`max_lag`](Self::max_lag) behind the stream head.
    pub fn generate(&self) -> Vec<DataPoint> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out =
            Vec::with_capacity(self.points * (1 + self.burst_len / 8));
        for i in 0..self.points {
            let tg = (i as Timestamp + 1) * self.delta_t;
            out.push(DataPoint::new(tg, tg, (i % 1_000) as f64));
            if rng.gen::<f64>() >= self.burst_prob {
                continue;
            }
            // A reconnecting device re-sends `burst_len` buffered points,
            // oldest first, all arriving "now" (at the stream head).
            let lag = rng.gen_range(1..self.max_lag.max(2));
            // Snap the burst onto a grid offset by +1: stragglers stay one
            // tick off the base grid whatever the lag drawn.
            let base = (tg - lag).max(1) / self.delta_t * self.delta_t + 1;
            for j in 0..self.burst_len {
                let straggler_tg = base + j as Timestamp * self.delta_t;
                if straggler_tg >= tg {
                    break;
                }
                out.push(DataPoint::new(straggler_tg, tg, (j % 1_000) as f64));
            }
        }
        out
    }

    /// The query mix: random windows over `[min_gen_time, max_gen_time]`
    /// (never exceeding the data, like the paper's historical queries),
    /// with every [`downsample_every`](Self::downsample_every)-th query
    /// bucketed.
    pub fn queries(
        &self,
        min_gen_time: Timestamp,
        max_gen_time: Timestamp,
    ) -> Vec<AggQuery> {
        assert!(min_gen_time <= max_gen_time);
        let hi = (max_gen_time - self.window).max(min_gen_time);
        // Offset the seed so the query sequence is independent of the
        // arrival stream's draws.
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x05ee_da66);
        (0..self.query_count)
            .map(|i| {
                let lo = if hi > min_gen_time {
                    rng.gen_range(min_gen_time..hi)
                } else {
                    min_gen_time
                };
                AggQuery {
                    range: TimeRange::new(
                        lo,
                        (lo + self.window).min(max_gen_time),
                    ),
                    bucket_width: (self.downsample_every > 0
                        && i % self.downsample_every
                            == self.downsample_every - 1)
                        .then_some(self.bucket_width),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::fraction_out_of_order;

    fn small() -> AggregationWorkload {
        AggregationWorkload::new(5_000, 11)
    }

    #[test]
    fn stream_is_bursty_but_mostly_in_order() {
        let pts = small().generate();
        assert!(pts.len() > 5_000, "bursts must add stragglers");
        let ooo = fraction_out_of_order(&pts);
        assert!(
            ooo > 0.0 && ooo < 0.5,
            "bursts reorder some but not most points: {ooo}"
        );
    }

    #[test]
    fn stragglers_never_collide_with_the_base_grid() {
        let w = small();
        for p in w.generate() {
            if p.gen_time % w.delta_t != 0 {
                continue; // straggler, off-grid by construction
            }
            assert_eq!(
                p.arrival_time, p.gen_time,
                "on-grid point {} must be a base point",
                p.gen_time
            );
        }
    }

    #[test]
    fn values_are_integer_valued() {
        assert!(small()
            .generate()
            .iter()
            .all(|p| p.value.fract() == 0.0 && p.value >= 0.0));
    }

    #[test]
    fn query_mix_interleaves_downsamples_in_bounds() {
        let w = small();
        let queries = w.queries(0, 500_000);
        assert_eq!(queries.len(), w.query_count);
        let downsamples =
            queries.iter().filter(|q| q.bucket_width.is_some()).count();
        assert_eq!(downsamples, w.query_count / w.downsample_every);
        for q in &queries {
            assert!(q.range.start >= 0 && q.range.end <= 500_000);
            assert!(q.range.span() <= w.window);
            if let Some(width) = q.bucket_width {
                assert_eq!(width, w.bucket_width);
            }
        }
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let a = small();
        assert_eq!(a.generate(), a.generate());
        assert_eq!(a.queries(0, 9_999), a.queries(0, 9_999));
        let b = AggregationWorkload::new(5_000, 12);
        assert_ne!(a.generate(), b.generate());
    }
}
