//! Dynamic workloads: the delay distribution changes over time.
//!
//! Used by the adaptive experiments — Fig. 10 (lognormal `σ` stepping
//! 2 → 1.75 → 1.5 → 1.25 → 1 at fixed `μ = 5`, `Δt = 50`) and Fig. 17 (five
//! entirely different delay laws in sequence, so the stream follows *no*
//! single distribution).

use rand::rngs::StdRng;
use rand::SeedableRng;
use seplsm_dist::{
    DelayDistribution, Exponential, LogNormal, Mixture, Shifted, Uniform,
};
use seplsm_types::{DataPoint, Timestamp};

/// A stream whose delay law switches between consecutive segments.
pub struct DynamicWorkload {
    /// Generation interval `Δt` (ms).
    pub delta_t: Timestamp,
    /// `(points, delay law)` per segment, in order.
    pub segments: Vec<(usize, Box<dyn DelayDistribution>)>,
    /// RNG seed.
    pub seed: u64,
}

impl DynamicWorkload {
    /// Creates a dynamic workload from explicit segments.
    pub fn new(
        delta_t: Timestamp,
        segments: Vec<(usize, Box<dyn DelayDistribution>)>,
        seed: u64,
    ) -> Self {
        assert!(delta_t > 0 && !segments.is_empty());
        Self {
            delta_t,
            segments,
            seed,
        }
    }

    /// Fig. 10's workload: lognormal `μ = 5`, `σ` stepping
    /// 2 → 1.75 → 1.5 → 1.25 → 1, `Δt = 50`, `points_per_segment` each
    /// (5 million in the paper; scale to taste).
    pub fn paper_fig10(points_per_segment: usize, seed: u64) -> Self {
        let segments = [2.0, 1.75, 1.5, 1.25, 1.0]
            .into_iter()
            .map(|sigma| {
                (
                    points_per_segment,
                    Box::new(LogNormal::new(5.0, sigma))
                        as Box<dyn DelayDistribution>,
                )
            })
            .collect();
        Self::new(50, segments, seed)
    }

    /// Fig. 17's workload: five structurally different delay laws in
    /// sequence, so no single parametric family fits the stream.
    pub fn paper_fig17(points_per_segment: usize, seed: u64) -> Self {
        let segments: Vec<(usize, Box<dyn DelayDistribution>)> = vec![
            (points_per_segment, Box::new(LogNormal::new(5.0, 2.0))),
            (points_per_segment, Box::new(Exponential::with_mean(800.0))),
            (points_per_segment, Box::new(Uniform::new(0.0, 3_000.0))),
            (
                points_per_segment,
                Box::new(Mixture::of_two(
                    0.9,
                    LogNormal::new(3.0, 0.5),
                    0.1,
                    Shifted::new(Exponential::with_mean(5_000.0), 10_000.0),
                )),
            ),
            (points_per_segment, Box::new(LogNormal::new(3.0, 1.0))),
        ];
        Self::new(50, segments, seed)
    }

    /// Total points across all segments.
    pub fn total_points(&self) -> usize {
        self.segments.iter().map(|(n, _)| n).sum()
    }

    /// Indices (in user-point counts) where segments switch.
    pub fn boundaries(&self) -> Vec<usize> {
        let mut acc = 0;
        self.segments
            .iter()
            .map(|(n, _)| {
                acc += n;
                acc
            })
            .collect()
    }

    /// The stream in arrival order.
    ///
    /// Points are sorted by arrival time globally, so a long-delayed point
    /// from one segment can arrive during the next — exactly the mixing an
    /// online analyzer has to cope with.
    pub fn generate(&self) -> Vec<DataPoint> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut points = Vec::with_capacity(self.total_points());
        let mut index: i64 = 0;
        for (count, dist) in &self.segments {
            for _ in 0..*count {
                index += 1;
                let tg = index * self.delta_t;
                let delay = dist.sample(&mut rng).max(0.0).round() as i64;
                points.push(DataPoint::with_delay(tg, delay, 0.0));
            }
        }
        points.sort_by_key(|p| (p.arrival_time, p.gen_time));
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::fraction_out_of_order;

    #[test]
    fn fig10_has_five_segments_with_decreasing_disorder() {
        let w = DynamicWorkload::paper_fig10(10_000, 1);
        assert_eq!(w.segments.len(), 5);
        assert_eq!(w.total_points(), 50_000);
        assert_eq!(
            w.boundaries(),
            vec![10_000, 20_000, 30_000, 40_000, 50_000]
        );
        let pts = w.generate();
        assert_eq!(pts.len(), 50_000);
        // Split the arrival stream at gen-time segment boundaries and check
        // the first segment is more disordered than the last.
        let seg_max = 10_000i64 * 50;
        let first: Vec<_> = pts
            .iter()
            .copied()
            .filter(|p| p.gen_time <= seg_max)
            .collect();
        let last: Vec<_> = pts
            .iter()
            .copied()
            .filter(|p| p.gen_time > 40_000 * 50)
            .collect();
        let f_first = fraction_out_of_order(&first);
        let f_last = fraction_out_of_order(&last);
        assert!(
            f_first > f_last,
            "sigma=2 segment ({f_first}) should be more disordered than sigma=1 ({f_last})"
        );
    }

    #[test]
    fn fig17_mixes_distribution_families() {
        let w = DynamicWorkload::paper_fig17(2_000, 2);
        let pts = w.generate();
        assert_eq!(pts.len(), 10_000);
        // Unique generation times across segment boundaries.
        let mut tgs: Vec<i64> = pts.iter().map(|p| p.gen_time).collect();
        tgs.sort_unstable();
        tgs.dedup();
        assert_eq!(tgs.len(), 10_000);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = DynamicWorkload::paper_fig10(1_000, 3).generate();
        let b = DynamicWorkload::paper_fig10(1_000, 3).generate();
        assert_eq!(a, b);
    }
}
