//! The twelve synthetic datasets **M1–M12** of the paper's Table II.
//!
//! Each dataset pairs a generation interval `Δt ∈ {50, 10}` with a lognormal
//! delay law (`μ ∈ {4, 5}`, `σ ∈ {1.5, 1.75, 2}`), reconstructed from the
//! paper's own comparisons: M1→M3 increase `σ` at `μ = 4`, M4→M6 the same at
//! `μ = 5` (all with `Δt = 50`); M7–M12 repeat the grid at `Δt = 10`.
//! The paper writes 10 million tuples per dataset; the generators accept any
//! point count so experiments can be scaled to laptop budgets.

use seplsm_dist::LogNormal;
use seplsm_types::Timestamp;

use crate::synthetic::SyntheticWorkload;

/// Parameters of one Table II dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperDataset {
    /// Dataset name (`"M1"`…`"M12"`).
    pub name: &'static str,
    /// Generation interval `Δt` (ms).
    pub delta_t: Timestamp,
    /// Lognormal `μ`.
    pub mu: f64,
    /// Lognormal `σ`.
    pub sigma: f64,
}

impl PaperDataset {
    /// Builds the delay distribution of this dataset.
    pub fn distribution(&self) -> LogNormal {
        LogNormal::new(self.mu, self.sigma)
    }

    /// Builds a generator for `points` points with the given seed.
    pub fn workload(
        &self,
        points: usize,
        seed: u64,
    ) -> SyntheticWorkload<LogNormal> {
        SyntheticWorkload::new(self.delta_t, self.distribution(), points, seed)
    }
}

/// Table II, reconstructed.
pub const PAPER_DATASETS: [PaperDataset; 12] = [
    PaperDataset {
        name: "M1",
        delta_t: 50,
        mu: 4.0,
        sigma: 1.5,
    },
    PaperDataset {
        name: "M2",
        delta_t: 50,
        mu: 4.0,
        sigma: 1.75,
    },
    PaperDataset {
        name: "M3",
        delta_t: 50,
        mu: 4.0,
        sigma: 2.0,
    },
    PaperDataset {
        name: "M4",
        delta_t: 50,
        mu: 5.0,
        sigma: 1.5,
    },
    PaperDataset {
        name: "M5",
        delta_t: 50,
        mu: 5.0,
        sigma: 1.75,
    },
    PaperDataset {
        name: "M6",
        delta_t: 50,
        mu: 5.0,
        sigma: 2.0,
    },
    PaperDataset {
        name: "M7",
        delta_t: 10,
        mu: 4.0,
        sigma: 1.5,
    },
    PaperDataset {
        name: "M8",
        delta_t: 10,
        mu: 4.0,
        sigma: 1.75,
    },
    PaperDataset {
        name: "M9",
        delta_t: 10,
        mu: 4.0,
        sigma: 2.0,
    },
    PaperDataset {
        name: "M10",
        delta_t: 10,
        mu: 5.0,
        sigma: 1.5,
    },
    PaperDataset {
        name: "M11",
        delta_t: 10,
        mu: 5.0,
        sigma: 1.75,
    },
    PaperDataset {
        name: "M12",
        delta_t: 10,
        mu: 5.0,
        sigma: 2.0,
    },
];

/// Looks up a dataset by name (`"M1"`…`"M12"`, case-insensitive).
pub fn paper_dataset(name: &str) -> Option<PaperDataset> {
    PAPER_DATASETS
        .iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::fraction_out_of_order;

    #[test]
    fn all_twelve_exist_with_unique_parameters() {
        assert_eq!(PAPER_DATASETS.len(), 12);
        for (i, a) in PAPER_DATASETS.iter().enumerate() {
            for b in &PAPER_DATASETS[i + 1..] {
                assert!(
                    (a.delta_t, a.mu, a.sigma) != (b.delta_t, b.mu, b.sigma),
                    "{} and {} share parameters",
                    a.name,
                    b.name
                );
            }
        }
    }

    #[test]
    fn lookup_by_name() {
        let m12 = paper_dataset("m12").expect("exists");
        assert_eq!(m12.delta_t, 10);
        assert_eq!(m12.mu, 5.0);
        assert_eq!(m12.sigma, 2.0);
        assert!(paper_dataset("M13").is_none());
    }

    #[test]
    fn paper_ordering_of_disorder_holds() {
        // §V-B: larger Δt ⇒ less disorder; larger μ or σ ⇒ more disorder.
        let frac = |name: &str| {
            let d = paper_dataset(name).expect("exists");
            let pts = d.workload(20_000, 11).generate();
            fraction_out_of_order(&pts)
        };
        let (m1, m3, m4, m7) = (frac("M1"), frac("M3"), frac("M4"), frac("M7"));
        assert!(m3 > m1, "sigma: M3 {m3} <= M1 {m1}");
        assert!(m4 > m1, "mu: M4 {m4} <= M1 {m1}");
        assert!(m7 > m1, "delta_t: M7 {m7} <= M1 {m1}");
    }
}
