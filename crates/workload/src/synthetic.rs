//! Synthetic datasets: grid generation times + i.i.d. random delays.
//!
//! Follows the paper's §V-A recipe: generation times form an arithmetic
//! progression with interval `Δt`; each point's delay is drawn from the
//! configured distribution; arrival time = generation time + delay; the
//! stream is ingested in arrival-time order.

use rand::rngs::StdRng;
use rand::SeedableRng;
use seplsm_dist::DelayDistribution;
use seplsm_types::{DataPoint, Timestamp};

/// Generator for one synthetic time series.
pub struct SyntheticWorkload<D> {
    /// Generation interval `Δt` (ms).
    pub delta_t: Timestamp,
    /// Delay distribution.
    pub delays: D,
    /// Number of points.
    pub points: usize,
    /// RNG seed (same seed ⇒ same dataset).
    pub seed: u64,
    /// Generation time of the first point.
    pub start: Timestamp,
}

impl<D: DelayDistribution> SyntheticWorkload<D> {
    /// Creates a generator with `start = 0`.
    pub fn new(
        delta_t: Timestamp,
        delays: D,
        points: usize,
        seed: u64,
    ) -> Self {
        assert!(delta_t > 0, "delta_t must be positive");
        Self {
            delta_t,
            delays,
            points,
            seed,
            start: 0,
        }
    }

    /// The points in *generation* order (before arrival reordering).
    pub fn generate_unordered(&self) -> Vec<DataPoint> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.points)
            .map(|i| {
                let tg = self.start + i as Timestamp * self.delta_t;
                let delay =
                    self.delays.sample(&mut rng).max(0.0).round() as i64;
                DataPoint::with_delay(tg, delay, (i % 1000) as f64 / 10.0)
            })
            .collect()
    }

    /// The dataset as the database receives it: sorted by arrival time
    /// (ties broken by generation time, deterministically).
    pub fn generate(&self) -> Vec<DataPoint> {
        let mut pts = self.generate_unordered();
        pts.sort_by_key(|p| (p.arrival_time, p.gen_time));
        pts
    }

    /// Fraction of points that are out of order in the paper's Definition 3
    /// sense, assuming an unbounded in-memory run (i.e. compared against the
    /// running maximum generation time among earlier arrivals).
    pub fn out_of_order_fraction(&self) -> f64 {
        let pts = self.generate();
        fraction_out_of_order(&pts)
    }
}

/// Fraction of points arriving with a generation time below the running
/// maximum of earlier arrivals — the workload-intrinsic disorder measure.
pub fn fraction_out_of_order(points: &[DataPoint]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let mut max_tg = Timestamp::MIN;
    let mut ooo = 0usize;
    for p in points {
        if p.gen_time < max_tg {
            ooo += 1;
        } else {
            max_tg = p.gen_time;
        }
    }
    ooo as f64 / points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use seplsm_dist::{Constant, LogNormal};

    #[test]
    fn generation_times_form_the_grid() {
        let w = SyntheticWorkload::new(50, Constant::new(0.0), 100, 1);
        let pts = w.generate_unordered();
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.gen_time, i as i64 * 50);
            assert_eq!(p.delay(), 0);
        }
    }

    #[test]
    fn generate_sorts_by_arrival() {
        let w = SyntheticWorkload::new(50, LogNormal::new(5.0, 2.0), 5_000, 7);
        let pts = w.generate();
        assert!(pts
            .windows(2)
            .all(|w| w[0].arrival_time <= w[1].arrival_time));
        assert_eq!(pts.len(), 5_000);
    }

    #[test]
    fn same_seed_same_dataset() {
        let a = SyntheticWorkload::new(50, LogNormal::new(4.0, 1.5), 1000, 3)
            .generate();
        let b = SyntheticWorkload::new(50, LogNormal::new(4.0, 1.5), 1000, 3)
            .generate();
        assert_eq!(a, b);
        let c = SyntheticWorkload::new(50, LogNormal::new(4.0, 1.5), 1000, 4)
            .generate();
        assert_ne!(a, c);
    }

    #[test]
    fn zero_delay_stream_is_fully_in_order() {
        let w = SyntheticWorkload::new(10, Constant::new(0.0), 500, 1);
        assert_eq!(w.out_of_order_fraction(), 0.0);
    }

    #[test]
    fn heavy_tails_increase_disorder() {
        let calm =
            SyntheticWorkload::new(50, LogNormal::new(4.0, 1.5), 20_000, 5)
                .out_of_order_fraction();
        let wild =
            SyntheticWorkload::new(50, LogNormal::new(5.0, 2.0), 20_000, 5)
                .out_of_order_fraction();
        assert!(wild > calm, "wild {wild} <= calm {calm}");
        assert!(calm > 0.0);
    }

    #[test]
    fn shorter_interval_increases_disorder() {
        let slow =
            SyntheticWorkload::new(50, LogNormal::new(4.0, 1.75), 20_000, 5)
                .out_of_order_fraction();
        let fast =
            SyntheticWorkload::new(10, LogNormal::new(4.0, 1.75), 20_000, 5)
                .out_of_order_fraction();
        assert!(fast > slow, "fast {fast} <= slow {slow}");
    }
}
