//! Deterministic fault injection for every disk touch of the storage layer.
//!
//! A [`FaultPlan`] is a seeded, op-counting schedule of injected failures:
//! fail the Nth I/O op (once or persistently), tear a write by truncating
//! its last K bytes, or hard-crash at op N so that op and every later one
//! fails without touching the disk. Plans are attached to [`FileStore`],
//! [`Wal`](crate::Wal) and [`Manifest`](crate::Manifest), which call the
//! hooks below around each physical operation, and [`FaultStore`] wraps any
//! other [`TableStore`] at op granularity. The crash-schedule harness
//! (`tests/crash_schedules.rs`) records a trace with [`Fault::None`], then
//! replays every prefix with [`Fault::CrashAt`] and checks the recovery
//! contract.
//!
//! Everything here is deterministic: op numbering is the only "clock", the
//! seed is carried verbatim for workload derivation, and no wall-clock or
//! thread primitive is used (seplint rule R3 applies to this module).
//!
//! [`FileStore`]: crate::FileStore

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use seplsm_types::{DataPoint, Error, Result, TimeRange};

use crate::obs::{Event, ObserverHandle};
use crate::sstable::format::RangeRead;
use crate::sstable::{SsTableId, SsTableMeta};
use crate::store::TableStore;

/// One class of physical I/O operation, as counted and traced by a
/// [`FaultPlan`]. The variants mirror the call sites in `store.rs`,
/// `wal.rs` and `manifest.rs`, so a trace names exactly which disk touch a
/// crash point lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// `FileStore::put` writing the encoded table to its tmp file.
    StoreWrite,
    /// `FileStore::put` fsyncing the tmp file.
    StoreSync,
    /// `FileStore::put` renaming tmp → final.
    StoreRename,
    /// `FileStore::get`/`get_range` reading a table.
    StoreRead,
    /// `FileStore::delete` (or `quarantine`) removing a table.
    StoreDelete,
    /// `FileStore::list` scanning the directory.
    StoreList,
    /// `Wal::append` writing one record.
    WalAppend,
    /// `Wal::sync` flush + fsync.
    WalSync,
    /// `Wal::rewrite` writing + fsyncing the tmp log.
    WalRewrite,
    /// `Wal::rewrite` renaming tmp → live.
    WalRename,
    /// `Manifest::log_add`/`log_add_l0`/`log_remove` writing one record.
    ManifestAppend,
    /// `Manifest::sync` flush + fsync.
    ManifestSync,
    /// `Manifest::rewrite_levels` writing + fsyncing the tmp log.
    ManifestRewrite,
    /// `Manifest::rewrite_levels` renaming tmp → live.
    ManifestRename,
    /// A parent-directory fsync after a rename ([`crate::store::sync_dir`]).
    DirSync,
}

/// The failure a [`FaultPlan`] injects, positioned by global op index
/// (0-based, in [`FaultPlan::ops`] order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fault {
    /// Inject nothing; the plan only counts and traces ops.
    #[default]
    None,
    /// Op `at` fails once with a transient I/O error; later ops succeed.
    FailOnce {
        /// Index of the op that fails.
        at: u64,
    },
    /// Every op with index `>= from` fails (a device that died).
    FailPersistent {
        /// First failing op index.
        from: u64,
    },
    /// The write op at index `at` persists only its prefix — the last
    /// `truncate` bytes are dropped — and the plan then behaves like a
    /// crash: every later op fails without touching the disk.
    TornWrite {
        /// Index of the op that tears. If that op is not a write the plan
        /// degenerates to [`Fault::CrashAt`] semantics at the same index.
        at: u64,
        /// Bytes chopped off the end of the written payload (saturating;
        /// tearing more than the payload length persists nothing).
        truncate: usize,
    },
    /// Op `at` and every later op fail without touching the disk, modelling
    /// a hard power cut at that point in the schedule.
    CrashAt {
        /// Index of the first failed op.
        at: u64,
    },
}

/// What a write call site must do after [`FaultPlan::begin_write`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteCheck {
    /// Perform the full write.
    Proceed,
    /// Write (and flush) only the first `keep` bytes of the payload, then
    /// fail the operation with [`injected_crash`].
    Torn {
        /// Prefix length to persist.
        keep: usize,
    },
}

/// Builds the error a torn or crashed op must surface. Recognisable by the
/// `"injected"` prefix so tests can tell injected failures from real ones.
pub fn injected_crash(op: IoOp, index: u64) -> Error {
    Error::Io(std::io::Error::other(format!(
        "injected fault at op {index} ({op:?})"
    )))
}

/// Returns true when `e` is an error produced by [`injected_crash`] (or the
/// transient variants), i.e. it came from a [`FaultPlan`] and not the OS.
pub fn is_injected(e: &Error) -> bool {
    matches!(e, Error::Io(io) if io.to_string().starts_with("injected "))
}

fn injected_transient(op: IoOp, index: u64) -> Error {
    Error::Io(std::io::Error::other(format!(
        "injected transient fault at op {index} ({op:?})"
    )))
}

/// A seeded, op-counting fault schedule. See the module docs.
///
/// The same plan instance may be shared (via `Arc`) by a store, a WAL and a
/// manifest so that all of an engine's disk touches share one op counter —
/// that global numbering is what makes crash-schedule exploration exhaustive.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    fault: Fault,
    ops: AtomicU64,
    crashed: AtomicBool,
    injected: AtomicU64,
    trace: Mutex<Vec<IoOp>>,
    observer: Mutex<ObserverHandle>,
}

impl FaultPlan {
    /// Creates a plan injecting `fault`, carrying `seed` for workload
    /// derivation (the plan itself uses no randomness).
    pub fn new(seed: u64, fault: Fault) -> Arc<Self> {
        Arc::new(Self {
            seed,
            fault,
            ops: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            injected: AtomicU64::new(0),
            trace: Mutex::new(Vec::new()),
            observer: Mutex::new(ObserverHandle::detached()),
        })
    }

    /// A plan that injects nothing — counts and traces ops only.
    pub fn trace_only(seed: u64) -> Arc<Self> {
        Self::new(seed, Fault::None)
    }

    /// A plan that hard-crashes at op `at`.
    pub fn crash_at(seed: u64, at: u64) -> Arc<Self> {
        Self::new(seed, Fault::CrashAt { at })
    }

    /// The seed this plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Ops counted so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Failures injected so far (including every post-crash refusal).
    pub fn injected_failures(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// True once a [`Fault::CrashAt`] or [`Fault::TornWrite`] has fired;
    /// all subsequent ops fail.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// The op trace so far, in execution order.
    pub fn trace(&self) -> Vec<IoOp> {
        self.trace.lock().clone()
    }

    /// Attaches an observer: every injected failure emits an
    /// [`Event::FaultInjected`]. Emission happens outside op numbering, so
    /// observing a plan never shifts its schedule.
    pub fn set_observer(&self, obs: ObserverHandle) {
        *self.observer.lock() = obs;
    }

    /// Counts one injection and reports it to the attached observer.
    fn note_injected(&self, op: IoOp, index: u64) {
        self.injected.fetch_add(1, Ordering::SeqCst);
        self.observer
            .lock()
            .emit(|| Event::FaultInjected { op, at: index });
    }

    /// Counts one non-write op: returns `Ok` if it may proceed, or the
    /// injected error it must surface.
    pub fn begin(&self, op: IoOp) -> Result<()> {
        self.begin_write(op, 0).map(|_| ())
    }

    /// Counts one op that writes `len` payload bytes. On
    /// [`WriteCheck::Torn`] the caller persists only the returned prefix
    /// and then fails with [`injected_crash`].
    pub fn begin_write(&self, op: IoOp, len: usize) -> Result<WriteCheck> {
        let index = self.ops.fetch_add(1, Ordering::SeqCst);
        self.trace.lock().push(op);
        if self.crashed.load(Ordering::SeqCst) {
            self.note_injected(op, index);
            return Err(injected_crash(op, index));
        }
        match self.fault {
            Fault::None => Ok(WriteCheck::Proceed),
            Fault::FailOnce { at } if index == at => {
                self.note_injected(op, index);
                Err(injected_transient(op, index))
            }
            Fault::FailOnce { .. } => Ok(WriteCheck::Proceed),
            Fault::FailPersistent { from } if index >= from => {
                self.note_injected(op, index);
                Err(injected_transient(op, index))
            }
            Fault::FailPersistent { .. } => Ok(WriteCheck::Proceed),
            Fault::TornWrite { at, truncate } if index == at => {
                self.crashed.store(true, Ordering::SeqCst);
                self.note_injected(op, index);
                if len == 0 {
                    // Not a write op: degenerate to a plain crash.
                    Err(injected_crash(op, index))
                } else {
                    Ok(WriteCheck::Torn {
                        keep: len.saturating_sub(truncate),
                    })
                }
            }
            Fault::TornWrite { .. } => Ok(WriteCheck::Proceed),
            Fault::CrashAt { at } if index >= at => {
                self.crashed.store(true, Ordering::SeqCst);
                self.note_injected(op, index);
                Err(injected_crash(op, index))
            }
            Fault::CrashAt { .. } => Ok(WriteCheck::Proceed),
        }
    }
}

/// Counts one non-write op against an optional plan (no plan: always `Ok`).
pub(crate) fn hook(plan: Option<&Arc<FaultPlan>>, op: IoOp) -> Result<()> {
    match plan {
        Some(p) => p.begin(op),
        None => Ok(()),
    }
}

/// Counts one write op of `len` payload bytes against an optional plan.
pub(crate) fn hook_write(
    plan: Option<&Arc<FaultPlan>>,
    op: IoOp,
    len: usize,
) -> Result<WriteCheck> {
    match plan {
        Some(p) => p.begin_write(op, len),
        None => Ok(WriteCheck::Proceed),
    }
}

/// A [`TableStore`] wrapper that routes every call through a [`FaultPlan`]
/// at op granularity (one op per store call).
///
/// Use this to fault-inject a [`MemStore`](crate::MemStore) or any other
/// store without byte-level hooks. Do **not** wrap a
/// [`FileStore`](crate::FileStore) that already has a plan attached via
/// [`FileStore::with_faults`](crate::FileStore::with_faults) — each put
/// would then be counted both as one coarse op and as its four byte-level
/// ops, double-counting the schedule.
pub struct FaultStore<S: TableStore> {
    inner: S,
    plan: Arc<FaultPlan>,
}

impl<S: TableStore> FaultStore<S> {
    /// Wraps `inner` so every call consults `plan` first.
    pub fn new(inner: S, plan: Arc<FaultPlan>) -> Self {
        Self { inner, plan }
    }

    /// The shared fault plan.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: TableStore> TableStore for FaultStore<S> {
    fn put(&self, points: &[DataPoint]) -> Result<(SsTableMeta, usize)> {
        self.plan.begin(IoOp::StoreWrite)?;
        self.inner.put(points)
    }

    fn get(&self, id: SsTableId) -> Result<Vec<DataPoint>> {
        self.plan.begin(IoOp::StoreRead)?;
        self.inner.get(id)
    }

    fn delete(&self, id: SsTableId) -> Result<()> {
        self.plan.begin(IoOp::StoreDelete)?;
        self.inner.delete(id)
    }

    fn list(&self) -> Result<Vec<SsTableId>> {
        self.plan.begin(IoOp::StoreList)?;
        self.inner.list()
    }

    fn get_range(&self, id: SsTableId, range: TimeRange) -> Result<RangeRead> {
        self.plan.begin(IoOp::StoreRead)?;
        self.inner.get_range(id, range)
    }

    fn read_raw(&self, id: SsTableId) -> Result<Option<bytes::Bytes>> {
        self.plan.begin(IoOp::StoreRead)?;
        self.inner.read_raw(id)
    }

    fn table_len(&self, id: SsTableId) -> Result<Option<u64>> {
        self.plan.begin(IoOp::StoreRead)?;
        self.inner.table_len(id)
    }

    fn read_span(
        &self,
        id: SsTableId,
        span: crate::sstable::format::ByteSpan,
    ) -> Result<Option<bytes::Bytes>> {
        self.plan.begin(IoOp::StoreRead)?;
        self.inner.read_span(id, span)
    }

    fn may_contain(
        &self,
        id: SsTableId,
        range: TimeRange,
    ) -> Result<Option<bool>> {
        // One coarse op: the pruning-metadata read. A crashed plan must
        // refuse it, or a post-crash query could silently "prune" tables
        // it can no longer read.
        self.plan.begin(IoOp::StoreRead)?;
        self.inner.may_contain(id, range)
    }

    fn quarantine(&self, id: SsTableId) -> Result<()> {
        self.plan.begin(IoOp::StoreDelete)?;
        self.inner.quarantine(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn pts(n: i64) -> Vec<DataPoint> {
        (0..n).map(|i| DataPoint::new(i, i, i as f64)).collect()
    }

    #[test]
    fn trace_only_counts_and_records() {
        let plan = FaultPlan::trace_only(7);
        let store = FaultStore::new(MemStore::new(), Arc::clone(&plan));
        let (meta, _) = store.put(&pts(4)).expect("put");
        store.get(meta.id).expect("get");
        store.list().expect("list");
        assert_eq!(plan.ops(), 3);
        assert_eq!(plan.seed(), 7);
        assert_eq!(
            plan.trace(),
            vec![IoOp::StoreWrite, IoOp::StoreRead, IoOp::StoreList]
        );
        assert_eq!(plan.injected_failures(), 0);
        assert!(!plan.is_crashed());
    }

    #[test]
    fn fail_once_fails_exactly_one_op() {
        let plan = FaultPlan::new(0, Fault::FailOnce { at: 1 });
        let store = FaultStore::new(MemStore::new(), Arc::clone(&plan));
        let (meta, _) = store.put(&pts(2)).expect("op 0 fine");
        let err = store.get(meta.id).expect_err("op 1 fails");
        assert!(is_injected(&err), "unexpected error: {err}");
        store.get(meta.id).expect("op 2 fine again");
        assert_eq!(plan.injected_failures(), 1);
        assert!(!plan.is_crashed());
    }

    #[test]
    fn crash_at_fails_everything_from_n() {
        let plan = FaultPlan::crash_at(0, 2);
        let store = FaultStore::new(MemStore::new(), Arc::clone(&plan));
        store.put(&pts(1)).expect("op 0");
        store.put(&pts(1)).expect("op 1");
        assert!(store.put(&pts(1)).is_err(), "op 2 crashes");
        assert!(plan.is_crashed());
        assert!(store.list().is_err(), "ops after the crash all fail");
        assert_eq!(plan.injected_failures(), 2);
    }

    #[test]
    fn fail_persistent_fails_all_later_ops() {
        let plan = FaultPlan::new(0, Fault::FailPersistent { from: 1 });
        let store = FaultStore::new(MemStore::new(), Arc::clone(&plan));
        store.put(&pts(1)).expect("op 0");
        assert!(store.put(&pts(1)).is_err());
        assert!(store.put(&pts(1)).is_err());
        assert!(!plan.is_crashed(), "persistent failure is not a crash");
    }

    #[test]
    fn torn_write_keeps_a_prefix_then_crashes() {
        let plan = FaultPlan::new(0, Fault::TornWrite { at: 0, truncate: 3 });
        match plan.begin_write(IoOp::WalAppend, 10).expect("torn check") {
            WriteCheck::Torn { keep } => assert_eq!(keep, 7),
            other => panic!("expected torn, got {other:?}"),
        }
        assert!(plan.is_crashed());
        assert!(plan.begin(IoOp::WalSync).is_err());
        // Saturating: tearing more than the payload persists nothing.
        let plan = FaultPlan::new(
            0,
            Fault::TornWrite {
                at: 0,
                truncate: 99,
            },
        );
        match plan.begin_write(IoOp::WalAppend, 10).expect("torn check") {
            WriteCheck::Torn { keep } => assert_eq!(keep, 0),
            other => panic!("expected torn, got {other:?}"),
        }
    }
}
