//! Fleet-wide memory arbitration: one point-denominated budget, many
//! series.
//!
//! The paper tunes each series' MemTable split (`π_c` vs. `π_s(n_seq)`)
//! against a *fixed* per-series budget `n`. At fleet scale the budget
//! itself is the scarce resource: thousands of series share one memory
//! pool, and a static even split starves the hot series while cold ones
//! idle. The [`Arbiter`] is the kernel-side answer, following the
//! adaptive-memory-management line of work (see PAPERS.md): a global
//! budget is split between per-series MemTable capacity and a shared
//! block-cache share, steered by decayed per-series *heat* counters so
//! hot series grow and cold series shrink back toward a floor.
//!
//! Design constraints (this is a seplint kernel module):
//!
//! * **Deterministic** (rule R3): the arbiter is a pure state machine
//!   driven by logical ticks — one tick per recorded append or query. No
//!   wall clock, no thread primitive; two identical op sequences produce
//!   identical rebalance plans, so seeded fleet traces stay
//!   byte-identical.
//! * **Exactly conserving**: after every operation the per-series
//!   capacities and the cache share partition the budget —
//!   Σ capacity + cache share = budget — and every series holds at least
//!   [`ArbiterConfig::floor_points`]. Integer-division remainders are
//!   folded into the cache share, never lost.
//! * **Mechanism only**: the arbiter decides *capacities*; applying them
//!   (policy migration via `set_policy`, cache resizing) is the fleet
//!   engine's job, which is also where the typed
//!   [`Event`](crate::obs::Event)s are emitted.
//!
//! Heat is held in fixed-point units of [`HEAT_UNIT`] (1/256ths of a
//! point) so decay keeps fractional residue without floating point.

use std::collections::BTreeMap;

use seplsm_types::{Error, Result};

/// Fixed-point scale of one heat unit: one recorded append adds
/// `HEAT_UNIT` (i.e. 1.0 point-equivalents) of heat.
pub const HEAT_UNIT: u64 = 256;

/// Default minimum MemTable capacity a series never shrinks below.
pub const DEFAULT_FLOOR_POINTS: u64 = 8;

/// Default share of the budget targeted at the block cache, in percent.
pub const DEFAULT_CACHE_PERCENT: u64 = 25;

/// Default logical ticks (appends + queries) between rebalances.
pub const DEFAULT_REBALANCE_EVERY: u64 = 1024;

/// Default heat retained across one rebalance, in percent (50 = one
/// half-life per rebalance interval).
pub const DEFAULT_DECAY_PERCENT: u64 = 50;

/// Default heat units a query adds, as a multiple of an append's
/// [`HEAT_UNIT`].
pub const DEFAULT_QUERY_WEIGHT: u64 = 2;

/// Configuration of an [`Arbiter`]. Validated by [`Arbiter::new`].
#[derive(Debug, Clone, Copy)]
pub struct ArbiterConfig {
    /// The global budget, in points, partitioned between every series'
    /// MemTable capacity and the block-cache share.
    pub budget_points: u64,
    /// Per-series capacity floor: no rebalance shrinks a series below
    /// this many points (≥ 2, so separation policies keep a non-empty
    /// `C_nonseq`).
    pub floor_points: u64,
    /// Target block-cache share, in percent of the budget. The target
    /// yields to series floors when the fleet grows large; remainders of
    /// the heat split are folded into the share on top of the target.
    pub cache_percent: u64,
    /// Logical ticks between rebalances (the cadence).
    pub rebalance_every: u64,
    /// Heat retained across one rebalance, in percent (0 = forget
    /// everything, 100 = never decay).
    pub decay_percent: u64,
    /// Heat units a query adds, as a multiple of an append's one unit.
    pub query_weight: u64,
}

impl ArbiterConfig {
    /// Defaults for a global budget of `budget_points`.
    pub fn new(budget_points: u64) -> Self {
        Self {
            budget_points,
            floor_points: DEFAULT_FLOOR_POINTS,
            cache_percent: DEFAULT_CACHE_PERCENT,
            rebalance_every: DEFAULT_REBALANCE_EVERY,
            decay_percent: DEFAULT_DECAY_PERCENT,
            query_weight: DEFAULT_QUERY_WEIGHT,
        }
    }

    /// Sets the per-series capacity floor.
    pub fn with_floor(mut self, points: u64) -> Self {
        self.floor_points = points;
        self
    }

    /// Sets the target cache share, in percent of the budget.
    pub fn with_cache_percent(mut self, percent: u64) -> Self {
        self.cache_percent = percent;
        self
    }

    /// Sets the rebalance cadence, in logical ticks.
    pub fn with_rebalance_every(mut self, ticks: u64) -> Self {
        self.rebalance_every = ticks;
        self
    }

    /// Sets the per-rebalance heat retention, in percent.
    pub fn with_decay_percent(mut self, percent: u64) -> Self {
        self.decay_percent = percent;
        self
    }

    /// Sets the query heat weight.
    pub fn with_query_weight(mut self, weight: u64) -> Self {
        self.query_weight = weight;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.floor_points < 2 {
            return Err(Error::InvalidConfig(
                "arbiter floor must be >= 2 points (separation policies \
                 need a non-empty C_nonseq)"
                    .into(),
            ));
        }
        if self.budget_points < self.floor_points {
            return Err(Error::InvalidConfig(format!(
                "arbiter budget ({}) below the per-series floor ({})",
                self.budget_points, self.floor_points
            )));
        }
        if self.cache_percent > 90 {
            return Err(Error::InvalidConfig(
                "arbiter cache share must be <= 90% of the budget".into(),
            ));
        }
        if self.rebalance_every == 0 {
            return Err(Error::InvalidConfig(
                "arbiter rebalance cadence must be >= 1 tick".into(),
            ));
        }
        if self.decay_percent > 100 {
            return Err(Error::InvalidConfig(
                "arbiter decay retention is a percentage (0..=100)".into(),
            ));
        }
        Ok(())
    }
}

/// One series' arbiter-side state.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Decayed heat in [`HEAT_UNIT`] fixed point.
    heat: u64,
    /// The capacity currently assigned to the series, in points.
    capacity: u64,
}

/// One series' new capacity in a [`Rebalance`] plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesAssignment {
    /// The raw series id.
    pub series: u32,
    /// The new MemTable capacity, in points.
    pub capacity: u64,
}

/// One rebalance decision: which series change capacity, the new cache
/// share, and the decayed heat samples the split was computed from.
/// Everything is ordered by ascending series id, so applying (and
/// emitting events for) a plan is deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rebalance {
    /// 1-based rebalance round.
    pub round: u64,
    /// Series whose capacity changed, ascending by id.
    pub assignments: Vec<SeriesAssignment>,
    /// The block-cache share after the split, in points.
    pub cache_share: u64,
    /// Every series' decayed heat at the split, ascending by id, in
    /// [`HEAT_UNIT`] fixed point.
    pub heats: Vec<(u32, u64)>,
}

/// A counters snapshot of an [`Arbiter`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArbiterStats {
    /// Logical ticks recorded (appends + queries).
    pub ticks: u64,
    /// Rebalance rounds run (cadence-due and admission-forced).
    pub rounds: u64,
    /// Individual series resizes across all rounds.
    pub resizes: u64,
    /// Series currently hosted.
    pub series: usize,
    /// The current block-cache share, in points.
    pub cache_share: u64,
}

/// The fleet memory arbiter: a deterministic, logical-tick-driven state
/// machine partitioning [`ArbiterConfig::budget_points`] between series
/// MemTables and the block-cache share. See the module docs.
#[derive(Debug)]
pub struct Arbiter {
    config: ArbiterConfig,
    /// Per-series slots; `BTreeMap` so every traversal is in ascending
    /// id order without re-sorting.
    series: BTreeMap<u32, Slot>,
    ticks: u64,
    last_rebalance_tick: u64,
    rounds: u64,
    resizes: u64,
    cache_share: u64,
}

impl Arbiter {
    /// A fresh arbiter; the whole budget starts as cache share.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] for degenerate configurations.
    pub fn new(config: ArbiterConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            config,
            series: BTreeMap::new(),
            ticks: 0,
            last_rebalance_tick: 0,
            rounds: 0,
            resizes: 0,
            cache_share: config.budget_points,
        })
    }

    /// The validated configuration.
    pub fn config(&self) -> &ArbiterConfig {
        &self.config
    }

    /// Records one append to `series`, registering the series on first
    /// sight with the floor capacity. Returns a [`Rebalance`] plan when
    /// the cadence is due or when admitting the series forced an early
    /// split; the caller must apply the plan (it is already accounted
    /// here).
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] when the budget cannot host one more
    /// series at the floor.
    pub fn record_append(&mut self, series: u32) -> Result<Option<Rebalance>> {
        self.ticks += 1;
        let mut forced = false;
        if !self.series.contains_key(&series) {
            forced = self.admit(series)?;
        }
        if let Some(slot) = self.series.get_mut(&series) {
            slot.heat = slot.heat.saturating_add(HEAT_UNIT);
        }
        if forced {
            return Ok(Some(self.rebalance()));
        }
        if self.ticks - self.last_rebalance_tick >= self.config.rebalance_every
        {
            return Ok(Some(self.rebalance()));
        }
        Ok(None)
    }

    /// Records one query against `series` (unknown series heat nothing).
    /// Queries advance the logical clock and add
    /// [`ArbiterConfig::query_weight`] heat units, but never return a
    /// plan — only the (mutating) append path can apply one.
    pub fn record_query(&mut self, series: u32) {
        self.ticks += 1;
        if let Some(slot) = self.series.get_mut(&series) {
            slot.heat = slot.heat.saturating_add(
                HEAT_UNIT.saturating_mul(self.config.query_weight),
            );
        }
    }

    /// Admits a new series at the floor capacity, preferring to take the
    /// points from the cache share. Returns `true` when the share could
    /// not cover the floor and a full rebalance must re-cut the split.
    fn admit(&mut self, series: u32) -> Result<bool> {
        let floor = self.config.floor_points;
        let hosted = self.series.len() as u64;
        let needed = hosted.saturating_add(1).saturating_mul(floor);
        if needed > self.config.budget_points {
            return Err(Error::InvalidConfig(format!(
                "arbiter budget exhausted: {} series at floor {} exceed \
                 budget {}",
                hosted + 1,
                floor,
                self.config.budget_points
            )));
        }
        if self.cache_share >= floor {
            self.cache_share -= floor;
            self.series.insert(
                series,
                Slot {
                    heat: 0,
                    capacity: floor,
                },
            );
            Ok(false)
        } else {
            // The share is drained; register at the floor on paper and
            // let the forced rebalance rebuild an exact partition.
            self.series.insert(
                series,
                Slot {
                    heat: 0,
                    capacity: floor,
                },
            );
            Ok(true)
        }
    }

    /// Re-cuts the budget: decays every heat counter, grants the cache
    /// its target share (clamped so every series keeps the floor), and
    /// splits the remaining pool proportionally to heat. Division
    /// remainders are folded into the cache share, so the partition is
    /// exact by construction.
    fn rebalance(&mut self) -> Rebalance {
        self.last_rebalance_tick = self.ticks;
        self.rounds += 1;
        let budget = self.config.budget_points;
        let floor = self.config.floor_points;
        for slot in self.series.values_mut() {
            slot.heat = mul_pct(slot.heat, self.config.decay_percent);
        }
        let n = self.series.len() as u64;
        if n == 0 {
            self.cache_share = budget;
            return Rebalance {
                round: self.rounds,
                assignments: Vec::new(),
                cache_share: budget,
                heats: Vec::new(),
            };
        }
        let cache_target =
            mul_pct(budget, self.config.cache_percent).min(budget - n * floor);
        let pool = budget - cache_target;
        let extra_pool = pool - n * floor;
        let total_heat: u64 = self.series.values().map(|s| s.heat).sum();
        let mut assignments = Vec::new();
        let mut heats = Vec::with_capacity(self.series.len());
        let mut assigned = 0u64;
        for (&id, slot) in &mut self.series {
            let extra = if total_heat == 0 {
                extra_pool / n
            } else {
                // u128 keeps `extra_pool * heat` from overflowing; the
                // quotient is <= extra_pool, so it fits back into u64.
                ((u128::from(extra_pool) * u128::from(slot.heat))
                    / u128::from(total_heat)) as u64
            };
            let capacity = floor + extra;
            assigned += capacity;
            if capacity != slot.capacity {
                slot.capacity = capacity;
                assignments.push(SeriesAssignment {
                    series: id,
                    capacity,
                });
            }
            heats.push((id, slot.heat));
        }
        // Exact by construction: remainders land in the cache share.
        self.cache_share = budget - assigned;
        self.resizes += assignments.len() as u64;
        Rebalance {
            round: self.rounds,
            assignments,
            cache_share: self.cache_share,
            heats,
        }
    }

    /// The capacity currently assigned to `series`, if hosted.
    pub fn capacity_of(&self, series: u32) -> Option<u64> {
        self.series.get(&series).map(|s| s.capacity)
    }

    /// Every hosted series' assigned capacity, ascending by id.
    pub fn capacities(&self) -> Vec<SeriesAssignment> {
        self.series
            .iter()
            .map(|(&series, slot)| SeriesAssignment {
                series,
                capacity: slot.capacity,
            })
            .collect()
    }

    /// The current block-cache share, in points.
    pub fn cache_share(&self) -> u64 {
        self.cache_share
    }

    /// Counters snapshot.
    pub fn stats(&self) -> ArbiterStats {
        ArbiterStats {
            ticks: self.ticks,
            rounds: self.rounds,
            resizes: self.resizes,
            series: self.series.len(),
            cache_share: self.cache_share,
        }
    }
}

/// `value * percent / 100` without intermediate overflow.
fn mul_pct(value: u64, percent: u64) -> u64 {
    ((u128::from(value) * u128::from(percent)) / 100) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ArbiterConfig {
        ArbiterConfig::new(1024)
            .with_floor(8)
            .with_rebalance_every(64)
    }

    /// Σ capacity + cache share must equal the budget, every series at
    /// or above the floor.
    fn assert_partition(a: &Arbiter) {
        let caps = a.capacities();
        let total: u64 =
            caps.iter().map(|c| c.capacity).sum::<u64>() + a.cache_share();
        assert_eq!(total, a.config().budget_points, "partition leaked");
        for c in &caps {
            assert!(
                c.capacity >= a.config().floor_points,
                "series-{} below floor: {}",
                c.series,
                c.capacity
            );
        }
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(Arbiter::new(ArbiterConfig::new(1024).with_floor(1)).is_err());
        assert!(Arbiter::new(ArbiterConfig::new(4).with_floor(8)).is_err());
        assert!(
            Arbiter::new(ArbiterConfig::new(1024).with_cache_percent(95))
                .is_err()
        );
        assert!(
            Arbiter::new(ArbiterConfig::new(1024).with_rebalance_every(0))
                .is_err()
        );
        assert!(
            Arbiter::new(ArbiterConfig::new(1024).with_decay_percent(150))
                .is_err()
        );
        assert!(Arbiter::new(config()).is_ok());
    }

    #[test]
    fn admission_takes_the_floor_from_the_cache_share() {
        let mut a = Arbiter::new(config()).expect("arbiter");
        assert_eq!(a.cache_share(), 1024);
        assert!(a.record_append(3).expect("append").is_none());
        assert_eq!(a.capacity_of(3), Some(8));
        assert_eq!(a.cache_share(), 1016);
        assert_partition(&a);
    }

    #[test]
    fn budget_exhaustion_is_a_typed_error() {
        let mut a = Arbiter::new(
            ArbiterConfig::new(16).with_floor(8).with_rebalance_every(4),
        )
        .expect("arbiter");
        a.record_append(0).expect("first");
        a.record_append(1).expect("second");
        let err = a.record_append(2).expect_err("third must not fit");
        assert!(err.to_string().contains("budget exhausted"));
        assert_partition(&a);
    }

    #[test]
    fn hot_series_grow_and_cold_series_shrink_toward_the_floor() {
        let mut a = Arbiter::new(config()).expect("arbiter");
        // Register both, then heat series 0 only, through one rebalance.
        a.record_append(0).expect("append");
        a.record_append(1).expect("append");
        let mut plan = None;
        for _ in 0..200 {
            if let Some(p) = a.record_append(0).expect("append") {
                plan = Some(p);
            }
        }
        let plan = plan.expect("cadence must have fired");
        assert!(plan.round >= 1);
        let hot = a.capacity_of(0).expect("hot");
        let cold = a.capacity_of(1).expect("cold");
        assert!(
            hot > cold,
            "hot series must out-grow cold: hot={hot} cold={cold}"
        );
        assert_partition(&a);
        // Now go silent: decay pulls the hot series back toward the
        // floor as rebalances pass with no fresh heat.
        for _ in 0..20 {
            a.record_query(1);
        }
        let before = a.capacity_of(0).expect("hot");
        for _ in 0..600 {
            a.record_append(1).expect("append");
        }
        let after = a.capacity_of(0).expect("hot");
        assert!(
            after < before,
            "decayed series must shrink: {before} -> {after}"
        );
        assert_partition(&a);
    }

    #[test]
    fn queries_heat_a_series() {
        let mut a = Arbiter::new(config()).expect("arbiter");
        a.record_append(0).expect("append");
        a.record_append(1).expect("append");
        // Equal appends, but series 1 also serves queries.
        for _ in 0..40 {
            a.record_query(1);
        }
        // Drive to a rebalance with neutral traffic.
        for _ in 0..80 {
            a.record_append(0).expect("append");
            a.record_append(1).expect("append");
        }
        let queried = a.capacity_of(1).expect("queried");
        let quiet = a.capacity_of(0).expect("quiet");
        assert!(
            queried > quiet,
            "query heat must count: queried={queried} quiet={quiet}"
        );
        assert_partition(&a);
    }

    #[test]
    fn rebalance_plans_are_ordered_and_exact() {
        let mut a = Arbiter::new(config()).expect("arbiter");
        for id in [5u32, 1, 3] {
            a.record_append(id).expect("append");
        }
        let mut plan = None;
        for _ in 0..70 {
            if let Some(p) = a.record_append(5).expect("append") {
                plan = Some(p);
                break;
            }
        }
        let plan = plan.expect("plan");
        assert!(plan.heats.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(plan
            .assignments
            .windows(2)
            .all(|w| w[0].series < w[1].series));
        let caps: u64 = a.capacities().iter().map(|c| c.capacity).sum();
        assert_eq!(caps + plan.cache_share, a.config().budget_points);
        assert_eq!(plan.cache_share, a.cache_share());
    }

    #[test]
    fn forced_rebalance_restores_floors_when_the_share_drains() {
        // Budget 64, floor 8: the cache share covers 8 series at
        // registration, and more than that cannot be hosted at all —
        // instead drain the share via a tiny cache target.
        let mut a = Arbiter::new(
            ArbiterConfig::new(64)
                .with_floor(8)
                .with_cache_percent(0)
                .with_rebalance_every(1_000_000),
        )
        .expect("arbiter");
        for id in 0..7u32 {
            assert!(a.record_append(id).expect("append").is_none());
        }
        // 7 series * 8 = 56 assigned, share = 8. One heavy rebalance-free
        // admit drains it; the eighth admit must force a plan.
        let plan = a.record_append(7).expect("append");
        assert!(plan.is_none(), "share exactly covers the eighth floor");
        assert_partition(&a);
        assert_eq!(a.cache_share(), 0);
    }

    proptest::proptest! {
        #![proptest_config(
            proptest::prelude::ProptestConfig::with_cases(64)
        )]

        /// The partition invariant holds after every single operation,
        /// for any interleaving of appends and queries.
        #[test]
        fn budget_is_conserved_exactly(
            ops in proptest::collection::vec(
                (0u32..6, proptest::prelude::any::<bool>()),
                1..400,
            ),
            cache_pct in 0u64..=60,
            every in 1u64..96,
        ) {
            let mut a = Arbiter::new(
                ArbiterConfig::new(2048)
                    .with_floor(8)
                    .with_cache_percent(cache_pct)
                    .with_rebalance_every(every),
            )
            .expect("arbiter");
            for &(series, is_query) in &ops {
                if is_query {
                    a.record_query(series);
                } else {
                    a.record_append(series).expect("budget fits 6 floors");
                }
                let caps = a.capacities();
                let total: u64 = caps.iter().map(|c| c.capacity).sum::<u64>()
                    + a.cache_share();
                proptest::prop_assert_eq!(total, 2048);
                for c in &caps {
                    proptest::prop_assert!(c.capacity >= 8);
                }
            }
        }

        /// The arbiter is a pure function of its op sequence: two
        /// identical runs produce identical capacities, shares and stats.
        #[test]
        fn arbitration_is_deterministic(
            ops in proptest::collection::vec(
                (0u32..5, proptest::prelude::any::<bool>()),
                1..300,
            ),
        ) {
            let run = || {
                let mut a = Arbiter::new(config()).expect("arbiter");
                let mut plans = Vec::new();
                for &(series, is_query) in &ops {
                    if is_query {
                        a.record_query(series);
                    } else if let Some(p) =
                        a.record_append(series).expect("fits")
                    {
                        plans.push(p);
                    }
                }
                (a.capacities(), a.cache_share(), a.stats(), plans)
            };
            let first = run();
            let second = run();
            proptest::prop_assert_eq!(first, second);
        }
    }
}
