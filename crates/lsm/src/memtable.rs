//! MemTables: bounded in-memory buffers sorted by generation time.
//!
//! Under `π_c` the engine holds one MemTable (`C0`); under `π_s` it holds two
//! (`C_seq` for in-order points, `C_nonseq` for out-of-order points). Capacity
//! is expressed in *points*, matching the paper's "number of tuples that can
//! be buffered in memory is a constant".

use std::collections::BTreeMap;

use seplsm_types::{DataPoint, TimeRange, Timestamp};

/// A capacity-bounded buffer of points, ordered by generation time.
///
/// Generation timestamps identify points, so inserting a duplicate timestamp
/// *upserts* (last write wins) without consuming extra capacity.
#[derive(Debug, Clone)]
pub struct MemTable {
    /// gen_time → (arrival_time, value).
    entries: BTreeMap<Timestamp, (Timestamp, f64)>,
    capacity: usize,
}

impl MemTable {
    /// Creates an empty MemTable holding at most `capacity` points
    /// (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        debug_assert!(capacity >= 1, "MemTable capacity must be >= 1");
        // Policy validation rejects zero capacities upstream; clamp rather
        // than panic for release-mode callers that bypass it.
        Self {
            entries: BTreeMap::new(),
            capacity: capacity.max(1),
        }
    }

    /// Maximum number of points this table holds before it must be flushed.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of buffered points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no points are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when the table has reached capacity and must be flushed.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Buffers a point. Returns `true` if a point with the same generation
    /// time was overwritten.
    pub fn insert(&mut self, p: DataPoint) -> bool {
        self.entries
            .insert(p.gen_time, (p.arrival_time, p.value))
            .is_some()
    }

    /// Earliest buffered generation time.
    pub fn min_gen_time(&self) -> Option<Timestamp> {
        self.entries.keys().next().copied()
    }

    /// Latest buffered generation time.
    pub fn max_gen_time(&self) -> Option<Timestamp> {
        self.entries.keys().next_back().copied()
    }

    /// Generation-time range covered by the buffer, if non-empty.
    pub fn range(&self) -> Option<TimeRange> {
        Some(TimeRange::new(self.min_gen_time()?, self.max_gen_time()?))
    }

    /// Points whose generation time falls in `range`, in sorted order.
    pub fn scan(&self, range: TimeRange) -> Vec<DataPoint> {
        self.entries
            .range(range.start..=range.end)
            .map(|(&tg, &(ta, v))| DataPoint::new(tg, ta, v))
            .collect()
    }

    /// All buffered points in generation-time order, leaving the table empty.
    pub fn drain_sorted(&mut self) -> Vec<DataPoint> {
        let entries = std::mem::take(&mut self.entries);
        entries
            .into_iter()
            .map(|(tg, (ta, v))| DataPoint::new(tg, ta, v))
            .collect()
    }

    /// All buffered points in generation-time order, without draining.
    pub fn snapshot_sorted(&self) -> Vec<DataPoint> {
        self.entries
            .iter()
            .map(|(&tg, &(ta, v))| DataPoint::new(tg, ta, v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_up_and_reports_full() {
        let mut m = MemTable::new(3);
        assert!(!m.is_full());
        for i in 0..3 {
            m.insert(DataPoint::new(i, i, 0.0));
        }
        assert!(m.is_full());
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn drain_returns_points_sorted_by_gen_time() {
        let mut m = MemTable::new(10);
        for &tg in &[50i64, 10, 30, 20, 40] {
            m.insert(DataPoint::new(tg, tg + 5, tg as f64));
        }
        let drained = m.drain_sorted();
        assert!(m.is_empty());
        let tgs: Vec<i64> = drained.iter().map(|p| p.gen_time).collect();
        assert_eq!(tgs, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn duplicate_gen_time_upserts() {
        let mut m = MemTable::new(2);
        assert!(!m.insert(DataPoint::new(10, 11, 1.0)));
        assert!(m.insert(DataPoint::new(10, 15, 2.0)));
        assert_eq!(m.len(), 1);
        let p = m.snapshot_sorted()[0];
        assert_eq!((p.arrival_time, p.value), (15, 2.0));
    }

    #[test]
    fn min_max_and_range_track_contents() {
        let mut m = MemTable::new(10);
        assert_eq!(m.range(), None);
        m.insert(DataPoint::new(30, 31, 0.0));
        m.insert(DataPoint::new(10, 12, 0.0));
        assert_eq!(m.min_gen_time(), Some(10));
        assert_eq!(m.max_gen_time(), Some(30));
        assert_eq!(m.range(), Some(TimeRange::new(10, 30)));
    }

    #[test]
    fn scan_respects_closed_range() {
        let mut m = MemTable::new(10);
        for tg in [10i64, 20, 30, 40] {
            m.insert(DataPoint::new(tg, tg, 0.0));
        }
        let hits = m.scan(TimeRange::new(20, 30));
        assert_eq!(
            hits.iter().map(|p| p.gen_time).collect::<Vec<_>>(),
            vec![20, 30]
        );
    }

    #[test]
    fn snapshot_does_not_drain() {
        let mut m = MemTable::new(10);
        m.insert(DataPoint::new(1, 1, 0.0));
        assert_eq!(m.snapshot_sorted().len(), 1);
        assert_eq!(m.len(), 1);
    }
}
