//! The decoded-block cache: a sharded, capacity-bounded CLOCK map from
//! `(table, block)` to decoded points.
//!
//! Queries and merge-compactions both re-read SSTables through the
//! [`TableStore`](crate::TableStore) trait; without a cache every visit
//! re-reads and re-decodes the same bytes. [`BlockCache`] keeps recently
//! decoded blocks (and parsed [`TableIndex`]es) in memory so a repeated
//! range query or a compaction over a hot table decodes each block once.
//! The cache itself is pure bookkeeping — the
//! [`CachedStore`](crate::store::CachedStore) wrapper does the I/O and
//! event emission.
//!
//! Design constraints (this is a seplint kernel module):
//!
//! * **Deterministic** (rule R3): eviction uses CLOCK — a reference bit per
//!   entry and a sweeping hand per shard. The "recency" signal is the
//!   purely logical tick of the hand over the ring; no wall clock or
//!   thread primitive appears anywhere in this module, so seeded runs
//!   behave identically.
//! * **Bounded**: capacity is counted in *decoded points* (the dominant
//!   memory cost), split evenly across shards. An entry larger than a
//!   whole shard is admitted alone rather than thrashing forever.
//! * **Strictly invalidated**: [`BlockCache::invalidate_table`] removes a
//!   table's index and every cached block. The store wrapper calls it
//!   before forwarding `delete`/`quarantine`, so a table consumed by a
//!   compaction can never serve a later query from the cache.
//!
//! Sharding is by table id, so one table's blocks colocate and
//! invalidation locks exactly one shard. In the fleet setting different
//! series flush to different tables, which spreads load across shards.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use seplsm_types::DataPoint;

use crate::sstable::format::TableIndex;
use crate::sstable::SsTableId;

/// Capacity and layout of a [`BlockCache`].
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Total decoded points the cache may hold across all shards.
    pub capacity_points: usize,
    /// Number of independent shards (clamped to ≥ 1).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity_points: 64 * 1024,
            shards: 8,
        }
    }
}

/// Per-level retention priority of a cached block: a generalised CLOCK
/// where each entry starts with a number of *lives*, and a sweep pass
/// over an unreferenced entry burns one life before the next pass may
/// evict it.
///
/// Short-lived L0 tables are consumed by the very next merge-compaction,
/// so their blocks should never displace blocks of long-lived run
/// tables; the fleet flush path marks freshly flushed L0 tables
/// [`ShortLived`](CachePriority::ShortLived) via
/// [`BlockCache::mark_short_lived`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePriority {
    /// One life: evicted on the first sweep pass that finds the entry
    /// unreferenced. Used for L0 blocks about to be compacted away.
    ShortLived,
    /// Two lives: survives one full unreferenced sweep pass before
    /// becoming evictable. The default for run (L1) tables.
    #[default]
    Durable,
}

impl CachePriority {
    /// Sweep passes an unreferenced entry survives before eviction.
    fn lives(self) -> u8 {
        match self {
            CachePriority::ShortLived => 1,
            CachePriority::Durable => 2,
        }
    }
}

/// The key of one cached decoded block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockKey {
    /// The table the block belongs to.
    pub table: SsTableId,
    /// The block's index within the table (0 for a v1 table).
    pub block: u32,
}

/// One block evicted by an insertion, reported so the caller can emit a
/// `CacheEvict` event per block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedBlock {
    /// The evicted block's key.
    pub key: BlockKey,
    /// Decoded points the eviction released.
    pub points: u64,
}

/// A counters snapshot of a [`BlockCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Blocks evicted to stay within capacity.
    pub evictions: u64,
    /// Blocks removed by table invalidation.
    pub invalidated_blocks: u64,
    /// Decoded points currently resident.
    pub resident_points: u64,
    /// Blocks currently resident.
    pub resident_blocks: u64,
}

impl CacheStats {
    /// Hit rate over `[0, 1]` (0 before the first lookup).
    pub fn hit_rate(&self) -> f64 {
        crate::metrics::hit_rate(self.hits, self.misses)
    }
}

/// One resident block.
struct Entry {
    points: Arc<Vec<DataPoint>>,
    /// The CLOCK reference bit: set on every hit, cleared by a passing
    /// sweep hand; an unreferenced entry the hand reaches loses a life.
    referenced: bool,
    /// Remaining sweep passes before an unreferenced entry is evicted
    /// (seeded from [`CachePriority::lives`]).
    lives: u8,
}

/// One independent cache shard: entries plus the CLOCK ring and hand.
#[derive(Default)]
struct Shard {
    entries: HashMap<BlockKey, Entry>,
    /// Keys in sweep order. Removal is `swap_remove` (CLOCK is an
    /// approximation; O(1) maintenance beats exact ordering here), and
    /// invalidated keys are dropped lazily when the hand reaches them.
    ring: Vec<BlockKey>,
    /// The CLOCK hand: the next ring slot the sweep examines. This is the
    /// module's only notion of time — a logical tick per examined slot.
    hand: usize,
    /// Decoded points resident in this shard.
    points: usize,
}

impl Shard {
    /// Sweeps the CLOCK hand until the shard fits `capacity`, never
    /// evicting `keep` (the entry just inserted). An oversized entry is
    /// admitted alone: once `keep` is the only resident block the sweep
    /// stops even above capacity.
    fn evict_to_fit(
        &mut self,
        capacity: usize,
        keep: BlockKey,
    ) -> Vec<EvictedBlock> {
        let mut evicted = Vec::new();
        while self.points > capacity && self.entries.len() > 1 {
            if self.ring.is_empty() {
                break;
            }
            if self.hand >= self.ring.len() {
                self.hand = 0;
            }
            let Some(&key) = self.ring.get(self.hand) else {
                break;
            };
            if key == keep {
                self.hand += 1;
                continue;
            }
            match self.entries.get_mut(&key) {
                None => {
                    // Stale ring slot left by an invalidation.
                    self.ring.swap_remove(self.hand);
                }
                Some(entry) if entry.referenced => {
                    entry.referenced = false;
                    self.hand += 1;
                }
                Some(entry) if entry.lives > 1 => {
                    // A durable entry burns a life per unreferenced pass
                    // instead of evicting, so short-lived L0 blocks go
                    // first.
                    entry.lives -= 1;
                    self.hand += 1;
                }
                Some(_) => {
                    if let Some(entry) = self.entries.remove(&key) {
                        let n = entry.points.len();
                        self.points = self.points.saturating_sub(n);
                        evicted.push(EvictedBlock {
                            key,
                            points: n as u64,
                        });
                    }
                    self.ring.swap_remove(self.hand);
                }
            }
        }
        evicted
    }
}

/// The sharded decoded-block cache. See the module docs for the design;
/// shared as an `Arc` between engines (a fleet shares one cache through
/// its shared store).
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard point budget (`capacity_points / shards`, at least 1).
    shard_capacity: usize,
    /// Parsed table indexes, keyed by table. Bounded by the number of
    /// live tables: invalidation removes a table's index with its blocks.
    indexes: Mutex<HashMap<SsTableId, Arc<TableIndex>>>,
    /// Tables whose blocks enter with
    /// [`CachePriority::ShortLived`] (freshly flushed L0 tables awaiting
    /// compaction). Bounded like `indexes`: invalidation clears the mark
    /// when the table leaves the store.
    short_lived: Mutex<HashSet<SsTableId>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidated: AtomicU64,
}

impl BlockCache {
    /// A cache laid out per `config`.
    pub fn new(config: CacheConfig) -> Arc<Self> {
        let shards = config.shards.max(1);
        let shard_capacity = (config.capacity_points / shards).max(1);
        Arc::new(Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity,
            indexes: Mutex::new(HashMap::new()),
            short_lived: Mutex::new(HashSet::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        })
    }

    /// A cache holding up to `points` decoded points with the default
    /// shard count.
    pub fn with_capacity(points: usize) -> Arc<Self> {
        Self::new(CacheConfig {
            capacity_points: points,
            ..CacheConfig::default()
        })
    }

    /// The shard responsible for `table` (all of a table's blocks live in
    /// one shard, so invalidation locks exactly one).
    fn shard_for(&self, table: SsTableId) -> &Mutex<Shard> {
        let mixed = table.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let i = (mixed % self.shards.len() as u64) as usize;
        // The modulo keeps `i` in range; fall back to the first shard to
        // stay panic-free regardless.
        self.shards.get(i).unwrap_or(&self.shards[0])
    }

    /// Looks `key` up, setting its reference bit on a hit. Counts the
    /// lookup either way.
    pub fn lookup(&self, key: BlockKey) -> Option<Arc<Vec<DataPoint>>> {
        let mut shard = self.shard_for(key.table).lock();
        match shard.entries.get_mut(&key) {
            Some(entry) => {
                entry.referenced = true;
                let points = Arc::clone(&entry.points);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(points)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Marks `table` short-lived: until
    /// [`invalidate_table`](Self::invalidate_table) clears the mark, its
    /// blocks are cached with [`CachePriority::ShortLived`]. The tiered
    /// flush path marks every freshly written L0 table this way.
    pub fn mark_short_lived(&self, table: SsTableId) {
        self.short_lived.lock().insert(table);
    }

    /// The priority `table`'s blocks are admitted with.
    pub fn priority_of(&self, table: SsTableId) -> CachePriority {
        if self.short_lived.lock().contains(&table) {
            CachePriority::ShortLived
        } else {
            CachePriority::Durable
        }
    }

    /// Inserts a freshly decoded block, evicting as needed to stay within
    /// the shard's capacity. Returns the evicted blocks so the caller can
    /// report them. Re-inserting an existing key refreshes its contents.
    /// The block's priority follows the table's
    /// [`mark_short_lived`](Self::mark_short_lived) state.
    pub fn insert(
        &self,
        key: BlockKey,
        points: Arc<Vec<DataPoint>>,
    ) -> Vec<EvictedBlock> {
        let priority = self.priority_of(key.table);
        self.insert_with_priority(key, points, priority)
    }

    /// [`insert`](Self::insert) with an explicit [`CachePriority`].
    pub fn insert_with_priority(
        &self,
        key: BlockKey,
        points: Arc<Vec<DataPoint>>,
        priority: CachePriority,
    ) -> Vec<EvictedBlock> {
        let n = points.len();
        let mut shard = self.shard_for(key.table).lock();
        match shard.entries.insert(
            key,
            Entry {
                points,
                referenced: true,
                lives: priority.lives(),
            },
        ) {
            Some(old) => {
                shard.points = shard.points.saturating_sub(old.points.len());
            }
            None => shard.ring.push(key),
        }
        shard.points += n;
        let evicted = shard.evict_to_fit(self.shard_capacity, key);
        drop(shard);
        self.evictions
            .fetch_add(evicted.len() as u64, Ordering::Relaxed);
        evicted
    }

    /// The cached parsed index of `table`, if any.
    pub fn lookup_index(&self, table: SsTableId) -> Option<Arc<TableIndex>> {
        self.indexes.lock().get(&table).map(Arc::clone)
    }

    /// Caches the parsed index of `table`.
    pub fn insert_index(&self, table: SsTableId, index: Arc<TableIndex>) {
        self.indexes.lock().insert(table, index);
    }

    /// Removes `table`'s index and every cached block — the strict
    /// invalidation rule: called before a table leaves the store (deleted
    /// by a compaction or quarantined), so its blocks can never serve a
    /// later read. Returns how many blocks were dropped.
    pub fn invalidate_table(&self, table: SsTableId) -> u64 {
        self.indexes.lock().remove(&table);
        self.short_lived.lock().remove(&table);
        let mut shard = self.shard_for(table).lock();
        let victims: Vec<BlockKey> = shard
            .entries
            .keys()
            .filter(|k| k.table == table)
            .copied()
            .collect();
        let mut dropped = 0u64;
        for key in victims {
            if let Some(entry) = shard.entries.remove(&key) {
                shard.points = shard.points.saturating_sub(entry.points.len());
                dropped += 1;
            }
        }
        // Stale ring slots are swept lazily by `evict_to_fit`.
        drop(shard);
        self.invalidated.fetch_add(dropped, Ordering::Relaxed);
        dropped
    }

    /// Decoded points currently resident across all shards.
    pub fn resident_points(&self) -> usize {
        self.shards.iter().map(|s| s.lock().points).sum()
    }

    /// Counters snapshot.
    pub fn stats(&self) -> CacheStats {
        let mut resident_points = 0u64;
        let mut resident_blocks = 0u64;
        for shard in &self.shards {
            let s = shard.lock();
            resident_points += s.points as u64;
            resident_blocks += s.entries.len() as u64;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidated_blocks: self.invalidated.load(Ordering::Relaxed),
            resident_points,
            resident_blocks,
        }
    }
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("shards", &self.shards.len())
            .field("shard_capacity", &self.shard_capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: usize, base: i64) -> Arc<Vec<DataPoint>> {
        Arc::new(
            (0..n)
                .map(|i| DataPoint::new(base + i as i64, base + i as i64, 0.0))
                .collect(),
        )
    }

    fn key(table: u64, block: u32) -> BlockKey {
        BlockKey {
            table: SsTableId(table),
            block,
        }
    }

    #[test]
    fn lookup_miss_then_hit_counts_both() {
        let cache = BlockCache::with_capacity(1024);
        assert!(cache.lookup(key(1, 0)).is_none());
        cache.insert(key(1, 0), block(8, 0));
        let got = cache.lookup(key(1, 0)).expect("hit");
        assert_eq!(got.len(), 8);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.resident_blocks, 1);
        assert_eq!(stats.resident_points, 8);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_is_enforced_by_eviction() {
        // One shard, 100 points: the fourth 30-point block must evict.
        let cache = BlockCache::new(CacheConfig {
            capacity_points: 100,
            shards: 1,
        });
        for b in 0..4u32 {
            cache.insert(key(7, b), block(30, i64::from(b) * 100));
        }
        let stats = cache.stats();
        assert!(
            stats.resident_points <= 100,
            "resident {} exceeds capacity",
            stats.resident_points
        );
        assert!(stats.evictions >= 1);
        assert!(cache.resident_points() <= 100);
    }

    #[test]
    fn clock_prefers_evicting_unreferenced_blocks() {
        let cache = BlockCache::new(CacheConfig {
            capacity_points: 90,
            shards: 1,
        });
        cache.insert(key(1, 0), block(30, 0));
        cache.insert(key(1, 1), block(30, 100));
        cache.insert(key(1, 2), block(30, 200));
        // Touch blocks 1 and 2; block 0's ref bit stays cleared after one
        // full sweep, so the next insertion evicts block 0 first.
        cache.lookup(key(1, 1));
        cache.lookup(key(1, 2));
        // Force a sweep that clears all bits, then re-reference 1 and 2.
        let evicted = cache.insert(key(1, 3), block(30, 300));
        assert!(!evicted.is_empty());
        cache.lookup(key(1, 1));
        cache.lookup(key(1, 2));
        assert!(
            cache.lookup(key(1, 1)).is_some()
                || cache.lookup(key(1, 2)).is_some(),
            "recently referenced blocks should tend to survive"
        );
    }

    #[test]
    fn oversized_block_is_admitted_alone() {
        let cache = BlockCache::new(CacheConfig {
            capacity_points: 10,
            shards: 1,
        });
        cache.insert(key(1, 0), block(4, 0));
        let evicted = cache.insert(key(1, 1), block(50, 100));
        // Everything else was evicted, but the oversized block is resident.
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].key, key(1, 0));
        assert!(cache.lookup(key(1, 1)).is_some());
        assert_eq!(cache.stats().resident_blocks, 1);
    }

    #[test]
    fn short_lived_blocks_evict_before_durable_ones() {
        // One shard, 60 points. Table 2 is a freshly flushed L0 table:
        // its block carries one life, the durable block carries two, so
        // under equal recency the L0 block goes first.
        let cache = BlockCache::new(CacheConfig {
            capacity_points: 60,
            shards: 1,
        });
        cache.mark_short_lived(SsTableId(2));
        assert_eq!(cache.priority_of(SsTableId(2)), CachePriority::ShortLived);
        assert_eq!(cache.priority_of(SsTableId(1)), CachePriority::Durable);
        cache.insert(key(1, 0), block(30, 0));
        cache.insert(key(2, 0), block(30, 100));
        let evicted = cache.insert(key(1, 1), block(30, 200));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].key, key(2, 0), "L0 block must go first");
        assert!(cache.lookup(key(1, 0)).is_some());
        // Invalidation clears the mark: re-used table ids start durable.
        cache.invalidate_table(SsTableId(2));
        assert_eq!(cache.priority_of(SsTableId(2)), CachePriority::Durable);
    }

    #[test]
    fn explicit_priority_overrides_the_table_mark() {
        let cache = BlockCache::new(CacheConfig {
            capacity_points: 60,
            shards: 1,
        });
        cache.insert_with_priority(
            key(1, 0),
            block(30, 0),
            CachePriority::ShortLived,
        );
        cache.insert_with_priority(
            key(2, 0),
            block(30, 100),
            CachePriority::Durable,
        );
        let evicted = cache.insert(key(2, 1), block(30, 200));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].key, key(1, 0));
    }

    #[test]
    fn invalidate_table_removes_blocks_and_index() {
        let cache = BlockCache::with_capacity(1024);
        cache.insert(key(3, 0), block(8, 0));
        cache.insert(key(3, 1), block(8, 100));
        cache.insert(key(4, 0), block(8, 200));
        let dropped = cache.invalidate_table(SsTableId(3));
        assert_eq!(dropped, 2);
        assert!(cache.lookup(key(3, 0)).is_none());
        assert!(cache.lookup(key(3, 1)).is_none());
        assert!(cache.lookup(key(4, 0)).is_some());
        assert_eq!(cache.stats().invalidated_blocks, 2);
        // Idempotent.
        assert_eq!(cache.invalidate_table(SsTableId(3)), 0);
    }

    #[test]
    fn index_cache_round_trips_and_invalidates() {
        use crate::sstable::format::{
            encode_with, read_table_index, EncodeOptions,
        };
        let pts: Vec<DataPoint> =
            (0..64).map(|i| DataPoint::new(i, i, 0.0)).collect();
        let bytes =
            encode_with(&pts, &EncodeOptions::compressed()).expect("encode");
        let index = Arc::new(read_table_index(&bytes).expect("index"));
        let cache = BlockCache::with_capacity(1024);
        assert!(cache.lookup_index(SsTableId(9)).is_none());
        cache.insert_index(SsTableId(9), Arc::clone(&index));
        assert_eq!(cache.lookup_index(SsTableId(9)), Some(index));
        cache.invalidate_table(SsTableId(9));
        assert!(cache.lookup_index(SsTableId(9)).is_none());
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let cache = BlockCache::new(CacheConfig {
            capacity_points: 100,
            shards: 1,
        });
        cache.insert(key(1, 0), block(40, 0));
        cache.insert(key(1, 0), block(20, 0));
        assert_eq!(cache.stats().resident_points, 20);
        assert_eq!(cache.stats().resident_blocks, 1);
    }
}
