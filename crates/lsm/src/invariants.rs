//! Debug-build invariant checker for the storage kernel.
//!
//! Every [`VersionEdit`](crate::version::VersionEdit) application re-checks
//! the *structural* invariants ([`check_version`]), and every executed
//! [`CompactionPlan`](crate::compaction::CompactionPlan) additionally
//! cross-checks the version metadata against the actual store contents
//! ([`check_version_against_store`]). The engines own an
//! [`InvariantChecker`] that layers *temporal* invariants on top: the WA
//! counters of [`Metrics`] are monotone and agree with
//! [`metrics::write_amplification`](crate::metrics::write_amplification)
//! recomputed from first principles (the paper's §I-B definition behind
//! Eq. 2–3), and the `π_s` classification pivot (`LAST(R).t_g`,
//! Definition 3) never moves backwards.
//!
//! All checks compile to no-ops without `debug_assertions`, so release
//! builds (the benchmarked configuration) pay nothing while every test and
//! proptest run doubles as a model-checking pass. Violations surface as
//! [`Error::Corrupt`] rather than panics — the library crates are
//! panic-free by lint (`seplint` R1/R4).

use seplsm_types::{Error, Result, Timestamp};

use crate::metrics::{self, Metrics};
use crate::store::TableStore;
use crate::version::Version;

/// How many run-tail tables [`check_version_against_store`] fully decodes;
/// older run tables are checked by metadata only. Bounds the per-compaction
/// cost so the proptest suites stay fast.
const DECODED_TAIL_TABLES: usize = 8;

fn corrupt(what: impl Into<String>) -> Error {
    Error::Corrupt(what.into())
}

/// Structural invariants of a [`Version`]: the run is sorted and
/// non-overlapping, and every table (run and L0) has a well-formed,
/// non-empty metadata record. Called after every edit application.
///
/// # Errors
/// [`Error::Corrupt`] describing the first violation. No-op in release
/// builds.
pub fn check_version(version: &Version) -> Result<()> {
    if !cfg!(debug_assertions) {
        return Ok(());
    }
    check_version_always(version)
}

/// The ungated body of [`check_version`], shared with the recovery-time
/// audit ([`audit_version_against_store`]), which must run in release
/// builds too.
pub(crate) fn check_version_always(version: &Version) -> Result<()> {
    version.run().check_invariants()?;
    for meta in version.run().tables().iter().chain(version.l0()) {
        if meta.count == 0 {
            return Err(corrupt(format!("table {} is empty", meta.id)));
        }
        if meta.range.start > meta.range.end {
            return Err(corrupt(format!(
                "table {} has inverted range [{} .. {}]",
                meta.id, meta.range.start, meta.range.end
            )));
        }
        if meta.range.start == meta.range.end && meta.count > 1 {
            return Err(corrupt(format!(
                "table {} claims {} points in a single-instant range",
                meta.id, meta.count
            )));
        }
    }
    for batch in version.flushing() {
        if batch.is_empty() {
            return Err(corrupt("registered flushing batch is empty"));
        }
    }
    Ok(())
}

/// Cross-checks version metadata against the store: every L0 table and the
/// [`DECODED_TAIL_TABLES`] newest run tables are decoded and must agree
/// with their metadata (point count and range endpoints). The check is
/// deliberately bounded: compactions only ever touch the region around the
/// fresh points, and older run tables get re-validated the moment a merge
/// consumes them, so scanning the whole run here would be O(n²) across a
/// workload for no additional coverage. Called after every executed
/// compaction plan.
///
/// # Errors
/// [`Error::Corrupt`] on any disagreement. No-op in release builds.
pub fn check_version_against_store(
    version: &Version,
    store: &dyn TableStore,
) -> Result<()> {
    if !cfg!(debug_assertions) {
        return Ok(());
    }
    check_version(version)?;
    let run = version.run().tables();
    let decode_from = run.len().saturating_sub(DECODED_TAIL_TABLES);
    for meta in run[decode_from..].iter().chain(version.l0()) {
        probe_table(store, meta)?;
    }
    Ok(())
}

/// Decodes one table and checks it agrees with its metadata (point count
/// and range endpoints). Always on: this is the readability probe salvage
/// recovery uses to decide whether a table must be quarantined.
///
/// # Errors
/// [`Error::Corrupt`] (or the store's read error) on any disagreement.
pub fn probe_table(
    store: &dyn TableStore,
    meta: &crate::sstable::SsTableMeta,
) -> Result<()> {
    probe_v3_layout(store, meta)?;
    let points = store.get(meta.id)?;
    if points.len() as u64 != u64::from(meta.count) {
        return Err(corrupt(format!(
            "table {} stores {} points but metadata says {}",
            meta.id,
            points.len(),
            meta.count
        )));
    }
    let (Some(first), Some(last)) = (points.first(), points.last()) else {
        return Err(corrupt(format!("table {} decoded empty", meta.id)));
    };
    if first.gen_time != meta.range.start || last.gen_time != meta.range.end {
        return Err(corrupt(format!(
            "table {} spans [{} .. {}] but metadata says [{} .. {}]",
            meta.id,
            first.gen_time,
            last.gen_time,
            meta.range.start,
            meta.range.end
        )));
    }
    Ok(())
}

/// Checks a v3 table's self-describing layout before the full decode: a
/// file that *starts* as v3 (header magic + version) but whose tail is not
/// a valid footer is a torn write — the writer crashed after the data
/// region hit disk but before the footer did. Naming that precisely beats
/// the generic CRC error the full decode would raise. Stores without
/// byte-range reads (spans unsupported) skip straight to the full decode,
/// which still catches every torn layout, just with a coarser message.
fn probe_v3_layout(
    store: &dyn TableStore,
    meta: &crate::sstable::SsTableMeta,
) -> Result<()> {
    use crate::sstable::format::{
        parse_v3_footer, sniff_version, ByteSpan, V3_FOOTER, VERSION_PRUNED,
    };
    let Some(len) = store.table_len(meta.id)? else {
        return Ok(());
    };
    let head_len = len.min(6);
    let Some(head) = store.read_span(
        meta.id,
        ByteSpan {
            offset: 0,
            len: head_len,
        },
    )?
    else {
        return Ok(());
    };
    if sniff_version(&head) != Some(VERSION_PRUNED) {
        return Ok(());
    }
    let footer_len = V3_FOOTER as u64;
    if len < footer_len {
        return Err(corrupt(format!(
            "table {} is a torn v3 write: {len} bytes is too short \
             for a footer",
            meta.id
        )));
    }
    let tail = store
        .read_span(
            meta.id,
            ByteSpan {
                offset: len - footer_len,
                len: footer_len,
            },
        )?
        .ok_or_else(|| corrupt("store lost span support mid-probe"))?;
    parse_v3_footer(&tail).map_err(|e| {
        corrupt(format!("table {} is a torn v3 write: {e}", meta.id))
    })?;
    Ok(())
}

/// Recovery-time audit: the structural checks plus a complete decode of
/// *every* table (run and L0) against its metadata. Unlike the per-edit
/// checks this also runs in release builds — recovery is rare, so the
/// O(data) cost buys certainty that a recovered version serves only
/// readable, consistent tables.
///
/// # Errors
/// [`Error::Corrupt`] (or a store read error) on the first violation.
pub fn audit_version_against_store(
    version: &Version,
    store: &dyn TableStore,
) -> Result<()> {
    check_version_always(version)?;
    for meta in version.run().tables().iter().chain(version.l0()) {
        probe_table(store, meta)?;
    }
    Ok(())
}

/// Temporal invariants carried across observations: WA counters only grow
/// and stay self-consistent, and the classification pivot never regresses.
///
/// Owned by each engine (one per series); all methods are no-ops in
/// release builds.
#[derive(Debug, Clone, Default)]
pub struct InvariantChecker {
    last_user_points: u64,
    last_disk_points_written: u64,
    last_flushes: u64,
    last_compactions: u64,
    last_rewritten_points: u64,
    /// Last observed `LAST(R).t_g` over all stored tables (run + L0).
    last_pivot: Option<Timestamp>,
}

impl InvariantChecker {
    /// A checker with no history (fresh engine).
    pub fn new() -> Self {
        Self::default()
    }

    /// A checker whose pivot history starts from a recovered version, so
    /// the no-regression check holds across the recovery boundary too.
    pub fn seeded(version: &Version) -> Self {
        Self {
            last_pivot: version.last_stored_gen_time(),
            ..Self::default()
        }
    }

    /// Checks the full invariant set against the current engine state and
    /// records it as the new baseline.
    ///
    /// # Errors
    /// [`Error::Corrupt`] on the first violated invariant. No-op in
    /// release builds.
    pub fn observe(
        &mut self,
        version: &Version,
        metrics: &Metrics,
        store: &dyn TableStore,
    ) -> Result<()> {
        if !cfg!(debug_assertions) {
            return Ok(());
        }
        check_version_against_store(version, store)?;
        self.check_counters(metrics)?;
        self.check_pivot(version)?;
        Ok(())
    }

    /// Counter-only variant of [`InvariantChecker::observe`] for callers
    /// without store access.
    ///
    /// # Errors
    /// [`Error::Corrupt`] on the first violated invariant.
    pub fn observe_metrics(
        &mut self,
        version: &Version,
        metrics: &Metrics,
    ) -> Result<()> {
        if !cfg!(debug_assertions) {
            return Ok(());
        }
        check_version(version)?;
        self.check_counters(metrics)?;
        self.check_pivot(version)?;
        Ok(())
    }

    /// Re-baselines the counter history after a deliberate accounting
    /// correction (policy migration re-routes buffered points through the
    /// append path and then restores `user_points`; that roll-back is not
    /// a regression).
    pub fn rebaseline(&mut self, metrics: &Metrics) {
        self.last_user_points = metrics.user_points;
        self.last_disk_points_written = metrics.disk_points_written;
        self.last_flushes = metrics.flushes;
        self.last_compactions = metrics.compactions;
        self.last_rewritten_points = metrics.rewritten_points;
    }

    fn check_counters(&mut self, m: &Metrics) -> Result<()> {
        let monotone = [
            ("user_points", self.last_user_points, m.user_points),
            (
                "disk_points_written",
                self.last_disk_points_written,
                m.disk_points_written,
            ),
            ("flushes", self.last_flushes, m.flushes),
            ("compactions", self.last_compactions, m.compactions),
            (
                "rewritten_points",
                self.last_rewritten_points,
                m.rewritten_points,
            ),
        ];
        for (name, before, now) in monotone {
            if now < before {
                return Err(corrupt(format!(
                    "WA counter {name} regressed: {before} -> {now}"
                )));
            }
        }
        // The engine's WA must equal the §I-B ratio recomputed from the raw
        // counters — the single shared definition behind Eq. 2–3.
        let recomputed =
            metrics::write_amplification(m.disk_points_written, m.user_points);
        if m.write_amplification() != recomputed {
            return Err(corrupt(format!(
                "write amplification diverged from first principles: \
                 {} vs {recomputed}",
                m.write_amplification()
            )));
        }
        // Snapshots are a prefix of the counter history: monotone in both
        // coordinates and never ahead of the live counters.
        for w in m.wa_snapshots.windows(2) {
            if w[1].user_points < w[0].user_points
                || w[1].disk_points_written < w[0].disk_points_written
            {
                return Err(corrupt("WA snapshots are not monotone"));
            }
        }
        if let Some(last) = m.wa_snapshots.last() {
            if last.user_points > m.user_points
                || last.disk_points_written > m.disk_points_written
            {
                return Err(corrupt(
                    "WA snapshot is ahead of the live counters",
                ));
            }
        }
        self.last_user_points = m.user_points;
        self.last_disk_points_written = m.disk_points_written;
        self.last_flushes = m.flushes;
        self.last_compactions = m.compactions;
        self.last_rewritten_points = m.rewritten_points;
        Ok(())
    }

    fn check_pivot(&mut self, version: &Version) -> Result<()> {
        let pivot = version.last_stored_gen_time();
        if let (Some(before), Some(now)) = (self.last_pivot, pivot) {
            if now < before {
                return Err(corrupt(format!(
                    "classification pivot LAST(R).t_g regressed: \
                     {before} -> {now}"
                )));
            }
        }
        if pivot.is_some() {
            self.last_pivot = pivot;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use seplsm_types::{DataPoint, TimeRange};

    use super::*;
    use crate::level::Run;
    use crate::metrics::WaSnapshot;
    use crate::sstable::{SsTableId, SsTableMeta};
    use crate::store::MemStore;

    fn meta(id: u64, start: i64, end: i64, count: u32) -> SsTableMeta {
        SsTableMeta {
            id: SsTableId(id),
            range: TimeRange::new(start, end),
            count,
        }
    }

    #[test]
    fn overlapping_run_is_caught() {
        let run = Run::from_tables_unchecked(vec![
            meta(1, 0, 100, 5),
            meta(2, 100, 200, 5),
        ]);
        let v = Version::from_levels(run, Vec::new());
        let err = check_version(&v).expect_err("overlap must fire");
        assert!(err.to_string().contains("overlaps"), "{err}");
    }

    #[test]
    fn empty_and_inverted_table_metadata_is_caught() {
        let v = Version::from_levels(Run::new(), vec![meta(1, 0, 10, 0)]);
        assert!(check_version(&v).is_err(), "zero-count table");
        // TimeRange::new debug-asserts ordering, so build the corrupted
        // range literally — exactly what a bad manifest replay could yield.
        let inverted = SsTableMeta {
            id: SsTableId(2),
            range: TimeRange { start: 9, end: 3 },
            count: 4,
        };
        let v = Version::from_levels(
            Run::from_tables_unchecked(vec![inverted]),
            Vec::new(),
        );
        assert!(check_version(&v).is_err(), "inverted range");
        let v = Version::from_levels(
            Run::from_tables_unchecked(vec![meta(3, 5, 5, 2)]),
            Vec::new(),
        );
        assert!(check_version(&v).is_err(), "2 points in instant range");
    }

    #[test]
    fn store_disagreement_is_caught() {
        let store = MemStore::new();
        let points: Vec<DataPoint> = (0..4)
            .map(|i| DataPoint::new(i * 10, i * 10, 0.0))
            .collect();
        let (meta_ok, _) = store.put(&points).expect("put");

        // Consistent metadata passes.
        let v = Version::from_levels(
            Run::from_tables(vec![meta_ok]).expect("run"),
            Vec::new(),
        );
        check_version_against_store(&v, &store).expect("consistent");

        // Wrong point count.
        let mut skewed = meta_ok;
        skewed.count = 3;
        let v = Version::from_levels(
            Run::from_tables_unchecked(vec![skewed]),
            Vec::new(),
        );
        let err = check_version_against_store(&v, &store)
            .expect_err("count mismatch");
        assert!(err.to_string().contains("metadata says"), "{err}");

        // Wrong range endpoint (still containing the same instants, so the
        // structural checks pass and only the store check can catch it).
        let mut shifted = meta_ok;
        shifted.range = TimeRange::new(0, 40);
        let v = Version::from_levels(
            Run::from_tables_unchecked(vec![shifted]),
            Vec::new(),
        );
        assert!(
            check_version_against_store(&v, &store).is_err(),
            "range mismatch"
        );

        // Dangling table id.
        let v = Version::from_levels(
            Run::from_tables_unchecked(vec![meta(999, 0, 30, 4)]),
            Vec::new(),
        );
        assert!(
            check_version_against_store(&v, &store).is_err(),
            "missing table"
        );
    }

    #[test]
    fn l0_tables_are_always_decoded() {
        let store = MemStore::new();
        let points = vec![DataPoint::new(5, 6, 1.0)];
        let (mut l0_meta, _) = store.put(&points).expect("put");
        l0_meta.count = 7; // lie about the contents
        let v = Version::from_levels(Run::new(), vec![l0_meta]);
        assert!(check_version_against_store(&v, &store).is_err());
    }

    #[test]
    fn regressed_counters_are_caught() {
        let mut checker = InvariantChecker::new();
        let v = Version::new();
        let store = MemStore::new();
        let mut m = Metrics {
            user_points: 100,
            disk_points_written: 150,
            flushes: 3,
            ..Default::default()
        };
        checker.observe(&v, &m, &store).expect("baseline");
        m.disk_points_written = 120; // counters only grow
        let err = checker.observe(&v, &m, &store).expect_err("regression");
        assert!(err.to_string().contains("regressed"), "{err}");
    }

    #[test]
    fn skewed_wa_snapshots_are_caught() {
        let mut checker = InvariantChecker::new();
        let v = Version::new();
        let m = Metrics {
            user_points: 10,
            disk_points_written: 10,
            wa_snapshots: vec![WaSnapshot {
                user_points: 512, // ahead of the live counter
                disk_points_written: 5,
            }],
            ..Default::default()
        };
        let err = checker.observe_metrics(&v, &m).expect_err("skew");
        assert!(err.to_string().contains("snapshot"), "{err}");

        let mut checker = InvariantChecker::new();
        let m = Metrics {
            user_points: 1024,
            disk_points_written: 1024,
            wa_snapshots: vec![
                WaSnapshot {
                    user_points: 512,
                    disk_points_written: 600,
                },
                WaSnapshot {
                    user_points: 1024,
                    disk_points_written: 550, // went backwards
                },
            ],
            ..Default::default()
        };
        assert!(checker.observe_metrics(&v, &m).is_err());
    }

    #[test]
    fn regressed_pivot_is_caught() {
        let mut checker = InvariantChecker::new();
        let m = Metrics::default();
        let v = Version::from_levels(
            Run::from_tables(vec![meta(1, 0, 200, 10)]).expect("run"),
            Vec::new(),
        );
        checker.observe_metrics(&v, &m).expect("baseline");
        let v = Version::from_levels(
            Run::from_tables(vec![meta(1, 0, 150, 10)]).expect("run"),
            Vec::new(),
        );
        let err = checker.observe_metrics(&v, &m).expect_err("pivot");
        assert!(err.to_string().contains("pivot"), "{err}");
    }

    #[test]
    fn seeded_checker_spans_the_recovery_boundary() {
        let recovered = Version::from_levels(
            Run::from_tables(vec![meta(1, 0, 500, 10)]).expect("run"),
            Vec::new(),
        );
        let mut checker = InvariantChecker::seeded(&recovered);
        // An engine rebuilt with an older run tail must be flagged even
        // though this checker never observed the original version.
        let older = Version::from_levels(
            Run::from_tables(vec![meta(1, 0, 300, 10)]).expect("run"),
            Vec::new(),
        );
        assert!(checker
            .observe_metrics(&older, &Metrics::default())
            .is_err());
    }

    #[test]
    fn healthy_progression_passes() {
        let mut checker = InvariantChecker::new();
        let store = MemStore::new();
        let mut version = Version::new();
        let mut m = Metrics::default();
        let mut next_start = 0i64;
        for round in 1..=20u64 {
            let points: Vec<DataPoint> = (0..8)
                .map(|i| {
                    let tg = next_start + i;
                    DataPoint::new(tg, tg + 3, tg as f64)
                })
                .collect();
            next_start += 8;
            let (table, _) = store.put(&points).expect("put");
            version
                .apply(&[crate::version::VersionEdit::AppendRun(table)])
                .expect("apply");
            m.user_points += 8;
            m.disk_points_written += 8;
            m.flushes = round;
            checker.observe(&version, &m, &store).expect("healthy");
        }
    }
}
