//! The manifest: a durable log of run membership.
//!
//! Plain recovery ([`LsmEngine::recover`](crate::LsmEngine::recover)) rebuilds
//! the level-1 run by reading and describing every stored table — O(data).
//! The manifest makes recovery O(metadata): every table added to or removed
//! from the run is logged as a fixed-size checksummed record, and the log is
//! rewritten (compacted) after each merge so it stays proportional to the
//! live table count.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use seplsm_types::{Error, Result, TimeRange};

use crate::codec;
use crate::fault::{self, FaultPlan, IoOp, WriteCheck};
use crate::obs::{Event, ManifestRecordKind, ObserverHandle};
use crate::sstable::crc32::crc32;
use crate::sstable::{SsTableId, SsTableMeta};
use crate::store::sync_dir;

const TAG_ADD: u8 = 1;
const TAG_REMOVE: u8 = 2;
/// A table joining L0 (tiered engines); run-level recovery must use
/// [`Manifest::replay_levels`] to see these.
const TAG_ADD_L0: u8 = 3;
/// Record payload: tag(1) + id(8) + start(8) + end(8) + count(4).
const PAYLOAD: usize = 29;
/// Record: payload + crc32.
const RECORD: usize = PAYLOAD + 4;

fn encode_record(
    tag: u8,
    id: SsTableId,
    range: TimeRange,
    count: u32,
) -> [u8; RECORD] {
    let mut rec = [0u8; RECORD];
    rec[0] = tag;
    rec[1..9].copy_from_slice(&id.0.to_le_bytes());
    rec[9..17].copy_from_slice(&range.start.to_le_bytes());
    rec[17..25].copy_from_slice(&range.end.to_le_bytes());
    rec[25..29].copy_from_slice(&count.to_le_bytes());
    let crc = crc32(&rec[..PAYLOAD]);
    rec[PAYLOAD..].copy_from_slice(&crc.to_le_bytes());
    rec
}

/// Walks `data` as a sequence of fixed-size manifest records. Returns
/// `(good_len, tail_is_garbage)`: `good_len` is the byte length of the
/// contiguous CRC-valid prefix, and `tail_is_garbage` is true when no
/// CRC-valid record exists at any record-aligned offset past `good_len`.
fn scan(data: &[u8]) -> (usize, bool) {
    let record_ok = |rec: &[u8]| -> bool {
        let stored = u32::from_le_bytes([
            rec[PAYLOAD],
            rec[PAYLOAD + 1],
            rec[PAYLOAD + 2],
            rec[PAYLOAD + 3],
        ]);
        stored == crc32(&rec[..PAYLOAD])
    };
    let mut good_len = 0;
    while good_len + RECORD <= data.len() {
        if !record_ok(&data[good_len..good_len + RECORD]) {
            break;
        }
        good_len += RECORD;
    }
    let mut offset = good_len + RECORD;
    while offset + RECORD <= data.len() {
        if record_ok(&data[offset..offset + RECORD]) {
            return (good_len, false);
        }
        offset += RECORD;
    }
    (good_len, true)
}

/// An append-only, checksummed log of run-membership changes.
pub struct Manifest {
    writer: BufWriter<File>,
    path: PathBuf,
    faults: Option<Arc<FaultPlan>>,
    obs: ObserverHandle,
}

impl std::fmt::Debug for Manifest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Manifest")
            .field("path", &self.path)
            .finish()
    }
}

impl Manifest {
    /// Opens (creating if needed) the manifest at `path` for appending.
    ///
    /// Stale `manifest.tmp` debris from a crashed rewrite is swept, and a
    /// torn tail (garbage final stretch with nothing valid after it) is
    /// truncated back to the last good record boundary so appends never
    /// land after garbage. Mid-log corruption is left for replay to report.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let tmp = path.with_extension("manifest.tmp");
        match std::fs::remove_file(&tmp) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        Self::repair_tail(&path)?;
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self {
            writer: BufWriter::new(file),
            path,
            faults: None,
            obs: ObserverHandle::detached(),
        })
    }

    /// Truncates `path` to its last good record boundary when the tail is
    /// garbage-only; no-op for a missing, clean, or mid-log-corrupt file.
    fn repair_tail(path: &Path) -> Result<()> {
        let mut data = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e.into()),
        }
        let (good_len, tail_is_garbage) = scan(&data);
        if tail_is_garbage && good_len < data.len() {
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(good_len as u64)?;
            f.sync_all()?;
        }
        Ok(())
    }

    /// Attaches a fault plan: every subsequent append/sync/rewrite consults
    /// the plan first. Used by the crash-schedule harness.
    pub fn attach_faults(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    /// Attaches an observer: every logged record and rewrite emits an
    /// [`Event::ManifestRecord`].
    pub fn attach_observer(&mut self, obs: ObserverHandle) {
        self.obs = obs;
    }

    /// Path of the manifest file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append_record(&mut self, rec: &[u8]) -> Result<()> {
        match fault::hook_write(
            self.faults.as_ref(),
            IoOp::ManifestAppend,
            rec.len(),
        )? {
            WriteCheck::Proceed => {
                self.writer.write_all(rec)?;
                Ok(())
            }
            WriteCheck::Torn { keep } => {
                self.writer.write_all(&rec[..keep.min(rec.len())])?;
                self.writer.flush()?;
                let index = self
                    .faults
                    .as_ref()
                    .map_or(0, |p| p.ops().saturating_sub(1));
                Err(fault::injected_crash(IoOp::ManifestAppend, index))
            }
        }
    }

    /// Logs a table joining the run.
    pub fn log_add(&mut self, meta: &SsTableMeta) -> Result<()> {
        self.append_record(&encode_record(
            TAG_ADD, meta.id, meta.range, meta.count,
        ))?;
        self.obs.emit(|| Event::ManifestRecord {
            kind: ManifestRecordKind::Add,
        });
        Ok(())
    }

    /// Logs a table joining L0 (the tiered engine's overlapping level).
    pub fn log_add_l0(&mut self, meta: &SsTableMeta) -> Result<()> {
        self.append_record(&encode_record(
            TAG_ADD_L0, meta.id, meta.range, meta.count,
        ))?;
        self.obs.emit(|| Event::ManifestRecord {
            kind: ManifestRecordKind::AddL0,
        });
        Ok(())
    }

    /// Logs a table leaving the run.
    pub fn log_remove(&mut self, id: SsTableId) -> Result<()> {
        self.append_record(&encode_record(
            TAG_REMOVE,
            id,
            TimeRange::new(0, 0),
            0,
        ))?;
        self.obs.emit(|| Event::ManifestRecord {
            kind: ManifestRecordKind::Remove,
        });
        Ok(())
    }

    /// Flushes and fsyncs the log.
    pub fn sync(&mut self) -> Result<()> {
        fault::hook(self.faults.as_ref(), IoOp::ManifestSync)?;
        self.writer.flush()?;
        self.writer.get_ref().sync_all()?;
        Ok(())
    }

    /// Atomically rewrites the log as a flat list of the live run tables.
    pub fn rewrite(&mut self, live: &[SsTableMeta]) -> Result<()> {
        self.rewrite_levels(live, &[])
    }

    /// Atomically rewrites the log from both levels: the live run tables
    /// followed by the live L0 tables.
    pub fn rewrite_levels(
        &mut self,
        run: &[SsTableMeta],
        l0: &[SsTableMeta],
    ) -> Result<()> {
        let tmp = self.path.with_extension("manifest.tmp");
        let mut buf = Vec::with_capacity((run.len() + l0.len()) * RECORD);
        for meta in run {
            buf.extend_from_slice(&encode_record(
                TAG_ADD, meta.id, meta.range, meta.count,
            ));
        }
        for meta in l0 {
            buf.extend_from_slice(&encode_record(
                TAG_ADD_L0, meta.id, meta.range, meta.count,
            ));
        }
        {
            let mut f = File::create(&tmp)?;
            match fault::hook_write(
                self.faults.as_ref(),
                IoOp::ManifestRewrite,
                buf.len(),
            )? {
                WriteCheck::Proceed => f.write_all(&buf)?,
                WriteCheck::Torn { keep } => {
                    f.write_all(&buf[..keep.min(buf.len())])?;
                    f.sync_all()?;
                    // Tmp debris stays behind; swept on the next open.
                    let index = self
                        .faults
                        .as_ref()
                        .map_or(0, |p| p.ops().saturating_sub(1));
                    return Err(fault::injected_crash(
                        IoOp::ManifestRewrite,
                        index,
                    ));
                }
            }
            f.sync_all()?;
        }
        fault::hook(self.faults.as_ref(), IoOp::ManifestRename)?;
        std::fs::rename(&tmp, &self.path)?;
        if let Some(parent) =
            self.path.parent().filter(|p| !p.as_os_str().is_empty())
        {
            fault::hook(self.faults.as_ref(), IoOp::DirSync)?;
            sync_dir(parent)?;
        }
        let file = OpenOptions::new().append(true).open(&self.path)?;
        self.writer = BufWriter::new(file);
        self.obs.emit(|| Event::ManifestRecord {
            kind: ManifestRecordKind::Rewrite,
        });
        Ok(())
    }

    /// Replays a run-only manifest at `path`, returning the live table
    /// metadata in log order.
    ///
    /// A torn final record is dropped; mid-log corruption is reported.
    /// A missing file yields an empty set. A manifest containing L0 records
    /// (a tiered engine's) is rejected — use [`Manifest::replay_levels`].
    pub fn replay(path: impl AsRef<Path>) -> Result<Vec<SsTableMeta>> {
        let (run, l0) = Self::replay_levels(path)?;
        if !l0.is_empty() {
            return Err(Error::Corrupt(
                "manifest contains L0 records; replay with replay_levels"
                    .into(),
            ));
        }
        Ok(run)
    }

    /// Replays the manifest at `path`, returning the live `(run, l0)` table
    /// metadata, each in log order.
    ///
    /// A torn tail — a truncated or garbage final stretch with no valid
    /// record after it — is dropped; corruption in front of still-valid
    /// records is reported. A missing file yields empty sets.
    pub fn replay_levels(
        path: impl AsRef<Path>,
    ) -> Result<(Vec<SsTableMeta>, Vec<SsTableMeta>)> {
        let path = path.as_ref();
        let data = match Self::read_log(path)? {
            Some(data) => data,
            None => return Ok((Vec::new(), Vec::new())),
        };
        let (good_len, tail_is_garbage) = scan(&data);
        if !tail_is_garbage {
            return Err(Error::Corrupt(format!(
                "manifest record at offset {good_len} fails CRC \
                 with valid records after it"
            )));
        }
        Self::decode_prefix(&data, good_len)
    }

    /// Salvage replay: decodes the longest valid prefix plus the number of
    /// whole records dropped after it, never failing on CRC corruption
    /// (records with valid CRCs but malformed contents are still errors).
    /// Used by salvage-mode recovery, which reports the loss.
    pub fn replay_levels_salvage(
        path: impl AsRef<Path>,
    ) -> Result<(Vec<SsTableMeta>, Vec<SsTableMeta>, u64)> {
        let path = path.as_ref();
        let data = match Self::read_log(path)? {
            Some(data) => data,
            None => return Ok((Vec::new(), Vec::new(), 0)),
        };
        let (good_len, _) = scan(&data);
        let dropped = ((data.len() - good_len) / RECORD) as u64;
        let (run, l0) = Self::decode_prefix(&data, good_len)?;
        Ok((run, l0, dropped))
    }

    fn read_log(path: &Path) -> Result<Option<Vec<u8>>> {
        let mut data = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
                Ok(Some(data))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn decode_prefix(
        data: &[u8],
        good_len: usize,
    ) -> Result<(Vec<SsTableMeta>, Vec<SsTableMeta>)> {
        let mut run: Vec<SsTableMeta> = Vec::new();
        let mut l0: Vec<SsTableMeta> = Vec::new();
        let mut offset = 0;
        while offset + RECORD <= good_len {
            let rec = &data[offset..offset + RECORD];
            let id = SsTableId(codec::read_u64_le(rec, 1)?);
            match rec[0] {
                tag @ (TAG_ADD | TAG_ADD_L0) => {
                    let start = codec::read_i64_le(rec, 9)?;
                    let end = codec::read_i64_le(rec, 17)?;
                    let count = codec::read_u32_le(rec, 25)?;
                    if start > end {
                        return Err(Error::Corrupt(format!(
                            "manifest add for {id} has inverted range"
                        )));
                    }
                    let meta = SsTableMeta {
                        id,
                        range: TimeRange::new(start, end),
                        count,
                    };
                    if tag == TAG_ADD {
                        run.push(meta);
                    } else {
                        l0.push(meta);
                    }
                }
                TAG_REMOVE => {
                    run.retain(|m| m.id != id);
                    l0.retain(|m| m.id != id);
                }
                tag => {
                    return Err(Error::Corrupt(format!(
                        "manifest record at offset {offset} \
                         has unknown tag {tag}"
                    )))
                }
            }
            offset += RECORD;
        }
        Ok((run, l0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "seplsm-manifest-{tag}-{}-{:?}.manifest",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn meta(id: u64, start: i64, end: i64, count: u32) -> SsTableMeta {
        SsTableMeta {
            id: SsTableId(id),
            range: TimeRange::new(start, end),
            count,
        }
    }

    #[test]
    fn add_remove_replay() {
        let path = temp_path("basic");
        let _ = std::fs::remove_file(&path);
        {
            let mut m = Manifest::open(&path).expect("open");
            m.log_add(&meta(1, 0, 99, 10)).expect("add");
            m.log_add(&meta(2, 100, 199, 10)).expect("add");
            m.log_remove(SsTableId(1)).expect("remove");
            m.log_add(&meta(3, 0, 99, 12)).expect("add");
            m.sync().expect("sync");
        }
        let live = Manifest::replay(&path).expect("replay");
        let ids: Vec<u64> = live.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, vec![2, 3]);
        assert_eq!(live[1].count, 12);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn rewrite_compacts_history() {
        let path = temp_path("rewrite");
        let _ = std::fs::remove_file(&path);
        let mut m = Manifest::open(&path).expect("open");
        for i in 0..100 {
            m.log_add(&meta(i, i as i64 * 10, i as i64 * 10 + 9, 1))
                .expect("add");
            if i > 0 {
                m.log_remove(SsTableId(i - 1)).expect("remove");
            }
        }
        m.sync().expect("sync");
        let size_before = std::fs::metadata(&path).expect("stat").len();
        m.rewrite(&[meta(99, 990, 999, 1)]).expect("rewrite");
        let size_after = std::fs::metadata(&path).expect("stat").len();
        assert!(size_after < size_before / 10);
        let live = Manifest::replay(&path).expect("replay");
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].id.0, 99);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn l0_records_replay_into_their_own_level() {
        let path = temp_path("levels");
        let _ = std::fs::remove_file(&path);
        {
            let mut m = Manifest::open(&path).expect("open");
            m.log_add(&meta(1, 0, 99, 10)).expect("add run");
            m.log_add_l0(&meta(2, 50, 150, 8)).expect("add l0");
            m.log_add_l0(&meta(3, 60, 160, 8)).expect("add l0");
            m.log_remove(SsTableId(2)).expect("remove spans levels");
            m.sync().expect("sync");
        }
        let (run, l0) = Manifest::replay_levels(&path).expect("replay");
        assert_eq!(run.iter().map(|m| m.id.0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(l0.iter().map(|m| m.id.0).collect::<Vec<_>>(), vec![3]);
        // Run-only replay refuses a tiered manifest instead of losing L0.
        assert!(Manifest::replay(&path).is_err());
        // rewrite_levels compacts both levels in place.
        let mut m = Manifest::open(&path).expect("reopen");
        m.rewrite_levels(&run, &l0).expect("rewrite");
        let (run2, l02) = Manifest::replay_levels(&path).expect("replay");
        assert_eq!(run2, run);
        assert_eq!(l02, l0);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn missing_manifest_is_empty() {
        let path = temp_path("missing");
        let _ = std::fs::remove_file(&path);
        assert!(Manifest::replay(&path).expect("replay").is_empty());
    }

    #[test]
    fn append_after_torn_tail_truncates_then_stays_readable() {
        let path = temp_path("torn-append");
        let _ = std::fs::remove_file(&path);
        {
            let mut m = Manifest::open(&path).expect("open");
            m.log_add(&meta(1, 0, 9, 1)).expect("add");
            m.log_add(&meta(2, 10, 19, 1)).expect("add");
            m.sync().expect("sync");
        }
        let data = std::fs::read(&path).expect("read");
        std::fs::write(&path, &data[..data.len() - 7]).expect("truncate");
        // Re-open for appending: before the torn-tail fix the next record
        // landed after the garbage, shifting every later record's framing.
        {
            let mut m = Manifest::open(&path).expect("re-open repairs tail");
            m.log_add(&meta(3, 20, 29, 1)).expect("add");
            m.sync().expect("sync");
        }
        let live = Manifest::replay(&path).expect("must stay readable");
        let ids: Vec<u64> = live.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, vec![1, 3], "torn record dropped, new one kept");
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn open_sweeps_stale_rewrite_tmp() {
        let path = temp_path("tmp-sweep");
        let _ = std::fs::remove_file(&path);
        let tmp = path.with_extension("manifest.tmp");
        std::fs::write(&tmp, b"half a rewrite").expect("stale tmp");
        let _m = Manifest::open(&path).expect("open");
        assert!(!tmp.exists(), "open must sweep rewrite debris");
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn salvage_replay_recovers_prefix_and_reports_loss() {
        let path = temp_path("salvage");
        let _ = std::fs::remove_file(&path);
        {
            let mut m = Manifest::open(&path).expect("open");
            for i in 0..4 {
                m.log_add(&meta(i, i as i64 * 10, i as i64 * 10 + 9, 1))
                    .expect("add");
            }
            m.sync().expect("sync");
        }
        let mut data = std::fs::read(&path).expect("read");
        data[RECORD + 3] ^= 0xff; // corrupt the second record
        std::fs::write(&path, &data).expect("rewrite");
        assert!(Manifest::replay(&path).is_err(), "strict replay refuses");
        let (run, l0, dropped) =
            Manifest::replay_levels_salvage(&path).expect("salvage");
        assert_eq!(run.len(), 1, "valid prefix recovered");
        assert!(l0.is_empty());
        assert_eq!(dropped, 3, "loss is reported, not hidden");
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn torn_tail_is_dropped_corruption_is_detected() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut m = Manifest::open(&path).expect("open");
            m.log_add(&meta(1, 0, 9, 1)).expect("add");
            m.log_add(&meta(2, 10, 19, 1)).expect("add");
            m.sync().expect("sync");
        }
        let data = std::fs::read(&path).expect("read");
        // Torn tail: drop 5 bytes.
        std::fs::write(&path, &data[..data.len() - 5]).expect("truncate");
        let live = Manifest::replay(&path).expect("tolerates torn tail");
        assert_eq!(live.len(), 1);
        // Mid-log corruption: flip a byte in record 0.
        let mut bad = data.clone();
        bad[3] ^= 0xff;
        std::fs::write(&path, &bad).expect("corrupt");
        assert!(Manifest::replay(&path).is_err());
        std::fs::remove_file(&path).expect("cleanup");
    }
}
