//! Engine instrumentation: write amplification, flush/compaction counters,
//! per-compaction subsequent-point counts, and windowed WA snapshots.
//!
//! WA is the paper's central quantity: *the amount of data actually written
//! to the disk divided by the amount required by the user* (§I-B). The
//! engine counts both sides in points; [`Metrics::write_amplification`]
//! is their ratio.

/// Write amplification as defined in §I-B: points physically written per
/// user point, `0.0` before the first append. The one shared definition
/// behind [`Metrics`], `TieredReport` and `MultiMetrics`.
pub fn write_amplification(disk_points_written: u64, user_points: u64) -> f64 {
    if user_points == 0 {
        return 0.0;
    }
    disk_points_written as f64 / user_points as f64
}

/// Cache hit rate `hits / (hits + misses)` over `[0, 1]`, `0.0` before the
/// first lookup. The one shared definition behind the decoded-block cache's
/// `CacheStats` and the observability `AggregateReport`.
pub fn hit_rate(hits: u64, misses: u64) -> f64 {
    let lookups = hits.saturating_add(misses);
    if lookups == 0 {
        return 0.0;
    }
    hits as f64 / lookups as f64
}

/// Cumulative counters maintained by the engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Points the user asked to write (`append` calls).
    pub user_points: u64,
    /// Points physically written into SSTables (flushes + rewrites).
    pub disk_points_written: u64,
    /// Encoded bytes written into SSTables.
    pub disk_bytes_written: u64,
    /// MemTable flushes that did not rewrite existing tables
    /// (`C_seq` flushes, or `C0` flushes with no overlap).
    pub flushes: u64,
    /// Merge compactions (buffer merged with overlapping SSTables).
    pub compactions: u64,
    /// Points re-written out of existing SSTables during compactions.
    pub rewritten_points: u64,
    /// SSTables created / deleted.
    pub tables_created: u64,
    /// SSTables deleted by compactions.
    pub tables_deleted: u64,
    /// Appends held between the slowdown and stop watermarks
    /// (admission `Delayed`).
    pub delayed_appends: u64,
    /// Write-stall episodes (stop watermark reached).
    pub write_stalls: u64,
    /// Logical ticks charged to admission delays and stall waits.
    pub stall_ticks: u64,
    /// Logical ticks compaction output writes waited on the I/O pacer.
    pub paced_ticks: u64,
    /// Store retries that backed off before reattempting.
    pub retry_backoffs: u64,
    /// Per-compaction count of *subsequent data points* on disk at the moment
    /// the compaction started (Definition 4) — the quantity the ζ-model
    /// estimates. Populated only when the engine is configured with
    /// `record_subsequent = true` (Fig. 5 probe).
    pub subsequent_counts: Vec<u64>,
    /// `(user_points, disk_points_written)` snapshots taken every
    /// `wa_snapshot_every` user points (Fig. 10's windowed WA series).
    pub wa_snapshots: Vec<WaSnapshot>,
}

/// One point of the windowed-WA time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaSnapshot {
    /// Cumulative user points at snapshot time.
    pub user_points: u64,
    /// Cumulative disk points written at snapshot time.
    pub disk_points_written: u64,
}

impl Metrics {
    /// Overall write amplification `disk writes / user writes`.
    ///
    /// Points still buffered in memory count in the denominator with zero
    /// writes, exactly as in the paper's measurement (each point's write
    /// counter starts at zero and increments per physical write).
    pub fn write_amplification(&self) -> f64 {
        write_amplification(self.disk_points_written, self.user_points)
    }

    /// Mean number of subsequent points per compaction (Fig. 5's y-axis).
    pub fn mean_subsequent(&self) -> Option<f64> {
        if self.subsequent_counts.is_empty() {
            return None;
        }
        Some(
            self.subsequent_counts.iter().sum::<u64>() as f64
                / self.subsequent_counts.len() as f64,
        )
    }

    /// Per-window WA: for consecutive snapshots, the ratio of disk writes to
    /// user writes *within the window*. This is the series the paper smooths
    /// with a sliding window in Fig. 10.
    pub fn windowed_wa(&self) -> Vec<f64> {
        self.wa_snapshots
            .windows(2)
            .map(|w| {
                let du = w[1].user_points - w[0].user_points;
                let dd = w[1].disk_points_written - w[0].disk_points_written;
                if du == 0 {
                    0.0
                } else {
                    dd as f64 / du as f64
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wa_is_ratio_of_disk_to_user_points() {
        let m = Metrics {
            user_points: 1000,
            disk_points_written: 2500,
            ..Default::default()
        };
        assert!((m.write_amplification() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn wa_of_empty_engine_is_zero() {
        assert_eq!(Metrics::default().write_amplification(), 0.0);
    }

    #[test]
    fn shared_helper_handles_zero_user_points() {
        // The `user_points == 0` edge must not divide by zero, even with
        // disk writes on the books (e.g. recovery replays).
        assert_eq!(write_amplification(0, 0), 0.0);
        assert_eq!(write_amplification(1024, 0), 0.0);
        assert!((write_amplification(2500, 1000) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_handles_empty_and_partial_caches() {
        assert_eq!(hit_rate(0, 0), 0.0);
        assert_eq!(hit_rate(0, 10), 0.0);
        assert_eq!(hit_rate(10, 0), 1.0);
        assert!((hit_rate(3, 1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn mean_subsequent_averages_probes() {
        let mut m = Metrics::default();
        assert_eq!(m.mean_subsequent(), None);
        m.subsequent_counts = vec![10, 20, 30];
        assert_eq!(m.mean_subsequent(), Some(20.0));
    }

    #[test]
    fn windowed_wa_differences_snapshots() {
        let m = Metrics {
            wa_snapshots: vec![
                WaSnapshot {
                    user_points: 0,
                    disk_points_written: 0,
                },
                WaSnapshot {
                    user_points: 512,
                    disk_points_written: 512,
                },
                WaSnapshot {
                    user_points: 1024,
                    disk_points_written: 2048,
                },
            ],
            ..Default::default()
        };
        let wa = m.windowed_wa();
        assert_eq!(wa.len(), 2);
        assert!((wa[0] - 1.0).abs() < 1e-12);
        assert!((wa[1] - 3.0).abs() < 1e-12);
    }
}
