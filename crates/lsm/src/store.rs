//! Table stores: where encoded SSTables live.
//!
//! The engine talks to a [`TableStore`] trait so experiments can run against
//! a fast [`MemStore`] (model-validation sweeps over millions of points)
//! while durability-sensitive users get the on-disk [`FileStore`]. Both
//! stores move data through the real SSTable wire format — the in-memory
//! store is a storage substitution, not a code-path shortcut.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use seplsm_types::{DataPoint, Error, Result, TimeRange};

use crate::cache::{BlockCache, BlockKey};
use crate::fault::{self, FaultPlan, IoOp, WriteCheck};
use crate::obs::{Event, ObserverHandle};
use crate::sstable::format::{
    self, ByteSpan, EncodeOptions, RangeRead, TableIndex,
};
use crate::sstable::{SsTableId, SsTableMeta};

/// Fsyncs a directory so a preceding `rename` inside it survives a power
/// cut. `rename` makes a tmp-file promotion atomic, but the *directory
/// entry* update lives in the directory inode — until that is flushed the
/// rename itself can be lost. Call this after every tmp-write + rename
/// (seplint rule R6 enforces it in the durability modules).
pub fn sync_dir(dir: &Path) -> Result<()> {
    std::fs::File::open(dir)?.sync_all()?;
    Ok(())
}

/// Removes every `*.tmp` file directly under `dir` — debris from writes
/// crashed between tmp creation and the promoting rename. Missing dirs are
/// fine (nothing to sweep); used by [`FileStore::open`], `Wal::open` and
/// `Manifest::open`.
pub(crate) fn sweep_tmp_files(dir: &Path) -> Result<()> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let path = entry?.path();
        let is_tmp = path
            .extension()
            .and_then(|e| e.to_str())
            .is_some_and(|e| e == "tmp");
        if is_tmp && path.is_file() {
            match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
    }
    Ok(())
}

/// Backing storage for encoded SSTables.
///
/// Implementations assign monotonically increasing [`SsTableId`]s and must
/// persist the exact encoded bytes; readers re-validate checksums on `get`.
pub trait TableStore: Send + Sync {
    /// Encodes and stores `points` as a new SSTable, returning its metadata
    /// and the encoded size in bytes.
    fn put(&self, points: &[DataPoint]) -> Result<(SsTableMeta, usize)>;

    /// Reads, validates and decodes the table.
    fn get(&self, id: SsTableId) -> Result<Vec<DataPoint>>;

    /// Removes the table (idempotent).
    fn delete(&self, id: SsTableId) -> Result<()>;

    /// Ids of every live table, in ascending id order.
    fn list(&self) -> Result<Vec<SsTableId>>;

    /// Block-granular range read: decodes only the blocks overlapping
    /// `range` (v2 tables) and reports what was scanned. The default reads
    /// the whole table (v1 behaviour).
    fn get_range(&self, id: SsTableId, range: TimeRange) -> Result<RangeRead> {
        let points = self.get(id)?;
        let points_scanned = points.len() as u64;
        Ok(RangeRead {
            points: points
                .into_iter()
                .filter(|p| range.contains(p.gen_time))
                .collect(),
            points_scanned,
            blocks_read: 1,
        })
    }

    /// Moves an unreadable table out of the live set (salvage-mode
    /// recovery). The default simply removes it; stores with durable
    /// backing should instead park the bytes somewhere recoverable (the
    /// [`FileStore`] moves them into a `quarantine/` subdirectory) so the
    /// damaged table stays available for forensics.
    fn quarantine(&self, id: SsTableId) -> Result<()> {
        self.delete(id)
    }

    /// Reads the table's raw encoded bytes without decoding them, for
    /// callers (the [`CachedStore`]) that parse the index once and decode
    /// blocks selectively. `Ok(None)` means the store does not expose raw
    /// bytes; such stores are served through `get`/`get_range` instead.
    fn read_raw(&self, id: SsTableId) -> Result<Option<Bytes>> {
        let _ = id;
        Ok(None)
    }

    /// Length in bytes of the table's encoded form, or `Ok(None)` if the
    /// store cannot serve byte-granular reads. Paired with [`read_span`]:
    /// a reader that knows the length can fetch the v3 footer directly.
    ///
    /// [`read_span`]: TableStore::read_span
    fn table_len(&self, id: SsTableId) -> Result<Option<u64>> {
        let _ = id;
        Ok(None)
    }

    /// Reads exactly `span` of the table's encoded bytes — the
    /// block-granular read capability. `Ok(None)` means the store cannot
    /// serve byte ranges (callers fall back to [`read_raw`] or `get`); a
    /// span outside the file is an error.
    ///
    /// [`read_raw`]: TableStore::read_raw
    fn read_span(
        &self,
        id: SsTableId,
        span: ByteSpan,
    ) -> Result<Option<Bytes>> {
        let _ = (id, span);
        Ok(None)
    }

    /// Judges, from index/filter metadata alone, whether the table may
    /// hold any point in `range`. `Ok(Some(false))` is a **definitive**
    /// miss (the caller can skip the table without touching data blocks);
    /// `Ok(Some(true))` may be a false positive; `Ok(None)` means the
    /// store cannot judge (no pruning metadata available).
    fn may_contain(
        &self,
        id: SsTableId,
        range: TimeRange,
    ) -> Result<Option<bool>> {
        let _ = (id, range);
        Ok(None)
    }

    /// Hints that the table is expected to be deleted soon (a freshly
    /// flushed L0 table the next merge-compaction will consume). Plain
    /// stores ignore the hint; the [`CachedStore`] lowers the table's
    /// cache priority so its blocks never displace run-table blocks.
    fn note_short_lived(&self, id: SsTableId) {
        let _ = id;
    }

    /// The table's parsed [`TableIndex`], or `Ok(None)` if the store cannot
    /// serve index metadata (no raw bytes, no ranged reads). The default
    /// loads it fresh on every call via [`load_index`]; the [`CachedStore`]
    /// overrides this to serve the shared index cache, which is what lets
    /// aggregation pushdown plan whole tables without faulting a single
    /// data block.
    fn table_index(&self, id: SsTableId) -> Result<Option<Arc<TableIndex>>> {
        Ok(load_index(self, id)?.map(|(index, _)| Arc::new(index)))
    }
}

/// Slices `span` out of a whole in-memory table, validating bounds.
fn slice_span(bytes: &Bytes, span: ByteSpan) -> Result<Bytes> {
    let start = usize::try_from(span.offset)
        .map_err(|_| Error::Corrupt("span offset overflows usize".into()))?;
    let end = usize::try_from(span.end())
        .map_err(|_| Error::Corrupt("span end overflows usize".into()))?;
    if end > bytes.len() || start > end {
        return Err(Error::Corrupt(format!(
            "span {}..{} outside table of {} bytes",
            span.offset,
            span.end(),
            bytes.len()
        )));
    }
    Ok(bytes.slice(start..end))
}

/// Loads a [`TableIndex`] through byte-granular reads when the table turns
/// out to be v3 (footer → metaindex → index + filter — ~a few hundred
/// bytes), falling back to one whole-file [`read_raw`] for v1/v2 tables or
/// stores without ranged reads. Returns the index plus the raw bytes *if*
/// a whole-file read happened anyway (so callers can decode blocks from it
/// without a second read).
///
/// [`read_raw`]: TableStore::read_raw
pub fn load_index<S: TableStore + ?Sized>(
    store: &S,
    id: SsTableId,
) -> Result<Option<(TableIndex, Option<Bytes>)>> {
    if let Some(len) = store.table_len(id)? {
        if len >= (format::V3_FOOTER + format::V3_METAINDEX) as u64 {
            let tail = store.read_span(
                id,
                ByteSpan {
                    offset: len - format::V3_FOOTER as u64,
                    len: format::V3_FOOTER as u64,
                },
            )?;
            if let Some(tail) = tail {
                if let Ok(meta_span) = format::parse_v3_footer(&tail) {
                    return load_index_v3(store, id, len, meta_span)
                        .map(|index| Some((index, None)));
                }
            }
        }
    }
    let Some(bytes) = store.read_raw(id)? else {
        return Ok(None);
    };
    let index = format::read_table_index(&bytes)?;
    Ok(Some((index, Some(bytes))))
}

/// The v3 arm of [`load_index`]: the footer named a metaindex span; fetch
/// metaindex, index and filter blocks by range and assemble the index.
fn load_index_v3<S: TableStore + ?Sized>(
    store: &S,
    id: SsTableId,
    len: u64,
    meta_span: ByteSpan,
) -> Result<TableIndex> {
    let tail_start = len - format::V3_FOOTER as u64;
    if meta_span.end() > tail_start {
        return Err(Error::Corrupt("v3 metaindex span out of bounds".into()));
    }
    let fetch = |span: ByteSpan| -> Result<Bytes> {
        store.read_span(id, span)?.ok_or_else(|| {
            Error::Corrupt(format!("ranged read of table {id} unavailable"))
        })
    };
    let (index_span, filter_span) =
        format::parse_v3_metaindex(&fetch(meta_span)?)?;
    for span in [index_span, filter_span] {
        if span.end() > meta_span.offset {
            return Err(Error::Corrupt("v3 block span out of bounds".into()));
        }
    }
    let mut index = format::parse_v3_index(&fetch(index_span)?)?;
    index.filter =
        Some(crate::sstable::TableFilter::decode(&fetch(filter_span)?)?);
    Ok(index)
}

/// An in-memory [`TableStore`] holding encoded SSTable bytes.
#[derive(Default)]
pub struct MemStore {
    inner: Mutex<MemStoreInner>,
    options: EncodeOptions,
}

#[derive(Default)]
struct MemStoreInner {
    next_id: u64,
    tables: HashMap<SsTableId, Bytes>,
}

impl MemStore {
    /// Creates an empty in-memory store using the v1 record format.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store encoding tables with `options` (e.g. the v2
    /// compressed-block format).
    pub fn with_options(options: EncodeOptions) -> Self {
        Self {
            inner: Mutex::default(),
            options,
        }
    }

    /// Total encoded bytes currently held.
    pub fn encoded_bytes(&self) -> usize {
        self.inner.lock().tables.values().map(Bytes::len).sum()
    }
}

impl TableStore for MemStore {
    fn put(&self, points: &[DataPoint]) -> Result<(SsTableMeta, usize)> {
        let encoded = format::encode_with(points, &self.options)?;
        let size = encoded.len();
        let mut inner = self.inner.lock();
        let id = SsTableId(inner.next_id);
        inner.next_id += 1;
        inner.tables.insert(id, encoded);
        Ok((SsTableMeta::describe(id, points), size))
    }

    fn get(&self, id: SsTableId) -> Result<Vec<DataPoint>> {
        let bytes = self
            .inner
            .lock()
            .tables
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::Corrupt(format!("missing table {id}")))?;
        format::decode(&bytes)
    }

    fn delete(&self, id: SsTableId) -> Result<()> {
        self.inner.lock().tables.remove(&id);
        Ok(())
    }

    fn list(&self) -> Result<Vec<SsTableId>> {
        let mut ids: Vec<SsTableId> =
            self.inner.lock().tables.keys().copied().collect();
        ids.sort();
        Ok(ids)
    }

    fn get_range(&self, id: SsTableId, range: TimeRange) -> Result<RangeRead> {
        let bytes = self
            .inner
            .lock()
            .tables
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::Corrupt(format!("missing table {id}")))?;
        format::decode_range(&bytes, range)
    }

    fn read_raw(&self, id: SsTableId) -> Result<Option<Bytes>> {
        let bytes = self
            .inner
            .lock()
            .tables
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::Corrupt(format!("missing table {id}")))?;
        Ok(Some(bytes))
    }

    fn table_len(&self, id: SsTableId) -> Result<Option<u64>> {
        let len = self
            .inner
            .lock()
            .tables
            .get(&id)
            .map(Bytes::len)
            .ok_or_else(|| Error::Corrupt(format!("missing table {id}")))?;
        Ok(Some(len as u64))
    }

    fn read_span(
        &self,
        id: SsTableId,
        span: ByteSpan,
    ) -> Result<Option<Bytes>> {
        let bytes = self
            .inner
            .lock()
            .tables
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::Corrupt(format!("missing table {id}")))?;
        Ok(Some(slice_span(&bytes, span)?))
    }

    fn may_contain(
        &self,
        id: SsTableId,
        range: TimeRange,
    ) -> Result<Option<bool>> {
        match load_index(self, id)? {
            Some((index, _)) => Ok(Some(index.may_contain(range))),
            None => Ok(None),
        }
    }
}

/// A directory-backed [`TableStore`]: one `NNNNNNNN.sst` file per table.
///
/// Writes go through a temporary file + rename so a crash never leaves a
/// half-written table under a live name; `get` re-validates the CRC.
pub struct FileStore {
    dir: PathBuf,
    next_id: Mutex<u64>,
    options: EncodeOptions,
    faults: Option<Arc<FaultPlan>>,
}

impl FileStore {
    /// Opens (creating if needed) a store in `dir`. Existing `.sst` files are
    /// adopted and id assignment continues after the largest one found;
    /// stale `*.tmp` debris from crashed writes is swept first.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        sweep_tmp_files(&dir)?;
        let mut max_id = None::<u64>;
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            if let Some(id) = Self::parse_name(&entry.path()) {
                max_id = Some(max_id.map_or(id, |m: u64| m.max(id)));
            }
        }
        Ok(Self {
            dir,
            next_id: Mutex::new(max_id.map_or(0, |m| m + 1)),
            options: EncodeOptions::default(),
            faults: None,
        })
    }

    /// Opens a store that encodes new tables with `options`; existing
    /// tables of either version remain readable.
    pub fn open_with(
        dir: impl AsRef<Path>,
        options: EncodeOptions,
    ) -> Result<Self> {
        let mut store = Self::open(dir)?;
        store.options = options;
        Ok(store)
    }

    /// Attaches a fault plan: every subsequent physical operation (tmp
    /// write, fsync, rename, read, delete, list, directory sync) consults
    /// the plan first. Used by the crash-schedule harness.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Directory that quarantined (salvage-mode) tables are moved into.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    fn path_for(&self, id: SsTableId) -> PathBuf {
        self.dir.join(format!("{:08}.sst", id.0))
    }

    fn parse_name(path: &Path) -> Option<u64> {
        if path.extension()?.to_str()? != "sst" {
            return None;
        }
        path.file_stem()?.to_str()?.parse().ok()
    }
}

impl TableStore for FileStore {
    fn put(&self, points: &[DataPoint]) -> Result<(SsTableMeta, usize)> {
        let encoded = format::encode_with(points, &self.options)?;
        let size = encoded.len();
        let id = {
            let mut next = self.next_id.lock();
            let id = SsTableId(*next);
            *next += 1;
            id
        };
        let final_path = self.path_for(id);
        let tmp_path = final_path.with_extension("sst.tmp");
        {
            let mut f = std::fs::File::create(&tmp_path)?;
            match fault::hook_write(
                self.faults.as_ref(),
                IoOp::StoreWrite,
                encoded.len(),
            )? {
                WriteCheck::Proceed => f.write_all(&encoded)?,
                WriteCheck::Torn { keep } => {
                    // A torn table write: persist only the prefix, leave
                    // the tmp file behind (swept on the next open).
                    f.write_all(&encoded[..keep.min(encoded.len())])?;
                    f.sync_all()?;
                    let index = self
                        .faults
                        .as_ref()
                        .map_or(0, |p| p.ops().saturating_sub(1));
                    return Err(fault::injected_crash(IoOp::StoreWrite, index));
                }
            }
            fault::hook(self.faults.as_ref(), IoOp::StoreSync)?;
            f.sync_all()?;
        }
        fault::hook(self.faults.as_ref(), IoOp::StoreRename)?;
        std::fs::rename(&tmp_path, &final_path)?;
        fault::hook(self.faults.as_ref(), IoOp::DirSync)?;
        sync_dir(&self.dir)?;
        Ok((SsTableMeta::describe(id, points), size))
    }

    fn get(&self, id: SsTableId) -> Result<Vec<DataPoint>> {
        fault::hook(self.faults.as_ref(), IoOp::StoreRead)?;
        let bytes = std::fs::read(self.path_for(id))?;
        format::decode(&bytes)
    }

    fn delete(&self, id: SsTableId) -> Result<()> {
        fault::hook(self.faults.as_ref(), IoOp::StoreDelete)?;
        match std::fs::remove_file(self.path_for(id)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn list(&self) -> Result<Vec<SsTableId>> {
        fault::hook(self.faults.as_ref(), IoOp::StoreList)?;
        let mut ids = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if let Some(id) = Self::parse_name(&entry.path()) {
                ids.push(SsTableId(id));
            }
        }
        ids.sort();
        Ok(ids)
    }

    fn get_range(&self, id: SsTableId, range: TimeRange) -> Result<RangeRead> {
        fault::hook(self.faults.as_ref(), IoOp::StoreRead)?;
        let bytes = std::fs::read(self.path_for(id))?;
        format::decode_range(&bytes, range)
    }

    fn read_raw(&self, id: SsTableId) -> Result<Option<Bytes>> {
        fault::hook(self.faults.as_ref(), IoOp::StoreRead)?;
        let bytes = std::fs::read(self.path_for(id))?;
        Ok(Some(bytes.into()))
    }

    fn table_len(&self, id: SsTableId) -> Result<Option<u64>> {
        fault::hook(self.faults.as_ref(), IoOp::StoreRead)?;
        Ok(Some(std::fs::metadata(self.path_for(id))?.len()))
    }

    fn read_span(
        &self,
        id: SsTableId,
        span: ByteSpan,
    ) -> Result<Option<Bytes>> {
        use std::io::{Read, Seek, SeekFrom};
        fault::hook(self.faults.as_ref(), IoOp::StoreRead)?;
        let mut f = std::fs::File::open(self.path_for(id))?;
        let file_len = f.metadata()?.len();
        if span.end() > file_len {
            return Err(Error::Corrupt(format!(
                "span {}..{} outside table of {file_len} bytes",
                span.offset,
                span.end()
            )));
        }
        let len = usize::try_from(span.len).map_err(|_| {
            Error::Corrupt("span length overflows usize".into())
        })?;
        // Positioned read (seek + read_exact): byte-range I/O without mmap
        // — the workspace forbids unsafe code, so no mmap crate.
        f.seek(SeekFrom::Start(span.offset))?;
        let mut buf = vec![0u8; len];
        f.read_exact(&mut buf)?;
        Ok(Some(buf.into()))
    }

    fn may_contain(
        &self,
        id: SsTableId,
        range: TimeRange,
    ) -> Result<Option<bool>> {
        match load_index(self, id)? {
            Some((index, _)) => Ok(Some(index.may_contain(range))),
            None => Ok(None),
        }
    }

    fn quarantine(&self, id: SsTableId) -> Result<()> {
        fault::hook(self.faults.as_ref(), IoOp::StoreDelete)?;
        let src = self.path_for(id);
        if !src.exists() {
            return Ok(()); // idempotent, like delete
        }
        let qdir = self.quarantine_dir();
        std::fs::create_dir_all(&qdir)?;
        let dst = qdir.join(format!("{:08}.sst", id.0));
        std::fs::rename(&src, &dst)?;
        sync_dir(&qdir)?;
        sync_dir(&self.dir)?;
        Ok(())
    }
}

/// A [`TableStore`] wrapper that serves reads through a shared
/// [`BlockCache`] and strictly invalidates on table removal.
///
/// * `get` / `get_range` consult the cached [`TableIndex`] (parsed at most
///   once per table) and then each needed block: a **hit** costs no store
///   I/O at all; on any **miss** the raw bytes are read **once** for the
///   whole visit and only the missing blocks are decoded from that one
///   buffer. This also fixes the historical double-read: the uncached path
///   read full table bytes *and* re-parsed the header per `decode_range`
///   call.
/// * `delete` / `quarantine` call [`BlockCache::invalidate_table`] *before*
///   forwarding, so a table consumed by a compaction can never serve a
///   later read from the cache — even if the underlying removal fails.
/// * Accounting: in a [`RangeRead`], `points_scanned` counts every point
///   of every examined block (hits and misses alike — the paper's
///   read-amplification quantity), while `blocks_read` counts only blocks
///   actually decoded from raw bytes, so it reflects disk work.
///
/// Stores that do not expose raw bytes (`read_raw` → `Ok(None)`) pass
/// through uncached. Cache traffic emits typed `CacheHit` / `CacheMiss` /
/// `CacheEvict` events on the attached observer; like all observer
/// traffic it is invisible to fault-plan op numbering, and a warm hit does
/// no hooked I/O at all.
pub struct CachedStore {
    inner: Arc<dyn TableStore>,
    cache: Arc<BlockCache>,
    obs: ObserverHandle,
}

impl CachedStore {
    /// Wraps `inner` with `cache` and no observer.
    pub fn new(inner: Arc<dyn TableStore>, cache: Arc<BlockCache>) -> Self {
        Self {
            inner,
            cache,
            obs: ObserverHandle::detached(),
        }
    }

    /// Wraps `inner` with `cache`, emitting cache events on `obs`.
    pub fn with_observer(
        inner: Arc<dyn TableStore>,
        cache: Arc<BlockCache>,
        obs: ObserverHandle,
    ) -> Self {
        Self { inner, cache, obs }
    }

    /// The shared cache behind this wrapper.
    pub fn cache(&self) -> &Arc<BlockCache> {
        &self.cache
    }

    /// Replaces the observer handle cache events are emitted on.
    pub fn set_observer(&mut self, obs: ObserverHandle) {
        self.obs = obs;
    }

    /// Fills `raw` with the table's encoded bytes at most once per visit;
    /// `Ok(None)` means the inner store does not expose raw bytes.
    fn fill_raw(
        &self,
        id: SsTableId,
        raw: &mut Option<Bytes>,
    ) -> Result<Option<Bytes>> {
        if raw.is_none() {
            *raw = self.inner.read_raw(id)?;
        }
        Ok(raw.clone())
    }

    /// The table's parsed index, from the cache, from a ranged footer walk
    /// (v3 tables on span-capable stores — a few hundred bytes), or from
    /// one whole-file raw read (v1/v2).
    fn index_for(
        &self,
        id: SsTableId,
        raw: &mut Option<Bytes>,
    ) -> Result<Option<Arc<TableIndex>>> {
        if let Some(index) = self.cache.lookup_index(id) {
            return Ok(Some(index));
        }
        let Some((index, bytes)) = load_index(self.inner.as_ref(), id)? else {
            return Ok(None);
        };
        if raw.is_none() {
            *raw = bytes;
        }
        let index = Arc::new(index);
        self.cache.insert_index(id, Arc::clone(&index));
        Ok(Some(index))
    }

    /// One block via the cache: hit, or decode + insert. A miss decodes
    /// from the whole-file buffer when one is already held, otherwise it
    /// fetches only the block's byte span ([`TableStore::read_span`]),
    /// falling back to a whole-file read on span-less stores. Emits the
    /// matching cache events.
    fn block_via_cache(
        &self,
        id: SsTableId,
        index: &TableIndex,
        block: usize,
        raw: &mut Option<Bytes>,
        disk_blocks: &mut u64,
    ) -> Result<Arc<Vec<DataPoint>>> {
        let key = BlockKey {
            table: id,
            block: block as u32,
        };
        if let Some(points) = self.cache.lookup(key) {
            self.obs.emit(|| Event::CacheHit {
                table: id.0,
                block: block as u64,
            });
            return Ok(points);
        }
        let decoded = if let Some(bytes) = raw.as_ref() {
            format::decode_index_block(bytes, index, block)?
        } else {
            let span = index.block_span(block)?;
            match self.inner.read_span(id, span)? {
                Some(bytes) => {
                    format::decode_index_block_bytes(index, block, &bytes)?
                }
                None => {
                    let bytes = self.fill_raw(id, raw)?.ok_or_else(|| {
                        Error::Corrupt(format!(
                            "raw bytes of table {id} unavailable"
                        ))
                    })?;
                    format::decode_index_block(&bytes, index, block)?
                }
            }
        };
        let points = Arc::new(decoded);
        *disk_blocks += 1;
        self.obs.emit(|| Event::CacheMiss {
            table: id.0,
            block: block as u64,
        });
        for ev in self.cache.insert(key, Arc::clone(&points)) {
            self.obs.emit(|| Event::CacheEvict {
                table: ev.key.table.0,
                block: u64::from(ev.key.block),
                points: ev.points,
            });
        }
        Ok(points)
    }
}

impl TableStore for CachedStore {
    fn put(&self, points: &[DataPoint]) -> Result<(SsTableMeta, usize)> {
        self.inner.put(points)
    }

    fn note_short_lived(&self, id: SsTableId) {
        self.cache.mark_short_lived(id);
        self.inner.note_short_lived(id);
    }

    fn get(&self, id: SsTableId) -> Result<Vec<DataPoint>> {
        let mut raw = None;
        let Some(index) = self.index_for(id, &mut raw)? else {
            return self.inner.get(id); // raw reads unsupported: pass through
        };
        let mut disk_blocks = 0u64;
        let mut out = Vec::with_capacity(index.count);
        for block in 0..index.blocks.len() {
            let points = self.block_via_cache(
                id,
                &index,
                block,
                &mut raw,
                &mut disk_blocks,
            )?;
            out.extend(points.iter().cloned());
        }
        Ok(out)
    }

    fn get_range(&self, id: SsTableId, range: TimeRange) -> Result<RangeRead> {
        let mut raw = None;
        let Some(index) = self.index_for(id, &mut raw)? else {
            return self.inner.get_range(id, range);
        };
        let mut read = RangeRead {
            points: Vec::new(),
            points_scanned: 0,
            blocks_read: 0,
        };
        // Index + filter pruning: a definitive miss examines no blocks.
        if !index.may_contain(range) {
            return Ok(read);
        }
        for block in 0..index.blocks.len() {
            let Some(span) = index.blocks.get(block).copied() else {
                break;
            };
            if span.last < range.start || span.first > range.end {
                continue;
            }
            let points = self.block_via_cache(
                id,
                &index,
                block,
                &mut raw,
                &mut read.blocks_read,
            )?;
            read.points_scanned += points.len() as u64;
            read.points.extend(
                points
                    .iter()
                    .filter(|p| range.contains(p.gen_time))
                    .cloned(),
            );
        }
        Ok(read)
    }

    fn delete(&self, id: SsTableId) -> Result<()> {
        self.cache.invalidate_table(id);
        self.inner.delete(id)
    }

    fn quarantine(&self, id: SsTableId) -> Result<()> {
        self.cache.invalidate_table(id);
        self.inner.quarantine(id)
    }

    fn list(&self) -> Result<Vec<SsTableId>> {
        self.inner.list()
    }

    fn read_raw(&self, id: SsTableId) -> Result<Option<Bytes>> {
        self.inner.read_raw(id)
    }

    fn table_len(&self, id: SsTableId) -> Result<Option<u64>> {
        self.inner.table_len(id)
    }

    fn read_span(
        &self,
        id: SsTableId,
        span: ByteSpan,
    ) -> Result<Option<Bytes>> {
        self.inner.read_span(id, span)
    }

    fn may_contain(
        &self,
        id: SsTableId,
        range: TimeRange,
    ) -> Result<Option<bool>> {
        let mut raw = None;
        match self.index_for(id, &mut raw)? {
            Some(index) => Ok(Some(index.may_contain(range))),
            None => self.inner.may_contain(id, range),
        }
    }

    fn table_index(&self, id: SsTableId) -> Result<Option<Arc<TableIndex>>> {
        // Served from the shared index cache when warm; a cold lookup does
        // a ranged footer walk (v3) or one raw read (v1/v2), never a data
        // block — so a pushdown plan over cached indexes is I/O-free.
        let mut raw = None;
        self.index_for(id, &mut raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(range: std::ops::Range<i64>) -> Vec<DataPoint> {
        range
            .map(|i| DataPoint::new(i * 10, i * 10 + 3, i as f64))
            .collect()
    }

    fn exercise_store(store: &dyn TableStore) {
        let (meta_a, size_a) = store.put(&pts(0..100)).expect("put a");
        let (meta_b, _) = store.put(&pts(100..150)).expect("put b");
        assert!(meta_b.id > meta_a.id, "ids must increase");
        assert!(size_a > 0);
        assert_eq!(meta_a.count, 100);

        assert_eq!(store.get(meta_a.id).expect("get a"), pts(0..100));
        assert_eq!(store.get(meta_b.id).expect("get b"), pts(100..150));
        assert_eq!(store.list().expect("list"), vec![meta_a.id, meta_b.id]);

        store.delete(meta_a.id).expect("delete");
        store.delete(meta_a.id).expect("idempotent delete");
        assert!(store.get(meta_a.id).is_err());
        assert_eq!(store.list().expect("list"), vec![meta_b.id]);
    }

    #[test]
    fn mem_store_round_trips() {
        let store = MemStore::new();
        exercise_store(&store);
        assert!(store.encoded_bytes() > 0);
    }

    #[test]
    fn file_store_round_trips() {
        let dir = std::env::temp_dir().join(format!(
            "seplsm-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileStore::open(&dir).expect("open");
        exercise_store(&store);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn file_store_adopts_existing_tables() {
        let dir = std::env::temp_dir().join(format!(
            "seplsm-store-adopt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let id_first;
        {
            let store = FileStore::open(&dir).expect("open");
            id_first = store.put(&pts(0..10)).expect("put").0.id;
        }
        {
            let store = FileStore::open(&dir).expect("re-open");
            // Id allocation resumes past the adopted table.
            let id_second = store.put(&pts(10..20)).expect("put").0.id;
            assert!(id_second > id_first);
            assert_eq!(store.get(id_first).expect("old table"), pts(0..10));
            assert_eq!(store.list().expect("list").len(), 2);
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn file_store_sweeps_stale_tmp_on_open() {
        let dir = std::env::temp_dir().join(format!(
            "seplsm-store-sweep-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        // Debris from a crash between tmp write and rename.
        let stale = dir.join("00000003.sst.tmp");
        std::fs::write(&stale, b"half a table").expect("write stale tmp");
        let store = FileStore::open(&dir).expect("open");
        assert!(!stale.exists(), "open must sweep stale tmp files");
        // The sweep never touches live tables.
        let (meta, _) = store.put(&pts(0..5)).expect("put");
        drop(store);
        let store = FileStore::open(&dir).expect("re-open");
        assert_eq!(store.get(meta.id).expect("survives reopen"), pts(0..5));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn file_store_put_syncs_directory_after_rename() {
        let dir = std::env::temp_dir().join(format!(
            "seplsm-store-dirsync-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = crate::fault::FaultPlan::trace_only(0);
        let store = FileStore::open(&dir)
            .expect("open")
            .with_faults(Arc::clone(&plan));
        store.put(&pts(0..10)).expect("put");
        // The durable put protocol: tmp write, tmp fsync, rename, then the
        // parent-directory fsync that makes the rename itself durable.
        assert_eq!(
            plan.trace(),
            vec![
                IoOp::StoreWrite,
                IoOp::StoreSync,
                IoOp::StoreRename,
                IoOp::DirSync
            ]
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn file_store_quarantines_into_subdirectory() {
        let dir = std::env::temp_dir().join(format!(
            "seplsm-store-quarantine-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileStore::open(&dir).expect("open");
        let (meta, _) = store.put(&pts(0..20)).expect("put");
        store.quarantine(meta.id).expect("quarantine");
        store.quarantine(meta.id).expect("idempotent");
        assert!(store.get(meta.id).is_err(), "table left the live set");
        assert!(store.list().expect("list").is_empty());
        let parked =
            store.quarantine_dir().join(format!("{:08}.sst", meta.id.0));
        assert!(parked.exists(), "bytes parked for forensics");
        // The quarantine directory itself is not mistaken for a table.
        let reopened = FileStore::open(&dir).expect("re-open");
        assert!(reopened.list().expect("list").is_empty());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// Delegates to an inner store while counting raw reads and bytes, so
    /// tests can prove warm cache hits do no store I/O.
    struct CountingStore {
        inner: MemStore,
        raw_reads: std::sync::atomic::AtomicU64,
        raw_bytes: std::sync::atomic::AtomicU64,
    }

    impl CountingStore {
        fn new(options: EncodeOptions) -> Self {
            Self {
                inner: MemStore::with_options(options),
                raw_reads: std::sync::atomic::AtomicU64::new(0),
                raw_bytes: std::sync::atomic::AtomicU64::new(0),
            }
        }

        fn raw_reads(&self) -> u64 {
            self.raw_reads.load(std::sync::atomic::Ordering::Relaxed)
        }

        fn raw_bytes(&self) -> u64 {
            self.raw_bytes.load(std::sync::atomic::Ordering::Relaxed)
        }
    }

    impl TableStore for CountingStore {
        fn put(&self, points: &[DataPoint]) -> Result<(SsTableMeta, usize)> {
            self.inner.put(points)
        }

        fn get(&self, id: SsTableId) -> Result<Vec<DataPoint>> {
            self.inner.get(id)
        }

        fn delete(&self, id: SsTableId) -> Result<()> {
            self.inner.delete(id)
        }

        fn list(&self) -> Result<Vec<SsTableId>> {
            self.inner.list()
        }

        fn read_raw(&self, id: SsTableId) -> Result<Option<Bytes>> {
            let raw = self.inner.read_raw(id)?;
            self.raw_reads
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if let Some(bytes) = &raw {
                self.raw_bytes.fetch_add(
                    bytes.len() as u64,
                    std::sync::atomic::Ordering::Relaxed,
                );
            }
            Ok(raw)
        }

        fn table_len(&self, id: SsTableId) -> Result<Option<u64>> {
            self.inner.table_len(id)
        }

        fn read_span(
            &self,
            id: SsTableId,
            span: format::ByteSpan,
        ) -> Result<Option<Bytes>> {
            let bytes = self.inner.read_span(id, span)?;
            self.raw_reads
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if let Some(bytes) = &bytes {
                self.raw_bytes.fetch_add(
                    bytes.len() as u64,
                    std::sync::atomic::Ordering::Relaxed,
                );
            }
            Ok(bytes)
        }
    }

    fn cached_fixture() -> (Arc<CountingStore>, CachedStore, SsTableMeta) {
        let counting =
            Arc::new(CountingStore::new(EncodeOptions::compressed()));
        let cache = crate::cache::BlockCache::with_capacity(64 * 1024);
        let cached = CachedStore::new(
            Arc::clone(&counting) as Arc<dyn TableStore>,
            cache,
        );
        let (meta, _) = cached.put(&pts(0..300)).expect("put");
        (counting, cached, meta)
    }

    #[test]
    fn cached_store_warm_reads_do_no_store_io() {
        let (counting, cached, meta) = cached_fixture();
        assert_eq!(cached.get(meta.id).expect("cold get"), pts(0..300));
        let cold_reads = counting.raw_reads();
        // A v2 table costs the 20-byte v3 footer probe plus one whole-file
        // raw read on the cold visit.
        assert_eq!(
            cold_reads, 2,
            "footer probe + one raw read serve the cold visit"
        );
        for _ in 0..5 {
            assert_eq!(cached.get(meta.id).expect("warm get"), pts(0..300));
        }
        assert_eq!(
            counting.raw_reads(),
            cold_reads,
            "warm gets must not touch the inner store"
        );
        let stats = cached.cache().stats();
        assert!(stats.hits > 0);
        assert!(stats.hit_rate() > 0.5);
    }

    #[test]
    fn cached_store_range_reads_prune_and_account() {
        let (counting, cached, meta) = cached_fixture();
        // Points 0..300 at gen times i*10: blocks of 128 → 3 blocks.
        let range = TimeRange::new(0, 500); // inside block 0
        let cold = cached.get_range(meta.id, range).expect("cold");
        assert_eq!(cold.points.len(), 51);
        assert_eq!(cold.blocks_read, 1, "one block decoded from raw");
        assert_eq!(cold.points_scanned, 128);
        let warm = cached.get_range(meta.id, range).expect("warm");
        assert_eq!(warm.points, cold.points);
        assert_eq!(warm.blocks_read, 0, "warm read decodes nothing");
        assert_eq!(warm.points_scanned, 128, "scanned counts hits too");
        assert_eq!(counting.raw_reads(), 2, "footer probe + one raw read");
        // Disjoint range: nothing examined at all.
        let miss = cached
            .get_range(meta.id, TimeRange::new(100_000, 200_000))
            .expect("miss");
        assert!(miss.points.is_empty());
        assert_eq!(miss.points_scanned, 0);
    }

    #[test]
    fn cached_store_delete_strictly_invalidates() {
        let (_counting, cached, meta) = cached_fixture();
        cached.get(meta.id).expect("warm the cache");
        assert!(cached.cache().stats().resident_blocks > 0);
        cached.delete(meta.id).expect("delete");
        assert_eq!(
            cached.cache().stats().resident_blocks,
            0,
            "deleted table's blocks must leave the cache"
        );
        assert!(
            cached.get(meta.id).is_err(),
            "a deleted table must never be served from the cache"
        );
    }

    #[test]
    fn cached_store_passes_through_rawless_stores() {
        /// A store with no raw-byte support: the default `read_raw`.
        struct Opaque(MemStore);
        impl TableStore for Opaque {
            fn put(
                &self,
                points: &[DataPoint],
            ) -> Result<(SsTableMeta, usize)> {
                self.0.put(points)
            }
            fn get(&self, id: SsTableId) -> Result<Vec<DataPoint>> {
                self.0.get(id)
            }
            fn delete(&self, id: SsTableId) -> Result<()> {
                self.0.delete(id)
            }
            fn list(&self) -> Result<Vec<SsTableId>> {
                self.0.list()
            }
        }
        let cache = crate::cache::BlockCache::with_capacity(1024);
        let cached = CachedStore::new(Arc::new(Opaque(MemStore::new())), cache);
        let (meta, _) = cached.put(&pts(0..50)).expect("put");
        assert_eq!(cached.get(meta.id).expect("get"), pts(0..50));
        let read = cached
            .get_range(meta.id, TimeRange::new(0, 90))
            .expect("range");
        assert_eq!(read.points.len(), 10);
        assert_eq!(
            cached.cache().stats().resident_blocks,
            0,
            "rawless stores stay uncached"
        );
    }

    #[test]
    fn cached_store_emits_typed_cache_events() {
        let counting =
            Arc::new(CountingStore::new(EncodeOptions::compressed()));
        let cache = crate::cache::BlockCache::with_capacity(64 * 1024);
        let ring = crate::obs::RingBufferSink::new(64);
        let cached = CachedStore::with_observer(
            counting,
            cache,
            ObserverHandle::attached(ring.clone()),
        );
        let (meta, _) = cached.put(&pts(0..200)).expect("put");
        cached.get(meta.id).expect("cold");
        cached.get(meta.id).expect("warm");
        let misses = ring.count(|e| matches!(e, Event::CacheMiss { .. }));
        let hits = ring.count(|e| matches!(e, Event::CacheHit { .. }));
        assert_eq!(misses, 2, "two blocks decoded cold");
        assert_eq!(hits, 2, "two blocks served warm");
    }

    #[test]
    fn stores_serve_byte_spans() {
        let dir = std::env::temp_dir().join(format!(
            "seplsm-store-span-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mem = MemStore::new();
        let file = FileStore::open(&dir).expect("open");
        for store in [&mem as &dyn TableStore, &file as &dyn TableStore] {
            let (meta, size) = store.put(&pts(0..100)).expect("put");
            let len =
                store.table_len(meta.id).expect("len").expect("supported");
            assert_eq!(len, size as u64);
            let whole = store
                .read_span(meta.id, format::ByteSpan { offset: 0, len })
                .expect("span")
                .expect("supported");
            assert_eq!(
                whole,
                store.read_raw(meta.id).expect("raw").expect("raw bytes")
            );
            let tail = store
                .read_span(
                    meta.id,
                    format::ByteSpan {
                        offset: len - format::V3_FOOTER as u64,
                        len: format::V3_FOOTER as u64,
                    },
                )
                .expect("tail span")
                .expect("supported");
            format::parse_v3_footer(&tail).expect("v3 footer at tail");
            // Out-of-bounds spans are errors, not short reads.
            assert!(store
                .read_span(
                    meta.id,
                    format::ByteSpan {
                        offset: len,
                        len: 1
                    }
                )
                .is_err());
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn may_contain_prunes_point_misses_without_data_reads() {
        let store = MemStore::new(); // v3 default
        let (meta, _) = store.put(&pts(0..100)).expect("put"); // tg = i*10
                                                               // Present key: never pruned.
        assert_eq!(
            store
                .may_contain(meta.id, TimeRange::new(500, 500))
                .expect("judge"),
            Some(true)
        );
        // In-range non-key instant: bloom prunes it.
        assert_eq!(
            store
                .may_contain(meta.id, TimeRange::new(503, 503))
                .expect("judge"),
            Some(false)
        );
        // Disjoint window.
        assert_eq!(
            store
                .may_contain(meta.id, TimeRange::new(5_000, 9_000))
                .expect("judge"),
            Some(false)
        );
    }

    #[test]
    fn cached_store_v3_cold_reads_fetch_fewer_bytes_than_whole_file() {
        let counting = Arc::new(CountingStore::new(EncodeOptions::pruned()));
        let cache = crate::cache::BlockCache::with_capacity(64 * 1024);
        let cached = CachedStore::new(
            Arc::clone(&counting) as Arc<dyn TableStore>,
            cache,
        );
        let (meta, size) = cached.put(&pts(0..300)).expect("put"); // 3 blocks
        let range = TimeRange::new(0, 500); // inside block 0
        let cold = cached.get_range(meta.id, range).expect("cold");
        assert_eq!(cold.points.len(), 51);
        assert_eq!(cold.blocks_read, 1);
        assert!(
            counting.raw_bytes() < size as u64,
            "cold ranged read fetched {} of {} encoded bytes",
            counting.raw_bytes(),
            size
        );
        // A pruned point probe does metadata reads only (index is cached
        // after the first visit: zero further store reads).
        let before = counting.raw_reads();
        let miss = cached
            .get_range(meta.id, TimeRange::new(7, 7))
            .expect("miss");
        assert!(miss.points.is_empty());
        assert_eq!(miss.blocks_read, 0);
        assert_eq!(counting.raw_reads(), before, "prune decided from cache");
    }

    #[test]
    fn cached_store_delete_drops_index_and_filter() {
        let counting = Arc::new(CountingStore::new(EncodeOptions::pruned()));
        let cache = crate::cache::BlockCache::with_capacity(64 * 1024);
        let cached = CachedStore::new(
            Arc::clone(&counting) as Arc<dyn TableStore>,
            cache,
        );
        let (meta, _) = cached.put(&pts(0..100)).expect("put");
        // Warm the index + filter via a pruning judgement.
        assert_eq!(
            cached
                .may_contain(meta.id, TimeRange::new(0, 10))
                .expect("judge"),
            Some(true)
        );
        assert!(cached.cache().lookup_index(meta.id).is_some());
        cached.delete(meta.id).expect("delete");
        assert!(
            cached.cache().lookup_index(meta.id).is_none(),
            "stale index/filter must leave the cache with the table"
        );
        assert!(
            cached.may_contain(meta.id, TimeRange::new(0, 10)).is_err(),
            "a deleted table must not be judged from a stale filter"
        );
    }

    #[test]
    fn file_store_detects_corruption() {
        let dir = std::env::temp_dir().join(format!(
            "seplsm-store-corrupt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileStore::open(&dir).expect("open");
        let (meta, _) = store.put(&pts(0..50)).expect("put");
        let path = dir.join(format!("{:08}.sst", meta.id.0));
        let mut bytes = std::fs::read(&path).expect("read raw");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).expect("write corrupted");
        assert!(store.get(meta.id).is_err(), "corruption must be detected");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    proptest::proptest! {
        #![proptest_config(
            proptest::prelude::ProptestConfig::with_cases(32)
        )]

        /// The R7 runtime witness: arbitrary bytes presented as an SSTable
        /// file surface as a typed `Err` from table open and index load —
        /// never a panic, never an attacker-sized allocation. (A random
        /// byte string passing the magic *and* CRC checks is a ~2^-64
        /// event, so asserting `Err` outright is sound.)
        #[test]
        fn arbitrary_bytes_yield_typed_errors_not_panics(
            bytes in proptest::collection::vec(
                proptest::prelude::any::<u8>(),
                0..600,
            ),
            case in 0u64..u64::MAX,
        ) {
            let dir = std::env::temp_dir().join(format!(
                "seplsm-store-fuzz-{}-{case:016x}",
                std::process::id(),
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("mkdir");
            std::fs::write(dir.join("00000001.sst"), &bytes)
                .expect("write table");
            let store = FileStore::open(&dir).expect("open");
            let id = SsTableId(1);
            proptest::prop_assert!(store.get(id).is_err());
            proptest::prop_assert!(load_index(&store, id).is_err());
            proptest::prop_assert!(
                format::decode(&bytes).is_err()
            );
            std::fs::remove_dir_all(&dir).expect("cleanup");
        }

        /// Same witness against *near-valid* input: a real encoded table
        /// with one byte flipped must never panic the decoders, and a flip
        /// that lands in CRC-covered content is detected. (`load_index` may
        /// legitimately still succeed when the flip lands in a data block
        /// its spans never touch.)
        #[test]
        fn single_byte_flips_never_panic_table_open(
            flip_pos in 0usize..4096,
            flip_mask in 1u8..=255,
            case in 0u64..u64::MAX,
        ) {
            let dir = std::env::temp_dir().join(format!(
                "seplsm-store-flip-{}-{case:016x}",
                std::process::id(),
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let store = FileStore::open(&dir).expect("open");
            let (meta, _) = store.put(&pts(0..40)).expect("put");
            let path = dir.join(format!("{:08}.sst", meta.id.0));
            let mut bytes = std::fs::read(&path).expect("read raw");
            let pos = flip_pos % bytes.len();
            bytes[pos] ^= flip_mask;
            std::fs::write(&path, &bytes).expect("write corrupted");
            let _ = store.get(meta.id);
            let _ = load_index(&store, meta.id);
            let _ = format::decode(&bytes);
            std::fs::remove_dir_all(&dir).expect("cleanup");
        }
    }
}
