//! Versioned on-disk state: the run, L0, and in-flight flushes.
//!
//! A [`Version`] is the complete table-level state of one series: the
//! non-overlapping level-1 [`Run`], the (possibly overlapping) L0 tables
//! produced by background flushes, and the *flushing MemTables* — batches
//! handed to the flush pipeline but not yet stored, which must stay
//! queryable (exactly IoTDB's flushing-MemTable list).
//!
//! State never mutates in place: engines describe changes as
//! [`VersionEdit`]s and [`Version::apply`] commits a whole edit batch
//! atomically — either every edit lands or the version is untouched. The
//! same edits drive manifest recording ([`Version::record`]), so the
//! durable log can never disagree with the in-memory state it mirrors.

use std::sync::Arc;

use seplsm_types::{DataPoint, Result, Timestamp};

use crate::level::Run;
use crate::manifest::Manifest;
use crate::sstable::{SsTableId, SsTableMeta};

/// One table-level state change, applied through [`Version::apply`].
#[derive(Debug, Clone)]
pub enum VersionEdit {
    /// In-order flush: the table extends the run strictly past its tail
    /// (the `C_seq` append path of `π_s`).
    AppendRun(SsTableMeta),
    /// A batch was handed to the flush pipeline and must stay queryable
    /// until [`VersionEdit::FlushToL0`] retires it.
    RegisterFlushing(Arc<Vec<DataPoint>>),
    /// A flushing batch became L0 tables: the tables join L0 and the batch
    /// leaves the flushing list in the same atomic application, so queries
    /// see the data in exactly one place.
    FlushToL0 {
        /// The batch being retired (matched by pointer identity).
        batch: Arc<Vec<DataPoint>>,
        /// The stored tables that now hold its points.
        tables: Vec<SsTableMeta>,
    },
    /// Merge-compaction result: `removed` run tables (and, when `drain_l0`
    /// is set, every L0 table) are replaced by `added`.
    Replace {
        /// Run tables consumed by the merge.
        removed: Vec<SsTableId>,
        /// The merge output.
        added: Vec<SsTableMeta>,
        /// `true` when the merge also consumed all of L0 (tiered path).
        drain_l0: bool,
    },
}

/// The table-level state of one series; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct Version {
    run: Run,
    /// L0 tables in flush order (later = newer; newer wins duplicates).
    l0: Vec<SsTableMeta>,
    /// Batches in the flush pipeline, oldest first.
    flushing: Vec<Arc<Vec<DataPoint>>>,
}

impl Version {
    /// An empty version.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a version from recovered level contents (manifest replay).
    pub fn from_levels(run: Run, l0: Vec<SsTableMeta>) -> Self {
        Self {
            run,
            l0,
            flushing: Vec::new(),
        }
    }

    /// The non-overlapping level-1 run.
    pub fn run(&self) -> &Run {
        &self.run
    }

    /// The L0 tables, in flush order.
    pub fn l0(&self) -> &[SsTableMeta] {
        &self.l0
    }

    /// Batches currently in the flush pipeline, oldest first.
    pub fn flushing(&self) -> &[Arc<Vec<DataPoint>>] {
        &self.flushing
    }

    /// The largest generation time across every *stored* table (run + L0) —
    /// the recovery value of the tiered engine's classification pivot.
    pub fn last_stored_gen_time(&self) -> Option<Timestamp> {
        let l0_max = self.l0.iter().map(|m| m.range.end).max();
        match (self.run.last_gen_time(), l0_max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        }
    }

    /// Applies `edits` in order, atomically: on any failure the version is
    /// left exactly as it was.
    ///
    /// # Errors
    /// [`seplsm_types::Error::InvalidConfig`] / `Corrupt` when an edit
    /// violates the run invariant.
    pub fn apply(&mut self, edits: &[VersionEdit]) -> Result<()> {
        let mut staged = self.clone();
        for edit in edits {
            staged.apply_one(edit)?;
        }
        // Debug builds re-check the full structural invariant before the
        // staged state becomes visible; release builds skip this (no-op).
        crate::invariants::check_version(&staged)?;
        *self = staged;
        Ok(())
    }

    fn apply_one(&mut self, edit: &VersionEdit) -> Result<()> {
        match edit {
            VersionEdit::AppendRun(meta) => self.run.append(*meta),
            VersionEdit::RegisterFlushing(batch) => {
                self.flushing.push(Arc::clone(batch));
                Ok(())
            }
            VersionEdit::FlushToL0 { batch, tables } => {
                self.l0.extend(tables.iter().copied());
                self.flushing.retain(|b| !Arc::ptr_eq(b, batch));
                Ok(())
            }
            VersionEdit::Replace {
                removed,
                added,
                drain_l0,
            } => {
                if *drain_l0 {
                    self.l0.clear();
                }
                self.run.replace(removed, added.clone())
            }
        }
    }

    /// Records already-applied `edits` in `manifest`: table additions are
    /// logged incrementally (and fsynced); a [`VersionEdit::Replace`]
    /// rewrites the manifest from this version's live tables, keeping the
    /// log proportional to the live table count.
    ///
    /// # Errors
    /// Manifest I/O failures.
    pub fn record(
        &self,
        manifest: &mut Manifest,
        edits: &[VersionEdit],
    ) -> Result<()> {
        let replaces = edits
            .iter()
            .any(|e| matches!(e, VersionEdit::Replace { .. }));
        if replaces {
            return manifest.rewrite_levels(self.run.tables(), &self.l0);
        }
        for edit in edits {
            match edit {
                VersionEdit::AppendRun(meta) => manifest.log_add(meta)?,
                VersionEdit::FlushToL0 { tables, .. } => {
                    for meta in tables {
                        manifest.log_add_l0(meta)?;
                    }
                }
                VersionEdit::RegisterFlushing(_) => {}
                VersionEdit::Replace { .. } => unreachable!("handled above"),
            }
        }
        manifest.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seplsm_types::TimeRange;

    fn meta(id: u64, start: i64, end: i64, count: u32) -> SsTableMeta {
        SsTableMeta {
            id: SsTableId(id),
            range: TimeRange::new(start, end),
            count,
        }
    }

    #[test]
    fn append_and_replace_edit_the_run() {
        let mut v = Version::new();
        v.apply(&[
            VersionEdit::AppendRun(meta(1, 0, 99, 10)),
            VersionEdit::AppendRun(meta(2, 100, 199, 10)),
        ])
        .expect("append");
        assert_eq!(v.run().len(), 2);
        v.apply(&[VersionEdit::Replace {
            removed: vec![SsTableId(2)],
            added: vec![meta(3, 100, 150, 6), meta(4, 151, 220, 8)],
            drain_l0: false,
        }])
        .expect("replace");
        assert_eq!(v.run().len(), 3);
        assert_eq!(v.run().last_gen_time(), Some(220));
    }

    #[test]
    fn failed_edit_batch_leaves_version_untouched() {
        let mut v = Version::new();
        v.apply(&[VersionEdit::AppendRun(meta(1, 0, 99, 10))])
            .expect("seed");
        // Second edit overlaps the tail: the whole batch must be rejected.
        let err = v.apply(&[
            VersionEdit::AppendRun(meta(2, 100, 199, 10)),
            VersionEdit::AppendRun(meta(3, 150, 250, 10)),
        ]);
        assert!(err.is_err());
        assert_eq!(v.run().len(), 1, "atomicity: no partial application");
    }

    #[test]
    fn flush_to_l0_retires_the_flushing_batch_atomically() {
        let mut v = Version::new();
        let batch = Arc::new(vec![DataPoint::new(5, 5, 1.0)]);
        v.apply(&[VersionEdit::RegisterFlushing(Arc::clone(&batch))])
            .expect("register");
        assert_eq!(v.flushing().len(), 1);
        v.apply(&[VersionEdit::FlushToL0 {
            batch: Arc::clone(&batch),
            tables: vec![meta(7, 5, 5, 1)],
        }])
        .expect("flush");
        assert!(v.flushing().is_empty());
        assert_eq!(v.l0().len(), 1);
        assert_eq!(v.last_stored_gen_time(), Some(5));
    }

    #[test]
    fn replace_can_drain_l0() {
        let mut v = Version::from_levels(
            Run::from_tables(vec![meta(1, 0, 99, 10)]).expect("run"),
            vec![meta(2, 50, 120, 8)],
        );
        assert_eq!(v.last_stored_gen_time(), Some(120));
        v.apply(&[VersionEdit::Replace {
            removed: vec![SsTableId(1)],
            added: vec![meta(3, 0, 120, 18)],
            drain_l0: true,
        }])
        .expect("compact");
        assert!(v.l0().is_empty());
        assert_eq!(v.run().len(), 1);
        assert_eq!(v.last_stored_gen_time(), Some(120));
    }

    #[test]
    fn record_round_trips_through_the_manifest() {
        let path = std::env::temp_dir().join(format!(
            "seplsm-version-record-{}-{:?}.manifest",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut manifest = Manifest::open(&path).expect("open");
        let mut v = Version::new();

        let appends = [
            VersionEdit::AppendRun(meta(1, 0, 99, 10)),
            VersionEdit::AppendRun(meta(2, 100, 199, 10)),
        ];
        v.apply(&appends).expect("apply");
        v.record(&mut manifest, &appends).expect("record");

        let batch = Arc::new(vec![DataPoint::new(150, 160, 0.0)]);
        let flush = [VersionEdit::FlushToL0 {
            batch,
            tables: vec![meta(3, 150, 150, 1)],
        }];
        v.apply(&flush).expect("apply");
        v.record(&mut manifest, &flush).expect("record");

        let (run, l0) = Manifest::replay_levels(&path).expect("replay");
        assert_eq!(run.len(), 2);
        assert_eq!(l0.len(), 1);

        let replace = [VersionEdit::Replace {
            removed: vec![SsTableId(1), SsTableId(2)],
            added: vec![meta(4, 0, 199, 21)],
            drain_l0: true,
        }];
        v.apply(&replace).expect("apply");
        v.record(&mut manifest, &replace).expect("record");
        let (run, l0) = Manifest::replay_levels(&path).expect("replay");
        assert_eq!(run.len(), 1);
        assert_eq!(run[0].id.0, 4);
        assert!(l0.is_empty());
        std::fs::remove_file(&path).expect("cleanup");
    }
}
