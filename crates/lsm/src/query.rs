//! Query statistics: read amplification and the inputs to the disk-latency
//! model.
//!
//! The paper's query experiments (Figs. 12–14, 20) report two quantities:
//! *read amplification* — points read from disk divided by points returned —
//! and query latency on an HDD, which is dominated by one seek per SSTable
//! touched. [`QueryStats`] records exactly the counts both need.

use seplsm_types::Timestamp;

use crate::sstable::BlockAggregates;

/// Per-query counters filled in by [`LsmEngine::query`](crate::LsmEngine::query)
/// and the aggregation pushdown path
/// ([`LsmEngine::aggregate`](crate::LsmEngine::aggregate) /
/// [`LsmEngine::downsample`](crate::LsmEngine::downsample)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// SSTables whose range intersected the query (each costs one seek).
    pub tables_read: u64,
    /// Points decoded from those SSTables' data blocks. Reads are
    /// block-granular since the v2 index: only the blocks whose time span
    /// overlaps the query are decoded, and every point in a decoded block
    /// counts here whether or not it matched. Folded blocks (see
    /// `blocks_folded`) decode nothing, so their points never appear here —
    /// which is exactly how pushdown lowers read amplification.
    pub disk_points_scanned: u64,
    /// Blocks decoded when the engine runs with block-granular reads
    /// (zero in whole-table mode).
    pub blocks_read: u64,
    /// Matching points found in MemTables (already in memory; no seek).
    pub mem_points_scanned: u64,
    /// Points in the final result set (for an aggregate query: points the
    /// aggregate covers).
    pub points_returned: u64,
    /// Tables skipped by the pruning filter (v3): their range intersected
    /// the query but index/filter metadata proved them empty of matches, so
    /// no data blocks were touched and no seek was paid.
    pub tables_pruned: u64,
    /// Blocks answered from v3 index pre-aggregates alone during an
    /// aggregation/downsampling pushdown — zero data-block bytes fetched,
    /// zero points decoded. A folded block contributes to `points_returned`
    /// (its points are covered by the result) without adding to
    /// `disk_points_scanned`, so heavy folding drives
    /// [`read_amplification`](Self::read_amplification) *below* 1.
    pub blocks_folded: u64,
    /// Blocks an aggregation pushdown had to decode after all: the block
    /// straddles the query range, is overlapped by newer (MemTable) data,
    /// or sits in a table without usable pre-aggregates (v1/v2/legacy-v3).
    pub agg_fallback_blocks: u64,
}

impl QueryStats {
    /// Read amplification: disk points scanned per returned point.
    ///
    /// Returns `None` for queries with an empty result (the paper averages
    /// over non-empty queries).
    pub fn read_amplification(&self) -> Option<f64> {
        if self.points_returned == 0 {
            return None;
        }
        Some(self.disk_points_scanned as f64 / self.points_returned as f64)
    }

    /// Accumulates another query's counters (for workload averages).
    pub fn accumulate(&mut self, other: &QueryStats) {
        self.tables_read += other.tables_read;
        self.disk_points_scanned += other.disk_points_scanned;
        self.blocks_read += other.blocks_read;
        self.mem_points_scanned += other.mem_points_scanned;
        self.points_returned += other.points_returned;
        self.tables_pruned += other.tables_pruned;
        self.blocks_folded += other.blocks_folded;
        self.agg_fallback_blocks += other.agg_fallback_blocks;
    }
}

/// The result of an aggregation (or one downsampling bucket): the classic
/// min/max/sum/count quartet, foldable from either raw points or v3 index
/// pre-aggregates so the pushdown and decode paths produce bit-identical
/// answers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Agg {
    /// Smallest value (`f64::min` fold; `+inf` while empty).
    pub min: f64,
    /// Largest value (`f64::max` fold; `-inf` while empty).
    pub max: f64,
    /// Sum of values (in-order fold).
    pub sum: f64,
    /// Points covered.
    pub count: u64,
}

impl Default for Agg {
    fn default() -> Self {
        Self {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            count: 0,
        }
    }
}

impl Agg {
    /// Whether any point has been folded in.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds one decoded point's value in.
    pub fn merge_point(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
            self.sum = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
            self.sum += value;
        }
        self.count += 1;
    }

    /// Folds one block's index pre-aggregates in — the pushdown step that
    /// replaces decoding the block. Mirrors `merge_point` applied to each
    /// of the block's points in order.
    pub fn merge_block(&mut self, block: &BlockAggregates) {
        if block.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = block.min;
            self.max = block.max;
            self.sum = block.sum;
        } else {
            self.min = self.min.min(block.min);
            self.max = self.max.max(block.max);
            self.sum += block.sum;
        }
        self.count += u64::from(block.count);
    }

    /// The mean, or `None` for an empty aggregate.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        Some(self.sum / self.count as f64)
    }

    /// Bitwise equality (exact even for NaN and signed zero) — what the
    /// pushdown-vs-decode equivalence proptest asserts.
    pub fn bits_eq(&self, other: &Self) -> bool {
        self.min.to_bits() == other.min.to_bits()
            && self.max.to_bits() == other.max.to_bits()
            && self.sum.to_bits() == other.sum.to_bits()
            && self.count == other.count
    }
}

/// One downsampling bucket: the bucket's start timestamp (inclusive, a
/// multiple of the bucket width by euclidean division) and the aggregate
/// over the points that fall in it.
pub type Bucket = (Timestamp, Agg);

/// A simulated rotating-disk cost model.
///
/// The paper ran its query experiments on an HDD, where latency is
/// `seeks × seek time + points × transfer time`. We measure the seek and
/// point counts exactly and apply fixed costs, preserving the paper's
/// trade-off: `π_s` touches more, smaller SSTables (more seeks), `π_c`
/// scans more useless points per table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Cost of locating + opening one SSTable (ns). HDD seek ≈ 8 ms.
    pub seek_ns: f64,
    /// Cost of reading and deserialising one on-disk point (ns).
    pub point_ns: f64,
    /// Cost of visiting one in-memory point (ns).
    pub mem_point_ns: f64,
}

impl Default for DiskModel {
    fn default() -> Self {
        Self::hdd()
    }
}

impl DiskModel {
    /// A 7200-rpm HDD: ~8 ms average seek, ~150 MB/s sequential transfer
    /// (≈ 100 ns per ~16-byte encoded point).
    pub fn hdd() -> Self {
        Self {
            seek_ns: 8_000_000.0,
            point_ns: 100.0,
            mem_point_ns: 20.0,
        }
    }

    /// A SATA SSD: ~60 µs access, same per-point decode cost.
    pub fn ssd() -> Self {
        Self {
            seek_ns: 60_000.0,
            point_ns: 100.0,
            mem_point_ns: 20.0,
        }
    }

    /// Simulated latency of a query with the given stats, in nanoseconds.
    pub fn latency_ns(&self, stats: &QueryStats) -> f64 {
        stats.tables_read as f64 * self.seek_ns
            + stats.disk_points_scanned as f64 * self.point_ns
            + stats.mem_points_scanned as f64 * self.mem_point_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_amplification_is_scanned_over_returned() {
        let s = QueryStats {
            tables_read: 2,
            disk_points_scanned: 1024,
            points_returned: 128,
            ..QueryStats::default()
        };
        assert_eq!(s.read_amplification(), Some(8.0));
    }

    #[test]
    fn empty_result_has_no_read_amplification() {
        let s = QueryStats::default();
        assert_eq!(s.read_amplification(), None);
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = QueryStats {
            tables_read: 1,
            disk_points_scanned: 10,
            mem_points_scanned: 2,
            points_returned: 5,
            ..QueryStats::default()
        };
        a.accumulate(&a.clone());
        assert_eq!(a.tables_read, 2);
        assert_eq!(a.disk_points_scanned, 20);
        assert_eq!(a.points_returned, 10);
    }

    #[test]
    fn agg_merge_block_matches_per_point_fold() {
        let values = [3.0, -1.5, 7.25, 0.0, 2.5];
        let mut by_point = Agg::default();
        for v in values {
            by_point.merge_point(v);
        }
        let block = BlockAggregates {
            min: -1.5,
            max: 7.25,
            sum: values.iter().sum(),
            count: values.len() as u32,
        };
        let mut by_block = Agg::default();
        by_block.merge_block(&block);
        assert!(by_point.bits_eq(&by_block));
        assert_eq!(by_point.mean(), Some(by_point.sum / 5.0));
    }

    #[test]
    fn empty_agg_merges_are_identity() {
        let mut agg = Agg::default();
        assert!(agg.is_empty());
        assert_eq!(agg.mean(), None);
        agg.merge_block(&BlockAggregates {
            min: 9.0,
            max: 9.0,
            sum: 9.0,
            count: 0,
        });
        assert!(agg.is_empty());
        agg.merge_point(4.0);
        assert_eq!((agg.min, agg.max, agg.sum, agg.count), (4.0, 4.0, 4.0, 1));
    }

    #[test]
    fn folded_blocks_lower_read_amplification() {
        // 2 of 3 blocks folded: only one block's points were scanned, but
        // the aggregate covers all 3 blocks' points.
        let s = QueryStats {
            tables_read: 1,
            disk_points_scanned: 128,
            blocks_read: 1,
            blocks_folded: 2,
            agg_fallback_blocks: 1,
            points_returned: 384,
            ..QueryStats::default()
        };
        assert!(s.read_amplification().expect("non-empty") < 1.0);
    }

    #[test]
    fn hdd_latency_is_seek_dominated() {
        let m = DiskModel::hdd();
        let few_big = QueryStats {
            tables_read: 2,
            disk_points_scanned: 10_000,
            points_returned: 100,
            ..QueryStats::default()
        };
        let many_small = QueryStats {
            tables_read: 20,
            disk_points_scanned: 4_000,
            points_returned: 100,
            ..QueryStats::default()
        };
        // Despite scanning fewer points, many small tables cost more on HDD.
        assert!(m.latency_ns(&many_small) > m.latency_ns(&few_big));
        // On SSD the ordering flips much less dramatically.
        let s = DiskModel::ssd();
        assert!(s.latency_ns(&many_small) < m.latency_ns(&many_small));
    }
}
