//! Query statistics: read amplification and the inputs to the disk-latency
//! model.
//!
//! The paper's query experiments (Figs. 12–14, 20) report two quantities:
//! *read amplification* — points read from disk divided by points returned —
//! and query latency on an HDD, which is dominated by one seek per SSTable
//! touched. [`QueryStats`] records exactly the counts both need.

/// Per-query counters filled in by [`LsmEngine::query`](crate::LsmEngine::query).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// SSTables whose range intersected the query (each costs one seek).
    pub tables_read: u64,
    /// Points read from those SSTables (whole tables are read, as in IoTDB's
    /// chunk-granularity reads — this is what inflates read amplification).
    pub disk_points_scanned: u64,
    /// Blocks decoded when the engine runs with block-granular reads
    /// (zero in whole-table mode).
    pub blocks_read: u64,
    /// Matching points found in MemTables (already in memory; no seek).
    pub mem_points_scanned: u64,
    /// Points in the final result set.
    pub points_returned: u64,
    /// Tables skipped by the pruning filter (v3): their range intersected
    /// the query but index/filter metadata proved them empty of matches, so
    /// no data blocks were touched and no seek was paid.
    pub tables_pruned: u64,
}

impl QueryStats {
    /// Read amplification: disk points scanned per returned point.
    ///
    /// Returns `None` for queries with an empty result (the paper averages
    /// over non-empty queries).
    pub fn read_amplification(&self) -> Option<f64> {
        if self.points_returned == 0 {
            return None;
        }
        Some(self.disk_points_scanned as f64 / self.points_returned as f64)
    }

    /// Accumulates another query's counters (for workload averages).
    pub fn accumulate(&mut self, other: &QueryStats) {
        self.tables_read += other.tables_read;
        self.disk_points_scanned += other.disk_points_scanned;
        self.blocks_read += other.blocks_read;
        self.mem_points_scanned += other.mem_points_scanned;
        self.points_returned += other.points_returned;
        self.tables_pruned += other.tables_pruned;
    }
}

/// A simulated rotating-disk cost model.
///
/// The paper ran its query experiments on an HDD, where latency is
/// `seeks × seek time + points × transfer time`. We measure the seek and
/// point counts exactly and apply fixed costs, preserving the paper's
/// trade-off: `π_s` touches more, smaller SSTables (more seeks), `π_c`
/// scans more useless points per table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Cost of locating + opening one SSTable (ns). HDD seek ≈ 8 ms.
    pub seek_ns: f64,
    /// Cost of reading and deserialising one on-disk point (ns).
    pub point_ns: f64,
    /// Cost of visiting one in-memory point (ns).
    pub mem_point_ns: f64,
}

impl Default for DiskModel {
    fn default() -> Self {
        Self::hdd()
    }
}

impl DiskModel {
    /// A 7200-rpm HDD: ~8 ms average seek, ~150 MB/s sequential transfer
    /// (≈ 100 ns per ~16-byte encoded point).
    pub fn hdd() -> Self {
        Self {
            seek_ns: 8_000_000.0,
            point_ns: 100.0,
            mem_point_ns: 20.0,
        }
    }

    /// A SATA SSD: ~60 µs access, same per-point decode cost.
    pub fn ssd() -> Self {
        Self {
            seek_ns: 60_000.0,
            point_ns: 100.0,
            mem_point_ns: 20.0,
        }
    }

    /// Simulated latency of a query with the given stats, in nanoseconds.
    pub fn latency_ns(&self, stats: &QueryStats) -> f64 {
        stats.tables_read as f64 * self.seek_ns
            + stats.disk_points_scanned as f64 * self.point_ns
            + stats.mem_points_scanned as f64 * self.mem_point_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_amplification_is_scanned_over_returned() {
        let s = QueryStats {
            tables_read: 2,
            disk_points_scanned: 1024,
            points_returned: 128,
            ..QueryStats::default()
        };
        assert_eq!(s.read_amplification(), Some(8.0));
    }

    #[test]
    fn empty_result_has_no_read_amplification() {
        let s = QueryStats::default();
        assert_eq!(s.read_amplification(), None);
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = QueryStats {
            tables_read: 1,
            disk_points_scanned: 10,
            mem_points_scanned: 2,
            points_returned: 5,
            ..QueryStats::default()
        };
        a.accumulate(&a.clone());
        assert_eq!(a.tables_read, 2);
        assert_eq!(a.disk_points_scanned, 20);
        assert_eq!(a.points_returned, 10);
    }

    #[test]
    fn hdd_latency_is_seek_dominated() {
        let m = DiskModel::hdd();
        let few_big = QueryStats {
            tables_read: 2,
            disk_points_scanned: 10_000,
            points_returned: 100,
            ..QueryStats::default()
        };
        let many_small = QueryStats {
            tables_read: 20,
            disk_points_scanned: 4_000,
            points_returned: 100,
            ..QueryStats::default()
        };
        // Despite scanning fewer points, many small tables cost more on HDD.
        assert!(m.latency_ns(&many_small) > m.latency_ns(&few_big));
        // On SSD the ordering flips much less dramatically.
        let s = DiskModel::ssd();
        assert!(s.latency_ns(&many_small) < m.latency_ns(&many_small));
    }
}
