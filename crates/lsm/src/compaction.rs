//! Merge planning and execution — the one compaction pipeline.
//!
//! Following the policy/mechanism split argued by the compaction-design
//! surveys, *what to merge* is decided by [`plan_merge`], a pure function
//! over an in-memory snapshot (no I/O, no engine state), and *how to apply
//! it* by [`execute`], which writes the planned tables, commits the
//! [`VersionEdit`], records the manifest, and does all metric accounting.
//! Both the foreground engine (`C0`/`C_nonseq` merges) and the tiered
//! engine's background L0→run compaction go through this module, so the
//! write-amplification arithmetic the paper measures exists exactly once.

use seplsm_types::{DataPoint, Result};

use crate::iterator::merge_sorted;
use crate::manifest::Manifest;
use crate::metrics::Metrics;
use crate::obs::{Event, ObserverHandle};
use crate::sstable::{SsTableId, SsTableMeta};
use crate::store::TableStore;
use crate::version::{Version, VersionEdit};

/// One run table feeding a merge: its metadata plus decoded contents.
#[derive(Debug, Clone)]
pub struct RunInput {
    /// The table's metadata (consumed by the plan).
    pub meta: SsTableMeta,
    /// Its decoded points.
    pub points: Vec<DataPoint>,
}

/// The planner's decision: which run tables are consumed and what replaces
/// them.
#[derive(Debug, Clone)]
pub struct CompactionPlan {
    /// Run tables consumed by the merge (removed from the version and
    /// deleted from the store by [`execute`]).
    pub inputs: Vec<SsTableId>,
    /// The merged output, split into tables of at most `sstable_points`.
    pub outputs: Vec<Vec<DataPoint>>,
    /// Total points the plan writes (`Σ outputs`), the WA numerator share.
    pub merged_points: u64,
    /// Points re-read out of existing run tables — the rewrite component of
    /// write amplification.
    pub rewritten_points: u64,
    /// Subsequent data points on disk at plan time (Definition 4), when the
    /// Fig. 5 probe was requested.
    pub subsequent: Option<u64>,
    /// `true` when no run table was consumed: the merge degenerates to a
    /// flush (counted as such by [`execute`]).
    pub is_flush: bool,
}

/// Plans a merge-compaction: `fresh` sources (priority-ordered, freshest
/// first — the full buffer, or L0 contents newest-first) are merged with the
/// `overlapping` run tables and re-split into tables of `sstable_points`.
///
/// Pure: operates only on the given snapshot. When `subsequent_base` is set
/// (the run's point count in tables strictly above the fresh minimum), the
/// plan also finishes the Definition 4 probe by counting the subsequent
/// points inside straddling tables.
pub fn plan_merge(
    fresh: Vec<Vec<DataPoint>>,
    overlapping: Vec<RunInput>,
    sstable_points: usize,
    subsequent_base: Option<u64>,
) -> CompactionPlan {
    debug_assert!(sstable_points >= 1, "sstable_points must be >= 1");
    // Engine configs are validated upstream; clamp rather than panic so a
    // degenerate release-mode caller still gets well-formed tables.
    let sstable_points = sstable_points.max(1);
    let fresh_min = fresh
        .iter()
        .filter_map(|src| src.first())
        .map(|p| p.gen_time)
        .min();

    let mut subsequent = subsequent_base;
    let mut inputs = Vec::with_capacity(overlapping.len());
    let mut rewritten: u64 = 0;
    let mut sources = fresh;
    sources.reserve(overlapping.len());
    for input in overlapping {
        rewritten += input.points.len() as u64;
        if let (Some(subseq), Some(min)) = (subsequent.as_mut(), fresh_min) {
            // Tables starting after the fresh minimum were already fully
            // counted by the caller's `points_in_tables_above` probe; only
            // straddlers need their contents inspected.
            if input.meta.range.start <= min {
                *subseq +=
                    input.points.iter().filter(|p| p.gen_time > min).count()
                        as u64;
            }
        }
        inputs.push(input.meta.id);
        sources.push(input.points);
    }
    let is_flush = inputs.is_empty();

    let merged = merge_sorted(sources);
    let merged_points = merged.len() as u64;
    let outputs: Vec<Vec<DataPoint>> = merged
        .chunks(sstable_points)
        .map(<[DataPoint]>::to_vec)
        .collect();

    CompactionPlan {
        inputs,
        outputs,
        merged_points,
        rewritten_points: rewritten,
        subsequent,
        is_flush,
    }
}

/// A plan whose output tables have been written to the store but whose
/// [`VersionEdit`] has not yet been committed — the intermediate state
/// between [`write_outputs`] and [`commit`].
///
/// Splitting execution into *write* (store I/O, no version access),
/// *commit* (version/manifest/metrics, no store I/O), and *retire* (store
/// deletes) lets concurrent engines do the expensive phases without holding
/// their state lock: the background worker writes outputs unlocked, takes
/// the lock only for [`commit`], and retires the inputs unlocked again.
#[derive(Debug)]
pub struct PreparedCompaction {
    /// The plan being executed.
    pub plan: CompactionPlan,
    /// Metadata of the freshly written output tables.
    pub added: Vec<SsTableMeta>,
    /// Encoded bytes written to the store (for `disk_bytes_written`).
    pub bytes_written: u64,
}

/// Phase 1 of plan execution: announces the plan (`FlushStarted` /
/// `CompactionPlanned`) and writes every output table to the store. Touches
/// no version, manifest or metrics state, so callers may run it without
/// holding any engine lock.
///
/// # Errors
/// Storage failures; no version state has been touched, but already-written
/// outputs are left behind for the caller's orphan GC.
pub fn write_outputs(
    plan: CompactionPlan,
    store: &dyn TableStore,
    obs: &ObserverHandle,
) -> Result<PreparedCompaction> {
    if plan.is_flush {
        obs.emit(|| Event::FlushStarted {
            points: plan.merged_points,
        });
    } else {
        obs.emit(|| Event::CompactionPlanned {
            inputs: plan.inputs.len() as u64,
            outputs: plan.outputs.len() as u64,
            rewritten: plan.rewritten_points,
        });
    }
    let mut added = Vec::with_capacity(plan.outputs.len());
    let mut bytes_written = 0u64;
    for chunk in &plan.outputs {
        let (meta, size) = store.put(chunk)?;
        bytes_written += size as u64;
        added.push(meta);
    }
    Ok(PreparedCompaction {
        plan,
        added,
        bytes_written,
    })
}

/// Phase 2 of plan execution: atomically applies the
/// [`VersionEdit::Replace`] (draining L0 when `drain_l0` is set), records
/// the manifest, and does all metric accounting and completion events. Does
/// no table-store I/O — this is the only phase that needs the engine's
/// state lock.
///
/// # Errors
/// Version or manifest failures; the version is only mutated if the edit
/// batch applies cleanly.
pub fn commit(
    prepared: &PreparedCompaction,
    version: &mut Version,
    manifest: Option<&mut Manifest>,
    metrics: &mut Metrics,
    drain_l0: bool,
    obs: &ObserverHandle,
) -> Result<()> {
    let plan = &prepared.plan;
    let edits = [VersionEdit::Replace {
        removed: plan.inputs.clone(),
        added: prepared.added.clone(),
        drain_l0,
    }];
    version.apply(&edits)?;
    if let Some(manifest) = manifest {
        version.record(manifest, &edits)?;
    }
    metrics.disk_bytes_written += prepared.bytes_written;
    metrics.tables_created += prepared.added.len() as u64;
    metrics.disk_points_written += plan.merged_points;
    metrics.rewritten_points += plan.rewritten_points;
    metrics.tables_deleted += plan.inputs.len() as u64;
    if plan.is_flush {
        metrics.flushes += 1;
        obs.emit(|| Event::FlushFinished {
            tables: plan.outputs.len() as u64,
            points: plan.merged_points,
        });
    } else {
        metrics.compactions += 1;
        obs.emit(|| Event::CompactionExecuted {
            inputs: plan.inputs.len() as u64,
            outputs: plan.outputs.len() as u64,
            rewritten: plan.rewritten_points,
            subsequent: plan.subsequent,
        });
    }
    if let Some(subseq) = plan.subsequent {
        metrics.subsequent_counts.push(subseq);
    }
    Ok(())
}

/// Phase 3 of plan execution: deletes the consumed input tables from the
/// store. Runs strictly after [`commit`], so readers resolving the *new*
/// version never look these tables up.
///
/// Deleting through `store` is the decoded-block cache's invalidation
/// contract: when the store is a
/// [`CachedStore`](crate::store::CachedStore), every cached block (and the
/// cached index) of a consumed table is dropped before this returns, so a
/// reader can never be served decoded points of a table the compaction
/// replaced.
///
/// # Errors
/// Storage failures.
pub fn retire_inputs(
    prepared: &PreparedCompaction,
    store: &dyn TableStore,
) -> Result<()> {
    for id in &prepared.plan.inputs {
        store.delete(*id)?;
    }
    Ok(())
}

/// Executes a merge plan in one call: [`write_outputs`], [`commit`],
/// [`retire_inputs`]. The single-threaded engines use this composition; the
/// background engine calls the phases directly so the store I/O runs
/// outside its state lock.
///
/// Merged tables carry correct v3 per-block pre-aggregates by
/// construction: the encoder re-derives min/max/sum/count from the merged
/// points it writes, never from the inputs' index entries. The
/// `check_version_against_store` call below re-decodes every table the
/// plan touched (debug builds), and the v3 decode audits each block's
/// stored aggregates against its actual contents — so an encoder
/// regression that let aggregation pushdown read stale or wrong
/// pre-aggregates fails here, at the compaction that introduced it.
///
/// # Errors
/// Storage or manifest failures; the version is only mutated if the edit
/// batch applies cleanly.
pub fn execute(
    plan: CompactionPlan,
    store: &dyn TableStore,
    version: &mut Version,
    manifest: Option<&mut Manifest>,
    metrics: &mut Metrics,
    drain_l0: bool,
    obs: &ObserverHandle,
) -> Result<()> {
    let prepared = write_outputs(plan, store, obs)?;
    commit(&prepared, version, manifest, metrics, drain_l0, obs)?;
    retire_inputs(&prepared, store)?;
    // Debug builds cross-check the committed version against what the
    // store actually holds after every executed plan.
    crate::invariants::check_version_against_store(version, store)?;
    Ok(())
}

/// Executes an in-order append flush (`C_seq`): stores `points` as fresh
/// tables strictly after the run tail, commits the [`VersionEdit`]s, logs
/// the manifest, and updates `metrics`. Empty input is a no-op.
///
/// # Errors
/// Storage/manifest failures, or a table overlapping the run tail (the
/// caller guarantees the points are in order).
pub fn execute_append(
    points: Vec<DataPoint>,
    sstable_points: usize,
    store: &dyn TableStore,
    version: &mut Version,
    manifest: Option<&mut Manifest>,
    metrics: &mut Metrics,
    obs: &ObserverHandle,
) -> Result<()> {
    if points.is_empty() {
        return Ok(());
    }
    let written = points.len() as u64;
    obs.emit(|| Event::FlushStarted { points: written });
    let mut edits = Vec::new();
    for chunk in points.chunks(sstable_points) {
        let (meta, size) = store.put(chunk)?;
        metrics.disk_bytes_written += size as u64;
        metrics.tables_created += 1;
        edits.push(VersionEdit::AppendRun(meta));
    }
    version.apply(&edits)?;
    if let Some(manifest) = manifest {
        version.record(manifest, &edits)?;
    }
    metrics.disk_points_written += written;
    metrics.flushes += 1;
    obs.emit(|| Event::FlushFinished {
        tables: edits.len() as u64,
        points: written,
    });
    crate::invariants::check_version_against_store(version, store)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(tgs: &[i64]) -> Vec<DataPoint> {
        tgs.iter()
            .map(|&t| DataPoint::new(t, t, t as f64))
            .collect()
    }

    fn input(id: u64, tgs: &[i64]) -> RunInput {
        let points = pts(tgs);
        RunInput {
            meta: SsTableMeta::describe(SsTableId(id), &points),
            points,
        }
    }

    #[test]
    fn plan_splits_output_at_sstable_points() {
        let plan = plan_merge(vec![pts(&[1, 2, 3, 4, 5])], Vec::new(), 2, None);
        assert!(plan.is_flush);
        assert!(plan.inputs.is_empty());
        assert_eq!(plan.merged_points, 5);
        assert_eq!(plan.rewritten_points, 0);
        let sizes: Vec<usize> = plan.outputs.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![2, 2, 1]);
    }

    #[test]
    fn plan_counts_rewrites_and_consumes_overlapping_tables() {
        let plan = plan_merge(
            vec![pts(&[15, 25])],
            vec![input(1, &[10, 20]), input(2, &[30, 40])],
            512,
            None,
        );
        assert!(!plan.is_flush);
        assert_eq!(plan.inputs, vec![SsTableId(1), SsTableId(2)]);
        assert_eq!(plan.rewritten_points, 4);
        assert_eq!(plan.merged_points, 6);
        let tgs: Vec<i64> =
            plan.outputs[0].iter().map(|p| p.gen_time).collect();
        assert_eq!(tgs, vec![10, 15, 20, 25, 30, 40]);
    }

    #[test]
    fn plan_keeps_freshest_duplicate() {
        // Priority order: buffer first, then older tables — buffer wins.
        let fresh = vec![vec![DataPoint::new(10, 99, 42.0)]];
        let plan = plan_merge(fresh, vec![input(1, &[10, 20])], 512, None);
        assert_eq!(plan.merged_points, 2);
        assert_eq!(plan.outputs[0][0].value, 42.0);
        // Same rule between two fresh sources (L0 newest-first).
        let plan = plan_merge(
            vec![
                vec![DataPoint::new(5, 1, 1.0)],
                vec![DataPoint::new(5, 2, 2.0)],
            ],
            Vec::new(),
            512,
            None,
        );
        assert_eq!(plan.merged_points, 1);
        assert_eq!(plan.outputs[0][0].value, 1.0);
    }

    #[test]
    fn plan_finishes_the_subsequent_probe_on_straddlers() {
        // Buffer minimum 15; straddler [10..20] contributes its point at 20,
        // the base (tables entirely above 15) was counted by the caller.
        let plan = plan_merge(
            vec![pts(&[15])],
            vec![input(1, &[10, 20])],
            512,
            Some(7),
        );
        assert_eq!(plan.subsequent, Some(8));
        // Non-straddling input (starts after the minimum): base untouched.
        let plan = plan_merge(
            vec![pts(&[15])],
            vec![input(2, &[16, 20])],
            512,
            Some(7),
        );
        assert_eq!(plan.subsequent, Some(7));
        // No probe requested: nothing recorded.
        assert_eq!(
            plan_merge(vec![pts(&[15])], Vec::new(), 512, None).subsequent,
            None
        );
    }

    #[test]
    fn execute_applies_plan_to_version_store_and_metrics() {
        use crate::store::MemStore;

        let store = MemStore::new();
        let mut version = Version::new();
        let mut metrics = Metrics::default();

        // Seed the run with one table, then merge a buffer into it.
        execute_append(
            pts(&[10, 20]),
            2,
            &store,
            &mut version,
            None,
            &mut metrics,
            &ObserverHandle::detached(),
        )
        .expect("append");
        assert_eq!(metrics.flushes, 1);
        assert_eq!(metrics.disk_points_written, 2);
        assert_eq!(version.run().len(), 1);

        let meta = version.run().tables()[0];
        let plan = plan_merge(
            vec![pts(&[15])],
            vec![RunInput {
                meta,
                points: store.get(meta.id).expect("get"),
            }],
            2,
            None,
        );
        execute(
            plan,
            &store,
            &mut version,
            None,
            &mut metrics,
            false,
            &ObserverHandle::detached(),
        )
        .expect("execute");
        assert_eq!(metrics.compactions, 1);
        assert_eq!(metrics.rewritten_points, 2);
        assert_eq!(metrics.disk_points_written, 5);
        assert_eq!(metrics.tables_deleted, 1);
        version.run().check_invariants().expect("invariant");
        assert_eq!(version.run().total_points(), 3);
        // The consumed table is gone from the store.
        assert!(store.get(meta.id).is_err());
    }

    #[test]
    fn merged_tables_carry_correct_pre_aggregates() {
        // The aggregation-pushdown invariant: after a merge, every block's
        // index pre-aggregates equal an in-order fold of the block's
        // decoded points (bitwise, including the count).
        use crate::sstable::format::block_aggregates;
        use crate::store::{load_index, MemStore};
        use seplsm_types::TimeRange;

        let store = MemStore::new(); // default options: v3
        let mut version = Version::new();
        let mut metrics = Metrics::default();
        execute_append(
            pts(&[10, 20, 30, 40, 50, 60]),
            3,
            &store,
            &mut version,
            None,
            &mut metrics,
            &ObserverHandle::detached(),
        )
        .expect("append");
        // Merge stragglers that overlap both appended tables, with values
        // that shift every block's min/max/sum.
        let mut fresh = pts(&[15, 45]);
        fresh[0].value = -7.5;
        fresh[1].value = 99.25;
        let inputs: Vec<RunInput> = version
            .run()
            .tables()
            .iter()
            .map(|&meta| RunInput {
                meta,
                points: store.get(meta.id).expect("get"),
            })
            .collect();
        let plan = plan_merge(vec![fresh], inputs, 3, None);
        execute(
            plan,
            &store,
            &mut version,
            None,
            &mut metrics,
            false,
            &ObserverHandle::detached(),
        )
        .expect("execute");
        assert_eq!(metrics.compactions, 1);
        let mut audited = 0;
        for meta in version.run().tables() {
            let (index, _) =
                load_index(&store, meta.id).expect("load").expect("index");
            for span in &index.blocks {
                let stored = span.agg.expect("v3 tables carry aggregates");
                let read = store
                    .get_range(meta.id, TimeRange::new(span.first, span.last))
                    .expect("read block");
                let actual =
                    block_aggregates(&read.points).expect("non-empty block");
                assert!(
                    actual.bits_eq(&stored),
                    "table {} block [{}, {}]: stored {:?} != actual {:?}",
                    meta.id,
                    span.first,
                    span.last,
                    stored,
                    actual
                );
                audited += 1;
            }
        }
        assert!(audited >= 3, "expected multiple blocks, got {audited}");
    }

    #[test]
    fn plan_is_pure_over_its_snapshot() {
        let fresh = vec![pts(&[1, 2])];
        let tables = vec![input(9, &[2, 3])];
        let a = plan_merge(fresh.clone(), tables.clone(), 2, Some(0));
        let b = plan_merge(fresh, tables, 2, Some(0));
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.merged_points, b.merged_points);
        assert_eq!(a.rewritten_points, b.rewritten_points);
        assert_eq!(a.subsequent, b.subsequent);
        assert_eq!(a.outputs.len(), b.outputs.len());
    }
}
