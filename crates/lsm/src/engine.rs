//! The foreground leveled LSM engine — a thin composition of the kernel.
//!
//! This is the storage substrate the paper's experiments run on: a
//! single-series leveled LSM-tree whose level-1 run holds non-overlapping
//! SSTables of (by default) 512 points, ingesting points in arrival order
//! under either policy:
//!
//! * **`π_c`** — one MemTable `C0`; when full, its contents are merged with
//!   every SSTable overlapping the buffered generation-time range and the
//!   result is re-split into fresh SSTables (a *compaction*; the rewritten
//!   points are what write amplification counts).
//! * **`π_s`** — points are classified against `LAST(R).t_g` (Definition 3):
//!   in-order points go to `C_seq`, which flushes by *appending* tables after
//!   the run tail (no rewrite); out-of-order points go to `C_nonseq`, whose
//!   filling triggers the same merge-compaction as `π_c` (one per *phase*,
//!   §IV).
//!
//! All of that behaviour now lives in the storage kernel and this engine
//! only composes it: classification and buffering in
//! [`PolicyBuffers`](crate::buffer::PolicyBuffers), merge planning in
//! [`compaction::plan_merge`], plan execution and metric accounting in
//! [`compaction::execute`], and table-level state in
//! [`Version`](crate::version::Version). The engine is instrumented for
//! every quantity the paper measures: write amplification, per-compaction
//! subsequent-point counts (Fig. 5), windowed WA snapshots (Fig. 10), and
//! per-query read statistics (Figs. 12–14).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use seplsm_types::{DataPoint, Error, Policy, Result, TimeRange, Timestamp};

use crate::admission::{
    AdmissionController, AdmissionDepth, AdmissionOutcome, AdmissionStats,
    StallTransition, Watermarks,
};
use crate::buffer::{FlushTrigger, PolicyBuffers};
use crate::cache::BlockCache;
use crate::compaction::{self, RunInput};
use crate::fault::FaultPlan;
use crate::invariants::{self, InvariantChecker};
use crate::iterator::merge_sorted;
use crate::level::Run;
use crate::manifest::Manifest;
use crate::metrics::{Metrics, WaSnapshot};
use crate::obs::{Event, Observer, ObserverHandle, RecoveryStepKind};
use crate::query::QueryStats;
use crate::recovery::{
    self, QuarantinedTable, RecoveryMode, RecoveryOptions, RecoveryReport,
};
use crate::store::{CachedStore, MemStore, TableStore};
use crate::version::Version;
use crate::wal::Wal;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Buffering policy (`π_c` or `π_s(n_seq)`).
    pub policy: Policy,
    /// Target SSTable size in points (the paper uses 512).
    pub sstable_points: usize,
    /// If set, record a WA snapshot every this many user points (Fig. 10).
    pub wa_snapshot_every: Option<u64>,
    /// If `true`, count the subsequent data points on disk at the start of
    /// every merge (the Fig. 5 probe). Costs extra reads; off by default.
    pub record_subsequent: bool,
    /// If `true`, range queries read SSTables block-by-block through
    /// [`TableStore::get_range`] instead of decoding whole tables — only
    /// effective with a v2 (compressed-block) store. Off by default, which
    /// matches IoTDB's chunk-granularity reads that the paper measures.
    pub block_reads: bool,
}

impl EngineConfig {
    /// The paper's default SSTable size, in points.
    pub const DEFAULT_SSTABLE_POINTS: usize = 512;

    /// Configuration with the given policy and paper-default table size.
    ///
    /// This is the one constructor: the *policy* (the paper knob —
    /// [`Policy::conventional`], [`Policy::separation`]) is chosen first
    /// and passed in; `EngineConfig` itself only adds engine mechanics
    /// (table size, snapshots, probes) on top of it, and the adaptive
    /// controller layers (`AdaptiveConfig` in `seplsm-core`) sit entirely
    /// above both.
    pub fn new(policy: Policy) -> Self {
        Self {
            policy,
            sstable_points: Self::DEFAULT_SSTABLE_POINTS,
            wa_snapshot_every: None,
            record_subsequent: false,
            block_reads: false,
        }
    }

    /// Enables block-granular query reads (see [`EngineConfig::block_reads`]).
    pub fn with_block_reads(mut self) -> Self {
        self.block_reads = true;
        self
    }

    /// Sets the target SSTable size in points.
    pub fn with_sstable_points(mut self, points: usize) -> Self {
        self.sstable_points = points;
        self
    }

    /// Enables windowed WA snapshots every `every` user points.
    pub fn with_wa_snapshots(mut self, every: u64) -> Self {
        self.wa_snapshot_every = Some(every);
        self
    }

    /// Enables the per-compaction subsequent-point probe.
    pub fn with_subsequent_probe(mut self) -> Self {
        self.record_subsequent = true;
        self
    }

    pub(crate) fn validate(&self) -> Result<()> {
        if self.sstable_points == 0 {
            return Err(Error::InvalidConfig(
                "sstable_points must be >= 1".into(),
            ));
        }
        if self.policy.total_capacity() == 0 {
            return Err(Error::InvalidConfig(
                "memory budget must be >= 1 point".into(),
            ));
        }
        Ok(())
    }
}

/// The one way to open an [`LsmEngine`]: a builder covering every
/// combination the old constructor family
/// (`new`/`in_memory`/`with_wal`/`with_manifest`/`recover*`/
/// `attach_faults`) used to spell out.
///
/// ```
/// use seplsm_lsm::{EngineConfig, OpenOptions};
/// use seplsm_types::Policy;
/// # fn main() -> seplsm_types::Result<()> {
/// let engine =
///     OpenOptions::new(EngineConfig::new(Policy::conventional(512)))
///         .open()?;
/// # drop(engine); Ok(())
/// # }
/// ```
///
/// * [`OpenOptions::open`] starts a fresh engine (an omitted
///   [`OpenOptions::store`] defaults to an in-memory store);
/// * [`OpenOptions::open_or_recover`] rebuilds from existing state — from
///   the manifest when one is configured, otherwise by scanning the store —
///   and returns the [`RecoveryReport`] alongside the engine.
///
/// A configured [`OpenOptions::faults`] plan is attached to the WAL and
/// manifest only after open/recovery completes, so a crash schedule's op
/// numbering starts at the first workload-driven disk touch (matching the
/// old `attach_faults`-after-construction idiom). The
/// [`OpenOptions::observer`] sink is threaded through the engine, WAL,
/// manifest, and fault plan, so one sink sees the whole storage kernel.
#[must_use = "OpenOptions does nothing until .open()/.open_or_recover()"]
pub struct OpenOptions {
    config: EngineConfig,
    store: Option<Arc<dyn TableStore>>,
    wal: Option<PathBuf>,
    manifest: Option<PathBuf>,
    recovery: RecoveryOptions,
    faults: Option<Arc<FaultPlan>>,
    observer: ObserverHandle,
    cache: Option<Arc<BlockCache>>,
    watermarks: Watermarks,
}

impl std::fmt::Debug for OpenOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpenOptions")
            .field("policy", &self.config.policy)
            .field("wal", &self.wal)
            .field("manifest", &self.manifest)
            .field("recovery", &self.recovery)
            .field("faults", &self.faults.is_some())
            .field("observer", &self.observer.is_attached())
            .field("cache", &self.cache.is_some())
            .field("watermarks", &self.watermarks)
            .finish()
    }
}

impl OpenOptions {
    /// Starts a builder for the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Self {
            config,
            store: None,
            wal: None,
            manifest: None,
            recovery: RecoveryOptions::strict(),
            faults: None,
            observer: ObserverHandle::detached(),
            cache: None,
            watermarks: Watermarks::default(),
        }
    }

    /// Sets the slowdown/stop admission watermarks consulted before every
    /// buffer insert (default [`Watermarks::default`]: 8/16). The
    /// synchronous engine flushes inline, so its depth only leaves zero
    /// transiently; the knob exists so all three engines share one
    /// admission contract.
    pub fn admission(mut self, watermarks: Watermarks) -> Self {
        self.watermarks = watermarks;
        self
    }

    /// Backs the engine with `store`. Defaults to a fresh in-memory store.
    pub fn store(mut self, store: Arc<dyn TableStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Attaches a write-ahead log at `path`: appended points are logged
    /// before being buffered, and [`OpenOptions::open_or_recover`] replays
    /// the log into the buffers.
    pub fn wal(mut self, path: impl Into<PathBuf>) -> Self {
        self.wal = Some(path.into());
        self
    }

    /// Attaches a manifest at `path`: run-membership changes are logged,
    /// and [`OpenOptions::open_or_recover`] rebuilds from the manifest in
    /// O(metadata) instead of reading every table.
    pub fn manifest(mut self, path: impl Into<PathBuf>) -> Self {
        self.manifest = Some(path.into());
        self
    }

    /// Sets the [`RecoveryOptions`] used by
    /// [`OpenOptions::open_or_recover`] (default: strict).
    pub fn recovery(mut self, options: RecoveryOptions) -> Self {
        self.recovery = options;
        self
    }

    /// Attaches a fault plan to the engine's WAL and manifest once opening
    /// completes. The table store is attached separately at construction
    /// ([`FileStore::with_faults`](crate::FileStore::with_faults) or a
    /// [`FaultStore`](crate::fault::FaultStore) wrapper) — share one plan
    /// across all three for a single global op numbering.
    pub fn faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Delivers every storage-kernel [`Event`] to `sink`.
    pub fn observer(mut self, sink: Arc<dyn Observer>) -> Self {
        self.observer = ObserverHandle::attached(sink);
        self
    }

    /// Serves table reads through `cache` (a shared [`BlockCache`]): the
    /// store is wrapped in a [`CachedStore`] before the engine opens, so
    /// queries, merge-compaction input loading and recovery reads all hit
    /// the cache, and tables deleted by compactions are strictly
    /// invalidated. Off by default (reads go straight to the store).
    pub fn cache(mut self, cache: Arc<BlockCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    fn store_or_default(
        store: Option<Arc<dyn TableStore>>,
    ) -> Arc<dyn TableStore> {
        store.unwrap_or_else(|| Arc::new(MemStore::new()))
    }

    /// Wraps `store` in a [`CachedStore`] when a cache is configured.
    pub(crate) fn wrap_cache(
        store: Arc<dyn TableStore>,
        cache: Option<Arc<BlockCache>>,
        obs: &ObserverHandle,
    ) -> Arc<dyn TableStore> {
        match cache {
            Some(cache) => {
                Arc::new(CachedStore::with_observer(store, cache, obs.clone()))
            }
            None => store,
        }
    }

    /// Opens a fresh engine (ignoring any recoverable state on disk).
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] for degenerate configurations; I/O errors
    /// opening the WAL or manifest.
    pub fn open(self) -> Result<LsmEngine> {
        let store = Self::wrap_cache(
            Self::store_or_default(self.store),
            self.cache,
            &self.observer,
        );
        let mut engine = LsmEngine::new(self.config, store)?;
        engine.obs = self.observer;
        engine.admission = AdmissionController::new(self.watermarks);
        if let Some(path) = self.wal {
            engine = engine.with_wal(path)?;
        }
        if let Some(path) = self.manifest {
            engine = engine.with_manifest(path)?;
        }
        engine.finish_open(self.faults);
        Ok(engine)
    }

    /// Rebuilds an engine from existing state: from the manifest when one
    /// is configured (O(metadata)), otherwise by scanning the store; a
    /// configured WAL is replayed into the buffers either way.
    ///
    /// # Errors
    /// In strict mode, any damage; in salvage mode only unrecoverable
    /// failures (see [`RecoveryOptions`]).
    pub fn open_or_recover(self) -> Result<(LsmEngine, RecoveryReport)> {
        let store = Self::wrap_cache(
            Self::store_or_default(self.store),
            self.cache,
            &self.observer,
        );
        let (mut engine, report) = match self.manifest {
            Some(manifest_path) => LsmEngine::recover_from_manifest_with(
                self.config,
                store,
                manifest_path,
                self.wal,
                self.recovery,
                self.observer,
            )?,
            None => LsmEngine::recover_with(
                self.config,
                store,
                self.wal,
                self.recovery,
                self.observer,
            )?,
        };
        // A fresh controller: recovery never resumes into a stalled state.
        engine.admission = AdmissionController::new(self.watermarks);
        engine.finish_open(self.faults);
        Ok((engine, report))
    }
}

/// One fold input produced by the aggregation-pushdown planner: a whole
/// block answered from its index pre-aggregates, or one decoded point.
enum AggItem {
    Block(crate::sstable::BlockAggregates),
    Point(f64),
}

/// A single-series leveled LSM engine.
pub struct LsmEngine {
    config: EngineConfig,
    store: Arc<dyn TableStore>,
    version: Version,
    buffers: PolicyBuffers,
    metrics: Metrics,
    wal: Option<Wal>,
    manifest: Option<Manifest>,
    /// Largest generation time ever appended (memory or disk), used by
    /// recent-data query workloads.
    max_gen_seen: Option<Timestamp>,
    /// Debug-build temporal invariants (counter monotonicity, pivot
    /// no-regression); no-op in release builds.
    invariants: InvariantChecker,
    /// Watermark-gated admission, consulted before every buffer insert.
    /// The synchronous engine drains inline, so depth rarely leaves zero —
    /// but the outcome contract and counters are shared with the tiered
    /// engines.
    admission: AdmissionController,
    /// Typed event sink; detached unless set through
    /// [`OpenOptions::observer`].
    obs: ObserverHandle,
}

impl std::fmt::Debug for LsmEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsmEngine")
            .field("policy", &self.config.policy)
            .field("run_tables", &self.version.run().len())
            .field("buffered", &self.buffers.buffered_points())
            .finish()
    }
}

impl LsmEngine {
    /// Creates an engine over the given table store. Shorthand for
    /// [`OpenOptions::new`]`(config).store(store).open()` — use the builder
    /// for anything beyond a bare engine.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] for degenerate configurations.
    pub fn new(
        config: EngineConfig,
        store: Arc<dyn TableStore>,
    ) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            buffers: PolicyBuffers::for_policy(config.policy),
            config,
            store,
            version: Version::new(),
            metrics: Metrics::default(),
            wal: None,
            manifest: None,
            max_gen_seen: None,
            invariants: InvariantChecker::new(),
            admission: AdmissionController::new(Watermarks::default()),
            obs: ObserverHandle::detached(),
        })
    }

    /// Creates an engine backed by an in-memory store — the configuration
    /// used by the model-validation experiments. Shorthand for
    /// [`OpenOptions::new`]`(config).open()`.
    pub fn in_memory(config: EngineConfig) -> Result<Self> {
        Self::new(config, Arc::new(MemStore::new()))
    }

    /// Attaches a write-ahead log at `path`; appended points are logged
    /// before being buffered.
    pub(crate) fn with_wal(mut self, path: impl AsRef<Path>) -> Result<Self> {
        let mut wal = Wal::open(path)?;
        wal.attach_observer(self.obs.clone());
        self.wal = Some(wal);
        Ok(self)
    }

    /// Attaches a manifest at `path`: run-membership changes are logged so
    /// recovery no longer needs to read every table.
    pub(crate) fn with_manifest(
        mut self,
        path: impl AsRef<Path>,
    ) -> Result<Self> {
        let mut manifest = Manifest::open(path)?;
        manifest.attach_observer(self.obs.clone());
        // Snapshot current membership so a manifest attached mid-life is
        // immediately authoritative.
        manifest.rewrite(self.version.run().tables())?;
        self.manifest = Some(manifest);
        Ok(self)
    }

    /// Replaces the engine's event sink; used by the multi-series engine
    /// when lazily creating per-series engines. Must run before a WAL or
    /// manifest attaches (they clone the handle).
    pub(crate) fn set_observer(&mut self, obs: ObserverHandle) {
        self.obs = obs;
    }

    /// Post-open fixup shared by [`OpenOptions::open`] and
    /// [`OpenOptions::open_or_recover`]: faults attach only after opening
    /// completes so the op schedule starts at the first workload-driven
    /// disk touch, and the plan reports injections to the same sink.
    fn finish_open(&mut self, faults: Option<Arc<FaultPlan>>) {
        if let Some(plan) = faults {
            plan.set_observer(self.obs.clone());
            self.attach_faults(&plan);
        }
    }

    /// Scan-the-store recovery: the run is reconstructed from the stored
    /// tables and buffered points are replayed from the log. Salvage mode
    /// quarantines unreadable tables and reports the losses instead of
    /// aborting; `gc_orphans` sweeps stored tables the recovered run does
    /// not reference.
    ///
    /// Replayed points re-enter the user-point counters, so metrics restart
    /// from the recovered memory state rather than the historical total.
    pub(crate) fn recover_with(
        config: EngineConfig,
        store: Arc<dyn TableStore>,
        wal_path: Option<PathBuf>,
        options: RecoveryOptions,
        obs: ObserverHandle,
    ) -> Result<(Self, RecoveryReport)> {
        config.validate()?;
        let mut report = RecoveryReport::default();
        let mut metas = Vec::new();
        let mut scanned = 0u64;
        for id in store.list()? {
            scanned += 1;
            match store.get(id) {
                Ok(points) if !points.is_empty() => metas
                    .push(crate::sstable::SsTableMeta::describe(id, &points)),
                Ok(_) => {
                    let err = Error::Corrupt(format!("table {id} is empty"));
                    if options.mode == RecoveryMode::Strict {
                        return Err(err);
                    }
                    store.quarantine(id)?;
                    obs.emit(|| Event::Quarantine { table: id.0 });
                    report.quarantined.push(QuarantinedTable {
                        id,
                        range: None,
                        reason: err.to_string(),
                    });
                }
                Err(err) => {
                    if options.mode == RecoveryMode::Strict {
                        return Err(err);
                    }
                    store.quarantine(id)?;
                    obs.emit(|| Event::Quarantine { table: id.0 });
                    report.quarantined.push(QuarantinedTable {
                        id,
                        range: None,
                        reason: err.to_string(),
                    });
                }
            }
        }
        obs.emit(|| Event::RecoveryStep {
            step: RecoveryStepKind::StoreScanned,
            items: scanned,
        });
        if options.mode == RecoveryMode::Salvage {
            // A crashed merge can leave both an old table and the newer
            // table that re-wrote it; keep the newer superset.
            metas = recovery::salvage_tables(
                store.as_ref(),
                metas,
                &mut report,
                &obs,
            )?;
        }
        let run = Run::from_tables(metas)?;
        let version = Version::from_levels(run, Vec::new());
        let max_gen_seen = version.run().last_gen_time();
        let invariants = InvariantChecker::seeded(&version);
        let mut engine = Self {
            buffers: PolicyBuffers::for_policy(config.policy),
            config,
            store,
            version,
            metrics: Metrics::default(),
            wal: None,
            manifest: None,
            max_gen_seen,
            invariants,
            admission: AdmissionController::new(Watermarks::default()),
            obs,
        };
        if let Some(path) = wal_path {
            engine.replay_wal(path, options.mode, &mut report)?;
        }
        if options.gc_orphans {
            let live = engine.live_table_ids();
            recovery::gc_orphans(
                engine.store.as_ref(),
                &live,
                &mut report,
                &engine.obs,
            )?;
        }
        Ok((engine, report))
    }

    /// Replays (strict or salvage) the WAL at `path` into the buffers, then
    /// attaches a compacted log containing only the surviving points.
    fn replay_wal(
        &mut self,
        path: PathBuf,
        mode: RecoveryMode,
        report: &mut RecoveryReport,
    ) -> Result<()> {
        let replayed = match mode {
            RecoveryMode::Strict => Wal::replay(&path)?,
            RecoveryMode::Salvage => {
                let (points, dropped) = Wal::replay_salvage(&path)?;
                report.wal_records_dropped += dropped;
                points
            }
        };
        self.obs.emit(|| Event::RecoveryStep {
            step: RecoveryStepKind::WalReplayed,
            items: replayed.len() as u64,
        });
        for p in &replayed {
            self.append_internal(*p, false)?;
        }
        let mut wal = Wal::open(&path)?;
        wal.attach_observer(self.obs.clone());
        wal.rewrite(&self.buffered_snapshot())?;
        self.wal = Some(wal);
        Ok(())
    }

    pub(crate) fn live_table_ids(
        &self,
    ) -> std::collections::HashSet<crate::sstable::SsTableId> {
        self.version
            .run()
            .tables()
            .iter()
            .chain(self.version.l0())
            .map(|m| m.id)
            .collect()
    }

    /// Rebuilds an engine from the manifest instead of reading every table:
    /// O(metadata) recovery. The WAL (if any) is replayed into the buffers
    /// as in [`LsmEngine::recover_with`]. Salvage mode uses the longest
    /// valid manifest prefix, quarantines tables that are unreadable or
    /// disagree with their metadata, and reports every loss; `gc_orphans`
    /// sweeps stored tables the recovered run does not reference (debris
    /// from a crash between a compaction's output writes and its manifest
    /// record).
    pub(crate) fn recover_from_manifest_with(
        config: EngineConfig,
        store: Arc<dyn TableStore>,
        manifest_path: PathBuf,
        wal_path: Option<PathBuf>,
        options: RecoveryOptions,
        obs: ObserverHandle,
    ) -> Result<(Self, RecoveryReport)> {
        config.validate()?;
        let mut report = RecoveryReport::default();
        let metas = match options.mode {
            RecoveryMode::Strict => Manifest::replay(&manifest_path)?,
            RecoveryMode::Salvage => {
                let (run, l0, dropped) =
                    Manifest::replay_levels_salvage(&manifest_path)?;
                if !l0.is_empty() {
                    // A tiered engine's manifest — wrong engine, not
                    // damage; salvage must not silently drop a level.
                    return Err(Error::Corrupt(
                        "manifest contains L0 records; recover with \
                         TieredEngine"
                            .into(),
                    ));
                }
                report.manifest_records_dropped += dropped;
                recovery::salvage_tables(
                    store.as_ref(),
                    run,
                    &mut report,
                    &obs,
                )?
            }
        };
        obs.emit(|| Event::RecoveryStep {
            step: RecoveryStepKind::ManifestReplayed,
            items: metas.len() as u64,
        });
        let run = Run::from_tables(metas)?;
        let version = Version::from_levels(run, Vec::new());
        let max_gen_seen = version.run().last_gen_time();
        let invariants = InvariantChecker::seeded(&version);
        let mut engine = Self {
            buffers: PolicyBuffers::for_policy(config.policy),
            config,
            store,
            version,
            metrics: Metrics::default(),
            wal: None,
            manifest: None,
            max_gen_seen,
            invariants,
            admission: AdmissionController::new(Watermarks::default()),
            obs,
        };
        if let Some(path) = wal_path {
            engine.replay_wal(path, options.mode, &mut report)?;
        }
        let mut manifest = Manifest::open(&manifest_path)?;
        manifest.attach_observer(engine.obs.clone());
        manifest.rewrite(engine.version.run().tables())?;
        engine.manifest = Some(manifest);
        if options.gc_orphans {
            let live = engine.live_table_ids();
            recovery::gc_orphans(
                engine.store.as_ref(),
                &live,
                &mut report,
                &engine.obs,
            )?;
        }
        Ok((engine, report))
    }

    /// Attaches a fault plan to the engine's WAL and manifest (if present)
    /// so their disk touches join the plan's op schedule.
    pub(crate) fn attach_faults(&mut self, plan: &Arc<FaultPlan>) {
        if let Some(wal) = self.wal.as_mut() {
            wal.attach_faults(Arc::clone(plan));
        }
        if let Some(manifest) = self.manifest.as_mut() {
            manifest.attach_faults(Arc::clone(plan));
        }
    }

    /// Full integrity audit: structural version invariants plus a complete
    /// decode of every referenced table against its metadata. Runs in
    /// release builds too (unlike the per-edit debug checks) — this is the
    /// post-recovery acceptance test of the crash-schedule harness.
    ///
    /// # Errors
    /// [`Error::Corrupt`] (or a store read error) on the first violation.
    pub fn check_integrity(&self) -> Result<()> {
        invariants::audit_version_against_store(
            &self.version,
            self.store.as_ref(),
        )
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The active buffering policy.
    pub fn policy(&self) -> Policy {
        self.config.policy
    }

    /// Cumulative metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The level-1 run.
    pub fn run(&self) -> &Run {
        self.version.run()
    }

    /// The table-level state (run + edit history head).
    pub fn version(&self) -> &Version {
        &self.version
    }

    /// `LAST(R).t_g`: the latest generation time on disk.
    pub fn last_disk_gen_time(&self) -> Option<Timestamp> {
        self.version.run().last_gen_time()
    }

    /// Largest generation time ever appended (buffered or on disk).
    pub fn max_gen_time(&self) -> Option<Timestamp> {
        self.max_gen_seen
    }

    /// Number of points currently buffered in MemTables.
    pub fn buffered_points(&self) -> usize {
        self.buffers.buffered_points()
    }

    /// All currently buffered points, sorted by generation time.
    pub fn buffered_snapshot(&self) -> Vec<DataPoint> {
        self.buffers.snapshot_sorted()
    }

    /// Writes one point, reporting how admission treated it. The
    /// synchronous engine flushes inline, so its backlog depth rarely
    /// leaves zero and appends are almost always `Admitted`; the typed
    /// outcome exists so all three engines share one admission contract.
    ///
    /// # Errors
    /// Storage or WAL failures; the engine state stays consistent (the point
    /// may be buffered even if a triggered flush failed).
    pub fn append(&mut self, p: DataPoint) -> Result<AdmissionOutcome> {
        self.append_internal(p, true)
    }

    /// Consults the admission controller against the version's L0 +
    /// flushing depth. A `Stalled` verdict drains inline via
    /// [`LsmEngine::flush_all`] and closes the episode immediately — the
    /// synchronous engine has no background worker to wait on.
    fn admit(&mut self) -> Result<AdmissionOutcome> {
        let depth = AdmissionDepth {
            l0_tables: self.version.l0().len(),
            pending_flushes: self.version.flushing().len(),
        };
        let decision = self.admission.admit(depth);
        match decision.transition {
            Some(StallTransition::Began) => {
                self.metrics.write_stalls += 1;
                let d = depth.combined() as u64;
                self.obs.emit(|| Event::WriteStallBegin { depth: d });
            }
            Some(StallTransition::Ended { ticks }) => {
                self.metrics.stall_ticks += ticks;
                self.obs.emit(|| Event::WriteStallEnd { ticks });
            }
            None => {}
        }
        match decision.outcome {
            AdmissionOutcome::Delayed { ticks } => {
                self.metrics.delayed_appends += 1;
                self.metrics.stall_ticks += ticks;
                self.obs.emit(|| Event::AdmissionDelayed { ticks });
                Ok(AdmissionOutcome::Delayed { ticks })
            }
            AdmissionOutcome::Stalled => {
                self.flush_all()?;
                if let Some(ticks) = self.admission.interrupt_stall() {
                    self.metrics.stall_ticks += ticks;
                    self.obs.emit(|| Event::WriteStallEnd { ticks });
                }
                Ok(AdmissionOutcome::Stalled)
            }
            AdmissionOutcome::Admitted => Ok(AdmissionOutcome::Admitted),
        }
    }

    /// Snapshot of the admission controller's counters.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.admission.stats()
    }

    fn append_internal(
        &mut self,
        p: DataPoint,
        log_wal: bool,
    ) -> Result<AdmissionOutcome> {
        let outcome = self.admit()?;
        if log_wal {
            if let Some(wal) = self.wal.as_mut() {
                wal.append(&p)?;
            }
        }
        self.metrics.user_points += 1;
        self.max_gen_seen =
            Some(self.max_gen_seen.map_or(p.gen_time, |m| m.max(p.gen_time)));

        // Definition 3 pivot: `LAST(R).t_g`.
        let pivot = self.version.run().last_gen_time();
        self.obs.emit(|| Event::PointClassified {
            in_order: pivot.is_none_or(|pv| p.gen_time > pv),
        });
        let trigger = self.buffers.insert(p, pivot);
        self.flush(trigger)?;

        if let Some(every) = self.config.wa_snapshot_every {
            if self.metrics.user_points % every == 0 {
                self.metrics.wa_snapshots.push(WaSnapshot {
                    user_points: self.metrics.user_points,
                    disk_points_written: self.metrics.disk_points_written,
                });
            }
        }
        Ok(outcome)
    }

    fn flush(&mut self, trigger: FlushTrigger) -> Result<()> {
        if trigger == FlushTrigger::None {
            return Ok(());
        }
        let points = self.buffers.take(trigger);
        self.obs.emit(|| Event::MemtableSealed {
            points: points.len() as u64,
        });
        if trigger.is_merge() {
            self.merge_into_run(points)?;
        } else {
            self.flush_in_order(points)?;
        }
        self.compact_wal()?;
        // Temporal invariants after every flush/compaction; the store
        // cross-check already ran inside the plan executor.
        self.invariants
            .observe_metrics(&self.version, &self.metrics)
    }

    /// `C_seq` flush path: the points are strictly in order w.r.t. the run
    /// tail, so new SSTables are appended without rewriting anything.
    fn flush_in_order(&mut self, points: Vec<DataPoint>) -> Result<()> {
        if points.is_empty() {
            return Ok(());
        }
        if let Some(tail) = self.version.run().last_gen_time() {
            if points[0].gen_time <= tail {
                // Should be unreachable given the routing invariant; fall
                // back to a merge to preserve correctness over speed.
                return self.merge_into_run(points);
            }
        }
        compaction::execute_append(
            points,
            self.config.sstable_points,
            self.store.as_ref(),
            &mut self.version,
            self.manifest.as_mut(),
            &mut self.metrics,
            &self.obs,
        )
    }

    /// Merge-compaction: plan the merge of `points` with every overlapping
    /// SSTable (pure), then execute the plan against store/version/metrics.
    fn merge_into_run(&mut self, points: Vec<DataPoint>) -> Result<()> {
        if points.is_empty() {
            return Ok(());
        }
        let buf_min = points[0].gen_time;
        let buf_max = points[points.len() - 1].gen_time;
        let overlapping = self
            .version
            .run()
            .overlapping(TimeRange::new(buf_min, buf_max));
        let subsequent_base = if self.config.record_subsequent {
            Some(self.version.run().points_in_tables_above(buf_min))
        } else {
            None
        };
        let mut inputs = Vec::with_capacity(overlapping.len());
        for meta in overlapping {
            inputs.push(RunInput {
                meta,
                points: self.store.get(meta.id)?,
            });
        }
        let plan = compaction::plan_merge(
            vec![points],
            inputs,
            self.config.sstable_points,
            subsequent_base,
        );
        compaction::execute(
            plan,
            self.store.as_ref(),
            &mut self.version,
            self.manifest.as_mut(),
            &mut self.metrics,
            false,
            &self.obs,
        )
    }

    /// Rewrites the WAL to contain only the still-buffered points.
    fn compact_wal(&mut self) -> Result<()> {
        if self.wal.is_none() {
            return Ok(());
        }
        let survivors = self.buffered_snapshot();
        match self.wal.as_mut() {
            Some(wal) => wal.rewrite(&survivors),
            None => Ok(()),
        }
    }

    /// Flushes and fsyncs the write-ahead log (no-op without a WAL). Call
    /// after a batch of appends to make buffered points durable without
    /// forcing SSTable flushes.
    ///
    /// # Errors
    /// I/O failures.
    pub fn sync_wal(&mut self) -> Result<()> {
        if let Some(wal) = self.wal.as_mut() {
            wal.sync()?;
        }
        Ok(())
    }

    /// Forces all buffered points to disk (`C_seq` first so the in-order
    /// append path is preserved, then the merging buffer).
    ///
    /// # Errors
    /// Storage failures.
    pub fn flush_all(&mut self) -> Result<()> {
        let drained = self.buffers.drain_all();
        self.flush_in_order(drained.in_order)?;
        self.merge_into_run(drained.merging)?;
        self.compact_wal()?;
        if let Some(wal) = self.wal.as_mut() {
            wal.sync()?;
        }
        self.invariants
            .observe_metrics(&self.version, &self.metrics)
    }

    /// Switches the buffering policy without touching the disk: buffered
    /// points are re-routed through [`PolicyBuffers::migrate`] into the new
    /// MemTable set (which may trigger flushes if the new buffers are
    /// smaller). Used by the adaptive tuner; `MultiSeriesEngine` and
    /// `TieredEngine` go through the same migration path.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] for degenerate policies; storage failures
    /// from triggered flushes.
    pub fn set_policy(&mut self, policy: Policy) -> Result<()> {
        if policy.total_capacity() == 0 {
            return Err(Error::InvalidConfig(
                "memory budget must be >= 1 point".into(),
            ));
        }
        if policy == self.config.policy {
            return Ok(());
        }
        let old_user_points = self.metrics.user_points;
        let buffered = self.buffers.migrate(policy);
        self.config.policy = policy;
        for p in buffered {
            self.append_internal(p, false)?;
        }
        // Re-routing is not new user traffic.
        self.metrics.user_points = old_user_points;
        // The roll-back above would read as a counter regression.
        self.invariants.rebaseline(&self.metrics);
        Ok(())
    }

    /// Range query over generation time, merging MemTables and the run.
    ///
    /// Overlapping SSTables are read in full (chunk-granularity reads, as in
    /// IoTDB), which is what the read-amplification experiments measure.
    ///
    /// # Errors
    /// Storage failures.
    pub fn query(
        &self,
        range: TimeRange,
    ) -> Result<(Vec<DataPoint>, QueryStats)> {
        let mut stats = QueryStats::default();
        let mut sources = self.buffers.scan_sources(range);
        stats.mem_points_scanned +=
            sources.iter().map(|s| s.len() as u64).sum::<u64>();
        for meta in self.version.run().overlapping(range) {
            // v3 tables carry a pruning filter the store can consult from
            // metadata alone; `Some(false)` is definitive, so the table is
            // skipped without paying a seek or touching a data block.
            if self.store.may_contain(meta.id, range)? == Some(false) {
                stats.tables_pruned += 1;
                self.obs.emit(|| Event::TablePruned { table: meta.id.0 });
                continue;
            }
            stats.tables_read += 1;
            if self.config.block_reads {
                let read = self.store.get_range(meta.id, range)?;
                stats.disk_points_scanned += read.points_scanned;
                stats.blocks_read += read.blocks_read;
                sources.push(read.points);
            } else {
                let table_points = self.store.get(meta.id)?;
                stats.disk_points_scanned += table_points.len() as u64;
                sources.push(
                    table_points
                        .into_iter()
                        .filter(|p| range.contains(p.gen_time))
                        .collect(),
                );
            }
        }
        let merged = merge_sorted(sources);
        stats.points_returned = merged.len() as u64;
        Ok((merged, stats))
    }

    /// Aggregates `range`: min/max/sum/count over exactly the points
    /// [`query`](Self::query) would return, answered where possible from v3
    /// index pre-aggregates without decoding data blocks.
    ///
    /// The planning rule, per table via the cached [`TableIndex`]: a block
    /// is **folded** from its index entry when it lies fully inside `range`,
    /// carries pre-aggregates (v3 tables written with the aggregate count),
    /// and no buffered MemTable point falls inside its generation-time span
    /// (in this engine the run holds non-overlapping tables, so MemTable
    /// data is the only possible newer writer). Every other overlapping
    /// block — range-straddling, shadowed, or aggregate-less (v1/v2/legacy
    /// v3) — is decoded span-granularly and deduped last-writer-wins, the
    /// same freshest-first rule as `query`.
    ///
    /// `min`/`max`/`count` are bit-identical to folding over `query`
    /// results regardless of plan; `sum` additionally matches whenever the
    /// fold is associative on the data (e.g. integer-valued samples — the
    /// equivalence proptest's domain).
    ///
    /// # Errors
    /// Storage failures.
    pub fn aggregate(
        &self,
        range: TimeRange,
    ) -> Result<(crate::query::Agg, QueryStats)> {
        let mut stats = QueryStats::default();
        let items = self.agg_items(range, &|_| true, &mut stats)?;
        let mut agg = crate::query::Agg::default();
        for (_, item) in items {
            match item {
                AggItem::Block(b) => agg.merge_block(&b),
                AggItem::Point(v) => agg.merge_point(v),
            }
        }
        stats.points_returned = agg.count;
        self.emit_agg_events(&stats);
        Ok((agg, stats))
    }

    /// Downsamples `range` into fixed-width buckets: one [`Agg`] per
    /// `bucket_width`-sized window (bucket key = `tg.div_euclid(width) *
    /// width`), in ascending bucket order; empty buckets are omitted.
    ///
    /// Same pushdown planning as [`aggregate`](Self::aggregate), with one
    /// extra fold condition: a block's pre-aggregates are only usable when
    /// the whole block falls inside a single bucket.
    ///
    /// [`Agg`]: crate::query::Agg
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] for a non-positive `bucket_width`; storage
    /// failures.
    pub fn downsample(
        &self,
        range: TimeRange,
        bucket_width: i64,
    ) -> Result<(Vec<crate::query::Bucket>, QueryStats)> {
        if bucket_width <= 0 {
            return Err(Error::InvalidConfig(format!(
                "bucket_width must be >= 1, got {bucket_width}"
            )));
        }
        let bucket_of =
            |tg: i64| tg.div_euclid(bucket_width).wrapping_mul(bucket_width);
        let mut stats = QueryStats::default();
        let items = self.agg_items(
            range,
            &|span| bucket_of(span.first) == bucket_of(span.last),
            &mut stats,
        )?;
        let mut buckets =
            std::collections::BTreeMap::<Timestamp, crate::query::Agg>::new();
        // Items are globally sorted by start tg, so each bucket's fold runs
        // in stream order.
        for (tg, item) in items {
            let agg = buckets.entry(bucket_of(tg)).or_default();
            match item {
                AggItem::Block(b) => agg.merge_block(&b),
                AggItem::Point(v) => agg.merge_point(v),
            }
        }
        stats.points_returned = buckets.values().map(|a| a.count).sum();
        self.emit_agg_events(&stats);
        Ok((buckets.into_iter().collect(), stats))
    }

    fn emit_agg_events(&self, stats: &QueryStats) {
        if stats.blocks_folded > 0 {
            let folded = stats.blocks_folded;
            self.obs.emit(|| Event::AggPushdown {
                blocks_folded: folded,
            });
        }
        if stats.agg_fallback_blocks > 0 {
            let blocks = stats.agg_fallback_blocks;
            self.obs.emit(|| Event::AggFallback { blocks });
        }
    }

    /// The pushdown planner shared by [`aggregate`](Self::aggregate) and
    /// [`downsample`](Self::downsample): walks the run via index metadata
    /// only ([`TableStore::table_index`] — served from the block cache's
    /// index cache when one is attached) and returns the fold inputs sorted
    /// by start generation time. Foldable blocks arrive as their index
    /// pre-aggregates (no data-block read); everything else is decoded and
    /// deduped against buffered MemTable data (mem wins).
    fn agg_items(
        &self,
        range: TimeRange,
        extra_foldable: &dyn Fn(&crate::sstable::BlockSpan) -> bool,
        stats: &mut QueryStats,
    ) -> Result<Vec<(Timestamp, AggItem)>> {
        let sources = self.buffers.scan_sources(range);
        stats.mem_points_scanned +=
            sources.iter().map(|s| s.len() as u64).sum::<u64>();
        // Freshest-first dedup across MemTables, sorted by gen time — the
        // in-memory partial aggregate the disk fold merges with.
        let mem = merge_sorted(sources);
        let mem_tgs: Vec<Timestamp> = mem.iter().map(|p| p.gen_time).collect();
        // Any buffered point inside [first, last] shadows (or interleaves
        // with) the block, so its pre-aggregates can't stand for the merged
        // result.
        let overlapped = |first: Timestamp, last: Timestamp| {
            let i = mem_tgs.partition_point(|&t| t < first);
            i < mem_tgs.len() && mem_tgs[i] <= last
        };
        let shadowed_point = |tg: Timestamp| mem_tgs.binary_search(&tg).is_ok();

        let mut items: Vec<(Timestamp, AggItem)> = Vec::new();
        let fallback =
            |read: crate::sstable::RangeRead,
             blocks: u64,
             stats: &mut QueryStats,
             items: &mut Vec<(Timestamp, AggItem)>| {
                stats.disk_points_scanned += read.points_scanned;
                stats.blocks_read += read.blocks_read;
                stats.agg_fallback_blocks += blocks;
                items.extend(
                    read.points
                        .into_iter()
                        .filter(|p| !shadowed_point(p.gen_time))
                        .map(|p| (p.gen_time, AggItem::Point(p.value))),
                );
            };
        for meta in self.version.run().overlapping(range) {
            if self.store.may_contain(meta.id, range)? == Some(false) {
                stats.tables_pruned += 1;
                self.obs.emit(|| Event::TablePruned { table: meta.id.0 });
                continue;
            }
            stats.tables_read += 1;
            let Some(index) = self.store.table_index(meta.id)? else {
                // No index metadata at all (store without raw reads):
                // whole-range decode through the ordinary read path.
                let read = self.store.get_range(meta.id, range)?;
                let blocks = read.blocks_read.max(1);
                fallback(read, blocks, stats, &mut items);
                continue;
            };
            for span in &index.blocks {
                if span.last < range.start || span.first > range.end {
                    continue;
                }
                match span.agg {
                    Some(agg)
                        if range.start <= span.first
                            && span.last <= range.end
                            && !overlapped(span.first, span.last)
                            && extra_foldable(span) =>
                    {
                        stats.blocks_folded += 1;
                        items.push((span.first, AggItem::Block(agg)));
                    }
                    _ => {
                        // Block spans are disjoint in generation time, so
                        // clamping the query to this span decodes exactly
                        // this block.
                        let sub = TimeRange::new(
                            range.start.max(span.first),
                            range.end.min(span.last),
                        );
                        let read = self.store.get_range(meta.id, sub)?;
                        fallback(read, 1, stats, &mut items);
                    }
                }
            }
        }
        items.extend(mem.iter().map(|p| (p.gen_time, AggItem::Point(p.value))));
        // Start tgs are unique across items: run tables don't overlap,
        // folded blocks exclude every decoded/buffered tg, and dedup has
        // already run within mem and against it.
        items.sort_unstable_by_key(|(tg, _)| *tg);
        Ok(items)
    }

    /// Point lookup by generation time: MemTables first (freshest wins),
    /// then a binary search of the run.
    ///
    /// # Errors
    /// Storage failures.
    pub fn get(&self, gen_time: Timestamp) -> Result<Option<DataPoint>> {
        let point_range = TimeRange::new(gen_time, gen_time);
        let mem_hit = self
            .buffers
            .scan_sources(point_range)
            .into_iter()
            .flatten()
            .next();
        if mem_hit.is_some() {
            return Ok(mem_hit);
        }
        let Some(meta) = self.version.run().table_containing(gen_time) else {
            return Ok(None);
        };
        if self.store.may_contain(meta.id, point_range)? == Some(false) {
            self.obs.emit(|| Event::TablePruned { table: meta.id.0 });
            return Ok(None);
        }
        let read = self.store.get_range(meta.id, point_range)?;
        Ok(read.points.into_iter().next())
    }

    /// Every stored point (buffered + on disk), sorted by generation time.
    ///
    /// # Errors
    /// Storage failures.
    pub fn scan_all(&self) -> Result<Vec<DataPoint>> {
        let range = TimeRange::new(Timestamp::MIN, Timestamp::MAX);
        Ok(self.query(range)?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn in_order_points(n: i64) -> Vec<DataPoint> {
        (0..n)
            .map(|i| DataPoint::new(i * 10, i * 10, i as f64))
            .collect()
    }

    #[test]
    fn in_order_ingest_under_pi_c_has_wa_one() {
        let mut e = LsmEngine::in_memory(
            EngineConfig::new(Policy::conventional(16)).with_sstable_points(8),
        )
        .expect("engine");
        for p in in_order_points(160) {
            e.append(p).expect("append");
        }
        // Every flush lands after the run tail: no rewrites.
        assert_eq!(e.metrics().rewritten_points, 0);
        assert!((e.metrics().write_amplification() - 1.0).abs() < 1e-12);
        assert_eq!(e.metrics().user_points, 160);
        e.run().check_invariants().expect("run invariant");
    }

    #[test]
    fn out_of_order_ingest_under_pi_c_rewrites() {
        let mut e = LsmEngine::in_memory(
            EngineConfig::new(Policy::conventional(4)).with_sstable_points(4),
        )
        .expect("engine");
        // Fill the run with [0..40), then insert stragglers below it.
        for p in in_order_points(8) {
            e.append(p).expect("append");
        }
        let before = e.metrics().disk_points_written;
        for tg in [5i64, 15, 25, 35] {
            e.append(DataPoint::new(tg, 1000 + tg, 0.0))
                .expect("append");
        }
        assert!(
            e.metrics().rewritten_points > 0,
            "straggler merge must rewrite"
        );
        assert!(e.metrics().disk_points_written > before + 4);
        assert_eq!(e.metrics().compactions, 1);
        e.run().check_invariants().expect("run invariant");
    }

    #[test]
    fn no_points_are_lost_or_duplicated() {
        let mut e = LsmEngine::in_memory(
            EngineConfig::new(Policy::conventional(7)).with_sstable_points(5),
        )
        .expect("engine");
        // Deterministic shuffled-ish order.
        let mut tgs: Vec<i64> = (0..200).map(|i| (i * 73) % 200).collect();
        tgs.dedup();
        for &tg in &tgs {
            e.append(DataPoint::new(tg, 10_000 + tg, tg as f64))
                .expect("append");
        }
        let all = e.scan_all().expect("scan");
        assert_eq!(all.len(), 200);
        assert!(all.windows(2).all(|w| w[0].gen_time < w[1].gen_time));
        for (i, p) in all.iter().enumerate() {
            assert_eq!(p.gen_time, i as i64);
        }
    }

    #[test]
    fn separation_routes_by_last_disk_gen_time() {
        let mut e = LsmEngine::in_memory(
            EngineConfig::new(Policy::separation(8, 4).expect("policy"))
                .with_sstable_points(4),
        )
        .expect("engine");
        // First 4 in-order points fill C_seq and flush: disk max = 30.
        for p in in_order_points(4) {
            e.append(p).expect("append");
        }
        assert_eq!(e.last_disk_gen_time(), Some(30));
        assert_eq!(e.metrics().flushes, 1);
        assert_eq!(e.metrics().compactions, 0);
        // A point below 30 is out of order: buffered in C_nonseq, no flush.
        e.append(DataPoint::new(15, 100, 0.0)).expect("append");
        assert_eq!(e.buffered_points(), 1);
        assert_eq!(e.metrics().compactions, 0);
        // Points above 30 are in order again.
        for tg in [40i64, 50, 60, 70] {
            e.append(DataPoint::new(tg, tg, 0.0)).expect("append");
        }
        assert_eq!(e.metrics().flushes, 2);
        // Fill C_nonseq (capacity 4): triggers exactly one compaction.
        for tg in [16i64, 17, 18] {
            e.append(DataPoint::new(tg, 200, 0.0)).expect("append");
        }
        assert_eq!(e.metrics().compactions, 1);
        assert_eq!(e.buffered_points(), 0);
        let all = e.scan_all().expect("scan");
        assert_eq!(all.len(), 12);
        e.run().check_invariants().expect("run invariant");
    }

    #[test]
    fn seq_flush_never_rewrites() {
        let mut e = LsmEngine::in_memory(
            EngineConfig::new(Policy::separation(64, 32).expect("policy"))
                .with_sstable_points(8),
        )
        .expect("engine");
        for p in in_order_points(320) {
            e.append(p).expect("append");
        }
        assert_eq!(e.metrics().rewritten_points, 0);
        assert_eq!(e.metrics().compactions, 0);
        assert!((e.metrics().write_amplification() - 1.0).abs() < 1e-2);
    }

    #[test]
    fn duplicate_gen_time_upserts_latest_value() {
        let mut e = LsmEngine::in_memory(
            EngineConfig::new(Policy::conventional(4)).with_sstable_points(4),
        )
        .expect("engine");
        for p in in_order_points(8) {
            e.append(p).expect("append");
        }
        // Overwrite tg=30 (already on disk) with a new value.
        e.append(DataPoint::new(30, 999, 123.0)).expect("append");
        let (hits, _) = e.query(TimeRange::new(30, 30)).expect("query");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].value, 123.0, "memtable version must win");
        // Force it to disk and re-check.
        for tg in [200i64, 210, 220] {
            e.append(DataPoint::new(tg, tg, 0.0)).expect("append");
        }
        let (hits, _) = e.query(TimeRange::new(30, 30)).expect("query");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].value, 123.0, "compacted version must win");
        assert_eq!(e.scan_all().expect("scan").len(), 11);
    }

    #[test]
    fn query_stats_count_tables_and_points() {
        let mut e = LsmEngine::in_memory(
            EngineConfig::new(Policy::conventional(8)).with_sstable_points(8),
        )
        .expect("engine");
        for p in in_order_points(32) {
            e.append(p).expect("append");
        }
        // Run now holds 4 tables of 8 points: [0..70], [80..150], …
        let (hits, stats) = e.query(TimeRange::new(60, 90)).expect("query");
        assert_eq!(hits.len(), 4); // 60, 70, 80, 90
        assert_eq!(stats.tables_read, 2);
        assert_eq!(stats.disk_points_scanned, 16);
        assert_eq!(stats.points_returned, 4);
        assert_eq!(stats.read_amplification(), Some(4.0));
    }

    #[test]
    fn query_sees_buffered_points() {
        let mut e =
            LsmEngine::in_memory(EngineConfig::new(Policy::conventional(100)))
                .expect("engine");
        e.append(DataPoint::new(5, 5, 1.0)).expect("append");
        let (hits, stats) = e.query(TimeRange::new(0, 10)).expect("query");
        assert_eq!(hits.len(), 1);
        assert_eq!(stats.tables_read, 0);
        assert_eq!(stats.mem_points_scanned, 1);
    }

    #[test]
    fn flush_all_persists_everything() {
        let mut e = LsmEngine::in_memory(EngineConfig::new(
            Policy::separation(100, 50).expect("policy"),
        ))
        .expect("engine");
        for p in in_order_points(10) {
            e.append(p).expect("append");
        }
        e.append(DataPoint::new(-5, 100, 0.0)).expect("append");
        assert!(e.buffered_points() > 0);
        e.flush_all().expect("flush");
        assert_eq!(e.buffered_points(), 0);
        assert_eq!(e.scan_all().expect("scan").len(), 11);
        e.run().check_invariants().expect("run invariant");
    }

    #[test]
    fn set_policy_reroutes_buffered_points() {
        let mut e =
            LsmEngine::in_memory(EngineConfig::new(Policy::conventional(100)))
                .expect("engine");
        for p in in_order_points(10) {
            e.append(p).expect("append");
        }
        let user_before = e.metrics().user_points;
        e.set_policy(Policy::separation(100, 50).expect("policy"))
            .expect("switch");
        assert_eq!(e.metrics().user_points, user_before);
        assert_eq!(e.buffered_points(), 10);
        assert_eq!(e.scan_all().expect("scan").len(), 10);
        // Switch back while data is buffered.
        e.set_policy(Policy::conventional(100))
            .expect("switch back");
        assert_eq!(e.scan_all().expect("scan").len(), 10);
    }

    #[test]
    fn wa_snapshots_are_recorded() {
        let mut e = LsmEngine::in_memory(
            EngineConfig::new(Policy::conventional(4))
                .with_sstable_points(4)
                .with_wa_snapshots(10),
        )
        .expect("engine");
        for p in in_order_points(35) {
            e.append(p).expect("append");
        }
        assert_eq!(e.metrics().wa_snapshots.len(), 3);
        assert_eq!(e.metrics().wa_snapshots[0].user_points, 10);
        assert_eq!(e.metrics().wa_snapshots[2].user_points, 30);
    }

    #[test]
    fn subsequent_probe_counts_points_above_buffer_min() {
        let mut e = LsmEngine::in_memory(
            EngineConfig::new(Policy::conventional(4))
                .with_sstable_points(4)
                .with_subsequent_probe(),
        )
        .expect("engine");
        for p in in_order_points(8) {
            e.append(p).expect("append");
        }
        // Disk: [0..30], [40..70]. Buffer 4 stragglers in (30, 40).
        for tg in [31i64, 32, 33, 34] {
            e.append(DataPoint::new(tg, 500, 0.0)).expect("append");
        }
        // At that compaction, subsequent points were the 4 points of [40..70].
        let counts = &e.metrics().subsequent_counts;
        assert_eq!(counts.len(), 3);
        assert_eq!(counts[2], 4, "counts: {counts:?}");
    }

    #[test]
    fn point_get_finds_buffered_and_flushed_points() {
        let mut e = LsmEngine::in_memory(
            EngineConfig::new(Policy::separation(8, 4).expect("policy"))
                .with_sstable_points(4),
        )
        .expect("engine");
        for p in in_order_points(10) {
            e.append(p).expect("append");
        }
        // tg=30 flushed, tg=90 buffered, tg=35 absent.
        assert_eq!(e.get(30).expect("get").expect("hit").value, 3.0);
        assert_eq!(e.get(90).expect("get").expect("hit").value, 9.0);
        assert!(e.get(35).expect("get").is_none());
        // An upsert is visible immediately.
        e.append(DataPoint::new(30, 1_000, -1.0)).expect("upsert");
        assert_eq!(e.get(30).expect("get").expect("hit").value, -1.0);
    }

    #[test]
    fn block_reads_scan_fewer_points_on_compressed_stores() {
        use crate::sstable::EncodeOptions;
        use crate::store::MemStore;
        use std::sync::Arc;

        let run = |block_reads: bool| {
            let mut config = EngineConfig::new(Policy::conventional(128))
                .with_sstable_points(128);
            if block_reads {
                config = config.with_block_reads();
            }
            let store = Arc::new(MemStore::with_options(EncodeOptions {
                compression: crate::sstable::Compression::TimeSeries,
                block_points: 16,
            }));
            let mut e = LsmEngine::new(config, store).expect("engine");
            for p in in_order_points(256) {
                e.append(p).expect("append");
            }
            // Query 8 points out of one 128-point table.
            let (hits, stats) =
                e.query(TimeRange::new(100, 170)).expect("query");
            assert_eq!(hits.len(), 8);
            stats
        };
        let whole = run(false);
        let blocked = run(true);
        assert_eq!(whole.disk_points_scanned, 128);
        assert_eq!(whole.blocks_read, 0);
        assert!(blocked.blocks_read >= 1);
        assert!(
            blocked.disk_points_scanned < whole.disk_points_scanned,
            "block reads must scan less: {} vs {}",
            blocked.disk_points_scanned,
            whole.disk_points_scanned
        );
    }

    #[test]
    fn cache_invalidation_under_compaction() {
        // A consumed table's blocks must never serve a post-merge query:
        // fill the run in order, warm the cache with queries, then force
        // merge-compactions that delete the warmed tables and check that
        // queries see the merged truth, not stale cached blocks.
        use crate::cache::BlockCache;
        use crate::sstable::EncodeOptions;
        use crate::store::MemStore;
        use std::sync::Arc;

        let cache = BlockCache::with_capacity(64 * 1024);
        let store = Arc::new(MemStore::with_options(EncodeOptions {
            compression: crate::sstable::Compression::TimeSeries,
            block_points: 16,
        }));
        let mut e = OpenOptions::new(
            EngineConfig::new(Policy::conventional(16)).with_sstable_points(32),
        )
        .store(store)
        .cache(Arc::clone(&cache))
        .open()
        .expect("engine");
        for p in in_order_points(128) {
            e.append(p).expect("append");
        }
        // Warm the cache over the whole run.
        let (before, _) = e.query(TimeRange::new(0, 1280)).expect("warm");
        assert_eq!(before.len(), 128);
        assert!(cache.stats().resident_blocks > 0);
        // Straggler points overlap existing tables: each full buffer now
        // merges with (and deletes) warmed tables.
        for tg in (0..64).map(|i| i * 20 + 5) {
            e.append(DataPoint::new(tg, 10_000 + tg, -1.0))
                .expect("append straggler");
        }
        assert!(e.metrics().compactions > 0, "merges must have happened");
        assert!(
            cache.stats().invalidated_blocks > 0,
            "consumed tables must have been invalidated"
        );
        let (after, _) = e.query(TimeRange::new(0, 1280)).expect("query");
        assert_eq!(after.len(), 128 + 64);
        // The merged view contains every straggler — stale cached blocks
        // would be missing them.
        for tg in (0..64).map(|i| i * 20 + 5) {
            assert!(
                after.iter().any(|p| p.gen_time == tg && p.value == -1.0),
                "straggler {tg} lost: stale cache served a dead table"
            );
        }
        let scan = e.scan_all().expect("scan");
        assert_eq!(scan.len(), 192);
    }

    #[test]
    fn cached_engine_matches_uncached_results() {
        use crate::cache::BlockCache;
        use crate::sstable::EncodeOptions;
        use crate::store::MemStore;
        use std::sync::Arc;

        let run = |cache: Option<Arc<BlockCache>>| {
            let store =
                Arc::new(MemStore::with_options(EncodeOptions::compressed()));
            let mut opts = OpenOptions::new(
                EngineConfig::new(Policy::separation(16, 8).expect("config"))
                    .with_sstable_points(16),
            )
            .store(store);
            if let Some(cache) = cache {
                opts = opts.cache(cache);
            }
            let mut e = opts.open().expect("engine");
            for i in 0..200i64 {
                let tg = if i % 5 == 0 { i * 10 - 45 } else { i * 10 };
                e.append(DataPoint::new(tg, i * 10 + 3, i as f64))
                    .expect("append");
            }
            let points = e.scan_all().expect("scan");
            (points, e.metrics().clone())
        };
        let cache = BlockCache::with_capacity(8 * 1024);
        let (cached_points, cached_metrics) = run(Some(Arc::clone(&cache)));
        let (plain_points, plain_metrics) = run(None);
        assert_eq!(cached_points, plain_points);
        assert_eq!(
            cached_metrics.disk_points_written,
            plain_metrics.disk_points_written,
            "the cache must not change write behaviour"
        );
        assert!(cache.stats().hits + cache.stats().misses > 0);
    }

    #[test]
    fn engine_round_trips_on_compressed_store() {
        use crate::sstable::EncodeOptions;
        use crate::store::MemStore;
        use std::sync::Arc;

        let store =
            Arc::new(MemStore::with_options(EncodeOptions::compressed()));
        let mut e = LsmEngine::new(
            EngineConfig::new(Policy::conventional(16)).with_sstable_points(8),
            store,
        )
        .expect("engine");
        let mut tgs: Vec<i64> = (0..300).map(|i| (i * 91) % 300).collect();
        tgs.dedup();
        for &tg in &tgs {
            e.append(DataPoint::new(tg, tg + 5, tg as f64))
                .expect("append");
        }
        let all = e.scan_all().expect("scan");
        assert_eq!(all.len(), 300);
        assert!(all.windows(2).all(|w| w[0].gen_time < w[1].gen_time));
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(LsmEngine::in_memory(
            EngineConfig::new(Policy::conventional(8)).with_sstable_points(0)
        )
        .is_err());
        assert!(Policy::separation(8, 0).is_err());
        assert!(Policy::separation(8, 8).is_err());
    }

    #[test]
    fn aggregate_folds_fully_covered_blocks() {
        // 64 in-order points flush into 8 single-block v3 tables; a query
        // covering the whole run is answered purely from index
        // pre-aggregates: no data block is decoded.
        let mut e = LsmEngine::in_memory(
            EngineConfig::new(Policy::conventional(16)).with_sstable_points(8),
        )
        .expect("engine");
        for p in in_order_points(64) {
            e.append(p).expect("append");
        }
        assert_eq!(e.buffered_points(), 0);
        let (agg, stats) =
            e.aggregate(TimeRange::new(0, 630)).expect("aggregate");
        assert_eq!(agg.count, 64);
        assert_eq!(agg.min, 0.0);
        assert_eq!(agg.max, 63.0);
        assert_eq!(agg.sum, (0..64).sum::<i64>() as f64);
        assert_eq!(agg.mean(), Some(agg.sum / 64.0));
        assert_eq!(stats.blocks_folded, 8);
        assert_eq!(stats.agg_fallback_blocks, 0);
        assert_eq!(stats.disk_points_scanned, 0);
        assert_eq!(stats.blocks_read, 0);
        assert_eq!(stats.tables_read, 8);
        assert_eq!(stats.points_returned, 64);
        // Read amplification of a fully folded aggregate is 0.
        assert_eq!(stats.read_amplification(), Some(0.0));

        // A range that cuts into the first and last tables decodes exactly
        // those straddled blocks and folds the middle six.
        let (agg, stats) =
            e.aggregate(TimeRange::new(5, 615)).expect("aggregate");
        assert_eq!(agg.count, 61); // tgs 10..=610
        assert_eq!(agg.min, 1.0);
        assert_eq!(agg.max, 61.0);
        assert_eq!(stats.blocks_folded, 6);
        assert_eq!(stats.agg_fallback_blocks, 2);
        assert!(stats.disk_points_scanned > 0);
    }

    #[test]
    fn buffered_overlap_forces_agg_fallback() {
        let mut e = LsmEngine::in_memory(
            EngineConfig::new(Policy::conventional(16)).with_sstable_points(8),
        )
        .expect("engine");
        for p in in_order_points(64) {
            e.append(p).expect("append");
        }
        // A buffered straggler inside the first table's span poisons that
        // block's pre-aggregates; the other seven still fold.
        e.append(DataPoint::new(35, 1_000, 500.0)).expect("append");
        let (agg, stats) =
            e.aggregate(TimeRange::new(0, 630)).expect("aggregate");
        assert_eq!(agg.count, 65);
        assert_eq!(agg.max, 500.0);
        assert_eq!(stats.blocks_folded, 7);
        assert_eq!(stats.agg_fallback_blocks, 1);
        assert_eq!(stats.mem_points_scanned, 1);

        // An upsert of an on-disk tg must count once, with the MemTable
        // value winning (last-writer-wins, same as `query`).
        e.append(DataPoint::new(130, 2_000, -9.0)).expect("append");
        let (agg, stats) =
            e.aggregate(TimeRange::new(0, 630)).expect("aggregate");
        assert_eq!(agg.count, 65);
        assert_eq!(agg.min, -9.0);
        assert_eq!(stats.blocks_folded, 6);
        assert_eq!(stats.agg_fallback_blocks, 2);
    }

    #[test]
    fn downsample_folds_only_blocks_within_one_bucket() {
        let mut e = LsmEngine::in_memory(
            EngineConfig::new(Policy::conventional(16)).with_sstable_points(8),
        )
        .expect("engine");
        for p in in_order_points(64) {
            e.append(p).expect("append");
        }
        // Bucket width 80 == one table's span: every block folds and each
        // bucket holds exactly one table's 8 points.
        let (buckets, stats) = e
            .downsample(TimeRange::new(0, 630), 80)
            .expect("downsample");
        assert_eq!(buckets.len(), 8);
        assert_eq!(stats.blocks_folded, 8);
        assert_eq!(stats.agg_fallback_blocks, 0);
        for (i, (start, agg)) in buckets.iter().enumerate() {
            assert_eq!(*start, i as i64 * 80);
            assert_eq!(agg.count, 8);
            assert_eq!(agg.min, (i * 8) as f64);
            assert_eq!(agg.max, (i * 8 + 7) as f64);
        }
        // Width 50 straddles every block across bucket boundaries: the
        // pushdown degrades to a full decode but the answer still matches
        // a per-point reference fold.
        let (narrow, stats) = e
            .downsample(TimeRange::new(0, 630), 50)
            .expect("downsample");
        assert_eq!(stats.blocks_folded, 0);
        assert_eq!(stats.agg_fallback_blocks, 8);
        let total: u64 = narrow.iter().map(|(_, a)| a.count).sum();
        assert_eq!(total, 64);
        assert!(e.downsample(TimeRange::new(0, 10), 0).is_err());
    }

    #[test]
    fn folded_aggregate_faults_no_data_blocks_into_cache() {
        use crate::cache::BlockCache;
        use std::sync::Arc;

        // A fully folded aggregate plans from the cached index alone: the
        // block cache sees no data-block traffic at all (no hits, no
        // misses, no new residents), while a point query over the same
        // range does fault blocks.
        let cache = BlockCache::with_capacity(64 * 1024);
        let mut e = OpenOptions::new(
            EngineConfig::new(Policy::separation(8, 4).expect("policy"))
                .with_sstable_points(8),
        )
        .store(Arc::new(crate::store::MemStore::default()))
        .cache(Arc::clone(&cache))
        .open()
        .expect("engine");
        for p in in_order_points(64) {
            e.append(p).expect("append");
        }
        let before = cache.stats();
        let (agg, stats) =
            e.aggregate(TimeRange::new(0, 630)).expect("aggregate");
        assert_eq!(agg.count, 64);
        // C_seq capacity is 4 (n_seq of π_s(8, 4)): 16 appended tables.
        assert_eq!(stats.blocks_folded, 16);
        let after = cache.stats();
        assert_eq!(
            (after.hits, after.misses, after.resident_blocks),
            (before.hits, before.misses, before.resident_blocks),
            "a folded pushdown must not touch data blocks"
        );
        let (hits, _) = e.query(TimeRange::new(0, 630)).expect("query");
        assert_eq!(hits.len(), 64);
        assert!(cache.stats().hits + cache.stats().misses > before.misses);
    }

    proptest::proptest! {
        #![proptest_config(
            proptest::prelude::ProptestConfig::with_cases(32)
        )]

        /// The pushdown correctness anchor: `aggregate` and `downsample`
        /// are bit-identical to folding over `query` results on arbitrary
        /// out-of-order histories, on v3 stores (mixed fold/decode plans)
        /// and on v2 stores, where tables carry no pre-aggregates and
        /// always take the decode path. Integer-valued samples keep the
        /// f64 sum associative, so even `sum` is exact.
        #[test]
        fn pushdown_matches_query_fold(
            raw in proptest::collection::vec(
                (-50i64..400, -1_000i32..1_000),
                1..150,
            ),
            bounds in (-100i64..500, -100i64..500),
            width in 1i64..64,
        ) {
            use crate::sstable::EncodeOptions;
            use crate::store::MemStore;
            use std::sync::Arc;

            let range = TimeRange::new(
                bounds.0.min(bounds.1),
                bounds.0.max(bounds.1),
            );
            for v3 in [true, false] {
                let options = if v3 {
                    EncodeOptions::pruned()
                } else {
                    EncodeOptions::compressed()
                };
                let store = Arc::new(MemStore::with_options(options));
                let mut e = LsmEngine::new(
                    EngineConfig::new(Policy::conventional(7))
                        .with_sstable_points(5),
                    store,
                )
                .expect("engine");
                for &(tg, v) in &raw {
                    e.append(DataPoint::new(tg, tg, f64::from(v)))
                        .expect("append");
                }
                let (pts, _) = e.query(range).expect("query");
                let mut want = crate::query::Agg::default();
                for p in &pts {
                    want.merge_point(p.value);
                }
                let (got, stats) = e.aggregate(range).expect("aggregate");
                proptest::prop_assert!(
                    got.bits_eq(&want),
                    "aggregate mismatch (v3={}): {:?} vs {:?}",
                    v3,
                    got,
                    want
                );
                if !v3 {
                    proptest::prop_assert_eq!(stats.blocks_folded, 0);
                }
                let mut reference = std::collections::BTreeMap::<
                    Timestamp,
                    crate::query::Agg,
                >::new();
                for p in &pts {
                    reference
                        .entry(p.gen_time.div_euclid(width) * width)
                        .or_default()
                        .merge_point(p.value);
                }
                let (buckets, _) =
                    e.downsample(range, width).expect("downsample");
                proptest::prop_assert_eq!(buckets.len(), reference.len());
                for ((got_tg, got_agg), (want_tg, want_agg)) in
                    buckets.iter().zip(reference.iter())
                {
                    proptest::prop_assert_eq!(got_tg, want_tg);
                    proptest::prop_assert!(
                        got_agg.bits_eq(want_agg),
                        "bucket {} mismatch (v3={}): {:?} vs {:?}",
                        got_tg,
                        v3,
                        got_agg,
                        want_agg
                    );
                }
            }
        }
    }
}
