//! K-way merge over sorted point sources, with duplicate resolution.
//!
//! Compactions merge a MemTable with several SSTables; full scans merge the
//! run with both MemTables. Sources are given in *priority order* (freshest
//! first): when several sources carry the same generation timestamp, the
//! highest-priority occurrence wins and the rest are discarded, matching
//! upsert semantics.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use seplsm_types::DataPoint;

/// Merges sorted point sequences into one sorted, duplicate-free sequence.
pub struct MergeIter {
    /// Heap of (gen_time, source_index) → next element index per source.
    heap: BinaryHeap<Reverse<(i64, usize)>>,
    sources: Vec<std::vec::IntoIter<DataPoint>>,
    peeked: Vec<Option<DataPoint>>,
}

impl MergeIter {
    /// Creates a merge over `sources`; each must be sorted by strictly
    /// increasing generation time. Earlier sources win ties.
    pub fn new(sources: Vec<Vec<DataPoint>>) -> Self {
        debug_assert!(sources
            .iter()
            .all(|s| { s.windows(2).all(|w| w[0].gen_time < w[1].gen_time) }));
        let mut iters: Vec<std::vec::IntoIter<DataPoint>> =
            sources.into_iter().map(Vec::into_iter).collect();
        let mut heap = BinaryHeap::new();
        let mut peeked = Vec::with_capacity(iters.len());
        for (idx, it) in iters.iter_mut().enumerate() {
            let head = it.next();
            if let Some(p) = head {
                heap.push(Reverse((p.gen_time, idx)));
            }
            peeked.push(head);
        }
        Self {
            heap,
            sources: iters,
            peeked,
        }
    }

    fn advance(&mut self, idx: usize) -> Option<DataPoint> {
        let out = self.peeked[idx].take();
        let next = self.sources[idx].next();
        if let Some(p) = next {
            self.heap.push(Reverse((p.gen_time, idx)));
        }
        self.peeked[idx] = next;
        out
    }
}

impl Iterator for MergeIter {
    type Item = DataPoint;

    fn next(&mut self) -> Option<DataPoint> {
        let Reverse((tg, idx)) = self.heap.pop()?;
        let winner = self.advance(idx)?;
        debug_assert_eq!(winner.gen_time, tg);
        // Discard lower-priority duplicates of the same timestamp. The heap
        // orders ties by source index, so the winner above (smallest index)
        // was the highest-priority occurrence.
        while let Some(&Reverse((next_tg, next_idx))) = self.heap.peek() {
            if next_tg != tg {
                break;
            }
            self.heap.pop();
            let _ = self.advance(next_idx);
        }
        Some(winner)
    }
}

/// Convenience: merge and collect.
pub fn merge_sorted(sources: Vec<Vec<DataPoint>>) -> Vec<DataPoint> {
    MergeIter::new(sources).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(tgs: &[i64]) -> Vec<DataPoint> {
        tgs.iter()
            .map(|&t| DataPoint::new(t, t, t as f64))
            .collect()
    }

    #[test]
    fn merges_disjoint_sources() {
        let out =
            merge_sorted(vec![pts(&[1, 4, 7]), pts(&[2, 5]), pts(&[3, 6])]);
        let tgs: Vec<i64> = out.iter().map(|p| p.gen_time).collect();
        assert_eq!(tgs, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn earlier_source_wins_ties() {
        let fresh = vec![DataPoint::new(10, 99, 111.0)];
        let stale =
            vec![DataPoint::new(10, 10, 0.0), DataPoint::new(20, 20, 0.0)];
        let out = merge_sorted(vec![fresh, stale]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, 111.0, "fresh source must win the tie");
        assert_eq!(out[1].gen_time, 20);
    }

    #[test]
    fn three_way_tie_keeps_one() {
        let out = merge_sorted(vec![
            vec![DataPoint::new(5, 1, 1.0)],
            vec![DataPoint::new(5, 2, 2.0)],
            vec![DataPoint::new(5, 3, 3.0)],
        ]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, 1.0);
    }

    #[test]
    fn empty_sources_are_fine() {
        assert!(merge_sorted(vec![]).is_empty());
        assert!(merge_sorted(vec![vec![], vec![]]).is_empty());
        let out = merge_sorted(vec![vec![], pts(&[1]), vec![]]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn large_merge_stays_sorted_and_unique() {
        let a: Vec<i64> = (0..1000).map(|i| i * 3).collect();
        let b: Vec<i64> = (0..1000).map(|i| i * 3 + 1).collect();
        let c: Vec<i64> = (0..500).map(|i| i * 6).collect(); // duplicates of a
        let out = merge_sorted(vec![pts(&a), pts(&b), pts(&c)]);
        assert_eq!(out.len(), 2000);
        assert!(out.windows(2).all(|w| w[0].gen_time < w[1].gen_time));
    }
}
