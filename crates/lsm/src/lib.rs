//! A leveled LSM-tree storage engine for time-series points, with the
//! conventional (`π_c`) and separation (`π_s`) buffering policies of the
//! ICDE 2022 paper *"Separation or Not: On Handling Out-of-Order Time-Series
//! Data in Leveled LSM-Tree"*.
//!
//! # Architecture
//!
//! ```text
//!            append(p)                      π_c: C0 ──(full)──▶ merge-compact
//!   user ───────────────▶ MemTable(s)       π_s: C_seq ─(full)─▶ append-flush
//!                              │                 C_nonseq (full)▶ merge-compact
//!                              ▼
//!                 L1 run: [SST][SST][SST]…   ← non-overlapping, 512 pts each
//! ```
//!
//! * [`MemTable`] — bounded in-memory buffer sorted by generation time.
//! * [`sstable`] — the immutable table format (delta-varint, CRC-32).
//! * [`TableStore`] — where encoded tables live: [`MemStore`] (fast,
//!   experiment-scale) or [`FileStore`] (durable, one file per table).
//! * [`Run`] — the non-overlapping level-1 run; `LAST(R)` classifies points
//!   as in-order / out-of-order (paper Definition 3).
//! * [`LsmEngine`] — the synchronous engine used by every WA experiment;
//!   instrumented for write amplification, subsequent-point counts, and
//!   query statistics.
//! * [`TieredEngine`] — the background-compaction variant matching the
//!   production write path of §V-C (Table III throughput).
//! * [`Wal`] — checksummed write-ahead log with crash recovery.
//!
//! # Quick start
//!
//! ```
//! use seplsm_lsm::{EngineConfig, LsmEngine};
//! use seplsm_types::{DataPoint, TimeRange};
//!
//! let mut engine = LsmEngine::in_memory(EngineConfig::conventional(512))?;
//! for i in 0..1000i64 {
//!     engine.append(DataPoint::new(i * 50, i * 50 + 7, i as f64))?;
//! }
//! let (points, stats) = engine.query(TimeRange::new(0, 5_000))?;
//! assert_eq!(points.len(), 101);
//! println!("WA so far: {:.3}", engine.metrics().write_amplification());
//! # Ok::<(), seplsm_types::Error>(())
//! ```

pub mod background;
pub mod engine;
pub mod iterator;
pub mod level;
pub mod manifest;
pub mod memtable;
pub mod metrics;
pub mod multi;
pub mod query;
pub mod sstable;
pub mod store;
pub mod wal;

pub use background::{TieredEngine, TieredReport};
pub use engine::{EngineConfig, LsmEngine};
pub use iterator::{merge_sorted, MergeIter};
pub use level::Run;
pub use manifest::Manifest;
pub use memtable::MemTable;
pub use metrics::{Metrics, WaSnapshot};
pub use multi::{MultiSeriesEngine, SeriesId};
pub use query::{DiskModel, QueryStats};
pub use sstable::{Compression, EncodeOptions, SsTableId, SsTableMeta};
pub use store::{FileStore, MemStore, TableStore};
pub use wal::Wal;
