//! A leveled LSM-tree storage engine for time-series points, with the
//! conventional (`π_c`) and separation (`π_s`) buffering policies of the
//! ICDE 2022 paper *"Separation or Not: On Handling Out-of-Order Time-Series
//! Data in Leveled LSM-Tree"*.
//!
//! # Architecture
//!
//! The crate is layered as a *storage kernel* plus thin engines composed
//! on top of it:
//!
//! ```text
//!            append(p)                      π_c: C0 ──(full)──▶ merge-compact
//!   user ───────────────▶ PolicyBuffers     π_s: C_seq ─(full)─▶ append-flush
//!                              │                 C_nonseq (full)▶ merge-compact
//!                              ▼
//!     plan_merge ─▶ CompactionPlan ─▶ execute ─▶ VersionEdit ─▶ Version
//!                              │                                   │
//!                              ▼                                   ▼
//!                 L1 run: [SST][SST][SST]…                     Manifest
//!                 (non-overlapping, 512 pts each)
//! ```
//!
//! **Kernel layers** (shared by all three engines):
//!
//! * [`buffer`] — [`PolicyBuffers`](buffer::PolicyBuffers), the policy-aware
//!   MemTable set: Definition 3 classification against the pivot, flush
//!   triggering, and mid-stream policy migration.
//! * [`compaction`] — [`plan_merge`](compaction::plan_merge), the *pure*
//!   merge planner, and [`execute`](compaction::execute) /
//!   [`execute_append`](compaction::execute_append), which apply plans to
//!   store + version + metrics. The WA arithmetic exists exactly once, here.
//! * [`version`] — [`Version`](version::Version), the table-level state
//!   (run, L0, flushing batches), mutated only through atomic
//!   [`VersionEdit`](version::VersionEdit) batches that also drive manifest
//!   recording.
//!
//! **Substrate:**
//!
//! * [`MemTable`] — bounded in-memory buffer sorted by generation time.
//! * [`sstable`] — the immutable table format (delta-varint, CRC-32).
//! * [`TableStore`] — where encoded tables live: [`MemStore`] (fast,
//!   experiment-scale) or [`FileStore`] (durable, one file per table).
//! * [`Run`] — the non-overlapping level-1 run; `LAST(R)` classifies points
//!   as in-order / out-of-order (paper Definition 3).
//! * [`Wal`] — checksummed write-ahead log with crash recovery.
//! * [`Manifest`] — checksummed run/L0 membership log for O(metadata)
//!   recovery.
//!
//! **Engines** (compositions of the kernel, all durable):
//!
//! * [`LsmEngine`] — the synchronous engine used by every WA experiment;
//!   instrumented for write amplification, subsequent-point counts, and
//!   query statistics. Optional WAL + manifest.
//! * [`TieredEngine`] — the background-compaction variant matching the
//!   production write path of §V-C (Table III throughput), with the same
//!   WAL + manifest durability and crash recovery.
//! * [`MultiSeriesEngine`](multi::MultiSeriesEngine) — one engine per
//!   series under a shared memory budget, durable via namespaced per-series
//!   WALs and manifests.
//!
//! # Quick start
//!
//! ```
//! use seplsm_lsm::{EngineConfig, LsmEngine};
//! use seplsm_types::{DataPoint, Policy, TimeRange};
//!
//! let mut engine = LsmEngine::in_memory(EngineConfig::new(Policy::conventional(512)))?;
//! for i in 0..1000i64 {
//!     engine.append(DataPoint::new(i * 50, i * 50 + 7, i as f64))?;
//! }
//! let (points, stats) = engine.query(TimeRange::new(0, 5_000))?;
//! assert_eq!(points.len(), 101);
//! println!("WA so far: {:.3}", engine.metrics().write_amplification());
//! # Ok::<(), seplsm_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod admission;
pub mod arbiter;
pub mod background;
pub mod buffer;
pub mod cache;
pub(crate) mod codec;
pub mod compaction;
pub mod engine;
pub mod fault;
pub mod invariants;
pub mod iterator;
pub mod level;
pub mod manifest;
pub mod memtable;
pub mod metrics;
pub mod multi;
pub mod obs;
pub mod query;
pub mod recovery;
pub mod sstable;
pub mod store;
pub mod version;
pub mod wal;

pub use admission::{
    AdmissionController, AdmissionDecision, AdmissionDepth, AdmissionOutcome,
    AdmissionStats, IoPacer, PaceDecision, PacerStats, RetryBackoff,
    StallTransition, Watermarks,
};
pub use arbiter::{
    Arbiter, ArbiterConfig, ArbiterStats, Rebalance, SeriesAssignment,
};
pub use background::{
    OpenOptions as TieredOpenOptions, TieredEngine, TieredReport,
};
pub use buffer::{FlushTrigger, PolicyBuffers};
pub use cache::{
    BlockCache, BlockKey, CacheConfig, CachePriority, CacheStats, EvictedBlock,
};
pub use compaction::{plan_merge, CompactionPlan, RunInput};
pub use engine::{EngineConfig, LsmEngine, OpenOptions};
pub use fault::{Fault, FaultPlan, FaultStore, IoOp};
pub use invariants::InvariantChecker;
pub use iterator::{merge_sorted, MergeIter};
pub use level::Run;
pub use manifest::Manifest;
pub use memtable::MemTable;
pub use metrics::{Metrics, WaSnapshot};
pub use multi::{MultiSeriesEngine, OpenOptions as MultiOpenOptions, SeriesId};
pub use obs::{
    AggregateReport, AggregateSink, Clock, DegradedOp, DegradedReason,
    DegradedState, Event, FanoutSink, Histogram, JsonlSink, LogicalClock,
    ManifestRecordKind, NullSink, Observer, ObserverHandle, RecoveryStepKind,
    RingBufferSink,
};
pub use query::{Agg, Bucket, DiskModel, QueryStats};
pub use recovery::{
    QuarantinedTable, RecoveryMode, RecoveryOptions, RecoveryReport,
};
pub use sstable::{
    BlockAggregates, BlockSpan, Compression, EncodeOptions, SsTableId,
    SsTableMeta, TableIndex,
};
pub use store::{sync_dir, CachedStore, FileStore, MemStore, TableStore};
pub use version::{Version, VersionEdit};
pub use wal::Wal;
