//! Checked little-endian slice decoding shared by the WAL, manifest and
//! SSTable decoders.
//!
//! Every decoder validates record lengths before reading fields, but the
//! conversions still go through these helpers so that a length-arithmetic
//! bug surfaces as [`Error::Corrupt`] instead of a panic: the library
//! crates are panic-free by lint (`seplint` rule R1).

use seplsm_types::{Error, Result};

/// Copies `N` bytes starting at `off`, or reports a truncation.
fn take<const N: usize>(buf: &[u8], off: usize) -> Result<[u8; N]> {
    match buf.get(off..).and_then(|tail| tail.get(..N)) {
        Some(bytes) => {
            let mut out = [0u8; N];
            out.copy_from_slice(bytes);
            Ok(out)
        }
        None => Err(Error::Corrupt(format!(
            "truncated record: need {N} bytes at offset {off}, have {}",
            buf.len()
        ))),
    }
}

/// Reads a little-endian `u16` at `off`.
pub(crate) fn read_u16_le(buf: &[u8], off: usize) -> Result<u16> {
    Ok(u16::from_le_bytes(take(buf, off)?))
}

/// Reads a little-endian `u32` at `off`.
pub(crate) fn read_u32_le(buf: &[u8], off: usize) -> Result<u32> {
    Ok(u32::from_le_bytes(take(buf, off)?))
}

/// Reads a little-endian `u64` at `off`.
pub(crate) fn read_u64_le(buf: &[u8], off: usize) -> Result<u64> {
    Ok(u64::from_le_bytes(take(buf, off)?))
}

/// Reads a little-endian `i64` at `off`.
pub(crate) fn read_i64_le(buf: &[u8], off: usize) -> Result<i64> {
    Ok(i64::from_le_bytes(take(buf, off)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_round_trip() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&0xBEEFu16.to_le_bytes());
        buf.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        buf.extend_from_slice(&(-42i64).to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(read_u16_le(&buf, 0).unwrap(), 0xBEEF);
        assert_eq!(read_u32_le(&buf, 2).unwrap(), 0xDEAD_BEEF);
        assert_eq!(read_i64_le(&buf, 6).unwrap(), -42);
        assert_eq!(read_u64_le(&buf, 14).unwrap(), u64::MAX);
    }

    #[test]
    fn short_reads_are_corruption_not_panics() {
        let buf = [0u8; 3];
        assert!(read_u32_le(&buf, 0).is_err());
        assert!(read_u16_le(&buf, 2).is_err());
        // Offset past the end, and offset arithmetic that would overflow.
        assert!(read_u64_le(&buf, 100).is_err());
        assert!(read_u16_le(&buf, usize::MAX).is_err());
    }
}
