//! LEB128 varint and zigzag encoding for the SSTable format.
//!
//! Generation timestamps inside an SSTable are sorted, so they are stored as
//! deltas; deltas and delays are small in practice, making varints a large
//! space win over fixed 8-byte fields.

use bytes::{Buf, BufMut};
use seplsm_types::{Error, Result};

/// Appends `v` as an LEB128 varint (1–10 bytes).
pub fn put_uvarint(buf: &mut impl BufMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads an LEB128 varint.
///
/// # Errors
/// [`Error::Corrupt`] on truncation or a varint longer than 10 bytes.
pub fn get_uvarint(buf: &mut impl Buf) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(Error::Corrupt("truncated varint".into()));
        }
        let byte = buf.get_u8();
        if shift == 63 && byte > 1 {
            return Err(Error::Corrupt("varint overflows u64".into()));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(Error::Corrupt("varint too long".into()));
        }
    }
}

/// Zigzag-maps a signed value so small magnitudes stay small.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a zigzag varint.
pub fn put_ivarint(buf: &mut impl BufMut, v: i64) {
    put_uvarint(buf, zigzag(v));
}

/// Reads a zigzag varint.
pub fn get_ivarint(buf: &mut impl Buf) -> Result<i64> {
    Ok(unzigzag(get_uvarint(buf)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn round_trip_u(v: u64) -> u64 {
        let mut b = BytesMut::new();
        put_uvarint(&mut b, v);
        let mut frozen = b.freeze();
        get_uvarint(&mut frozen).expect("round trip")
    }

    #[test]
    fn uvarint_round_trips_boundaries() {
        for v in [
            0,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            assert_eq!(round_trip_u(v), v);
        }
    }

    #[test]
    fn uvarint_is_compact_for_small_values() {
        let mut b = BytesMut::new();
        put_uvarint(&mut b, 100);
        assert_eq!(b.len(), 1);
        let mut b = BytesMut::new();
        put_uvarint(&mut b, 50_000);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn truncated_uvarint_errors() {
        let mut b = BytesMut::new();
        put_uvarint(&mut b, u64::MAX);
        let mut short = b.freeze().slice(0..5);
        assert!(get_uvarint(&mut short).is_err());
    }

    #[test]
    fn overlong_uvarint_errors() {
        let bytes = [0x80u8; 11];
        let mut buf = &bytes[..];
        assert!(get_uvarint(&mut buf).is_err());
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 123_456, -987_654] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    fn ivarint_round_trips() {
        for v in [0i64, -5, 5, i64::MIN, i64::MAX, -1_000_000_007] {
            let mut b = BytesMut::new();
            put_ivarint(&mut b, v);
            let mut frozen = b.freeze();
            assert_eq!(get_ivarint(&mut frozen).expect("round trip"), v);
        }
    }
}
