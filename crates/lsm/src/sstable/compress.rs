//! Time-series compression for the v2 block format.
//!
//! * Integer sequences (generation timestamps, delays) use Gorilla-style
//!   **delta-of-delta** encoding: regular grids (`Δt`-spaced generation
//!   times) collapse to one bit per point, while irregular jumps escape to
//!   wider buckets.
//! * Values use Gorilla **XOR** float compression: slowly varying sensor
//!   channels cost a few bits per point, random doubles degrade gracefully
//!   to ~67 bits.

use seplsm_types::{Error, Result};

use super::bits::{BitReader, BitWriter};

/// Encodes `values` (any i64 sequence) with delta-of-delta bucketing.
///
/// Layout per element: first element raw 64 bits; afterwards the
/// delta-of-delta `D` is stored as
///
/// ```text
/// D == 0                  -> '0'
/// D in [-63, 64]          -> '10'   + 7 bits  (D + 63)
/// D in [-255, 256]        -> '110'  + 9 bits  (D + 255)
/// D in [-2047, 2048]      -> '1110' + 12 bits (D + 2047)
/// otherwise               -> '1111' + 64 bits (two's complement)
/// ```
pub fn encode_i64s(w: &mut BitWriter, values: &[i64]) {
    let mut prev = 0i64;
    let mut prev_delta = 0i64;
    for (i, &v) in values.iter().enumerate() {
        if i == 0 {
            w.put_bits(v as u64, 64);
            prev = v;
            continue;
        }
        let delta = v.wrapping_sub(prev);
        let dod = delta.wrapping_sub(prev_delta);
        if dod == 0 {
            w.put_bit(false);
        } else if (-63..=64).contains(&dod) {
            w.put_bits(0b10, 2);
            w.put_bits((dod + 63) as u64, 7);
        } else if (-255..=256).contains(&dod) {
            w.put_bits(0b110, 3);
            w.put_bits((dod + 255) as u64, 9);
        } else if (-2047..=2048).contains(&dod) {
            w.put_bits(0b1110, 4);
            w.put_bits((dod + 2047) as u64, 12);
        } else {
            w.put_bits(0b1111, 4);
            w.put_bits(dod as u64, 64);
        }
        prev = v;
        prev_delta = delta;
    }
}

/// Decodes `count` elements written by [`encode_i64s`].
///
/// # Errors
/// [`Error::Corrupt`] on a truncated stream.
pub fn decode_i64s(r: &mut BitReader<'_>, count: usize) -> Result<Vec<i64>> {
    let mut out = Vec::with_capacity(count);
    let mut prev = 0i64;
    let mut prev_delta = 0i64;
    for i in 0..count {
        if i == 0 {
            prev = r.bits(64)? as i64;
            out.push(prev);
            continue;
        }
        let dod = if !r.bit()? {
            0i64
        } else if !r.bit()? {
            r.bits(7)? as i64 - 63
        } else if !r.bit()? {
            r.bits(9)? as i64 - 255
        } else if !r.bit()? {
            r.bits(12)? as i64 - 2047
        } else {
            r.bits(64)? as i64
        };
        let delta = prev_delta.wrapping_add(dod);
        prev = prev.wrapping_add(delta);
        prev_delta = delta;
        out.push(prev);
    }
    Ok(out)
}

/// Encodes `values` with Gorilla XOR compression.
pub fn encode_f64s(w: &mut BitWriter, values: &[f64]) {
    let mut prev_bits = 0u64;
    let mut prev_leading = 65u32; // "no previous window"
    let mut prev_trailing = 0u32;
    for (i, &v) in values.iter().enumerate() {
        let bits = v.to_bits();
        if i == 0 {
            w.put_bits(bits, 64);
            prev_bits = bits;
            continue;
        }
        let xor = bits ^ prev_bits;
        prev_bits = bits;
        if xor == 0 {
            w.put_bit(false);
            continue;
        }
        w.put_bit(true);
        let leading = xor.leading_zeros().min(31);
        let trailing = xor.trailing_zeros();
        if prev_leading <= leading
            && prev_trailing <= trailing
            && prev_leading != 65
        {
            // Fits inside the previous meaningful window.
            w.put_bit(false);
            let width = 64 - prev_leading - prev_trailing;
            w.put_bits(xor >> prev_trailing, width as u8);
        } else {
            w.put_bit(true);
            let width = 64 - leading - trailing;
            w.put_bits(u64::from(leading), 5);
            w.put_bits(u64::from(width - 1), 6);
            w.put_bits(xor >> trailing, width as u8);
            prev_leading = leading;
            prev_trailing = trailing;
        }
    }
}

/// Decodes `count` values written by [`encode_f64s`].
///
/// # Errors
/// [`Error::Corrupt`] on a truncated stream.
pub fn decode_f64s(r: &mut BitReader<'_>, count: usize) -> Result<Vec<f64>> {
    let mut out = Vec::with_capacity(count);
    let mut prev_bits = 0u64;
    let mut leading = 0u32;
    let mut trailing = 0u32;
    for i in 0..count {
        if i == 0 {
            prev_bits = r.bits(64)?;
            out.push(f64::from_bits(prev_bits));
            continue;
        }
        if !r.bit()? {
            out.push(f64::from_bits(prev_bits));
            continue;
        }
        if r.bit()? {
            leading = r.bits(5)? as u32;
            let width = r.bits(6)? as u32 + 1;
            if leading + width > 64 {
                return Err(Error::Corrupt(
                    "gorilla window exceeds 64 bits".into(),
                ));
            }
            trailing = 64 - leading - width;
        }
        let width = 64 - leading - trailing;
        let meaningful = r.bits(width as u8)?;
        prev_bits ^= meaningful << trailing;
        out.push(f64::from_bits(prev_bits));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_i64(values: &[i64]) {
        let mut w = BitWriter::new();
        encode_i64s(&mut w, values);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let back = decode_i64s(&mut r, values.len()).expect("decode");
        assert_eq!(back, values);
    }

    fn round_trip_f64(values: &[f64]) -> usize {
        let mut w = BitWriter::new();
        encode_f64s(&mut w, values);
        let bits = w.len_bits();
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let back = decode_f64s(&mut r, values.len()).expect("decode");
        assert_eq!(back.len(), values.len());
        for (a, b) in back.iter().zip(values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        bits
    }

    #[test]
    fn regular_grid_costs_one_bit_per_point() {
        let grid: Vec<i64> = (0..1000).map(|i| i * 50).collect();
        let mut w = BitWriter::new();
        encode_i64s(&mut w, &grid);
        // 64 bits header + dod for point 1 (delta 50, bucket '10'+7) +
        // ~1 bit each afterwards.
        assert!(
            w.len_bits() < 64 + 16 + 1000,
            "grid cost {} bits",
            w.len_bits()
        );
        round_trip_i64(&grid);
    }

    #[test]
    fn i64_edge_cases_round_trip() {
        round_trip_i64(&[0]);
        round_trip_i64(&[i64::MAX, i64::MIN, 0, -1, 1]);
        round_trip_i64(&[5; 100]);
        round_trip_i64(&[
            -1_000_000, 1_000_000, -1, 64, -63, 65, -64, 256, -255, 257, 2048,
            -2047, 2049,
        ]);
    }

    #[test]
    fn bucket_boundaries_round_trip() {
        // Values engineered to hit every dod bucket exactly.
        let mut values = vec![0i64];
        let mut delta = 0i64;
        for dod in [0i64, 64, -63, 256, -255, 2048, -2047, 1 << 40, -(1 << 40)]
        {
            delta += dod;
            values.push(values.last().expect("non-empty") + delta);
        }
        round_trip_i64(&values);
    }

    #[test]
    fn constant_values_cost_one_bit_each() {
        let constant = vec![21.5f64; 500];
        let bits = round_trip_f64(&constant);
        assert!(bits < 64 + 500 + 8, "constant series cost {bits} bits");
    }

    #[test]
    fn slowly_varying_values_compress_well() {
        let ramp: Vec<f64> =
            (0..1000).map(|i| 20.0 + (i as f64) * 0.01).collect();
        let bits = round_trip_f64(&ramp);
        // A decimal ramp churns most mantissa bits; Gorilla still beats the
        // raw 64 bits/pt by reusing the leading-zero window.
        assert!(
            bits < 1000 * 56,
            "smooth ramp should beat 56 bits/pt, got {}",
            bits / 1000
        );
    }

    #[test]
    fn special_floats_round_trip() {
        round_trip_f64(&[
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            0.0,
        ]);
        round_trip_f64(&[f64::MIN_POSITIVE, f64::MAX, f64::MIN]);
    }

    #[test]
    fn pseudorandom_values_round_trip() {
        let mut state = 0x12345678u64;
        let vals: Vec<f64> = (0..2000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                f64::from_bits(state | 0x3FF0_0000_0000_0000)
            })
            .collect();
        round_trip_f64(&vals);
    }

    #[test]
    fn truncated_streams_error() {
        let mut w = BitWriter::new();
        encode_i64s(&mut w, &[1, 1000, -50, 7]);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes[..bytes.len() - 1]);
        assert!(decode_i64s(&mut r, 4).is_err());
    }
}
