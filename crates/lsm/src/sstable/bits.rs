//! Bit-level I/O for the compressed block format.
//!
//! [`BitWriter`] packs bits MSB-first into a byte vector; [`BitReader`]
//! replays them. Both are deliberately simple — the compressed-block
//! encoder is the only client and always knows how many symbols to read.

use seplsm_types::{Error, Result};

/// Append-only MSB-first bit buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the final byte (0 ⇒ byte boundary).
    used: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a single bit.
    pub fn put_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
            self.used = 8;
        }
        self.used -= 1;
        if bit {
            if let Some(last) = self.bytes.last_mut() {
                *last |= 1 << self.used;
            }
        }
    }

    /// Appends the low `width` bits of `value`, MSB first (`width ≤ 64`).
    pub fn put_bits(&mut self, value: u64, width: u8) {
        debug_assert!(width <= 64);
        for i in (0..width).rev() {
            self.put_bit((value >> i) & 1 == 1);
        }
    }

    /// Number of bits written so far.
    pub fn len_bits(&self) -> usize {
        self.bytes.len() * 8 - self.used as usize
    }

    /// Finishes the stream (zero-padding the final byte) and returns the
    /// packed bytes.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

/// MSB-first bit cursor over a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize, // bit position
}

impl<'a> BitReader<'a> {
    /// Creates a reader at bit 0 of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Reads one bit.
    ///
    /// # Errors
    /// [`Error::Corrupt`] past the end of the buffer.
    pub fn bit(&mut self) -> Result<bool> {
        let byte = self.pos / 8;
        if byte >= self.bytes.len() {
            return Err(Error::Corrupt("bit stream exhausted".into()));
        }
        let bit = (self.bytes[byte] >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `width` bits as the low bits of a `u64`, MSB first.
    ///
    /// # Errors
    /// [`Error::Corrupt`] past the end of the buffer.
    pub fn bits(&mut self, width: u8) -> Result<u64> {
        debug_assert!(width <= 64);
        let mut v = 0u64;
        for _ in 0..width {
            v = (v << 1) | u64::from(self.bit()?);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip() {
        let mut w = BitWriter::new();
        w.put_bit(true);
        w.put_bits(0b1011, 4);
        w.put_bits(u64::MAX, 64);
        w.put_bits(0, 7);
        w.put_bit(false);
        let total = w.len_bits();
        assert_eq!(total, 1 + 4 + 64 + 7 + 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(r.bit().expect("bit"));
        assert_eq!(r.bits(4).expect("bits"), 0b1011);
        assert_eq!(r.bits(64).expect("bits"), u64::MAX);
        assert_eq!(r.bits(7).expect("bits"), 0);
        assert!(!r.bit().expect("bit"));
    }

    #[test]
    fn zero_width_reads_nothing() {
        let mut w = BitWriter::new();
        w.put_bits(0xFF, 8);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bits(0).expect("bits"), 0);
        assert_eq!(r.bits(8).expect("bits"), 0xFF);
    }

    #[test]
    fn exhaustion_is_an_error() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        let bytes = w.finish(); // one padded byte
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bits(8).expect("padded byte"), 0b1010_0000);
        assert!(r.bit().is_err());
    }

    #[test]
    fn many_values_round_trip() {
        let mask = |width: u8| u64::MAX >> (64 - u32::from(width));
        let mut w = BitWriter::new();
        for i in 0..1000u64 {
            let width = (i % 64 + 1) as u8;
            w.put_bits(i.wrapping_mul(0x9E3779B97F4A7C15) & mask(width), width);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for i in 0..1000u64 {
            let width = (i % 64 + 1) as u8;
            let expect = i.wrapping_mul(0x9E3779B97F4A7C15) & mask(width);
            assert_eq!(r.bits(width).expect("bits"), expect, "at {i}");
        }
    }
}
