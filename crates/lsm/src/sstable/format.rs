//! The SSTable binary formats.
//!
//! **Version 1** — flat varint records:
//!
//! ```text
//! +--------+---------+-------+-------+--------+--------+-----------+-------+
//! | magic  | version | flags | count | min_tg | max_tg | records…  | crc32 |
//! | 4B     | u16 LE  | u16   | u32   | i64 LE | i64 LE |           | u32   |
//! +--------+---------+-------+-------+--------+--------+-----------+-------+
//! ```
//!
//! Records are sorted by generation time. The first record stores its
//! generation time as an absolute zigzag varint; subsequent records store the
//! (strictly positive) delta to the previous generation time as a plain
//! varint. Every record stores its *delay* (`t_a − t_g`) as a zigzag varint —
//! delays are small, arrival timestamps are not — followed by the `f64` value
//! bits. The trailing CRC-32 covers all preceding bytes.
//!
//! **Version 2** — compressed blocks with an index (pick via
//! [`EncodeOptions`]):
//!
//! ```text
//! +-----------------+------------+---------------------+----------+
//! | header + index  | header_crc | blocks…             | file_crc |
//! +-----------------+------------+---------------------+----------+
//! block  = delta-of-delta timestamps ++ delta-of-delta delays
//!          ++ Gorilla XOR values ++ block_crc
//! index  = per block: first_tg, last_tg, count, offset, len
//! ```
//!
//! The per-block index and CRCs make *block-granular* reads possible
//! ([`decode_range`]): a range query only decodes (and accounts for) the
//! blocks its range overlaps — IoTDB's chunk-read behaviour at a finer
//! granularity (see the `ablation_block_reads` bench).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use seplsm_types::{DataPoint, Error, Result, TimeRange};

use crate::codec;

use super::bits::{BitReader, BitWriter};
use super::compress::{decode_f64s, decode_i64s, encode_f64s, encode_i64s};
use super::crc32::crc32;
use super::varint::{get_ivarint, get_uvarint, put_ivarint, put_uvarint};

const MAGIC: &[u8; 4] = b"SLSM";
const VERSION: u16 = 1;
const VERSION_BLOCKS: u16 = 2;

/// Record encoding used when building an SSTable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Compression {
    /// Version-1 flat varint records.
    #[default]
    None,
    /// Version-2 compressed blocks (delta-of-delta + Gorilla XOR).
    TimeSeries,
}

/// SSTable build options.
#[derive(Debug, Clone, Copy)]
pub struct EncodeOptions {
    /// Record encoding.
    pub compression: Compression,
    /// Points per block in the v2 format (ignored for v1).
    pub block_points: usize,
}

impl Default for EncodeOptions {
    fn default() -> Self {
        Self {
            compression: Compression::None,
            block_points: 128,
        }
    }
}

impl EncodeOptions {
    /// The v2 compressed-block format with the default 128-point blocks.
    pub fn compressed() -> Self {
        Self {
            compression: Compression::TimeSeries,
            block_points: 128,
        }
    }
}

/// Result of a block-granular range read.
#[derive(Debug, Clone)]
pub struct RangeRead {
    /// Points whose generation time falls inside the requested range.
    pub points: Vec<DataPoint>,
    /// Points decoded to serve the read (whole overlapping blocks).
    pub points_scanned: u64,
    /// Blocks decoded.
    pub blocks_read: u64,
}

fn validate_input(points: &[DataPoint]) -> Result<()> {
    if points.is_empty() {
        return Err(Error::InvalidConfig(
            "cannot encode an empty SSTable".into(),
        ));
    }
    for w in points.windows(2) {
        if w[1].gen_time <= w[0].gen_time {
            return Err(Error::InvalidConfig(format!(
                "SSTable points must have strictly increasing gen_time \
                 (prev={}, next={})",
                w[0].gen_time, w[1].gen_time
            )));
        }
    }
    Ok(())
}

/// Encodes `points` with the given options (v1 flat records or v2
/// compressed blocks).
///
/// # Errors
/// [`Error::InvalidConfig`] if the input is empty or not strictly sorted.
pub fn encode_with(
    points: &[DataPoint],
    options: &EncodeOptions,
) -> Result<Bytes> {
    match options.compression {
        Compression::None => encode(points),
        Compression::TimeSeries => {
            encode_v2(points, options.block_points.max(1))
        }
    }
}

/// Encodes `points` (non-empty, sorted by strictly increasing generation
/// time) into the version-1 SSTable wire format.
///
/// # Errors
/// [`Error::InvalidConfig`] if the input is empty or not strictly sorted.
pub fn encode(points: &[DataPoint]) -> Result<Bytes> {
    if points.is_empty() {
        return Err(Error::InvalidConfig(
            "cannot encode an empty SSTable".into(),
        ));
    }
    // Rough capacity guess: ~14 bytes per point after delta compression.
    let mut buf = BytesMut::with_capacity(32 + points.len() * 14);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(0); // flags, reserved
    buf.put_u32_le(points.len() as u32);
    buf.put_i64_le(points[0].gen_time);
    buf.put_i64_le(points[points.len() - 1].gen_time);

    let mut prev_tg = None::<i64>;
    for p in points {
        match prev_tg {
            None => put_ivarint(&mut buf, p.gen_time),
            Some(prev) => {
                let delta = p.gen_time - prev;
                if delta <= 0 {
                    return Err(Error::InvalidConfig(format!(
                        "SSTable points must have strictly increasing gen_time \
                         (prev={prev}, next={})",
                        p.gen_time
                    )));
                }
                put_uvarint(&mut buf, delta as u64);
            }
        }
        prev_tg = Some(p.gen_time);
        put_ivarint(&mut buf, p.delay());
        buf.put_u64_le(p.value.to_bits());
    }

    let crc = crc32(&buf);
    buf.put_u32_le(crc);
    Ok(buf.freeze())
}

/// Decodes and validates an SSTable, returning its points.
///
/// # Errors
/// [`Error::Corrupt`] on bad magic, unsupported version, CRC mismatch,
/// truncation, or header/record inconsistencies.
pub fn decode(data: &[u8]) -> Result<Vec<DataPoint>> {
    const HEADER: usize = 4 + 2 + 2 + 4 + 8 + 8;
    const FOOTER: usize = 4;
    if data.len() < HEADER + FOOTER {
        return Err(Error::Corrupt(format!(
            "SSTable too short: {} bytes",
            data.len()
        )));
    }
    let (body, footer) = data.split_at(data.len() - FOOTER);
    let stored_crc = codec::read_u32_le(footer, 0)?;
    let actual_crc = crc32(body);
    if stored_crc != actual_crc {
        return Err(Error::Corrupt(format!(
            "SSTable CRC mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
        )));
    }

    let mut buf = body;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(Error::Corrupt(format!("bad SSTable magic {magic:02x?}")));
    }
    let version = buf.get_u16_le();
    if version == VERSION_BLOCKS {
        return decode_v2_full(data);
    }
    if version != VERSION {
        return Err(Error::Corrupt(format!(
            "unsupported SSTable version {version}"
        )));
    }
    let _flags = buf.get_u16_le();
    let count = buf.get_u32_le() as usize;
    let min_tg = buf.get_i64_le();
    let max_tg = buf.get_i64_le();

    let mut points = Vec::with_capacity(count);
    let mut prev_tg = None::<i64>;
    for _ in 0..count {
        let gen_time = match prev_tg {
            None => get_ivarint(&mut buf)?,
            Some(prev) => {
                let delta = get_uvarint(&mut buf)?;
                prev.checked_add(delta as i64).ok_or_else(|| {
                    Error::Corrupt("gen_time delta overflow".into())
                })?
            }
        };
        prev_tg = Some(gen_time);
        let delay = get_ivarint(&mut buf)?;
        if buf.remaining() < 8 {
            return Err(Error::Corrupt("truncated record value".into()));
        }
        let value = f64::from_bits(buf.get_u64_le());
        points.push(DataPoint::with_delay(gen_time, delay, value));
    }
    if buf.has_remaining() {
        return Err(Error::Corrupt(format!(
            "{} trailing bytes after {count} records",
            buf.remaining()
        )));
    }
    match (points.first(), points.last()) {
        (Some(first), Some(last))
            if first.gen_time == min_tg && last.gen_time == max_tg => {}
        _ => {
            return Err(Error::Corrupt(
                "header min/max do not match records".into(),
            ))
        }
    }
    Ok(points)
}

/// v2 fixed header size: magic(4) + version(2) + flags(2) + count(4) +
/// min(8) + max(8) + block_points(4) + block_count(4).
const V2_FIXED: usize = 36;
/// v2 index entry: first(8) + last(8) + count(4) + offset(4) + len(4).
const V2_INDEX_ENTRY: usize = 28;

fn encode_v2(points: &[DataPoint], block_points: usize) -> Result<Bytes> {
    validate_input(points)?;

    struct BlockBuild {
        first: i64,
        last: i64,
        count: u32,
        payload: Vec<u8>,
    }
    let mut blocks = Vec::new();
    for chunk in points.chunks(block_points) {
        let tgs: Vec<i64> = chunk.iter().map(|p| p.gen_time).collect();
        let delays: Vec<i64> = chunk.iter().map(DataPoint::delay).collect();
        let values: Vec<f64> = chunk.iter().map(|p| p.value).collect();
        let mut w = BitWriter::new();
        encode_i64s(&mut w, &tgs);
        encode_i64s(&mut w, &delays);
        encode_f64s(&mut w, &values);
        let mut payload = w.finish();
        let block_crc = crc32(&payload);
        payload.extend_from_slice(&block_crc.to_le_bytes());
        blocks.push(BlockBuild {
            first: tgs[0],
            last: tgs[tgs.len() - 1],
            count: chunk.len() as u32,
            payload,
        });
    }

    let index_len = blocks.len() * V2_INDEX_ENTRY;
    let data_len: usize = blocks.iter().map(|b| b.payload.len()).sum();
    let mut buf =
        BytesMut::with_capacity(V2_FIXED + index_len + 4 + data_len + 4);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION_BLOCKS);
    buf.put_u16_le(1); // flags: compressed
    buf.put_u32_le(points.len() as u32);
    buf.put_i64_le(points[0].gen_time);
    buf.put_i64_le(points[points.len() - 1].gen_time);
    buf.put_u32_le(block_points as u32);
    buf.put_u32_le(blocks.len() as u32);
    let mut offset = 0u32;
    for b in &blocks {
        buf.put_i64_le(b.first);
        buf.put_i64_le(b.last);
        buf.put_u32_le(b.count);
        buf.put_u32_le(offset);
        buf.put_u32_le(b.payload.len() as u32);
        offset += b.payload.len() as u32;
    }
    let header_crc = crc32(&buf);
    buf.put_u32_le(header_crc);
    for b in &blocks {
        buf.put_slice(&b.payload);
    }
    let file_crc = crc32(&buf);
    buf.put_u32_le(file_crc);
    Ok(buf.freeze())
}

/// Parsed v2 header + index.
struct V2Header {
    count: usize,
    min_tg: i64,
    max_tg: i64,
    index: Vec<V2Entry>,
    /// Byte offset where block data starts.
    data_start: usize,
}

#[derive(Clone, Copy)]
struct V2Entry {
    first: i64,
    last: i64,
    count: u32,
    offset: u32,
    len: u32,
}

/// Parses and CRC-validates the v2 header + index region.
fn parse_v2_header(data: &[u8]) -> Result<V2Header> {
    if data.len() < V2_FIXED + 4 {
        return Err(Error::Corrupt("v2 SSTable too short for header".into()));
    }
    let mut buf = data;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(Error::Corrupt(format!("bad SSTable magic {magic:02x?}")));
    }
    let version = buf.get_u16_le();
    if version != VERSION_BLOCKS {
        return Err(Error::Corrupt(format!(
            "expected v2 SSTable, found version {version}"
        )));
    }
    let _flags = buf.get_u16_le();
    let count = buf.get_u32_le() as usize;
    let min_tg = buf.get_i64_le();
    let max_tg = buf.get_i64_le();
    let _block_points = buf.get_u32_le();
    let block_count = buf.get_u32_le() as usize;
    let header_len = V2_FIXED + block_count * V2_INDEX_ENTRY;
    if data.len() < header_len + 4 {
        return Err(Error::Corrupt("v2 SSTable truncated in index".into()));
    }
    let stored = codec::read_u32_le(data, header_len)?;
    let actual = crc32(&data[..header_len]);
    if stored != actual {
        return Err(Error::Corrupt(format!(
            "v2 header CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    let mut index = Vec::with_capacity(block_count);
    let mut total: u64 = 0;
    for _ in 0..block_count {
        let entry = V2Entry {
            first: buf.get_i64_le(),
            last: buf.get_i64_le(),
            count: buf.get_u32_le(),
            offset: buf.get_u32_le(),
            len: buf.get_u32_le(),
        };
        total += u64::from(entry.count);
        index.push(entry);
    }
    if total != count as u64 {
        return Err(Error::Corrupt(format!(
            "v2 block counts sum to {total}, header says {count}"
        )));
    }
    Ok(V2Header {
        count,
        min_tg,
        max_tg,
        index,
        data_start: header_len + 4,
    })
}

/// Decodes one v2 block (verifying its CRC).
fn decode_v2_block(
    data: &[u8],
    header: &V2Header,
    entry: &V2Entry,
) -> Result<Vec<DataPoint>> {
    let start = header.data_start + entry.offset as usize;
    let end = start + entry.len as usize;
    // Block data must not run into the trailing 4-byte file CRC.
    if end > data.len().saturating_sub(4) {
        return Err(Error::Corrupt("v2 block extends past file".into()));
    }
    let block = &data[start..end];
    if block.len() < 4 {
        return Err(Error::Corrupt("v2 block too short".into()));
    }
    let (payload, crc_bytes) = block.split_at(block.len() - 4);
    let stored = codec::read_u32_le(crc_bytes, 0)?;
    let actual = crc32(payload);
    if stored != actual {
        return Err(Error::Corrupt(format!(
            "v2 block CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    let count = entry.count as usize;
    let mut reader = BitReader::new(payload);
    let tgs = decode_i64s(&mut reader, count)?;
    let delays = decode_i64s(&mut reader, count)?;
    let values = decode_f64s(&mut reader, count)?;
    let mut points = Vec::with_capacity(count);
    for i in 0..count {
        points.push(DataPoint::with_delay(tgs[i], delays[i], values[i]));
    }
    if points.first().map(|p| p.gen_time) != Some(entry.first)
        || points.last().map(|p| p.gen_time) != Some(entry.last)
    {
        return Err(Error::Corrupt(
            "v2 block contents disagree with index entry".into(),
        ));
    }
    Ok(points)
}

/// Full decode of a v2 SSTable (called from [`decode`] after the file CRC
/// has been verified).
fn decode_v2_full(data: &[u8]) -> Result<Vec<DataPoint>> {
    let header = parse_v2_header(data)?;
    let mut points = Vec::with_capacity(header.count);
    for entry in &header.index {
        points.extend(decode_v2_block(data, &header, entry)?);
    }
    if points.len() != header.count {
        return Err(Error::Corrupt("v2 point count mismatch".into()));
    }
    for w in points.windows(2) {
        if w[1].gen_time <= w[0].gen_time {
            return Err(Error::Corrupt(
                "v2 blocks are not sorted across boundaries".into(),
            ));
        }
    }
    match (points.first(), points.last()) {
        (Some(first), Some(last))
            if first.gen_time == header.min_tg
                && last.gen_time == header.max_tg => {}
        _ => {
            return Err(Error::Corrupt(
                "v2 header min/max do not match records".into(),
            ))
        }
    }
    Ok(points)
}

/// One block's descriptor in a [`TableIndex`]: generation-time bounds, point
/// count, and the byte span of the encoded block within the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSpan {
    /// Generation time of the block's first point.
    pub first: i64,
    /// Generation time of the block's last point.
    pub last: i64,
    /// Points in the block.
    pub count: u32,
    /// Byte offset of the block relative to the table's data region.
    pub offset: u32,
    /// Encoded block length in bytes (including the block CRC).
    pub len: u32,
}

/// A parsed table index: enough metadata to prune blocks against a time
/// range and decode individual blocks via [`decode_index_block`] without
/// re-parsing the header per read.
///
/// For v2 tables this is the real per-block index; a v1 table is modelled
/// as a single block spanning the whole file, so callers can treat both
/// formats uniformly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableIndex {
    /// Total points in the table.
    pub count: usize,
    /// Smallest generation time in the table.
    pub min_tg: i64,
    /// Largest generation time in the table.
    pub max_tg: i64,
    /// Per-block descriptors, in generation-time order.
    pub blocks: Vec<BlockSpan>,
    version: u16,
    data_start: usize,
}

/// Parses the index of an SSTable in either format.
///
/// For v2 the header + index region is CRC-validated here; for v1 only the
/// fixed header is read (the full-file CRC is validated when the single
/// block is decoded).
///
/// # Errors
/// [`Error::Corrupt`] on bad magic, unsupported version, truncation, or a
/// v2 header CRC mismatch.
pub fn read_table_index(data: &[u8]) -> Result<TableIndex> {
    const V1_HEADER: usize = 4 + 2 + 2 + 4 + 8 + 8;
    if data.len() < 6 || &data[..4] != MAGIC {
        return Err(Error::Corrupt("bad SSTable magic".into()));
    }
    let version = codec::read_u16_le(data, 4)?;
    if version == VERSION_BLOCKS {
        let header = parse_v2_header(data)?;
        let blocks = header
            .index
            .iter()
            .map(|e| BlockSpan {
                first: e.first,
                last: e.last,
                count: e.count,
                offset: e.offset,
                len: e.len,
            })
            .collect();
        return Ok(TableIndex {
            count: header.count,
            min_tg: header.min_tg,
            max_tg: header.max_tg,
            blocks,
            version: VERSION_BLOCKS,
            data_start: header.data_start,
        });
    }
    if version != VERSION {
        return Err(Error::Corrupt(format!(
            "unsupported SSTable version {version}"
        )));
    }
    if data.len() < V1_HEADER + 4 {
        return Err(Error::Corrupt(format!(
            "SSTable too short: {} bytes",
            data.len()
        )));
    }
    let mut buf = &data[8..];
    let count = buf.get_u32_le() as usize;
    let min_tg = buf.get_i64_le();
    let max_tg = buf.get_i64_le();
    Ok(TableIndex {
        count,
        min_tg,
        max_tg,
        blocks: vec![BlockSpan {
            first: min_tg,
            last: max_tg,
            count: count as u32,
            offset: 0,
            len: data.len() as u32,
        }],
        version: VERSION,
        data_start: 0,
    })
}

/// Decodes (and CRC-validates) one block named by `index.blocks[block]`.
///
/// For a v1 table, block 0 is the whole table and this is a full validated
/// decode.
///
/// # Errors
/// [`Error::Corrupt`] if `block` is out of range or the block fails
/// validation.
pub fn decode_index_block(
    data: &[u8],
    index: &TableIndex,
    block: usize,
) -> Result<Vec<DataPoint>> {
    let span = index.blocks.get(block).ok_or_else(|| {
        Error::Corrupt(format!(
            "block {block} out of range ({} blocks)",
            index.blocks.len()
        ))
    })?;
    if index.version == VERSION_BLOCKS {
        let header = V2Header {
            count: index.count,
            min_tg: index.min_tg,
            max_tg: index.max_tg,
            index: Vec::new(),
            data_start: index.data_start,
        };
        let entry = V2Entry {
            first: span.first,
            last: span.last,
            count: span.count,
            offset: span.offset,
            len: span.len,
        };
        decode_v2_block(data, &header, &entry)
    } else {
        decode(data)
    }
}

/// Block-granular range read: decodes only the blocks whose generation-time
/// range overlaps `range` and reports exactly how much was scanned.
///
/// For v1 tables the whole table is one block (full decode); v2 tables use
/// the block index. Either way the returned points are filtered to `range`.
///
/// # Errors
/// [`Error::Corrupt`] on any validation failure in the touched region.
pub fn decode_range(data: &[u8], range: TimeRange) -> Result<RangeRead> {
    if data.len() >= 6 && &data[..4] == MAGIC {
        let version = codec::read_u16_le(data, 4)?;
        if version == VERSION_BLOCKS {
            let header = parse_v2_header(data)?;
            let mut read = RangeRead {
                points: Vec::new(),
                points_scanned: 0,
                blocks_read: 0,
            };
            if header.max_tg < range.start || header.min_tg > range.end {
                return Ok(read);
            }
            for entry in &header.index {
                if entry.last < range.start || entry.first > range.end {
                    continue;
                }
                let block = decode_v2_block(data, &header, entry)?;
                read.blocks_read += 1;
                read.points_scanned += block.len() as u64;
                read.points.extend(
                    block.into_iter().filter(|p| range.contains(p.gen_time)),
                );
            }
            return Ok(read);
        }
    }
    // v1 (or anything else): full validated decode counts as one block.
    let points = decode(data)?;
    let points_scanned = points.len() as u64;
    Ok(RangeRead {
        points: points
            .into_iter()
            .filter(|p| range.contains(p.gen_time))
            .collect(),
        points_scanned,
        blocks_read: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_points(n: usize) -> Vec<DataPoint> {
        (0..n)
            .map(|i| {
                DataPoint::with_delay(
                    (i as i64) * 50 + 1_000_000,
                    (i as i64 * 37) % 991,
                    i as f64 * 0.5,
                )
            })
            .collect()
    }

    #[test]
    fn round_trips_typical_table() {
        let pts = sample_points(512);
        let bytes = encode(&pts).expect("encode");
        let back = decode(&bytes).expect("decode");
        assert_eq!(back, pts);
    }

    #[test]
    fn round_trips_single_point_and_negative_delay() {
        let pts = vec![DataPoint::new(-5, -10, f64::MIN)];
        let back = decode(&encode(&pts).expect("encode")).expect("decode");
        assert_eq!(back, pts);
        assert_eq!(back[0].delay(), -5);
    }

    #[test]
    fn preserves_value_bit_patterns() {
        let pts = vec![
            DataPoint::new(1, 1, f64::NAN),
            DataPoint::new(2, 2, f64::INFINITY),
            DataPoint::new(3, 3, -0.0),
        ];
        let back = decode(&encode(&pts).expect("encode")).expect("decode");
        assert!(back[0].value.is_nan());
        assert_eq!(back[1].value, f64::INFINITY);
        assert_eq!(back[2].value.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn delta_compression_beats_fixed_width() {
        let pts = sample_points(1000);
        let bytes = encode(&pts).expect("encode");
        // Fixed-width would be 24 bytes per point; deltas should roughly halve it.
        assert!(
            bytes.len() < 1000 * 24 / 2 + 64,
            "encoded size {} too large",
            bytes.len()
        );
    }

    #[test]
    fn rejects_empty_input() {
        assert!(encode(&[]).is_err());
    }

    #[test]
    fn rejects_unsorted_input() {
        let pts = vec![DataPoint::new(10, 10, 0.0), DataPoint::new(5, 5, 0.0)];
        assert!(encode(&pts).is_err());
        let dup =
            vec![DataPoint::new(10, 10, 0.0), DataPoint::new(10, 11, 0.0)];
        assert!(encode(&dup).is_err());
    }

    #[test]
    fn detects_corruption_anywhere() {
        let bytes = encode(&sample_points(64)).expect("encode");
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.to_vec();
            bad[i] ^= 0x40;
            assert!(decode(&bad).is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn detects_truncation() {
        let bytes = encode(&sample_points(64)).expect("encode");
        for cut in [0, 1, 10, bytes.len() - 1] {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes"
            );
        }
    }

    #[test]
    fn v2_round_trips_typical_table() {
        let pts = sample_points(512);
        let bytes =
            encode_with(&pts, &EncodeOptions::compressed()).expect("encode");
        let back = decode(&bytes).expect("decode");
        assert_eq!(back, pts);
    }

    #[test]
    fn v2_round_trips_odd_sizes_and_single_point() {
        for n in [1usize, 2, 127, 128, 129, 300] {
            let pts = sample_points(n);
            let bytes = encode_with(&pts, &EncodeOptions::compressed())
                .expect("encode");
            assert_eq!(decode(&bytes).expect("decode"), pts, "n={n}");
        }
    }

    #[test]
    fn v2_compresses_grid_data_substantially() {
        // Regular grid + small delays + smooth values: the v2 format should
        // be several times smaller than v1.
        let pts: Vec<DataPoint> = (0..4096)
            .map(|i| {
                DataPoint::with_delay(i as i64 * 50, 20 + (i as i64 % 3), 25.0)
            })
            .collect();
        let v1 = encode(&pts).expect("v1");
        let v2 = encode_with(&pts, &EncodeOptions::compressed()).expect("v2");
        assert!(
            v2.len() * 3 < v1.len(),
            "v2 {} bytes vs v1 {} bytes",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn v2_preserves_special_values_and_negative_delays() {
        let pts = vec![
            DataPoint::new(-100, -150, f64::NAN),
            DataPoint::new(0, 0, f64::INFINITY),
            DataPoint::new(7, 1_000_000, -0.0),
        ];
        let bytes =
            encode_with(&pts, &EncodeOptions::compressed()).expect("encode");
        let back = decode(&bytes).expect("decode");
        assert!(back[0].value.is_nan());
        assert_eq!(back[0].delay(), -50);
        assert_eq!(back[1].value, f64::INFINITY);
        assert_eq!(back[2].value.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn v2_detects_corruption_anywhere() {
        let pts = sample_points(300);
        let bytes =
            encode_with(&pts, &EncodeOptions::compressed()).expect("encode");
        for i in (0..bytes.len()).step_by(11) {
            let mut bad = bytes.to_vec();
            bad[i] ^= 0x10;
            assert!(decode(&bad).is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn decode_range_reads_only_overlapping_blocks() {
        let pts = sample_points(512); // gen times 1_000_000 + i*50, 4 blocks of 128
        let bytes =
            encode_with(&pts, &EncodeOptions::compressed()).expect("encode");
        // Range covering points 130..=140 (inside block 1).
        let range = seplsm_types::TimeRange::new(
            1_000_000 + 130 * 50,
            1_000_000 + 140 * 50,
        );
        let read = decode_range(&bytes, range).expect("range read");
        assert_eq!(read.blocks_read, 1);
        assert_eq!(read.points_scanned, 128);
        assert_eq!(read.points.len(), 11);
        assert!(read.points.iter().all(|p| range.contains(p.gen_time)));
        // Disjoint range: nothing decoded.
        let miss =
            decode_range(&bytes, seplsm_types::TimeRange::new(0, 999_999))
                .expect("miss");
        assert_eq!(miss.blocks_read, 0);
        assert_eq!(miss.points_scanned, 0);
        assert!(miss.points.is_empty());
    }

    #[test]
    fn decode_range_spanning_blocks() {
        let pts = sample_points(512);
        let bytes =
            encode_with(&pts, &EncodeOptions::compressed()).expect("encode");
        let range = seplsm_types::TimeRange::new(
            1_000_000 + 120 * 50,
            1_000_000 + 260 * 50,
        );
        let read = decode_range(&bytes, range).expect("range read");
        assert_eq!(read.blocks_read, 3); // blocks 0,1,2
        assert_eq!(read.points_scanned, 384);
        assert_eq!(read.points.len(), 141);
    }

    #[test]
    fn decode_range_on_v1_scans_whole_table() {
        let pts = sample_points(64);
        let bytes = encode(&pts).expect("encode v1");
        let range = seplsm_types::TimeRange::new(1_000_000, 1_000_000 + 5 * 50);
        let read = decode_range(&bytes, range).expect("range read");
        assert_eq!(read.blocks_read, 1);
        assert_eq!(read.points_scanned, 64);
        assert_eq!(read.points.len(), 6);
    }

    #[test]
    fn v2_block_granular_read_survives_corruption_elsewhere() {
        // Corrupting block 3 must not break a read confined to block 0.
        let pts = sample_points(512);
        let bytes = encode_with(&pts, &EncodeOptions::compressed())
            .expect("encode")
            .to_vec();
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - 10] ^= 0xff; // inside the last block
        let range =
            seplsm_types::TimeRange::new(1_000_000, 1_000_000 + 10 * 50);
        let ok = decode_range(&bad, range).expect("block 0 still readable");
        assert_eq!(ok.points.len(), 11);
        // But reading the damaged block fails loudly.
        let tail_range = seplsm_types::TimeRange::new(
            1_000_000 + 500 * 50,
            1_000_000 + 511 * 50,
        );
        assert!(decode_range(&bad, tail_range).is_err());
    }

    #[test]
    fn table_index_names_every_v2_block() {
        let pts = sample_points(300); // 3 blocks: 128 + 128 + 44
        let bytes =
            encode_with(&pts, &EncodeOptions::compressed()).expect("encode");
        let index = read_table_index(&bytes).expect("index");
        assert_eq!(index.count, 300);
        assert_eq!(index.min_tg, pts[0].gen_time);
        assert_eq!(index.max_tg, pts[299].gen_time);
        assert_eq!(index.blocks.len(), 3);
        let mut all = Vec::new();
        for b in 0..index.blocks.len() {
            let block =
                decode_index_block(&bytes, &index, b).expect("decode block");
            assert_eq!(block.len(), index.blocks[b].count as usize);
            assert_eq!(block[0].gen_time, index.blocks[b].first);
            assert_eq!(block[block.len() - 1].gen_time, index.blocks[b].last);
            all.extend(block);
        }
        assert_eq!(all, pts);
    }

    #[test]
    fn table_index_models_v1_as_one_block() {
        let pts = sample_points(64);
        let bytes = encode(&pts).expect("encode v1");
        let index = read_table_index(&bytes).expect("index");
        assert_eq!(index.count, 64);
        assert_eq!(index.blocks.len(), 1);
        assert_eq!(index.blocks[0].first, pts[0].gen_time);
        assert_eq!(index.blocks[0].last, pts[63].gen_time);
        assert_eq!(decode_index_block(&bytes, &index, 0).expect("decode"), pts);
        assert!(decode_index_block(&bytes, &index, 1).is_err());
    }

    #[test]
    fn table_index_rejects_corrupt_v2_header() {
        let pts = sample_points(256);
        let mut bytes = encode_with(&pts, &EncodeOptions::compressed())
            .expect("encode")
            .to_vec();
        bytes[10] ^= 0x04; // inside the fixed header
        assert!(read_table_index(&bytes).is_err());
    }

    #[test]
    fn rejects_wrong_magic_and_version() {
        let bytes = encode(&sample_points(4)).expect("encode").to_vec();
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        // Fix up CRC so the magic check itself is exercised.
        let crc = crc32(&bad_magic[..bad_magic.len() - 4]);
        let n = bad_magic.len();
        bad_magic[n - 4..].copy_from_slice(&crc.to_le_bytes());
        let err = decode(&bad_magic).expect_err("bad magic");
        assert!(err.to_string().contains("magic"), "{err}");

        let mut bad_ver = bytes;
        bad_ver[4] = 99;
        let crc = crc32(&bad_ver[..bad_ver.len() - 4]);
        let n = bad_ver.len();
        bad_ver[n - 4..].copy_from_slice(&crc.to_le_bytes());
        let err = decode(&bad_ver).expect_err("bad version");
        assert!(err.to_string().contains("version"), "{err}");
    }
}
