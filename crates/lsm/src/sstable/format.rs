//! The SSTable binary formats.
//!
//! **Version 1** — flat varint records:
//!
//! ```text
//! +--------+---------+-------+-------+--------+--------+-----------+-------+
//! | magic  | version | flags | count | min_tg | max_tg | records…  | crc32 |
//! | 4B     | u16 LE  | u16   | u32   | i64 LE | i64 LE |           | u32   |
//! +--------+---------+-------+-------+--------+--------+-----------+-------+
//! ```
//!
//! Records are sorted by generation time. The first record stores its
//! generation time as an absolute zigzag varint; subsequent records store the
//! (strictly positive) delta to the previous generation time as a plain
//! varint. Every record stores its *delay* (`t_a − t_g`) as a zigzag varint —
//! delays are small, arrival timestamps are not — followed by the `f64` value
//! bits. The trailing CRC-32 covers all preceding bytes.
//!
//! **Version 2** — compressed blocks with an index (pick via
//! [`EncodeOptions`]):
//!
//! ```text
//! +-----------------+------------+---------------------+----------+
//! | header + index  | header_crc | blocks…             | file_crc |
//! +-----------------+------------+---------------------+----------+
//! block  = delta-of-delta timestamps ++ delta-of-delta delays
//!          ++ Gorilla XOR values ++ block_crc
//! index  = per block: first_tg, last_tg, count, offset, len
//! ```
//!
//! The per-block index and CRCs make *block-granular* reads possible
//! ([`decode_range`]): a range query only decodes (and accounts for) the
//! blocks its range overlaps — IoTDB's chunk-read behaviour at a finer
//! granularity (see the `ablation_block_reads` bench).
//!
//! **Version 3** — the default: compressed blocks with a *trailing* index,
//! per-block `min/max/sum` pre-aggregates, a per-table pruning filter
//! ([`super::filter::TableFilter`]) and a fixed footer, so a reader that
//! can serve byte ranges never has to touch the data region to plan a
//! query (AeternusDB-style: header first, footer last, no backward
//! seeking while writing):
//!
//! ```text
//! +--------------+-----------+------------+--------------+-----------+--------+
//! | header (36B) | blocks…   | index blk  | filter blk   | metaindex | footer |
//! +--------------+-----------+------------+--------------+-----------+--------+
//! header    = magic "SLSM" | version=3 u16 | flags u16 | count u32
//!             | min_tg i64 | max_tg i64 | block_points u32 | header_crc u32
//! block     = delta-of-delta timestamps ++ delta-of-delta delays
//!             ++ Gorilla XOR values ++ block_crc u32        (same as v2)
//! index blk = count u32 | min_tg i64 | max_tg i64 | block_count u32
//!             | per block: first i64, last i64, count u32, offset u32,
//!               len u32, min_val f64, max_val f64, sum f64,
//!               agg_count u32                               | index_crc u32
//! filterblk = TableFilter wire format (own CRC)
//! metaindex = index_off u64 | index_len u32 | filter_off u64
//!             | filter_len u32 | metaindex_crc u32           (28 bytes)
//! footer    = metaindex_off u64 | metaindex_len u32 | footer_crc u32
//!             | magic "SL3F"                                 (20 bytes)
//! ```
//!
//! A reader locates everything from the last 20 bytes: footer → metaindex
//! → index + filter ([`parse_v3_footer`], [`parse_v3_metaindex`],
//! [`parse_v3_index`]). Every region carries its own CRC (there is no
//! whole-file CRC — that would force whole-file reads), so a torn write
//! that loses the tail is detected by the missing footer magic.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use seplsm_types::{DataPoint, Error, Result, TimeRange};

use crate::codec;

use super::bits::{BitReader, BitWriter};
use super::compress::{decode_f64s, decode_i64s, encode_f64s, encode_i64s};
use super::crc32::crc32;
use super::filter::TableFilter;
use super::varint::{get_ivarint, get_uvarint, put_ivarint, put_uvarint};

const MAGIC: &[u8; 4] = b"SLSM";
const VERSION: u16 = 1;
const VERSION_BLOCKS: u16 = 2;
/// Smallest possible v1 record: a 1-byte gen-time varint, a 1-byte delay
/// varint, and an 8-byte value — the divisor that bounds a decoded record
/// count against the remaining payload.
const MIN_V1_RECORD: usize = 10;
/// On-disk version tag of the pruned (v3) layout; what
/// [`sniff_version`] returns for tables carrying a filter block.
pub const VERSION_PRUNED: u16 = 3;

/// Record encoding used when building an SSTable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Compression {
    /// Version-1 flat varint records.
    None,
    /// Version-2 compressed blocks (delta-of-delta + Gorilla XOR).
    TimeSeries,
    /// Version-3 (the default): compressed blocks plus a trailing
    /// pre-aggregate index, pruning filter and footer.
    #[default]
    Pruned,
}

/// SSTable build options.
#[derive(Debug, Clone, Copy)]
pub struct EncodeOptions {
    /// Record encoding.
    pub compression: Compression,
    /// Points per block in the v2 format (ignored for v1).
    pub block_points: usize,
}

impl Default for EncodeOptions {
    fn default() -> Self {
        Self {
            compression: Compression::Pruned,
            block_points: 128,
        }
    }
}

impl EncodeOptions {
    /// The v1 flat record format (kept reachable for compat tests).
    pub fn flat() -> Self {
        Self {
            compression: Compression::None,
            block_points: 128,
        }
    }

    /// The v2 compressed-block format with the default 128-point blocks.
    pub fn compressed() -> Self {
        Self {
            compression: Compression::TimeSeries,
            block_points: 128,
        }
    }

    /// The v3 pruned format (index aggregates + filter + footer) — the
    /// default, spelled out for tests that contrast versions.
    pub fn pruned() -> Self {
        Self {
            compression: Compression::Pruned,
            block_points: 128,
        }
    }
}

/// Result of a block-granular range read.
#[derive(Debug, Clone)]
pub struct RangeRead {
    /// Points whose generation time falls inside the requested range.
    pub points: Vec<DataPoint>,
    /// Points decoded to serve the read (whole overlapping blocks).
    pub points_scanned: u64,
    /// Blocks decoded.
    pub blocks_read: u64,
}

fn validate_input(points: &[DataPoint]) -> Result<()> {
    if points.is_empty() {
        return Err(Error::InvalidConfig(
            "cannot encode an empty SSTable".into(),
        ));
    }
    for w in points.windows(2) {
        if w[1].gen_time <= w[0].gen_time {
            return Err(Error::InvalidConfig(format!(
                "SSTable points must have strictly increasing gen_time \
                 (prev={}, next={})",
                w[0].gen_time, w[1].gen_time
            )));
        }
    }
    Ok(())
}

/// Encodes `points` with the given options (v1 flat records or v2
/// compressed blocks).
///
/// # Errors
/// [`Error::InvalidConfig`] if the input is empty or not strictly sorted.
pub fn encode_with(
    points: &[DataPoint],
    options: &EncodeOptions,
) -> Result<Bytes> {
    match options.compression {
        Compression::None => encode(points),
        Compression::TimeSeries => {
            encode_v2(points, options.block_points.max(1))
        }
        Compression::Pruned => encode_v3(points, options.block_points.max(1)),
    }
}

/// Encodes `points` (non-empty, sorted by strictly increasing generation
/// time) into the version-1 SSTable wire format.
///
/// # Errors
/// [`Error::InvalidConfig`] if the input is empty or not strictly sorted.
pub fn encode(points: &[DataPoint]) -> Result<Bytes> {
    if points.is_empty() {
        return Err(Error::InvalidConfig(
            "cannot encode an empty SSTable".into(),
        ));
    }
    // Rough capacity guess: ~14 bytes per point after delta compression.
    let mut buf = BytesMut::with_capacity(32 + points.len() * 14);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(0); // flags, reserved
    buf.put_u32_le(points.len() as u32);
    buf.put_i64_le(points[0].gen_time);
    buf.put_i64_le(points[points.len() - 1].gen_time);

    let mut prev_tg = None::<i64>;
    for p in points {
        match prev_tg {
            None => put_ivarint(&mut buf, p.gen_time),
            Some(prev) => {
                let delta = p.gen_time - prev;
                if delta <= 0 {
                    return Err(Error::InvalidConfig(format!(
                        "SSTable points must have strictly increasing gen_time \
                         (prev={prev}, next={})",
                        p.gen_time
                    )));
                }
                put_uvarint(&mut buf, delta as u64);
            }
        }
        prev_tg = Some(p.gen_time);
        put_ivarint(&mut buf, p.delay());
        buf.put_u64_le(p.value.to_bits());
    }

    let crc = crc32(&buf);
    buf.put_u32_le(crc);
    Ok(buf.freeze())
}

/// Decodes and validates an SSTable, returning its points.
///
/// # Errors
/// [`Error::Corrupt`] on bad magic, unsupported version, CRC mismatch,
/// truncation, or header/record inconsistencies.
pub fn decode(data: &[u8]) -> Result<Vec<DataPoint>> {
    const HEADER: usize = 4 + 2 + 2 + 4 + 8 + 8;
    const FOOTER: usize = 4;
    // v3 carries per-region CRCs and a trailing footer instead of a
    // whole-file CRC, so it must be sniffed before the v1/v2 CRC check.
    if sniff_version(data) == Some(VERSION_PRUNED) {
        return decode_v3_full(data);
    }
    if data.len() < HEADER + FOOTER {
        return Err(Error::Corrupt(format!(
            "SSTable too short: {} bytes",
            data.len()
        )));
    }
    let (body, footer) = data.split_at(data.len() - FOOTER);
    let stored_crc = codec::read_u32_le(footer, 0)?;
    let actual_crc = crc32(body);
    if stored_crc != actual_crc {
        return Err(Error::Corrupt(format!(
            "SSTable CRC mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
        )));
    }

    let mut buf = body;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(Error::Corrupt(format!("bad SSTable magic {magic:02x?}")));
    }
    let version = buf.get_u16_le();
    if version == VERSION_BLOCKS {
        return decode_v2_full(data);
    }
    if version != VERSION {
        return Err(Error::Corrupt(format!(
            "unsupported SSTable version {version}"
        )));
    }
    let _flags = buf.get_u16_le();
    let count = buf.get_u32_le() as usize;
    let min_tg = buf.get_i64_le();
    let max_tg = buf.get_i64_le();

    // A v1 record occupies at least two 1-byte varints plus an 8-byte
    // value, so a count claiming more records than the remaining payload
    // can hold is corruption — reject it before it sizes the allocation.
    if count > buf.remaining() / MIN_V1_RECORD {
        return Err(Error::Corrupt(format!(
            "v1 record count {count} exceeds the {} remaining payload bytes",
            buf.remaining()
        )));
    }
    let mut points = Vec::with_capacity(count);
    let mut prev_tg = None::<i64>;
    for _ in 0..count {
        let gen_time = match prev_tg {
            None => get_ivarint(&mut buf)?,
            Some(prev) => {
                let delta = get_uvarint(&mut buf)?;
                prev.checked_add(delta as i64).ok_or_else(|| {
                    Error::Corrupt("gen_time delta overflow".into())
                })?
            }
        };
        prev_tg = Some(gen_time);
        let delay = get_ivarint(&mut buf)?;
        if buf.remaining() < 8 {
            return Err(Error::Corrupt("truncated record value".into()));
        }
        let value = f64::from_bits(buf.get_u64_le());
        points.push(DataPoint::with_delay(gen_time, delay, value));
    }
    if buf.has_remaining() {
        return Err(Error::Corrupt(format!(
            "{} trailing bytes after {count} records",
            buf.remaining()
        )));
    }
    match (points.first(), points.last()) {
        (Some(first), Some(last))
            if first.gen_time == min_tg && last.gen_time == max_tg => {}
        _ => {
            return Err(Error::Corrupt(
                "header min/max do not match records".into(),
            ))
        }
    }
    Ok(points)
}

/// v2 fixed header size: magic(4) + version(2) + flags(2) + count(4) +
/// min(8) + max(8) + block_points(4) + block_count(4).
const V2_FIXED: usize = 36;
/// v2 index entry: first(8) + last(8) + count(4) + offset(4) + len(4).
const V2_INDEX_ENTRY: usize = 28;

/// One compressed block under construction, shared by the v2 and v3
/// encoders (v2 drops the aggregates on the floor).
struct BlockBuild {
    first: i64,
    last: i64,
    count: u32,
    agg: BlockAggregates,
    payload: Vec<u8>,
}

/// Chunks `points` into compressed blocks of at most `block_points` each
/// (delta-of-delta timestamps/delays + Gorilla values + block CRC).
fn build_blocks(points: &[DataPoint], block_points: usize) -> Vec<BlockBuild> {
    let mut blocks = Vec::new();
    for chunk in points.chunks(block_points) {
        let tgs: Vec<i64> = chunk.iter().map(|p| p.gen_time).collect();
        let delays: Vec<i64> = chunk.iter().map(DataPoint::delay).collect();
        let values: Vec<f64> = chunk.iter().map(|p| p.value).collect();
        let mut w = BitWriter::new();
        encode_i64s(&mut w, &tgs);
        encode_i64s(&mut w, &delays);
        encode_f64s(&mut w, &values);
        let mut payload = w.finish();
        let block_crc = crc32(&payload);
        payload.extend_from_slice(&block_crc.to_le_bytes());
        blocks.push(BlockBuild {
            first: tgs[0],
            last: tgs[tgs.len() - 1],
            count: chunk.len() as u32,
            agg: block_aggregates(chunk).unwrap_or(BlockAggregates {
                min: 0.0,
                max: 0.0,
                sum: 0.0,
                count: 0,
            }),
            payload,
        });
    }
    blocks
}

fn encode_v2(points: &[DataPoint], block_points: usize) -> Result<Bytes> {
    validate_input(points)?;
    let blocks = build_blocks(points, block_points);

    let index_len = blocks.len() * V2_INDEX_ENTRY;
    let data_len: usize = blocks.iter().map(|b| b.payload.len()).sum();
    let mut buf =
        BytesMut::with_capacity(V2_FIXED + index_len + 4 + data_len + 4);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION_BLOCKS);
    buf.put_u16_le(1); // flags: compressed
    buf.put_u32_le(points.len() as u32);
    buf.put_i64_le(points[0].gen_time);
    buf.put_i64_le(points[points.len() - 1].gen_time);
    buf.put_u32_le(block_points as u32);
    buf.put_u32_le(blocks.len() as u32);
    let mut offset = 0u32;
    for b in &blocks {
        buf.put_i64_le(b.first);
        buf.put_i64_le(b.last);
        buf.put_u32_le(b.count);
        buf.put_u32_le(offset);
        buf.put_u32_le(b.payload.len() as u32);
        offset += b.payload.len() as u32;
    }
    let header_crc = crc32(&buf);
    buf.put_u32_le(header_crc);
    for b in &blocks {
        buf.put_slice(&b.payload);
    }
    let file_crc = crc32(&buf);
    buf.put_u32_le(file_crc);
    Ok(buf.freeze())
}

/// Parsed v2 header + index.
struct V2Header {
    count: usize,
    min_tg: i64,
    max_tg: i64,
    index: Vec<V2Entry>,
    /// Byte offset where block data starts.
    data_start: usize,
}

#[derive(Clone, Copy)]
struct V2Entry {
    first: i64,
    last: i64,
    count: u32,
    offset: u32,
    len: u32,
}

/// Parses and CRC-validates the v2 header + index region.
fn parse_v2_header(data: &[u8]) -> Result<V2Header> {
    if data.len() < V2_FIXED + 4 {
        return Err(Error::Corrupt("v2 SSTable too short for header".into()));
    }
    let mut buf = data;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(Error::Corrupt(format!("bad SSTable magic {magic:02x?}")));
    }
    let version = buf.get_u16_le();
    if version != VERSION_BLOCKS {
        return Err(Error::Corrupt(format!(
            "expected v2 SSTable, found version {version}"
        )));
    }
    let _flags = buf.get_u16_le();
    let count = buf.get_u32_le() as usize;
    let min_tg = buf.get_i64_le();
    let max_tg = buf.get_i64_le();
    let _block_points = buf.get_u32_le();
    let block_count = buf.get_u32_le() as usize;
    let header_len = V2_FIXED + block_count * V2_INDEX_ENTRY;
    if data.len() < header_len + 4 {
        return Err(Error::Corrupt("v2 SSTable truncated in index".into()));
    }
    let stored = codec::read_u32_le(data, header_len)?;
    let actual = crc32(&data[..header_len]);
    if stored != actual {
        return Err(Error::Corrupt(format!(
            "v2 header CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    let mut index = Vec::with_capacity(block_count);
    let mut total: u64 = 0;
    for _ in 0..block_count {
        let entry = V2Entry {
            first: buf.get_i64_le(),
            last: buf.get_i64_le(),
            count: buf.get_u32_le(),
            offset: buf.get_u32_le(),
            len: buf.get_u32_le(),
        };
        total += u64::from(entry.count);
        index.push(entry);
    }
    if total != count as u64 {
        return Err(Error::Corrupt(format!(
            "v2 block counts sum to {total}, header says {count}"
        )));
    }
    Ok(V2Header {
        count,
        min_tg,
        max_tg,
        index,
        data_start: header_len + 4,
    })
}

/// Decodes one compressed block given exactly its bytes
/// (`payload ++ crc32`), shared by the v2 and v3 formats.
fn decode_block_common(
    block: &[u8],
    first: i64,
    last: i64,
    count: u32,
) -> Result<Vec<DataPoint>> {
    if block.len() < 4 {
        return Err(Error::Corrupt("block too short".into()));
    }
    let (payload, crc_bytes) = block.split_at(block.len() - 4);
    let stored = codec::read_u32_le(crc_bytes, 0)?;
    let actual = crc32(payload);
    if stored != actual {
        return Err(Error::Corrupt(format!(
            "block CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    let count = count as usize;
    // Each of the three bit streams spends at least one bit per record, so
    // a count beyond the payload's bit budget is corrupt; rejecting it here
    // also caps the slice allocations inside the stream decoders.
    if count > payload.len() * 8 {
        return Err(Error::Corrupt(format!(
            "block count {count} exceeds the {}-byte payload's capacity",
            payload.len()
        )));
    }
    let mut reader = BitReader::new(payload);
    let tgs = decode_i64s(&mut reader, count)?;
    let delays = decode_i64s(&mut reader, count)?;
    let values = decode_f64s(&mut reader, count)?;
    let mut points = Vec::with_capacity(count);
    for i in 0..count {
        points.push(DataPoint::with_delay(tgs[i], delays[i], values[i]));
    }
    if points.first().map(|p| p.gen_time) != Some(first)
        || points.last().map(|p| p.gen_time) != Some(last)
    {
        return Err(Error::Corrupt(
            "block contents disagree with index entry".into(),
        ));
    }
    Ok(points)
}

/// Decodes one v2 block (verifying its CRC).
fn decode_v2_block(
    data: &[u8],
    header: &V2Header,
    entry: &V2Entry,
) -> Result<Vec<DataPoint>> {
    let start = header.data_start + entry.offset as usize;
    let end = start + entry.len as usize;
    // Block data must not run into the trailing 4-byte file CRC.
    if end > data.len().saturating_sub(4) {
        return Err(Error::Corrupt("v2 block extends past file".into()));
    }
    decode_block_common(&data[start..end], entry.first, entry.last, entry.count)
}

/// Full decode of a v2 SSTable (called from [`decode`] after the file CRC
/// has been verified).
fn decode_v2_full(data: &[u8]) -> Result<Vec<DataPoint>> {
    let header = parse_v2_header(data)?;
    let mut points = Vec::with_capacity(header.count);
    for entry in &header.index {
        points.extend(decode_v2_block(data, &header, entry)?);
    }
    if points.len() != header.count {
        return Err(Error::Corrupt("v2 point count mismatch".into()));
    }
    for w in points.windows(2) {
        if w[1].gen_time <= w[0].gen_time {
            return Err(Error::Corrupt(
                "v2 blocks are not sorted across boundaries".into(),
            ));
        }
    }
    match (points.first(), points.last()) {
        (Some(first), Some(last))
            if first.gen_time == header.min_tg
                && last.gen_time == header.max_tg => {}
        _ => {
            return Err(Error::Corrupt(
                "v2 header min/max do not match records".into(),
            ))
        }
    }
    Ok(points)
}

/// v3 fixed header: magic(4) + version(2) + flags(2) + count(4) + min(8) +
/// max(8) + block_points(4) + header_crc(4).
const V3_FIXED: usize = 36;
/// v3 index entry: first(8) + last(8) + count(4) + offset(4) + len(4) +
/// min_val(8) + max_val(8) + sum(8) + agg_count(4).
const V3_INDEX_ENTRY: usize = 56;
/// The pre-`agg_count` v3 index entry width. Tables written before the
/// aggregate count was added parse fine — their blocks just take the
/// decode path instead of the pushdown fold (`agg: None`).
const V3_INDEX_ENTRY_LEGACY: usize = 52;
/// v3 index block prefix: count(4) + min_tg(8) + max_tg(8) + block_count(4).
const V3_INDEX_FIXED: usize = 24;
/// v3 metaindex block: index span (8+4) + filter span (8+4) + crc(4).
pub const V3_METAINDEX: usize = 28;
/// v3 footer: metaindex_off(8) + metaindex_len(4) + crc(4) + magic(4).
pub const V3_FOOTER: usize = 20;
const FOOTER_MAGIC: &[u8; 4] = b"SL3F";

/// A byte range within an encoded table — the unit of the store's ranged
/// reads (`TableStore::read_span`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByteSpan {
    /// Absolute byte offset from the start of the table file.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

impl ByteSpan {
    /// The byte range one past the end of this span.
    pub fn end(&self) -> u64 {
        self.offset.saturating_add(self.len)
    }
}

/// Per-block value pre-aggregates stored in the v3 index, following the
/// HTAP-pushdown layout: an aggregate query (or audit) over whole blocks
/// never decodes them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockAggregates {
    /// Smallest value in the block (`f64::min` fold).
    pub min: f64,
    /// Largest value in the block (`f64::max` fold).
    pub max: f64,
    /// Sum of the block's values (in-order fold, so it is deterministic).
    pub sum: f64,
    /// Points folded into the aggregate — redundant with the index entry's
    /// structural count, which gives the audit a free cross-check and lets
    /// a pushdown `mean` come straight off the index.
    pub count: u32,
}

impl BlockAggregates {
    /// Bitwise equality — the audit's comparison, exact even for NaN and
    /// signed zero.
    pub fn bits_eq(&self, other: &Self) -> bool {
        self.min.to_bits() == other.min.to_bits()
            && self.max.to_bits() == other.max.to_bits()
            && self.sum.to_bits() == other.sum.to_bits()
            && self.count == other.count
    }
}

/// Computes the aggregates the v3 encoder stores for `points` (`None` for
/// an empty slice). The audit recomputes with this exact fold and compares
/// bitwise.
pub fn block_aggregates(points: &[DataPoint]) -> Option<BlockAggregates> {
    let (first, rest) = points.split_first()?;
    let mut agg = BlockAggregates {
        min: first.value,
        max: first.value,
        sum: first.value,
        count: 1,
    };
    for p in rest {
        agg.min = agg.min.min(p.value);
        agg.max = agg.max.max(p.value);
        agg.sum += p.value;
        agg.count += 1;
    }
    Some(agg)
}

/// Returns the format version if `data` starts with a plausible SSTable
/// header, without validating anything else.
pub fn sniff_version(data: &[u8]) -> Option<u16> {
    if data.len() < 6 || &data[..4] != MAGIC {
        return None;
    }
    codec::read_u16_le(data, 4).ok()
}

fn encode_v3(points: &[DataPoint], block_points: usize) -> Result<Bytes> {
    encode_v3_impl(points, block_points, V3_INDEX_ENTRY)
}

/// Encodes the pre-`agg_count` v3 layout (52-byte index entries) — kept
/// only so tests can prove the legacy decode fallback keeps working.
#[cfg(test)]
fn encode_v3_legacy(
    points: &[DataPoint],
    block_points: usize,
) -> Result<Bytes> {
    encode_v3_impl(points, block_points, V3_INDEX_ENTRY_LEGACY)
}

fn encode_v3_impl(
    points: &[DataPoint],
    block_points: usize,
    entry_width: usize,
) -> Result<Bytes> {
    validate_input(points)?;
    let blocks = build_blocks(points, block_points);
    let gen_times: Vec<i64> = points.iter().map(|p| p.gen_time).collect();
    let filter = TableFilter::build(&gen_times)?;

    let data_len: usize = blocks.iter().map(|b| b.payload.len()).sum();
    let index_len = V3_INDEX_FIXED + blocks.len() * entry_width + 4;
    let mut buf = BytesMut::with_capacity(
        V3_FIXED
            + data_len
            + index_len
            + filter.encoded_len()
            + V3_METAINDEX
            + V3_FOOTER,
    );

    // Fixed header.
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION_PRUNED);
    buf.put_u16_le(1); // flags: compressed
    buf.put_u32_le(points.len() as u32);
    buf.put_i64_le(points[0].gen_time);
    buf.put_i64_le(points[points.len() - 1].gen_time);
    buf.put_u32_le(block_points as u32);
    let header_crc = crc32(&buf);
    buf.put_u32_le(header_crc);
    debug_assert_eq!(buf.len(), V3_FIXED);

    // Data blocks.
    for b in &blocks {
        buf.put_slice(&b.payload);
    }

    // Index block (self-contained: repeats count/min/max so a ranged
    // reader never needs the header).
    let index_off = buf.len();
    buf.put_u32_le(points.len() as u32);
    buf.put_i64_le(points[0].gen_time);
    buf.put_i64_le(points[points.len() - 1].gen_time);
    buf.put_u32_le(blocks.len() as u32);
    let mut offset = 0u32;
    for b in &blocks {
        buf.put_i64_le(b.first);
        buf.put_i64_le(b.last);
        buf.put_u32_le(b.count);
        buf.put_u32_le(offset);
        buf.put_u32_le(b.payload.len() as u32);
        buf.put_u64_le(b.agg.min.to_bits());
        buf.put_u64_le(b.agg.max.to_bits());
        buf.put_u64_le(b.agg.sum.to_bits());
        if entry_width == V3_INDEX_ENTRY {
            buf.put_u32_le(b.agg.count);
        }
        offset += b.payload.len() as u32;
    }
    let index_crc = crc32(&buf[index_off..]);
    buf.put_u32_le(index_crc);
    let index_len = buf.len() - index_off;

    // Filter block.
    let filter_off = buf.len();
    filter.encode_into(&mut buf);
    let filter_len = buf.len() - filter_off;

    // Metaindex.
    let meta_off = buf.len();
    buf.put_u64_le(index_off as u64);
    buf.put_u32_le(index_len as u32);
    buf.put_u64_le(filter_off as u64);
    buf.put_u32_le(filter_len as u32);
    let meta_crc = crc32(&buf[meta_off..]);
    buf.put_u32_le(meta_crc);

    // Footer.
    let footer_off = buf.len();
    buf.put_u64_le(meta_off as u64);
    buf.put_u32_le(V3_METAINDEX as u32);
    let footer_crc = crc32(&buf[footer_off..]);
    buf.put_u32_le(footer_crc);
    buf.put_slice(FOOTER_MAGIC);
    Ok(buf.freeze())
}

/// Parses and validates a v3 footer from `tail`, the *last* bytes of a
/// table file (at least [`V3_FOOTER`] of them), returning the metaindex
/// span. This is the crash-recovery probe: a torn v3 write fails here.
///
/// # Errors
/// [`Error::Corrupt`] on truncation, bad footer magic, or CRC mismatch.
pub fn parse_v3_footer(tail: &[u8]) -> Result<ByteSpan> {
    if tail.len() < V3_FOOTER {
        return Err(Error::Corrupt(format!(
            "v3 footer needs {V3_FOOTER} bytes, have {}",
            tail.len()
        )));
    }
    let f = &tail[tail.len() - V3_FOOTER..];
    if &f[V3_FOOTER - 4..] != FOOTER_MAGIC {
        return Err(Error::Corrupt("missing v3 footer magic".into()));
    }
    let stored = codec::read_u32_le(f, 12)?;
    let actual = crc32(&f[..12]);
    if stored != actual {
        return Err(Error::Corrupt(format!(
            "v3 footer CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    Ok(ByteSpan {
        offset: codec::read_u64_le(f, 0)?,
        len: u64::from(codec::read_u32_le(f, 8)?),
    })
}

/// Parses and validates a v3 metaindex block (exactly [`V3_METAINDEX`]
/// bytes), returning the `(index, filter)` spans.
///
/// # Errors
/// [`Error::Corrupt`] on truncation or CRC mismatch.
pub fn parse_v3_metaindex(bytes: &[u8]) -> Result<(ByteSpan, ByteSpan)> {
    if bytes.len() != V3_METAINDEX {
        return Err(Error::Corrupt(format!(
            "v3 metaindex is {V3_METAINDEX} bytes, have {}",
            bytes.len()
        )));
    }
    let stored = codec::read_u32_le(bytes, V3_METAINDEX - 4)?;
    let actual = crc32(&bytes[..V3_METAINDEX - 4]);
    if stored != actual {
        return Err(Error::Corrupt(format!(
            "v3 metaindex CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    let index = ByteSpan {
        offset: codec::read_u64_le(bytes, 0)?,
        len: u64::from(codec::read_u32_le(bytes, 8)?),
    };
    let filter = ByteSpan {
        offset: codec::read_u64_le(bytes, 12)?,
        len: u64::from(codec::read_u32_le(bytes, 20)?),
    };
    Ok((index, filter))
}

/// Parses and validates a v3 index block (exactly the bytes named by the
/// metaindex), returning a [`TableIndex`] with `filter: None` — the caller
/// attaches the filter it decoded from the filter block.
///
/// # Errors
/// [`Error::Corrupt`] on truncation, CRC mismatch, or inconsistent counts.
pub fn parse_v3_index(bytes: &[u8]) -> Result<TableIndex> {
    if bytes.len() < V3_INDEX_FIXED + 4 {
        return Err(Error::Corrupt("v3 index block too short".into()));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = codec::read_u32_le(crc_bytes, 0)?;
    let actual = crc32(body);
    if stored != actual {
        return Err(Error::Corrupt(format!(
            "v3 index CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    let count = codec::read_u32_le(body, 0)? as usize;
    let min_tg = codec::read_i64_le(body, 4)?;
    let max_tg = codec::read_i64_le(body, 12)?;
    let block_count = codec::read_u32_le(body, 20)? as usize;
    // Two generations of index entry share the wire format: current entries
    // carry a trailing agg_count (56 bytes); legacy ones stop after the sum
    // (52 bytes). The body length names the width unambiguously because
    // block_count >= 1 (count == 0 is rejected below).
    let entry_width = if body.len()
        == V3_INDEX_FIXED + block_count * V3_INDEX_ENTRY
    {
        V3_INDEX_ENTRY
    } else if body.len() == V3_INDEX_FIXED + block_count * V3_INDEX_ENTRY_LEGACY
    {
        V3_INDEX_ENTRY_LEGACY
    } else {
        return Err(Error::Corrupt(format!(
            "v3 index length {} disagrees with {block_count} blocks",
            bytes.len()
        )));
    };
    let mut blocks = Vec::with_capacity(block_count);
    let mut total: u64 = 0;
    for i in 0..block_count {
        let at = V3_INDEX_FIXED + i * entry_width;
        let count = codec::read_u32_le(body, at + 16)?;
        // Legacy entries have no aggregate count, so their pre-aggregates
        // cannot feed the pushdown fold — leave them as `agg: None` and the
        // planner takes the decode path for the whole table.
        let agg = if entry_width == V3_INDEX_ENTRY {
            let agg = BlockAggregates {
                min: f64::from_bits(codec::read_u64_le(body, at + 28)?),
                max: f64::from_bits(codec::read_u64_le(body, at + 36)?),
                sum: f64::from_bits(codec::read_u64_le(body, at + 44)?),
                count: codec::read_u32_le(body, at + 52)?,
            };
            if agg.count != count {
                return Err(Error::Corrupt(format!(
                    "v3 index entry {i} aggregate count {} disagrees with \
                     block count {count}",
                    agg.count
                )));
            }
            Some(agg)
        } else {
            None
        };
        let span = BlockSpan {
            first: codec::read_i64_le(body, at)?,
            last: codec::read_i64_le(body, at + 8)?,
            count,
            offset: codec::read_u32_le(body, at + 20)?,
            len: codec::read_u32_le(body, at + 24)?,
            agg,
        };
        total += u64::from(span.count);
        blocks.push(span);
    }
    if total != count as u64 || count == 0 || min_tg > max_tg {
        return Err(Error::Corrupt(format!(
            "v3 block counts sum to {total}, index says {count}"
        )));
    }
    Ok(TableIndex {
        count,
        min_tg,
        max_tg,
        blocks,
        version: VERSION_PRUNED,
        data_start: V3_FIXED,
        filter: None,
    })
}

/// Parses a whole in-memory v3 table into a [`TableIndex`] (header CRC,
/// footer, metaindex, index and filter all validated; data blocks are not
/// touched).
fn parse_v3(data: &[u8]) -> Result<TableIndex> {
    if data.len() < V3_FIXED + V3_FOOTER {
        return Err(Error::Corrupt(format!(
            "v3 SSTable too short: {} bytes",
            data.len()
        )));
    }
    let stored = codec::read_u32_le(data, V3_FIXED - 4)?;
    let actual = crc32(&data[..V3_FIXED - 4]);
    if stored != actual {
        return Err(Error::Corrupt(format!(
            "v3 header CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    let meta_span = parse_v3_footer(data)?;
    let len = data.len() as u64;
    let tail_start = len - V3_FOOTER as u64;
    if meta_span.offset < V3_FIXED as u64 || meta_span.end() > tail_start {
        return Err(Error::Corrupt("v3 metaindex span out of bounds".into()));
    }
    let (index_span, filter_span) = parse_v3_metaindex(
        &data[meta_span.offset as usize..meta_span.end() as usize],
    )?;
    for span in [index_span, filter_span] {
        if span.offset < V3_FIXED as u64 || span.end() > meta_span.offset {
            return Err(Error::Corrupt("v3 block span out of bounds".into()));
        }
    }
    let mut index = parse_v3_index(
        &data[index_span.offset as usize..index_span.end() as usize],
    )?;
    let filter = TableFilter::decode(
        &data[filter_span.offset as usize..filter_span.end() as usize],
    )?;
    // Cross-check the redundant copies: header vs index vs filter.
    let hdr_count = codec::read_u32_le(data, 8)? as usize;
    let hdr_min = codec::read_i64_le(data, 12)?;
    let hdr_max = codec::read_i64_le(data, 20)?;
    if hdr_count != index.count
        || hdr_min != index.min_tg
        || hdr_max != index.max_tg
        || filter.min_tg() != index.min_tg
        || filter.max_tg() != index.max_tg
        || filter.count() as usize != index.count
    {
        return Err(Error::Corrupt(
            "v3 header/index/filter metadata disagree".into(),
        ));
    }
    // Blocks must stay inside the data region [V3_FIXED, index_off).
    for span in &index.blocks {
        let end =
            V3_FIXED as u64 + u64::from(span.offset) + u64::from(span.len);
        if end > index_span.offset {
            return Err(Error::Corrupt(
                "v3 data block span out of bounds".into(),
            ));
        }
    }
    index.filter = Some(filter);
    Ok(index)
}

/// Full decode of a v3 SSTable: validates every region (header, all data
/// blocks, index, filter, metaindex, footer), the stored pre-aggregates,
/// and that the filter admits every stored point.
fn decode_v3_full(data: &[u8]) -> Result<Vec<DataPoint>> {
    let index = parse_v3(data)?;
    let mut points = Vec::with_capacity(index.count);
    for (b, span) in index.blocks.iter().enumerate() {
        let block = decode_index_block(data, &index, b)?;
        // Legacy (pre-agg_count) entries carry no pre-aggregates to audit;
        // everything else must match the recomputed fold bitwise.
        if let Some(stored) = span.agg {
            match block_aggregates(&block) {
                Some(actual) if actual.bits_eq(&stored) => {}
                _ => {
                    return Err(Error::Corrupt(
                        "v3 block aggregates disagree with index".into(),
                    ))
                }
            }
        }
        points.extend(block);
    }
    if points.len() != index.count {
        return Err(Error::Corrupt("v3 point count mismatch".into()));
    }
    for w in points.windows(2) {
        if w[1].gen_time <= w[0].gen_time {
            return Err(Error::Corrupt(
                "v3 blocks are not sorted across boundaries".into(),
            ));
        }
    }
    match (points.first(), points.last()) {
        (Some(first), Some(last))
            if first.gen_time == index.min_tg
                && last.gen_time == index.max_tg => {}
        _ => {
            return Err(Error::Corrupt(
                "v3 index min/max do not match records".into(),
            ))
        }
    }
    if let Some(filter) = &index.filter {
        if points.iter().any(|p| !filter.may_contain_point(p.gen_time)) {
            return Err(Error::Corrupt(
                "v3 filter reports a stored point absent".into(),
            ));
        }
    }
    Ok(points)
}

/// One block's descriptor in a [`TableIndex`]: generation-time bounds, point
/// count, and the byte span of the encoded block within the table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockSpan {
    /// Generation time of the block's first point.
    pub first: i64,
    /// Generation time of the block's last point.
    pub last: i64,
    /// Points in the block.
    pub count: u32,
    /// Byte offset of the block relative to the table's data region.
    pub offset: u32,
    /// Encoded block length in bytes (including the block CRC).
    pub len: u32,
    /// Value pre-aggregates (v3 tables only).
    pub agg: Option<BlockAggregates>,
}

/// A parsed table index: enough metadata to prune blocks against a time
/// range and decode individual blocks via [`decode_index_block`] without
/// re-parsing the header per read.
///
/// For v2/v3 tables this is the real per-block index; a v1 table is
/// modelled as a single block spanning the whole file, so callers can
/// treat all formats uniformly.
#[derive(Debug, Clone, PartialEq)]
pub struct TableIndex {
    /// Total points in the table.
    pub count: usize,
    /// Smallest generation time in the table.
    pub min_tg: i64,
    /// Largest generation time in the table.
    pub max_tg: i64,
    /// Per-block descriptors, in generation-time order.
    pub blocks: Vec<BlockSpan>,
    version: u16,
    data_start: usize,
    /// The table's pruning filter (v3 tables only).
    pub filter: Option<TableFilter>,
}

impl TableIndex {
    /// The table's format version (1, 2 or 3).
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Absolute byte offset where the data region starts.
    pub fn data_start(&self) -> usize {
        self.data_start
    }

    /// The absolute byte span of `block` within the table file — what a
    /// ranged reader fetches before calling [`decode_index_block_bytes`].
    ///
    /// # Errors
    /// [`Error::Corrupt`] if `block` is out of range.
    pub fn block_span(&self, block: usize) -> Result<ByteSpan> {
        let span = self.blocks.get(block).ok_or_else(|| {
            Error::Corrupt(format!(
                "block {block} out of range ({} blocks)",
                self.blocks.len()
            ))
        })?;
        Ok(ByteSpan {
            offset: self.data_start as u64 + u64::from(span.offset),
            len: u64::from(span.len),
        })
    }

    /// Whether this table may hold any point in `range`, judged from the
    /// index (and, for v3, the pruning filter) alone — no data blocks are
    /// touched. `false` is definitive; `true` may be a false positive.
    pub fn may_contain(&self, range: TimeRange) -> bool {
        if self.max_tg < range.start || self.min_tg > range.end {
            return false;
        }
        if let Some(filter) = &self.filter {
            if !filter.may_contain(range) {
                return false;
            }
        }
        // Range falls inside the table's [min, max] but may still miss
        // every block (a gap between block spans).
        self.blocks
            .iter()
            .any(|b| b.last >= range.start && b.first <= range.end)
    }
}

/// Parses the index of an SSTable in either format.
///
/// For v2 the header + index region is CRC-validated here; for v1 only the
/// fixed header is read (the full-file CRC is validated when the single
/// block is decoded).
///
/// # Errors
/// [`Error::Corrupt`] on bad magic, unsupported version, truncation, or a
/// v2 header CRC mismatch.
pub fn read_table_index(data: &[u8]) -> Result<TableIndex> {
    const V1_HEADER: usize = 4 + 2 + 2 + 4 + 8 + 8;
    if data.len() < 6 || &data[..4] != MAGIC {
        return Err(Error::Corrupt("bad SSTable magic".into()));
    }
    let version = codec::read_u16_le(data, 4)?;
    if version == VERSION_PRUNED {
        return parse_v3(data);
    }
    if version == VERSION_BLOCKS {
        let header = parse_v2_header(data)?;
        let blocks = header
            .index
            .iter()
            .map(|e| BlockSpan {
                first: e.first,
                last: e.last,
                count: e.count,
                offset: e.offset,
                len: e.len,
                agg: None,
            })
            .collect();
        return Ok(TableIndex {
            count: header.count,
            min_tg: header.min_tg,
            max_tg: header.max_tg,
            blocks,
            version: VERSION_BLOCKS,
            data_start: header.data_start,
            filter: None,
        });
    }
    if version != VERSION {
        return Err(Error::Corrupt(format!(
            "unsupported SSTable version {version}"
        )));
    }
    if data.len() < V1_HEADER + 4 {
        return Err(Error::Corrupt(format!(
            "SSTable too short: {} bytes",
            data.len()
        )));
    }
    let mut buf = &data[8..];
    let count = buf.get_u32_le() as usize;
    let min_tg = buf.get_i64_le();
    let max_tg = buf.get_i64_le();
    Ok(TableIndex {
        count,
        min_tg,
        max_tg,
        blocks: vec![BlockSpan {
            first: min_tg,
            last: max_tg,
            count: count as u32,
            offset: 0,
            len: data.len() as u32,
            agg: None,
        }],
        version: VERSION,
        data_start: 0,
        filter: None,
    })
}

/// Decodes (and CRC-validates) one block named by `index.blocks[block]`.
///
/// For a v1 table, block 0 is the whole table and this is a full validated
/// decode.
///
/// # Errors
/// [`Error::Corrupt`] if `block` is out of range or the block fails
/// validation.
pub fn decode_index_block(
    data: &[u8],
    index: &TableIndex,
    block: usize,
) -> Result<Vec<DataPoint>> {
    let span = index.blocks.get(block).ok_or_else(|| {
        Error::Corrupt(format!(
            "block {block} out of range ({} blocks)",
            index.blocks.len()
        ))
    })?;
    match index.version {
        VERSION_BLOCKS => {
            let header = V2Header {
                count: index.count,
                min_tg: index.min_tg,
                max_tg: index.max_tg,
                index: Vec::new(),
                data_start: index.data_start,
            };
            let entry = V2Entry {
                first: span.first,
                last: span.last,
                count: span.count,
                offset: span.offset,
                len: span.len,
            };
            decode_v2_block(data, &header, &entry)
        }
        VERSION_PRUNED => {
            let start = index.data_start + span.offset as usize;
            let end = start + span.len as usize;
            if end > data.len() {
                return Err(Error::Corrupt(
                    "v3 block extends past file".into(),
                ));
            }
            decode_block_common(
                &data[start..end],
                span.first,
                span.last,
                span.count,
            )
        }
        _ => decode(data),
    }
}

/// Decodes one block from exactly its own bytes (as named by
/// [`TableIndex::block_span`]) — the ranged-read twin of
/// [`decode_index_block`]: the caller fetched only `span.len` bytes from
/// the store instead of holding the whole table.
///
/// # Errors
/// [`Error::Corrupt`] if `block` is out of range, `bytes` has the wrong
/// length, or the block fails validation.
pub fn decode_index_block_bytes(
    index: &TableIndex,
    block: usize,
    bytes: &[u8],
) -> Result<Vec<DataPoint>> {
    let span = index.blocks.get(block).ok_or_else(|| {
        Error::Corrupt(format!(
            "block {block} out of range ({} blocks)",
            index.blocks.len()
        ))
    })?;
    if bytes.len() != span.len as usize {
        return Err(Error::Corrupt(format!(
            "block {block} span is {} bytes, got {}",
            span.len,
            bytes.len()
        )));
    }
    if index.version == VERSION {
        // A v1 "block" is the whole file: full validated decode.
        return decode(bytes);
    }
    decode_block_common(bytes, span.first, span.last, span.count)
}

/// Block-granular range read: decodes only the blocks whose generation-time
/// range overlaps `range` and reports exactly how much was scanned.
///
/// For v1 tables the whole table is one block (full decode); v2 tables use
/// the block index. Either way the returned points are filtered to `range`.
///
/// # Errors
/// [`Error::Corrupt`] on any validation failure in the touched region.
pub fn decode_range(data: &[u8], range: TimeRange) -> Result<RangeRead> {
    if data.len() >= 6 && &data[..4] == MAGIC {
        let version = codec::read_u16_le(data, 4)?;
        if version == VERSION_PRUNED {
            let index = parse_v3(data)?;
            let mut read = RangeRead {
                points: Vec::new(),
                points_scanned: 0,
                blocks_read: 0,
            };
            // Filter-first: a pruned table decodes nothing at all.
            if !index.may_contain(range) {
                return Ok(read);
            }
            for (b, span) in index.blocks.iter().enumerate() {
                if span.last < range.start || span.first > range.end {
                    continue;
                }
                let block = decode_index_block(data, &index, b)?;
                read.blocks_read += 1;
                read.points_scanned += block.len() as u64;
                read.points.extend(
                    block.into_iter().filter(|p| range.contains(p.gen_time)),
                );
            }
            return Ok(read);
        }
        if version == VERSION_BLOCKS {
            let header = parse_v2_header(data)?;
            let mut read = RangeRead {
                points: Vec::new(),
                points_scanned: 0,
                blocks_read: 0,
            };
            if header.max_tg < range.start || header.min_tg > range.end {
                return Ok(read);
            }
            for entry in &header.index {
                if entry.last < range.start || entry.first > range.end {
                    continue;
                }
                let block = decode_v2_block(data, &header, entry)?;
                read.blocks_read += 1;
                read.points_scanned += block.len() as u64;
                read.points.extend(
                    block.into_iter().filter(|p| range.contains(p.gen_time)),
                );
            }
            return Ok(read);
        }
    }
    // v1 (or anything else): full validated decode counts as one block.
    let points = decode(data)?;
    let points_scanned = points.len() as u64;
    Ok(RangeRead {
        points: points
            .into_iter()
            .filter(|p| range.contains(p.gen_time))
            .collect(),
        points_scanned,
        blocks_read: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_points(n: usize) -> Vec<DataPoint> {
        (0..n)
            .map(|i| {
                DataPoint::with_delay(
                    (i as i64) * 50 + 1_000_000,
                    (i as i64 * 37) % 991,
                    i as f64 * 0.5,
                )
            })
            .collect()
    }

    #[test]
    fn round_trips_typical_table() {
        let pts = sample_points(512);
        let bytes = encode(&pts).expect("encode");
        let back = decode(&bytes).expect("decode");
        assert_eq!(back, pts);
    }

    #[test]
    fn round_trips_single_point_and_negative_delay() {
        let pts = vec![DataPoint::new(-5, -10, f64::MIN)];
        let back = decode(&encode(&pts).expect("encode")).expect("decode");
        assert_eq!(back, pts);
        assert_eq!(back[0].delay(), -5);
    }

    #[test]
    fn preserves_value_bit_patterns() {
        let pts = vec![
            DataPoint::new(1, 1, f64::NAN),
            DataPoint::new(2, 2, f64::INFINITY),
            DataPoint::new(3, 3, -0.0),
        ];
        let back = decode(&encode(&pts).expect("encode")).expect("decode");
        assert!(back[0].value.is_nan());
        assert_eq!(back[1].value, f64::INFINITY);
        assert_eq!(back[2].value.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn delta_compression_beats_fixed_width() {
        let pts = sample_points(1000);
        let bytes = encode(&pts).expect("encode");
        // Fixed-width would be 24 bytes per point; deltas should roughly halve it.
        assert!(
            bytes.len() < 1000 * 24 / 2 + 64,
            "encoded size {} too large",
            bytes.len()
        );
    }

    #[test]
    fn rejects_empty_input() {
        assert!(encode(&[]).is_err());
    }

    #[test]
    fn rejects_unsorted_input() {
        let pts = vec![DataPoint::new(10, 10, 0.0), DataPoint::new(5, 5, 0.0)];
        assert!(encode(&pts).is_err());
        let dup =
            vec![DataPoint::new(10, 10, 0.0), DataPoint::new(10, 11, 0.0)];
        assert!(encode(&dup).is_err());
    }

    #[test]
    fn detects_corruption_anywhere() {
        let bytes = encode(&sample_points(64)).expect("encode");
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.to_vec();
            bad[i] ^= 0x40;
            assert!(decode(&bad).is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn detects_truncation() {
        let bytes = encode(&sample_points(64)).expect("encode");
        for cut in [0, 1, 10, bytes.len() - 1] {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes"
            );
        }
    }

    #[test]
    fn v2_round_trips_typical_table() {
        let pts = sample_points(512);
        let bytes =
            encode_with(&pts, &EncodeOptions::compressed()).expect("encode");
        let back = decode(&bytes).expect("decode");
        assert_eq!(back, pts);
    }

    #[test]
    fn v2_round_trips_odd_sizes_and_single_point() {
        for n in [1usize, 2, 127, 128, 129, 300] {
            let pts = sample_points(n);
            let bytes = encode_with(&pts, &EncodeOptions::compressed())
                .expect("encode");
            assert_eq!(decode(&bytes).expect("decode"), pts, "n={n}");
        }
    }

    #[test]
    fn v2_compresses_grid_data_substantially() {
        // Regular grid + small delays + smooth values: the v2 format should
        // be several times smaller than v1.
        let pts: Vec<DataPoint> = (0..4096)
            .map(|i| {
                DataPoint::with_delay(i as i64 * 50, 20 + (i as i64 % 3), 25.0)
            })
            .collect();
        let v1 = encode(&pts).expect("v1");
        let v2 = encode_with(&pts, &EncodeOptions::compressed()).expect("v2");
        assert!(
            v2.len() * 3 < v1.len(),
            "v2 {} bytes vs v1 {} bytes",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn v2_preserves_special_values_and_negative_delays() {
        let pts = vec![
            DataPoint::new(-100, -150, f64::NAN),
            DataPoint::new(0, 0, f64::INFINITY),
            DataPoint::new(7, 1_000_000, -0.0),
        ];
        let bytes =
            encode_with(&pts, &EncodeOptions::compressed()).expect("encode");
        let back = decode(&bytes).expect("decode");
        assert!(back[0].value.is_nan());
        assert_eq!(back[0].delay(), -50);
        assert_eq!(back[1].value, f64::INFINITY);
        assert_eq!(back[2].value.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn v2_detects_corruption_anywhere() {
        let pts = sample_points(300);
        let bytes =
            encode_with(&pts, &EncodeOptions::compressed()).expect("encode");
        for i in (0..bytes.len()).step_by(11) {
            let mut bad = bytes.to_vec();
            bad[i] ^= 0x10;
            assert!(decode(&bad).is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn decode_range_reads_only_overlapping_blocks() {
        let pts = sample_points(512); // gen times 1_000_000 + i*50, 4 blocks of 128
        let bytes =
            encode_with(&pts, &EncodeOptions::compressed()).expect("encode");
        // Range covering points 130..=140 (inside block 1).
        let range = seplsm_types::TimeRange::new(
            1_000_000 + 130 * 50,
            1_000_000 + 140 * 50,
        );
        let read = decode_range(&bytes, range).expect("range read");
        assert_eq!(read.blocks_read, 1);
        assert_eq!(read.points_scanned, 128);
        assert_eq!(read.points.len(), 11);
        assert!(read.points.iter().all(|p| range.contains(p.gen_time)));
        // Disjoint range: nothing decoded.
        let miss =
            decode_range(&bytes, seplsm_types::TimeRange::new(0, 999_999))
                .expect("miss");
        assert_eq!(miss.blocks_read, 0);
        assert_eq!(miss.points_scanned, 0);
        assert!(miss.points.is_empty());
    }

    #[test]
    fn decode_range_spanning_blocks() {
        let pts = sample_points(512);
        let bytes =
            encode_with(&pts, &EncodeOptions::compressed()).expect("encode");
        let range = seplsm_types::TimeRange::new(
            1_000_000 + 120 * 50,
            1_000_000 + 260 * 50,
        );
        let read = decode_range(&bytes, range).expect("range read");
        assert_eq!(read.blocks_read, 3); // blocks 0,1,2
        assert_eq!(read.points_scanned, 384);
        assert_eq!(read.points.len(), 141);
    }

    #[test]
    fn decode_range_on_v1_scans_whole_table() {
        let pts = sample_points(64);
        let bytes = encode(&pts).expect("encode v1");
        let range = seplsm_types::TimeRange::new(1_000_000, 1_000_000 + 5 * 50);
        let read = decode_range(&bytes, range).expect("range read");
        assert_eq!(read.blocks_read, 1);
        assert_eq!(read.points_scanned, 64);
        assert_eq!(read.points.len(), 6);
    }

    #[test]
    fn v2_block_granular_read_survives_corruption_elsewhere() {
        // Corrupting block 3 must not break a read confined to block 0.
        let pts = sample_points(512);
        let bytes = encode_with(&pts, &EncodeOptions::compressed())
            .expect("encode")
            .to_vec();
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n - 10] ^= 0xff; // inside the last block
        let range =
            seplsm_types::TimeRange::new(1_000_000, 1_000_000 + 10 * 50);
        let ok = decode_range(&bad, range).expect("block 0 still readable");
        assert_eq!(ok.points.len(), 11);
        // But reading the damaged block fails loudly.
        let tail_range = seplsm_types::TimeRange::new(
            1_000_000 + 500 * 50,
            1_000_000 + 511 * 50,
        );
        assert!(decode_range(&bad, tail_range).is_err());
    }

    #[test]
    fn table_index_names_every_v2_block() {
        let pts = sample_points(300); // 3 blocks: 128 + 128 + 44
        let bytes =
            encode_with(&pts, &EncodeOptions::compressed()).expect("encode");
        let index = read_table_index(&bytes).expect("index");
        assert_eq!(index.count, 300);
        assert_eq!(index.min_tg, pts[0].gen_time);
        assert_eq!(index.max_tg, pts[299].gen_time);
        assert_eq!(index.blocks.len(), 3);
        let mut all = Vec::new();
        for b in 0..index.blocks.len() {
            let block =
                decode_index_block(&bytes, &index, b).expect("decode block");
            assert_eq!(block.len(), index.blocks[b].count as usize);
            assert_eq!(block[0].gen_time, index.blocks[b].first);
            assert_eq!(block[block.len() - 1].gen_time, index.blocks[b].last);
            all.extend(block);
        }
        assert_eq!(all, pts);
    }

    #[test]
    fn table_index_models_v1_as_one_block() {
        let pts = sample_points(64);
        let bytes = encode(&pts).expect("encode v1");
        let index = read_table_index(&bytes).expect("index");
        assert_eq!(index.count, 64);
        assert_eq!(index.blocks.len(), 1);
        assert_eq!(index.blocks[0].first, pts[0].gen_time);
        assert_eq!(index.blocks[0].last, pts[63].gen_time);
        assert_eq!(decode_index_block(&bytes, &index, 0).expect("decode"), pts);
        assert!(decode_index_block(&bytes, &index, 1).is_err());
    }

    #[test]
    fn table_index_rejects_corrupt_v2_header() {
        let pts = sample_points(256);
        let mut bytes = encode_with(&pts, &EncodeOptions::compressed())
            .expect("encode")
            .to_vec();
        bytes[10] ^= 0x04; // inside the fixed header
        assert!(read_table_index(&bytes).is_err());
    }

    #[test]
    fn v3_round_trips_typical_table() {
        let pts = sample_points(512);
        let bytes =
            encode_with(&pts, &EncodeOptions::default()).expect("encode");
        assert_eq!(sniff_version(&bytes), Some(VERSION_PRUNED));
        assert_eq!(decode(&bytes).expect("decode"), pts);
    }

    #[test]
    fn v3_round_trips_odd_sizes_and_single_point() {
        for n in [1usize, 2, 127, 128, 129, 300] {
            let pts = sample_points(n);
            let bytes =
                encode_with(&pts, &EncodeOptions::pruned()).expect("encode");
            assert_eq!(decode(&bytes).expect("decode"), pts, "n={n}");
        }
    }

    #[test]
    fn v3_preserves_special_values_and_negative_delays() {
        let pts = vec![
            DataPoint::new(-100, -150, f64::NAN),
            DataPoint::new(0, 0, f64::INFINITY),
            DataPoint::new(7, 1_000_000, -0.0),
        ];
        let bytes =
            encode_with(&pts, &EncodeOptions::pruned()).expect("encode");
        let back = decode(&bytes).expect("decode");
        assert!(back[0].value.is_nan());
        assert_eq!(back[0].delay(), -50);
        assert_eq!(back[1].value, f64::INFINITY);
        assert_eq!(back[2].value.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn v3_detects_corruption_anywhere() {
        let pts = sample_points(300);
        let bytes =
            encode_with(&pts, &EncodeOptions::pruned()).expect("encode");
        for i in 0..bytes.len() {
            let mut bad = bytes.to_vec();
            bad[i] ^= 0x10;
            assert!(decode(&bad).is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn v3_detects_truncation() {
        let bytes = encode_with(&sample_points(64), &EncodeOptions::pruned())
            .expect("encode");
        for cut in
            [0, 1, 10, V3_FIXED, bytes.len() - 1, bytes.len() - V3_FOOTER]
        {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes went undetected"
            );
            assert!(read_table_index(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn v3_footer_locates_metaindex() {
        let bytes = encode_with(&sample_points(64), &EncodeOptions::pruned())
            .expect("encode");
        let meta = parse_v3_footer(&bytes).expect("footer");
        assert_eq!(meta.len, V3_METAINDEX as u64);
        assert_eq!(meta.end(), (bytes.len() - V3_FOOTER) as u64);
        let (index_span, filter_span) = parse_v3_metaindex(
            &bytes[meta.offset as usize..meta.end() as usize],
        )
        .expect("metaindex");
        let index = parse_v3_index(
            &bytes[index_span.offset as usize..index_span.end() as usize],
        )
        .expect("index");
        assert_eq!(index.count, 64);
        assert!(index.filter.is_none());
        let filter = TableFilter::decode(
            &bytes[filter_span.offset as usize..filter_span.end() as usize],
        )
        .expect("filter");
        assert_eq!(filter.count(), 64);
        // A v2 table has no v3 footer.
        let v2 = encode_with(&sample_points(64), &EncodeOptions::compressed())
            .expect("encode");
        assert!(parse_v3_footer(&v2).is_err());
    }

    #[test]
    fn v3_index_carries_filter_and_aggregates() {
        let pts = sample_points(300); // 3 blocks: 128 + 128 + 44
        let bytes =
            encode_with(&pts, &EncodeOptions::pruned()).expect("encode");
        let index = read_table_index(&bytes).expect("index");
        assert_eq!(index.version(), VERSION_PRUNED);
        assert_eq!(index.blocks.len(), 3);
        let filter = index.filter.as_ref().expect("v3 filter");
        for p in &pts {
            assert!(filter.may_contain_point(p.gen_time));
        }
        let mut all = Vec::new();
        for (b, span) in index.blocks.iter().enumerate() {
            let block =
                decode_index_block(&bytes, &index, b).expect("decode block");
            let agg = span.agg.expect("v3 aggregates");
            assert!(block_aggregates(&block).expect("nonempty").bits_eq(&agg));
            // The ranged-read twin decodes from exactly the span's bytes.
            let abs = index.block_span(b).expect("span");
            let same = decode_index_block_bytes(
                &index,
                b,
                &bytes[abs.offset as usize..abs.end() as usize],
            )
            .expect("decode from span bytes");
            assert_eq!(same, block);
            all.extend(block);
        }
        assert_eq!(all, pts);
    }

    #[test]
    fn v3_legacy_entries_parse_without_aggregates_and_still_decode() {
        let pts = sample_points(300); // 3 blocks: 128 + 128 + 44
        let bytes = encode_v3_legacy(&pts, 128).expect("encode legacy");
        assert_eq!(sniff_version(&bytes), Some(VERSION_PRUNED));
        let index = read_table_index(&bytes).expect("index");
        assert_eq!(index.blocks.len(), 3);
        assert!(index.blocks.iter().all(|b| b.agg.is_none()));
        // Full decode (the audit path) must not demand aggregates …
        assert_eq!(decode(&bytes).expect("decode"), pts);
        // … and ranged reads still work block-granularly.
        let range = seplsm_types::TimeRange::new(
            1_000_000 + 130 * 50,
            1_000_000 + 140 * 50,
        );
        let read = decode_range(&bytes, range).expect("range read");
        assert_eq!(read.blocks_read, 1);
        assert_eq!(read.points.len(), 11);
    }

    #[test]
    fn v3_rejects_lying_aggregate_count() {
        // An entry whose agg_count disagrees with its structural count must
        // be rejected at parse time, before any fold trusts it.
        let pts = sample_points(64);
        let bytes = encode_with(&pts, &EncodeOptions::pruned())
            .expect("encode")
            .to_vec();
        let meta = parse_v3_footer(&bytes).expect("footer");
        let (index_span, _) = parse_v3_metaindex(
            &bytes[meta.offset as usize..meta.end() as usize],
        )
        .expect("metaindex");
        let mut bad = bytes.clone();
        // First entry's agg_count lives at +52 within the entry.
        let at = index_span.offset as usize + V3_INDEX_FIXED + 52;
        bad[at] ^= 0x01;
        // Re-seal the index CRC so only the count lie remains.
        let body_end = index_span.end() as usize - 4;
        let crc = crc32(&bad[index_span.offset as usize..body_end]);
        bad[body_end..body_end + 4].copy_from_slice(&crc.to_le_bytes());
        let err = read_table_index(&bad).expect_err("lying agg_count");
        assert!(err.to_string().contains("aggregate count"), "{err}");
    }

    #[test]
    fn v3_decode_range_prunes_blocks_and_point_misses() {
        let pts = sample_points(512); // tg = 1_000_000 + i*50
        let bytes =
            encode_with(&pts, &EncodeOptions::pruned()).expect("encode");
        // Window inside block 1 decodes exactly one block.
        let range = seplsm_types::TimeRange::new(
            1_000_000 + 130 * 50,
            1_000_000 + 140 * 50,
        );
        let read = decode_range(&bytes, range).expect("range read");
        assert_eq!(read.blocks_read, 1);
        assert_eq!(read.points.len(), 11);
        // A point probe at a non-key instant inside the covered range is
        // pruned by the bloom filter: no blocks decoded.
        let miss_tg = 1_000_000 + 25; // between keys
        let miss = decode_range(
            &bytes,
            seplsm_types::TimeRange::new(miss_tg, miss_tg),
        )
        .expect("miss");
        assert_eq!(miss.blocks_read, 0);
        assert!(miss.points.is_empty());
        // A point probe at a real key still finds it.
        let hit_tg = pts[200].gen_time;
        let hit =
            decode_range(&bytes, seplsm_types::TimeRange::new(hit_tg, hit_tg))
                .expect("hit");
        assert_eq!(hit.points.len(), 1);
    }

    #[test]
    fn v3_index_may_contain_has_no_false_negatives() {
        let pts = sample_points(256);
        let bytes =
            encode_with(&pts, &EncodeOptions::pruned()).expect("encode");
        let index = read_table_index(&bytes).expect("index");
        for p in &pts {
            assert!(index.may_contain(seplsm_types::TimeRange::new(
                p.gen_time, p.gen_time
            )));
        }
        assert!(!index.may_contain(seplsm_types::TimeRange::new(0, 999_999)));
    }

    #[test]
    fn rejects_wrong_magic_and_version() {
        let bytes = encode(&sample_points(4)).expect("encode").to_vec();
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        // Fix up CRC so the magic check itself is exercised.
        let crc = crc32(&bad_magic[..bad_magic.len() - 4]);
        let n = bad_magic.len();
        bad_magic[n - 4..].copy_from_slice(&crc.to_le_bytes());
        let err = decode(&bad_magic).expect_err("bad magic");
        assert!(err.to_string().contains("magic"), "{err}");

        let mut bad_ver = bytes;
        bad_ver[4] = 99;
        let crc = crc32(&bad_ver[..bad_ver.len() - 4]);
        let n = bad_ver.len();
        bad_ver[n - 4..].copy_from_slice(&crc.to_le_bytes());
        let err = decode(&bad_ver).expect_err("bad version");
        assert!(err.to_string().contains("version"), "{err}");
    }
}
