//! Per-table pruning filter: generation-time range + bloom filter.
//!
//! Every v3 SSTable carries one [`TableFilter`] in its filter block. Query
//! planning consults it to skip tables *without touching their data blocks*:
//! window queries prune on the closed `[min_tg, max_tg]` range, and point
//! lookups additionally probe a bloom filter over the exact generation
//! times, so a point query over a run of non-overlapping tables decodes no
//! blocks from tables that cannot contain the probe.
//!
//! The bloom filter is hand-rolled and fully deterministic: keys are mixed
//! with the splitmix64 finalizer and probed with double hashing (Kirsch &
//! Mitzenmacher), ~10 bits and 7 probes per key, so two encodes of the same
//! points are byte-identical. No wall clock, no RNG, no dependencies — this
//! is a seplint kernel module (R3/R4).

use bytes::{BufMut, BytesMut};
use seplsm_types::{Error, Result, TimeRange};

use super::crc32::crc32;
use crate::codec;

/// Bloom bits budgeted per key (false-positive rate ≈ 1%).
const BITS_PER_KEY: u64 = 10;
/// Probes per key (≈ 0.69 × bits-per-key).
const PROBES: u32 = 7;

/// Fixed prefix of the encoded filter:
/// `min_tg i64 | max_tg i64 | count u32 | probes u32 | nwords u32`.
const FILTER_FIXED: usize = 8 + 8 + 4 + 4 + 4;

/// A per-table pruning filter: the closed generation-time range the table
/// covers plus a bloom filter over the exact generation times.
///
/// Pruning is conservative by construction: [`TableFilter::may_contain`]
/// can return `true` for an absent key (bloom false positive) but never
/// `false` for a present one.
#[derive(Debug, Clone, PartialEq)]
pub struct TableFilter {
    min_tg: i64,
    max_tg: i64,
    count: u32,
    probes: u32,
    words: Vec<u64>,
}

/// The 64-bit splitmix64 finalizer: a full-avalanche mixer, so consecutive
/// generation times spread uniformly over the bloom bits.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TableFilter {
    /// Builds a filter over `gen_times` (the generation times of one table,
    /// in any order, at ~[`BITS_PER_KEY`] bits per key).
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] if `gen_times` is empty.
    pub fn build(gen_times: &[i64]) -> Result<Self> {
        let (first, rest) = gen_times.split_first().ok_or_else(|| {
            Error::InvalidConfig("cannot build a filter over no keys".into())
        })?;
        let mut min_tg = *first;
        let mut max_tg = *first;
        for &tg in rest {
            min_tg = min_tg.min(tg);
            max_tg = max_tg.max(tg);
        }
        let nbits = (gen_times.len() as u64 * BITS_PER_KEY).max(64);
        let nwords = nbits.div_ceil(64) as usize;
        let mut filter = Self {
            min_tg,
            max_tg,
            count: gen_times.len() as u32,
            probes: PROBES,
            words: vec![0u64; nwords],
        };
        for &tg in gen_times {
            let (h1, h2) = Self::hash_pair(tg);
            let nbits = filter.nbits();
            for i in 0..filter.probes {
                let bit =
                    h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % nbits;
                filter.words[(bit / 64) as usize] |= 1u64 << (bit % 64);
            }
        }
        Ok(filter)
    }

    /// Double-hashing pair for one key; `h2` is forced odd so the probe
    /// sequence cycles through distinct bits.
    fn hash_pair(tg: i64) -> (u64, u64) {
        let h = splitmix64(tg as u64);
        (h, h.rotate_left(31) | 1)
    }

    fn nbits(&self) -> u64 {
        self.words.len() as u64 * 64
    }

    /// Smallest generation time in the table.
    pub fn min_tg(&self) -> i64 {
        self.min_tg
    }

    /// Largest generation time in the table.
    pub fn max_tg(&self) -> i64 {
        self.max_tg
    }

    /// Number of keys the filter was built over.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Whether the table's time range intersects `range` at all.
    pub fn overlaps(&self, range: TimeRange) -> bool {
        self.max_tg >= range.start && self.min_tg <= range.end
    }

    /// Whether the table may contain a point generated exactly at `tg`.
    /// `false` is definitive; `true` may be a bloom false positive.
    pub fn may_contain_point(&self, tg: i64) -> bool {
        if tg < self.min_tg || tg > self.max_tg {
            return false;
        }
        let (h1, h2) = Self::hash_pair(tg);
        let nbits = self.nbits();
        for i in 0..self.probes {
            let bit = h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % nbits;
            if self.words[(bit / 64) as usize] & (1u64 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Whether the table may contain any point in `range`: range pruning
    /// for windows, plus the bloom probe when the window is a single
    /// instant. `false` is definitive.
    pub fn may_contain(&self, range: TimeRange) -> bool {
        if !self.overlaps(range) {
            return false;
        }
        if range.start == range.end {
            return self.may_contain_point(range.start);
        }
        true
    }

    /// Encoded size in bytes (fixed prefix + bloom words + CRC).
    pub fn encoded_len(&self) -> usize {
        FILTER_FIXED + self.words.len() * 8 + 4
    }

    /// Appends the wire encoding to `buf`:
    ///
    /// ```text
    /// +--------+--------+-------+--------+--------+-----------+-------+
    /// | min_tg | max_tg | count | probes | nwords | words…    | crc32 |
    /// | i64 LE | i64 LE | u32   | u32    | u32    | u64 LE ×n | u32   |
    /// +--------+--------+-------+--------+--------+-----------+-------+
    /// ```
    pub fn encode_into(&self, buf: &mut BytesMut) {
        let start = buf.len();
        buf.put_i64_le(self.min_tg);
        buf.put_i64_le(self.max_tg);
        buf.put_u32_le(self.count);
        buf.put_u32_le(self.probes);
        buf.put_u32_le(self.words.len() as u32);
        for w in &self.words {
            buf.put_u64_le(*w);
        }
        let crc = crc32(&buf[start..]);
        buf.put_u32_le(crc);
    }

    /// Decodes (and CRC-validates) a filter block produced by
    /// [`TableFilter::encode_into`]. `bytes` must be exactly the block.
    ///
    /// # Errors
    /// [`Error::Corrupt`] on truncation, CRC mismatch, or nonsense fields.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < FILTER_FIXED + 4 {
            return Err(Error::Corrupt(format!(
                "filter block too short: {} bytes",
                bytes.len()
            )));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = codec::read_u32_le(crc_bytes, 0)?;
        let actual = crc32(body);
        if stored != actual {
            return Err(Error::Corrupt(format!(
                "filter CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )));
        }
        let min_tg = codec::read_i64_le(body, 0)?;
        let max_tg = codec::read_i64_le(body, 8)?;
        let count = codec::read_u32_le(body, 16)?;
        let probes = codec::read_u32_le(body, 20)?;
        let nwords = codec::read_u32_le(body, 24)? as usize;
        if body.len() != FILTER_FIXED + nwords * 8 {
            return Err(Error::Corrupt(format!(
                "filter length {} disagrees with {nwords} words",
                bytes.len()
            )));
        }
        if count == 0 || nwords == 0 || probes == 0 || min_tg > max_tg {
            return Err(Error::Corrupt("filter header is nonsense".into()));
        }
        let mut words = Vec::with_capacity(nwords);
        for i in 0..nwords {
            words.push(codec::read_u64_le(body, FILTER_FIXED + i * 8)?);
        }
        Ok(Self {
            min_tg,
            max_tg,
            count,
            probes,
            words,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: i64) -> Vec<i64> {
        (0..n).map(|i| i * 37 + 1_000).collect()
    }

    #[test]
    fn no_false_negatives() {
        let tgs = keys(5_000);
        let f = TableFilter::build(&tgs).expect("build");
        for &tg in &tgs {
            assert!(f.may_contain_point(tg), "false negative at {tg}");
            assert!(f.may_contain(TimeRange::new(tg, tg)));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let tgs = keys(10_000);
        let f = TableFilter::build(&tgs).expect("build");
        // Probe in-range instants that are *not* keys (keys are ≡ 1000 mod 37).
        let mut fp = 0u32;
        let mut probes = 0u32;
        for i in 0..10_000i64 {
            let tg = i * 37 + 1_001;
            if tg > f.max_tg() {
                break;
            }
            probes += 1;
            if f.may_contain_point(tg) {
                fp += 1;
            }
        }
        assert!(probes > 5_000);
        let rate = f64::from(fp) / f64::from(probes);
        assert!(rate < 0.03, "false positive rate {rate} too high");
    }

    #[test]
    fn range_pruning_uses_min_max() {
        let f = TableFilter::build(&[100, 200, 300]).expect("build");
        assert_eq!(f.min_tg(), 100);
        assert_eq!(f.max_tg(), 300);
        assert_eq!(f.count(), 3);
        assert!(!f.may_contain(TimeRange::new(0, 99)));
        assert!(!f.may_contain(TimeRange::new(301, 400)));
        assert!(f.may_contain(TimeRange::new(50, 100)));
        assert!(f.may_contain(TimeRange::new(150, 250)));
        assert!(!f.may_contain_point(99));
        assert!(!f.may_contain_point(301));
    }

    #[test]
    fn unsorted_input_and_negative_times_work() {
        let f = TableFilter::build(&[5, -3, 9, 0]).expect("build");
        assert_eq!(f.min_tg(), -3);
        assert_eq!(f.max_tg(), 9);
        assert!(f.may_contain_point(-3));
        assert!(f.may_contain_point(9));
    }

    #[test]
    fn rejects_empty() {
        assert!(TableFilter::build(&[]).is_err());
    }

    #[test]
    fn round_trips_and_is_deterministic() {
        let tgs = keys(777);
        let f = TableFilter::build(&tgs).expect("build");
        let mut a = BytesMut::new();
        f.encode_into(&mut a);
        assert_eq!(a.len(), f.encoded_len());
        let mut b = BytesMut::new();
        TableFilter::build(&tgs).expect("build").encode_into(&mut b);
        assert_eq!(a, b, "encoding must be deterministic");
        let back = TableFilter::decode(&a).expect("decode");
        assert_eq!(back, f);
    }

    #[test]
    fn decode_detects_corruption_anywhere() {
        let f = TableFilter::build(&keys(64)).expect("build");
        let mut buf = BytesMut::new();
        f.encode_into(&mut buf);
        for i in 0..buf.len() {
            let mut bad = buf.to_vec();
            bad[i] ^= 0x20;
            assert!(
                TableFilter::decode(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
        for cut in [0, 1, FILTER_FIXED, buf.len() - 1] {
            assert!(TableFilter::decode(&buf[..cut]).is_err());
        }
    }
}
