//! CRC-32 (IEEE 802.3 polynomial), implemented in-repo to keep the dependency
//! set to the sanctioned crates. Every SSTable and WAL record carries a CRC so
//! corruption is detected at read time rather than silently skewing results.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `data` (standard init/final xor of `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    crc ^ u32::MAX
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flip() {
        let data = b"the quick brown fox".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at {byte}:{bit}");
            }
        }
    }
}
