//! SSTables: immutable, sorted, checksummed on-disk tables.
//!
//! Mirrors the paper's setup: SSTables hold points sorted by generation time
//! (§I-A), cover a closed generation-time range, and on level `L1` form a
//! *run* of non-overlapping tables. The binary format is compact
//! (delta-varint timestamps) and self-validating (magic, version, CRC-32).

pub mod bits;
pub mod compress;
pub mod crc32;
pub mod filter;
pub mod format;
pub mod varint;

pub use filter::TableFilter;
pub use format::{
    BlockAggregates, BlockSpan, ByteSpan, Compression, EncodeOptions,
    RangeRead, TableIndex,
};

use seplsm_types::{DataPoint, TimeRange};

/// Identifier of an SSTable within a [`TableStore`](crate::store::TableStore).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SsTableId(pub u64);

impl std::fmt::Display for SsTableId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sst-{:08}", self.0)
    }
}

/// In-memory metadata for one SSTable: its id, the closed generation-time
/// range it covers, and how many points it holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsTableMeta {
    /// Store-assigned identifier.
    pub id: SsTableId,
    /// `[min gen_time, max gen_time]` of the stored points.
    pub range: TimeRange,
    /// Number of points in the table.
    pub count: u32,
}

impl SsTableMeta {
    /// Builds the metadata describing `points` (must be non-empty and sorted
    /// by generation time).
    pub fn describe(id: SsTableId, points: &[DataPoint]) -> Self {
        assert!(!points.is_empty(), "SSTable cannot be empty");
        debug_assert!(
            points.windows(2).all(|w| w[0].gen_time < w[1].gen_time),
            "SSTable points must be sorted by unique gen_time"
        );
        Self {
            id,
            range: TimeRange::new(
                points[0].gen_time,
                points[points.len() - 1].gen_time,
            ),
            count: points.len() as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_captures_range_and_count() {
        let pts = vec![
            DataPoint::new(10, 11, 0.0),
            DataPoint::new(20, 22, 1.0),
            DataPoint::new(30, 33, 2.0),
        ];
        let meta = SsTableMeta::describe(SsTableId(7), &pts);
        assert_eq!(meta.range, TimeRange::new(10, 30));
        assert_eq!(meta.count, 3);
        assert_eq!(meta.id.to_string(), "sst-00000007");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn describe_rejects_empty() {
        let _ = SsTableMeta::describe(SsTableId(0), &[]);
    }
}
