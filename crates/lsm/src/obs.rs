//! Typed observability for the storage kernel.
//!
//! Every interesting state transition in the engines — point
//! classification, MemTable seals, flushes, compactions, WAL and manifest
//! I/O, backpressure stalls, recovery steps, quarantines, degraded
//! transitions, injected faults — is described by one [`Event`] variant and
//! delivered to an attached [`Observer`]. The layer is:
//!
//! * **dependency-free** — hand-rolled JSONL encoding, no serde;
//! * **allocation-light** — events are plain enums built on the stack, and
//!   with no observer attached ([`ObserverHandle::detached`]) the emitting
//!   closure is never even evaluated, so the hot path does no allocation
//!   and no formatting;
//! * **deterministic** — this is a seplint kernel module (rule R3): no wall
//!   clock or thread primitive appears here. Sinks that want timestamps
//!   take an injectable [`Clock`]; the default [`LogicalClock`] is a plain
//!   counter, so two runs of the same seeded workload produce
//!   byte-identical JSONL traces. Wall-clock `Clock` implementations live
//!   in the binary crates (bench, cli), outside the kernel.
//!
//! Emission never does I/O through the fault hooks: observer traffic is
//! invisible to [`FaultPlan`](crate::fault::FaultPlan) op numbering, so
//! attaching a sink cannot shift a crash schedule.

use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::fault::IoOp;

/// A monotonic time source for sinks that measure latency or stamp trace
/// lines. Injectable so the deterministic kernel never reads a wall clock:
/// tests and seeded runs use [`LogicalClock`]; binaries may supply a real
/// clock implemented outside the kernel modules.
pub trait Clock: Send + Sync {
    /// Current time in microseconds on this clock's (monotonic) scale.
    fn now_micros(&self) -> u64;
}

/// The deterministic default [`Clock`]: a counter that advances by one
/// microsecond per reading. Identical workloads read identical times.
#[derive(Debug, Default)]
pub struct LogicalClock {
    ticks: AtomicU64,
}

impl LogicalClock {
    /// A fresh logical clock starting at zero.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }
}

impl Clock for LogicalClock {
    fn now_micros(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed)
    }
}

/// Which manifest mutation a [`Event::ManifestRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManifestRecordKind {
    /// A run-table addition (`TAG_ADD`).
    Add,
    /// An L0-table addition (`TAG_ADD_L0`).
    AddL0,
    /// A table removal (`TAG_REMOVE`).
    Remove,
    /// A full rewrite to the live set (`rewrite_levels`).
    Rewrite,
}

impl ManifestRecordKind {
    /// Stable label used in traces and tables.
    pub fn name(self) -> &'static str {
        match self {
            Self::Add => "add",
            Self::AddL0 => "add_l0",
            Self::Remove => "remove",
            Self::Rewrite => "rewrite",
        }
    }
}

/// One step of an engine recovery, named for the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryStepKind {
    /// Manifest records replayed into a table set.
    ManifestReplayed,
    /// The store was scanned for candidate tables (no-manifest path).
    StoreScanned,
    /// Candidate tables were probed against the store.
    TablesProbed,
    /// WAL records were replayed into the engine.
    WalReplayed,
    /// Orphan tables were swept from the store.
    OrphansSwept,
}

impl RecoveryStepKind {
    /// Stable label used in traces and tables.
    pub fn name(self) -> &'static str {
        match self {
            Self::ManifestReplayed => "manifest_replayed",
            Self::StoreScanned => "store_scanned",
            Self::TablesProbed => "tables_probed",
            Self::WalReplayed => "wal_replayed",
            Self::OrphansSwept => "orphans_swept",
        }
    }
}

/// Why a [`crate::TieredEngine`] went read-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedReason {
    /// The table store kept failing writes past the retry budget.
    StoreIo,
}

impl DegradedReason {
    /// Stable label used in traces and tables.
    pub fn name(self) -> &'static str {
        match self {
            Self::StoreIo => "store_io",
        }
    }
}

/// The operation that was failing when the engine degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedOp {
    /// Writing a sealed batch's tables to L0.
    FlushWrite,
    /// The background L0 → run compaction.
    Compaction,
}

impl DegradedOp {
    /// Stable label used in traces and tables.
    pub fn name(self) -> &'static str {
        match self {
            Self::FlushWrite => "flush_write",
            Self::Compaction => "compaction",
        }
    }
}

/// A typed description of a degraded (read-only) engine: what failed,
/// while doing what, after how many attempts. Replaces the old opaque
/// `Option<String>` reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedState {
    /// The failure class.
    pub reason: DegradedReason,
    /// The operation that was failing.
    pub op: DegradedOp,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// The final underlying error, verbatim.
    pub detail: String,
}

impl fmt::Display for DegradedState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} failed ({}) after {} attempts: {}",
            self.op.name(),
            self.reason.name(),
            self.attempts,
            self.detail
        )
    }
}

/// One typed storage-kernel event. Variants are cheap to build (the rare
/// [`Event::DegradedTransition`] carries its error string; everything else
/// is `Copy`-sized) and carry enough to reconstruct the paper's
/// per-operation accounting: rewritten points per compaction, subsequent
/// counts, WAL bytes, stall occurrences.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// `append` classified one point against `LAST(R)` (Definition 3).
    PointClassified {
        /// `true` for in-order (`C_seq` / `C0`-tail) points.
        in_order: bool,
    },
    /// A full MemTable was sealed and handed to the flush path.
    MemtableSealed {
        /// Points in the sealed buffer.
        points: u64,
    },
    /// A flush (buffer → disk) began.
    FlushStarted {
        /// Points leaving the buffer.
        points: u64,
    },
    /// The flush committed.
    FlushFinished {
        /// Tables written.
        tables: u64,
        /// Points written.
        points: u64,
    },
    /// A merge-compaction plan was adopted (pre-I/O).
    CompactionPlanned {
        /// Run tables consumed.
        inputs: u64,
        /// Output tables to write.
        outputs: u64,
        /// Points re-read from existing tables.
        rewritten: u64,
    },
    /// The compaction committed: tables written, version switched, inputs
    /// deleted.
    CompactionExecuted {
        /// Run tables consumed.
        inputs: u64,
        /// Output tables written.
        outputs: u64,
        /// Points re-read from existing tables (the WA rewrite share).
        rewritten: u64,
        /// Subsequent-point probe result (Definition 4), when requested.
        subsequent: Option<u64>,
    },
    /// One record was appended to the WAL.
    WalAppend {
        /// Record payload bytes.
        bytes: u64,
    },
    /// The WAL was flushed and fsynced.
    WalSync,
    /// The WAL was rewritten down to a survivor set.
    WalTruncate {
        /// Points surviving the truncation.
        survivors: u64,
    },
    /// A manifest mutation was logged.
    ManifestRecord {
        /// Which mutation.
        kind: ManifestRecordKind,
    },
    /// An appender stalled because the flush channel was full.
    BackpressureStall,
    /// One recovery step completed.
    RecoveryStep {
        /// Which step.
        step: RecoveryStepKind,
        /// Items the step processed (records replayed, tables probed, …).
        items: u64,
    },
    /// A table was moved to the store's quarantine area.
    Quarantine {
        /// The quarantined table's id.
        table: u64,
    },
    /// The engine transitioned to degraded (read-only) mode.
    DegradedTransition {
        /// The typed degraded description.
        state: DegradedState,
    },
    /// A fault plan injected a failure.
    FaultInjected {
        /// The physical op that was failed.
        op: IoOp,
        /// Its global op index.
        at: u64,
    },
    /// The decoded-block cache served a block without touching the store.
    CacheHit {
        /// The table the block belongs to.
        table: u64,
        /// The block index within the table.
        block: u64,
    },
    /// The decoded-block cache had to decode a block from raw bytes.
    CacheMiss {
        /// The table the block belongs to.
        table: u64,
        /// The block index within the table.
        block: u64,
    },
    /// The decoded-block cache evicted a block to stay within capacity.
    CacheEvict {
        /// The table the evicted block belonged to.
        table: u64,
        /// The evicted block's index within its table.
        block: u64,
        /// Decoded points the eviction released.
        points: u64,
    },
    /// Query planning skipped a table on pruning metadata alone (index
    /// bounds / v3 bloom filter): no data blocks touched, no seek paid.
    TablePruned {
        /// The pruned table.
        table: u64,
    },
    /// Admission control held an append between the slowdown and stop
    /// watermarks.
    AdmissionDelayed {
        /// Logical ticks of delay charged to the append.
        ticks: u64,
    },
    /// Admission control entered a write stall (stop watermark reached).
    WriteStallBegin {
        /// Combined L0 + pending-flush depth at stall entry.
        depth: u64,
    },
    /// The write stall ended (depth fell below the resume watermark).
    WriteStallEnd {
        /// Logical ticks the stall episode lasted.
        ticks: u64,
    },
    /// The compaction pacer withheld an output write to smooth a merge
    /// burst.
    CompactionPaced {
        /// Logical ticks of token refill the write waited for.
        ticks: u64,
    },
    /// A store retry backed off before its next attempt.
    RetryBackoff {
        /// 1-based attempt number about to run.
        attempt: u64,
        /// Logical ticks of backoff charged before the attempt.
        ticks: u64,
    },
    /// The fleet memory arbiter redistributed the global point budget.
    ArbiterRebalance {
        /// 1-based rebalance round (a pure function of logical ticks).
        round: u64,
        /// Series whose buffer capacity changed this round.
        resized: u64,
        /// Points granted to the block-cache share after the split.
        cache_share: u64,
    },
    /// A series re-ran Algorithm 1 online and switched (or confirmed) its
    /// buffering policy.
    PolicyRetuned {
        /// The raw series id.
        series: u64,
        /// `true` when the new policy is `π_s(n_seq)`.
        separation: bool,
        /// The separation split `n_seq` (0 under `π_c`).
        n_seq: u64,
    },
    /// The arbiter sampled one series' decayed heat counter at a rebalance
    /// boundary.
    HeatSample {
        /// The raw series id.
        series: u64,
        /// The decayed heat, in fixed-point 1/256ths of a point.
        heat: u64,
    },
    /// An aggregation/downsampling query answered blocks from v3 index
    /// pre-aggregates alone — zero data-block bytes for those blocks.
    AggPushdown {
        /// Blocks folded from the index without decoding.
        blocks_folded: u64,
    },
    /// An aggregation/downsampling query had to decode blocks after all
    /// (range straddle, newer-data overlap, or no usable pre-aggregates).
    AggFallback {
        /// Blocks decoded on the fallback path.
        blocks: u64,
    },
}

/// Number of distinct [`Event`] kinds (for fixed-size counter registries).
pub const EVENT_KINDS: usize = 29;

impl Event {
    /// Stable event-kind name, used as the JSONL `event` field and the
    /// aggregate-table row label.
    pub fn name(&self) -> &'static str {
        match self {
            Self::PointClassified { .. } => "point_classified",
            Self::MemtableSealed { .. } => "memtable_sealed",
            Self::FlushStarted { .. } => "flush_started",
            Self::FlushFinished { .. } => "flush_finished",
            Self::CompactionPlanned { .. } => "compaction_planned",
            Self::CompactionExecuted { .. } => "compaction_executed",
            Self::WalAppend { .. } => "wal_append",
            Self::WalSync => "wal_sync",
            Self::WalTruncate { .. } => "wal_truncate",
            Self::ManifestRecord { .. } => "manifest_record",
            Self::BackpressureStall => "backpressure_stall",
            Self::RecoveryStep { .. } => "recovery_step",
            Self::Quarantine { .. } => "quarantine",
            Self::DegradedTransition { .. } => "degraded_transition",
            Self::FaultInjected { .. } => "fault_injected",
            Self::CacheHit { .. } => "cache_hit",
            Self::CacheMiss { .. } => "cache_miss",
            Self::CacheEvict { .. } => "cache_evict",
            Self::TablePruned { .. } => "table_pruned",
            Self::AdmissionDelayed { .. } => "admission_delayed",
            Self::WriteStallBegin { .. } => "write_stall_begin",
            Self::WriteStallEnd { .. } => "write_stall_end",
            Self::CompactionPaced { .. } => "compaction_paced",
            Self::RetryBackoff { .. } => "retry_backoff",
            Self::ArbiterRebalance { .. } => "arbiter_rebalance",
            Self::PolicyRetuned { .. } => "policy_retuned",
            Self::HeatSample { .. } => "heat_sample",
            Self::AggPushdown { .. } => "agg_pushdown",
            Self::AggFallback { .. } => "agg_fallback",
        }
    }

    /// Dense index of the event kind, `0..EVENT_KINDS`.
    pub fn kind(&self) -> usize {
        match self {
            Self::PointClassified { .. } => 0,
            Self::MemtableSealed { .. } => 1,
            Self::FlushStarted { .. } => 2,
            Self::FlushFinished { .. } => 3,
            Self::CompactionPlanned { .. } => 4,
            Self::CompactionExecuted { .. } => 5,
            Self::WalAppend { .. } => 6,
            Self::WalSync => 7,
            Self::WalTruncate { .. } => 8,
            Self::ManifestRecord { .. } => 9,
            Self::BackpressureStall => 10,
            Self::RecoveryStep { .. } => 11,
            Self::Quarantine { .. } => 12,
            Self::DegradedTransition { .. } => 13,
            Self::FaultInjected { .. } => 14,
            Self::CacheHit { .. } => 15,
            Self::CacheMiss { .. } => 16,
            Self::CacheEvict { .. } => 17,
            Self::TablePruned { .. } => 18,
            Self::AdmissionDelayed { .. } => 19,
            Self::WriteStallBegin { .. } => 20,
            Self::WriteStallEnd { .. } => 21,
            Self::CompactionPaced { .. } => 22,
            Self::RetryBackoff { .. } => 23,
            Self::ArbiterRebalance { .. } => 24,
            Self::PolicyRetuned { .. } => 25,
            Self::HeatSample { .. } => 26,
            Self::AggPushdown { .. } => 27,
            Self::AggFallback { .. } => 28,
        }
    }

    /// Name of kind index `k` (the inverse of [`Event::kind`] for labels).
    pub fn kind_name(k: usize) -> &'static str {
        const NAMES: [&str; EVENT_KINDS] = [
            "point_classified",
            "memtable_sealed",
            "flush_started",
            "flush_finished",
            "compaction_planned",
            "compaction_executed",
            "wal_append",
            "wal_sync",
            "wal_truncate",
            "manifest_record",
            "backpressure_stall",
            "recovery_step",
            "quarantine",
            "degraded_transition",
            "fault_injected",
            "cache_hit",
            "cache_miss",
            "cache_evict",
            "table_pruned",
            "admission_delayed",
            "write_stall_begin",
            "write_stall_end",
            "compaction_paced",
            "retry_backoff",
            "arbiter_rebalance",
            "policy_retuned",
            "heat_sample",
            "agg_pushdown",
            "agg_fallback",
        ];
        NAMES.get(k).copied().unwrap_or("unknown")
    }

    /// Appends this event's payload fields to a JSONL line under
    /// construction (leading comma per field; no surrounding braces).
    fn write_json_fields(&self, out: &mut String) {
        match self {
            Self::PointClassified { in_order } => {
                let _ = write!(out, ",\"in_order\":{in_order}");
            }
            Self::MemtableSealed { points } => {
                let _ = write!(out, ",\"points\":{points}");
            }
            Self::FlushStarted { points } => {
                let _ = write!(out, ",\"points\":{points}");
            }
            Self::FlushFinished { tables, points } => {
                let _ = write!(out, ",\"tables\":{tables},\"points\":{points}");
            }
            Self::CompactionPlanned {
                inputs,
                outputs,
                rewritten,
            } => {
                let _ = write!(
                    out,
                    ",\"inputs\":{inputs},\"outputs\":{outputs},\
                     \"rewritten\":{rewritten}"
                );
            }
            Self::CompactionExecuted {
                inputs,
                outputs,
                rewritten,
                subsequent,
            } => {
                let _ = write!(
                    out,
                    ",\"inputs\":{inputs},\"outputs\":{outputs},\
                     \"rewritten\":{rewritten}"
                );
                if let Some(s) = subsequent {
                    let _ = write!(out, ",\"subsequent\":{s}");
                }
            }
            Self::WalAppend { bytes } => {
                let _ = write!(out, ",\"bytes\":{bytes}");
            }
            Self::WalSync | Self::BackpressureStall => {}
            Self::WalTruncate { survivors } => {
                let _ = write!(out, ",\"survivors\":{survivors}");
            }
            Self::ManifestRecord { kind } => {
                let _ = write!(out, ",\"kind\":\"{}\"", kind.name());
            }
            Self::RecoveryStep { step, items } => {
                let _ = write!(
                    out,
                    ",\"step\":\"{}\",\"items\":{items}",
                    step.name()
                );
            }
            Self::Quarantine { table } | Self::TablePruned { table } => {
                let _ = write!(out, ",\"table\":{table}");
            }
            Self::DegradedTransition { state } => {
                let _ = write!(
                    out,
                    ",\"reason\":\"{}\",\"op\":\"{}\",\"attempts\":{}",
                    state.reason.name(),
                    state.op.name(),
                    state.attempts
                );
                out.push_str(",\"detail\":\"");
                json_escape_into(&state.detail, out);
                out.push('"');
            }
            Self::FaultInjected { op, at } => {
                let _ = write!(out, ",\"op\":\"{op:?}\",\"at\":{at}");
            }
            Self::CacheHit { table, block }
            | Self::CacheMiss { table, block } => {
                let _ = write!(out, ",\"table\":{table},\"block\":{block}");
            }
            Self::CacheEvict {
                table,
                block,
                points,
            } => {
                let _ = write!(
                    out,
                    ",\"table\":{table},\"block\":{block},\"points\":{points}"
                );
            }
            Self::AdmissionDelayed { ticks }
            | Self::WriteStallEnd { ticks }
            | Self::CompactionPaced { ticks } => {
                let _ = write!(out, ",\"ticks\":{ticks}");
            }
            Self::WriteStallBegin { depth } => {
                let _ = write!(out, ",\"depth\":{depth}");
            }
            Self::RetryBackoff { attempt, ticks } => {
                let _ = write!(out, ",\"attempt\":{attempt},\"ticks\":{ticks}");
            }
            Self::ArbiterRebalance {
                round,
                resized,
                cache_share,
            } => {
                let _ = write!(
                    out,
                    ",\"round\":{round},\"resized\":{resized},\
                     \"cache_share\":{cache_share}"
                );
            }
            Self::PolicyRetuned {
                series,
                separation,
                n_seq,
            } => {
                let _ = write!(
                    out,
                    ",\"series\":{series},\"separation\":{separation},\
                     \"n_seq\":{n_seq}"
                );
            }
            Self::HeatSample { series, heat } => {
                let _ = write!(out, ",\"series\":{series},\"heat\":{heat}");
            }
            Self::AggPushdown { blocks_folded } => {
                let _ = write!(out, ",\"blocks_folded\":{blocks_folded}");
            }
            Self::AggFallback { blocks } => {
                let _ = write!(out, ",\"blocks\":{blocks}");
            }
        }
    }
}

/// Escapes `s` for embedding inside a JSON string literal.
fn json_escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A sink for kernel events. Implementations must be cheap and must never
/// block the storage path for long: they run inline on the emitting thread
/// (including the tiered engine's compaction worker).
pub trait Observer: Send + Sync {
    /// Receives one event.
    fn observe(&self, event: &Event);
}

/// An engine's (possibly absent) connection to an [`Observer`].
///
/// The handle is what the kernel threads through its layers. When detached
/// (the default), [`ObserverHandle::emit`] does not even evaluate the
/// event-building closure — no allocation, no formatting, one branch.
#[derive(Clone, Default)]
pub struct ObserverHandle {
    sink: Option<Arc<dyn Observer>>,
}

impl ObserverHandle {
    /// A handle delivering to `sink`.
    pub fn attached(sink: Arc<dyn Observer>) -> Self {
        Self { sink: Some(sink) }
    }

    /// The no-op handle.
    pub fn detached() -> Self {
        Self::default()
    }

    /// True when a sink is attached.
    pub fn is_attached(&self) -> bool {
        self.sink.is_some()
    }

    /// Builds (lazily) and delivers one event.
    #[inline]
    pub fn emit(&self, build: impl FnOnce() -> Event) {
        if let Some(sink) = &self.sink {
            sink.observe(&build());
        }
    }
}

impl fmt::Debug for ObserverHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObserverHandle")
            .field("attached", &self.is_attached())
            .finish()
    }
}

/// The explicit no-op sink (a detached [`ObserverHandle`] is equivalent and
/// cheaper; this exists for composition sites that need a real sink).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Observer for NullSink {
    fn observe(&self, _event: &Event) {}
}

/// A bounded in-memory sink for tests: keeps the most recent `cap` events.
#[derive(Debug)]
pub struct RingBufferSink {
    cap: usize,
    events: Mutex<VecDeque<Event>>,
}

impl RingBufferSink {
    /// A ring keeping at most `cap` events (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Arc<Self> {
        Arc::new(Self {
            cap: cap.max(1),
            events: Mutex::new(VecDeque::new()),
        })
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().iter().cloned().collect()
    }

    /// Drains and returns the retained events, oldest first.
    pub fn take(&self) -> Vec<Event> {
        self.events.lock().drain(..).collect()
    }

    /// Number of retained events matching `pred`.
    pub fn count(&self, pred: impl Fn(&Event) -> bool) -> usize {
        self.events.lock().iter().filter(|e| pred(e)).count()
    }
}

impl Observer for RingBufferSink {
    fn observe(&self, event: &Event) {
        let mut events = self.events.lock();
        if events.len() == self.cap {
            events.pop_front();
        }
        events.push_back(event.clone());
    }
}

/// Fans one event stream out to several sinks, in order.
pub struct FanoutSink {
    sinks: Vec<Arc<dyn Observer>>,
}

impl FanoutSink {
    /// A sink delivering every event to each of `sinks`.
    pub fn new(sinks: Vec<Arc<dyn Observer>>) -> Arc<Self> {
        Arc::new(Self { sinks })
    }
}

impl Observer for FanoutSink {
    fn observe(&self, event: &Event) {
        for sink in &self.sinks {
            sink.observe(event);
        }
    }
}

struct JsonlInner {
    seq: u64,
    out: Box<dyn Write + Send>,
}

/// Writes one JSON object per event:
/// `{"seq":N,"ts":T,"event":"flush_started",...}`.
///
/// Timestamps come from the injected [`Clock`]; under the default
/// [`LogicalClock`] two identical seeded runs produce byte-identical
/// traces. Write errors are swallowed (telemetry must never fail the
/// storage path); call [`JsonlSink::flush`] to surface back-pressure at a
/// safe point.
pub struct JsonlSink {
    clock: Arc<dyn Clock>,
    inner: Mutex<JsonlInner>,
}

impl JsonlSink {
    /// A sink writing to `out`, stamping lines with `clock`.
    pub fn new(out: Box<dyn Write + Send>, clock: Arc<dyn Clock>) -> Arc<Self> {
        Arc::new(Self {
            clock,
            inner: Mutex::new(JsonlInner { seq: 0, out }),
        })
    }

    /// A sink writing to `out` under the deterministic [`LogicalClock`].
    pub fn with_logical_clock(out: Box<dyn Write + Send>) -> Arc<Self> {
        Self::new(out, LogicalClock::new())
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    /// The writer's flush error, if any.
    pub fn flush(&self) -> std::io::Result<()> {
        self.inner.lock().out.flush()
    }
}

impl Observer for JsonlSink {
    fn observe(&self, event: &Event) {
        let ts = self.clock.now_micros();
        let mut inner = self.inner.lock();
        let seq = inner.seq;
        inner.seq += 1;
        let mut line = String::with_capacity(96);
        let _ = write!(
            line,
            "{{\"seq\":{seq},\"ts\":{ts},\"event\":\"{}\"",
            event.name()
        );
        event.write_json_fields(&mut line);
        line.push_str("}\n");
        let _ = inner.out.write_all(line.as_bytes());
    }
}

/// Upper bucket bounds (µs) of the fixed-bucket latency histograms:
/// powers of two from 1 µs to ~0.5 s, plus an overflow bucket.
pub const LATENCY_BUCKETS_MICROS: [u64; 20] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384,
    32768, 65536, 131072, 262144, 524288,
];

/// A fixed-bucket latency histogram over [`LATENCY_BUCKETS_MICROS`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// `counts[i]` counts samples `<= LATENCY_BUCKETS_MICROS[i]`; the final
    /// slot counts overflows.
    pub counts: [u64; LATENCY_BUCKETS_MICROS.len() + 1],
    /// Total samples recorded.
    pub samples: u64,
    /// Sum of all samples (µs), for mean reporting.
    pub total_micros: u64,
}

impl Histogram {
    /// Records one sample of `micros`.
    pub fn record(&mut self, micros: u64) {
        let idx = LATENCY_BUCKETS_MICROS
            .iter()
            .position(|&b| micros <= b)
            .unwrap_or(LATENCY_BUCKETS_MICROS.len());
        self.counts[idx] += 1;
        self.samples += 1;
        self.total_micros = self.total_micros.saturating_add(micros);
    }

    /// Mean sample in µs (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total_micros as f64 / self.samples as f64
        }
    }
}

#[derive(Debug, Default)]
struct AggregateState {
    counts: [u64; EVENT_KINDS],
    flush_points: u64,
    compaction_rewritten: u64,
    stall_count: u64,
    stall_ticks: u64,
    paced_ticks: u64,
    backoff_ticks: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    flush_open: Option<u64>,
    compaction_open: Option<u64>,
    flush_latency: Histogram,
    compaction_latency: Histogram,
}

/// An immutable snapshot of an [`AggregateSink`].
#[derive(Debug, Clone, Default)]
pub struct AggregateReport {
    /// Per-kind event counts, indexable via [`Event::kind`] /
    /// [`Event::kind_name`].
    pub counts: [u64; EVENT_KINDS],
    /// Total points flushed (sum of `FlushStarted.points`).
    pub flush_points: u64,
    /// Total points rewritten by compactions.
    pub compaction_rewritten: u64,
    /// Backpressure stalls observed.
    pub stalls: u64,
    /// Logical ticks charged to admission delays and write stalls.
    pub stall_ticks: u64,
    /// Logical ticks compaction writes spent waiting on the I/O pacer.
    pub paced_ticks: u64,
    /// Logical ticks store retries spent backing off.
    pub backoff_ticks: u64,
    /// Decoded-block cache hits.
    pub cache_hits: u64,
    /// Decoded-block cache misses.
    pub cache_misses: u64,
    /// Decoded-block cache evictions.
    pub cache_evictions: u64,
    /// Flush latency (started → finished), on the injected clock's scale.
    pub flush_latency: Histogram,
    /// Compaction latency (planned → executed), same scale.
    pub compaction_latency: Histogram,
}

impl AggregateReport {
    /// Decoded-block cache hit rate over `[0, 1]` (0 when the cache never
    /// saw a lookup).
    pub fn cache_hit_rate(&self) -> f64 {
        crate::metrics::hit_rate(self.cache_hits, self.cache_misses)
    }

    /// Renders the report as a fixed-width text table (one row per
    /// non-zero event kind, then the latency summaries).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("event                 count\n");
        out.push_str("--------------------  ----------\n");
        for (k, &n) in self.counts.iter().enumerate() {
            if n > 0 {
                let _ = writeln!(out, "{:<20}  {n:>10}", Event::kind_name(k));
            }
        }
        let _ = writeln!(
            out,
            "flush latency: {} samples, mean {:.1}us",
            self.flush_latency.samples,
            self.flush_latency.mean_micros()
        );
        let _ = writeln!(
            out,
            "compaction latency: {} samples, mean {:.1}us",
            self.compaction_latency.samples,
            self.compaction_latency.mean_micros()
        );
        let delayed = self.counts[Event::AdmissionDelayed { ticks: 0 }.kind()];
        let stalls = self.counts[Event::WriteStallBegin { depth: 0 }.kind()];
        let backoffs = self.counts[Event::RetryBackoff {
            attempt: 0,
            ticks: 0,
        }
        .kind()];
        let _ = writeln!(
            out,
            "admission: {delayed} delayed, {stalls} stalls \
             ({} stall ticks), pacer {} ticks, {backoffs} retry \
             backoffs ({} ticks)",
            self.stall_ticks, self.paced_ticks, self.backoff_ticks
        );
        if self.cache_hits + self.cache_misses > 0 {
            let _ = writeln!(
                out,
                "cache: {} hits, {} misses, {} evictions \
                 (hit rate {:.1}%)",
                self.cache_hits,
                self.cache_misses,
                self.cache_evictions,
                self.cache_hit_rate() * 100.0
            );
        }
        out
    }
}

/// A counter/histogram registry: counts every event kind and measures
/// flush and compaction latency on the injected [`Clock`].
pub struct AggregateSink {
    clock: Arc<dyn Clock>,
    state: Mutex<AggregateState>,
}

impl AggregateSink {
    /// An aggregate sink timing on `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Arc<Self> {
        Arc::new(Self {
            clock,
            state: Mutex::new(AggregateState::default()),
        })
    }

    /// An aggregate sink on the deterministic [`LogicalClock`].
    pub fn with_logical_clock() -> Arc<Self> {
        Self::new(LogicalClock::new())
    }

    /// Snapshot of everything aggregated so far.
    pub fn report(&self) -> AggregateReport {
        let s = self.state.lock();
        AggregateReport {
            counts: s.counts,
            flush_points: s.flush_points,
            compaction_rewritten: s.compaction_rewritten,
            stalls: s.stall_count,
            stall_ticks: s.stall_ticks,
            paced_ticks: s.paced_ticks,
            backoff_ticks: s.backoff_ticks,
            cache_hits: s.cache_hits,
            cache_misses: s.cache_misses,
            cache_evictions: s.cache_evictions,
            flush_latency: s.flush_latency.clone(),
            compaction_latency: s.compaction_latency.clone(),
        }
    }
}

impl Observer for AggregateSink {
    fn observe(&self, event: &Event) {
        let now = self.clock.now_micros();
        let mut s = self.state.lock();
        s.counts[event.kind()] += 1;
        match event {
            Event::FlushStarted { points } => {
                s.flush_points += points;
                s.flush_open = Some(now);
            }
            Event::FlushFinished { .. } => {
                if let Some(t0) = s.flush_open.take() {
                    let dt = now.saturating_sub(t0);
                    s.flush_latency.record(dt);
                }
            }
            Event::CompactionPlanned { .. } => {
                s.compaction_open = Some(now);
            }
            Event::CompactionExecuted { rewritten, .. } => {
                s.compaction_rewritten += rewritten;
                if let Some(t0) = s.compaction_open.take() {
                    let dt = now.saturating_sub(t0);
                    s.compaction_latency.record(dt);
                }
            }
            Event::BackpressureStall => s.stall_count += 1,
            Event::AdmissionDelayed { ticks }
            | Event::WriteStallEnd { ticks } => s.stall_ticks += ticks,
            Event::CompactionPaced { ticks } => s.paced_ticks += ticks,
            Event::RetryBackoff { ticks, .. } => s.backoff_ticks += ticks,
            Event::CacheHit { .. } => s.cache_hits += 1,
            Event::CacheMiss { .. } => s.cache_misses += 1,
            Event::CacheEvict { .. } => s.cache_evictions += 1,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_handle_never_builds_the_event() {
        let handle = ObserverHandle::detached();
        let mut built = false;
        handle.emit(|| {
            built = true;
            Event::WalSync
        });
        assert!(!built, "detached emit must not evaluate the closure");
        assert!(!handle.is_attached());
    }

    #[test]
    fn ring_buffer_keeps_the_most_recent_events() {
        let ring = RingBufferSink::new(2);
        let handle = ObserverHandle::attached(ring.clone());
        for points in 0..3u64 {
            handle.emit(|| Event::FlushStarted { points });
        }
        let events = ring.events();
        assert_eq!(
            events,
            vec![
                Event::FlushStarted { points: 1 },
                Event::FlushStarted { points: 2 },
            ]
        );
        assert_eq!(ring.count(|e| matches!(e, Event::FlushStarted { .. })), 2);
    }

    #[test]
    fn jsonl_traces_are_deterministic_and_escaped() {
        let run = || {
            let buf = Arc::new(Mutex::new(Vec::new()));
            let writer = SharedBuf(buf.clone());
            let sink = JsonlSink::with_logical_clock(Box::new(writer));
            let handle = ObserverHandle::attached(sink);
            handle.emit(|| Event::FlushStarted { points: 3 });
            handle.emit(|| Event::DegradedTransition {
                state: DegradedState {
                    reason: DegradedReason::StoreIo,
                    op: DegradedOp::FlushWrite,
                    attempts: 3,
                    detail: "fail \"quoted\"\nline".into(),
                },
            });
            let out = buf.lock().clone();
            String::from_utf8(out).expect("utf8")
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "identical runs must yield identical traces");
        assert!(a.starts_with(
            "{\"seq\":0,\"ts\":0,\"event\":\"flush_started\",\"points\":3}\n"
        ));
        assert!(a.contains("\\\"quoted\\\"\\nline"));
    }

    #[test]
    fn aggregate_counts_and_times_flushes() {
        let sink = AggregateSink::with_logical_clock();
        let handle = ObserverHandle::attached(sink.clone());
        handle.emit(|| Event::FlushStarted { points: 8 });
        handle.emit(|| Event::FlushFinished {
            tables: 1,
            points: 8,
        });
        handle.emit(|| Event::BackpressureStall);
        let report = sink.report();
        assert_eq!(report.counts[Event::FlushStarted { points: 0 }.kind()], 1);
        assert_eq!(report.flush_points, 8);
        assert_eq!(report.stalls, 1);
        assert_eq!(report.flush_latency.samples, 1);
        let table = report.render_table();
        assert!(table.contains("flush_started"));
        assert!(table.contains("backpressure_stall"));
    }

    #[test]
    fn aggregate_tracks_admission_and_pacing() {
        let sink = AggregateSink::with_logical_clock();
        let handle = ObserverHandle::attached(sink.clone());
        handle.emit(|| Event::AdmissionDelayed { ticks: 2 });
        handle.emit(|| Event::WriteStallBegin { depth: 16 });
        handle.emit(|| Event::WriteStallEnd { ticks: 5 });
        handle.emit(|| Event::CompactionPaced { ticks: 3 });
        handle.emit(|| Event::RetryBackoff {
            attempt: 2,
            ticks: 4,
        });
        let report = sink.report();
        assert_eq!(report.stall_ticks, 7);
        assert_eq!(report.paced_ticks, 3);
        assert_eq!(report.backoff_ticks, 4);
        let table = report.render_table();
        assert!(table.contains(
            "admission: 1 delayed, 1 stalls (7 stall ticks), \
             pacer 3 ticks, 1 retry backoffs (4 ticks)"
        ));
    }

    #[test]
    fn histogram_buckets_cover_overflow() {
        let mut h = Histogram::default();
        h.record(1);
        h.record(3);
        h.record(u64::MAX);
        assert_eq!(h.samples, 3);
        assert_eq!(h.counts[0], 1); // <= 1us
        assert_eq!(h.counts[2], 1); // <= 4us
        assert_eq!(h.counts[LATENCY_BUCKETS_MICROS.len()], 1); // overflow
    }

    #[test]
    fn fanout_delivers_to_every_sink() {
        let a = RingBufferSink::new(4);
        let b = RingBufferSink::new(4);
        let fan = FanoutSink::new(vec![a.clone(), b.clone()]);
        let handle = ObserverHandle::attached(fan);
        handle.emit(|| Event::WalSync);
        assert_eq!(a.events(), vec![Event::WalSync]);
        assert_eq!(b.events(), vec![Event::WalSync]);
    }

    #[test]
    fn every_event_name_matches_its_kind_index() {
        let samples = [
            Event::PointClassified { in_order: true },
            Event::MemtableSealed { points: 0 },
            Event::FlushStarted { points: 0 },
            Event::FlushFinished {
                tables: 0,
                points: 0,
            },
            Event::CompactionPlanned {
                inputs: 0,
                outputs: 0,
                rewritten: 0,
            },
            Event::CompactionExecuted {
                inputs: 0,
                outputs: 0,
                rewritten: 0,
                subsequent: None,
            },
            Event::WalAppend { bytes: 0 },
            Event::WalSync,
            Event::WalTruncate { survivors: 0 },
            Event::ManifestRecord {
                kind: ManifestRecordKind::Add,
            },
            Event::BackpressureStall,
            Event::RecoveryStep {
                step: RecoveryStepKind::WalReplayed,
                items: 0,
            },
            Event::Quarantine { table: 0 },
            Event::DegradedTransition {
                state: DegradedState {
                    reason: DegradedReason::StoreIo,
                    op: DegradedOp::Compaction,
                    attempts: 0,
                    detail: String::new(),
                },
            },
            Event::FaultInjected {
                op: IoOp::WalSync,
                at: 0,
            },
            Event::CacheHit { table: 0, block: 0 },
            Event::CacheMiss { table: 0, block: 0 },
            Event::CacheEvict {
                table: 0,
                block: 0,
                points: 0,
            },
            Event::TablePruned { table: 0 },
            Event::AdmissionDelayed { ticks: 0 },
            Event::WriteStallBegin { depth: 0 },
            Event::WriteStallEnd { ticks: 0 },
            Event::CompactionPaced { ticks: 0 },
            Event::RetryBackoff {
                attempt: 0,
                ticks: 0,
            },
            Event::ArbiterRebalance {
                round: 0,
                resized: 0,
                cache_share: 0,
            },
            Event::PolicyRetuned {
                series: 0,
                separation: false,
                n_seq: 0,
            },
            Event::HeatSample { series: 0, heat: 0 },
            Event::AggPushdown { blocks_folded: 0 },
            Event::AggFallback { blocks: 0 },
        ];
        assert_eq!(samples.len(), EVENT_KINDS);
        for (i, e) in samples.iter().enumerate() {
            assert_eq!(e.kind(), i);
            assert_eq!(Event::kind_name(i), e.name());
        }
    }

    /// A `Write` into a shared buffer, for trace assertions.
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
}
