//! The two-level engine with background compaction — the production write
//! path of Apache IoTDB described in §V-C, used by the throughput experiment
//! (Table III) and by the query experiments (Figs. 12–14, 20).
//!
//! §V-C: when a MemTable is full it is flushed to a level-1 file; level-1
//! files *may overlap* each other; a background thread consumes them and
//! produces the non-overlapping level-2 run. Ingestion therefore never waits
//! for compaction — and queries must read every overlapping level-1 file,
//! which is precisely what makes the policies differ on the read path: under
//! `π_c` a single straggler gives its whole flushed file a huge key range
//! that every recent-window query then has to scan (the paper's Fig. 15),
//! while `π_s` keeps in-order flushes narrow.
//!
//! [`TieredEngine`] reproduces that on the shared storage kernel: the writer
//! thread classifies and buffers points in a
//! [`PolicyBuffers`](crate::buffer::PolicyBuffers) and hands full MemTables
//! to a compaction worker over a bounded channel; the worker stores them as
//! L0 tables (committed as [`VersionEdit::FlushToL0`]) and periodically
//! merges L0 into the run through the same
//! [`plan_merge`](crate::compaction::plan_merge) /
//! [`execute`](crate::compaction::execute) pipeline as the foreground
//! engine. The bounded channel back-pressures the writer if the worker
//! cannot keep up (realistic write-stall behaviour).
//!
//! # Durability
//!
//! With [`OpenOptions::wal`] every appended point is logged before it is
//! buffered, and the log is compacted to the still-volatile suffix on every
//! flush hand-off; with [`OpenOptions::manifest`] the worker records every
//! L0 addition and run replacement. A crashed engine (dropped without
//! [`TieredEngine::finish`]) is rebuilt by
//! [`OpenOptions::open_or_recover`]: the manifest restores the run and L0,
//! the WAL replays the buffered tail. The WAL is deliberately conservative
//! — a batch leaves it only after the *next* hand-off, so recovery may
//! re-buffer points that already reached L0; the merge pipeline
//! deduplicates them by generation time (freshest wins), so no point is
//! lost or double-counted in query results.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Sender, TrySendError};
use parking_lot::{Condvar, Mutex};
use seplsm_types::{DataPoint, Error, Policy, Result, TimeRange, Timestamp};

use crate::admission::{
    AdmissionController, AdmissionDepth, AdmissionOutcome, AdmissionStats,
    IoPacer, PaceDecision, PacerStats, RetryBackoff, StallTransition,
    Watermarks,
};
use crate::buffer::{FlushTrigger, PolicyBuffers};
use crate::compaction::{self, plan_merge, RunInput};
use crate::engine::EngineConfig;
use crate::fault::FaultPlan;
use crate::invariants::{self, InvariantChecker};
use crate::iterator::merge_sorted;
use crate::level::Run;
use crate::manifest::Manifest;
use crate::metrics::Metrics;
use crate::obs::{
    DegradedOp, DegradedReason, DegradedState, Event, Observer, ObserverHandle,
    RecoveryStepKind,
};
use crate::query::QueryStats;
use crate::recovery::{self, RecoveryMode, RecoveryOptions, RecoveryReport};
use crate::sstable::{SsTableId, SsTableMeta};
use crate::store::{MemStore, TableStore};
use crate::version::{Version, VersionEdit};
use crate::wal::Wal;

/// How many L0 tables accumulate before the worker merges them into the run.
const L0_COMPACT_THRESHOLD: usize = 4;
/// Flush-queue depth before ingestion back-pressures.
const CHANNEL_DEPTH: usize = 8;

/// Retries `op` on [`Error::Io`] (the transient class — a torn network
/// store, an injected fault) under a bounded, exponentially growing
/// logical-tick backoff; any other error class aborts immediately. The
/// backoff is charged in ticks, never slept, so fault schedules stay
/// deterministic; each delayed reattempt is announced as
/// [`Event::RetryBackoff`] and counted in `Metrics::retry_backoffs`.
fn retry_store<T>(
    state: &Mutex<TierState>,
    obs: &ObserverHandle,
    mut op: impl FnMut() -> Result<T>,
) -> Result<T> {
    let mut backoff = RetryBackoff::default();
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e @ Error::Io(_)) => match backoff.next_delay() {
                Some((attempt, ticks)) => {
                    state.lock().metrics.retry_backoffs += 1;
                    obs.emit(|| Event::RetryBackoff {
                        attempt: u64::from(attempt),
                        ticks,
                    });
                }
                None => return Err(e),
            },
            Err(e) => return Err(e),
        }
    }
}

/// Records the transition into the degraded read-only state: builds the
/// typed [`DegradedState`], reports it to the observer, stores it for
/// [`TieredEngine::degraded_state`], and raises the lock-free flag the
/// append path checks.
fn enter_degraded(
    state: &Mutex<TierState>,
    flag: &AtomicBool,
    op: DegradedOp,
    err: &Error,
) {
    let degraded = DegradedState {
        reason: DegradedReason::StoreIo,
        op,
        attempts: crate::admission::DEFAULT_RETRY_ATTEMPTS,
        detail: err.to_string(),
    };
    let mut state = state.lock();
    state.obs.emit(|| Event::DegradedTransition {
        state: degraded.clone(),
    });
    state.degraded = Some(degraded);
    drop(state);
    flag.store(true, Ordering::Release);
}

/// Counters reported when the engine is finished — a view over the kernel's
/// [`Metrics`] plus the final table contents.
#[derive(Debug, Clone, Default)]
pub struct TieredReport {
    /// Points the user wrote.
    pub user_points: u64,
    /// Points physically written (L0 flushes + run rewrites).
    pub disk_points_written: u64,
    /// L0→run merges that rewrote part of the run.
    pub compactions: u64,
    /// Tables remaining in the run at shutdown.
    pub run_tables: usize,
    /// All stored points, sorted by generation time (for verification).
    pub points: Vec<DataPoint>,
}

impl TieredReport {
    fn from_metrics(
        metrics: &Metrics,
        run_tables: usize,
        points: Vec<DataPoint>,
    ) -> Self {
        Self {
            user_points: metrics.user_points,
            disk_points_written: metrics.disk_points_written,
            compactions: metrics.compactions,
            run_tables,
            points,
        }
    }

    /// Overall write amplification (the shared §I-B definition).
    pub fn write_amplification(&self) -> f64 {
        crate::metrics::write_amplification(
            self.disk_points_written,
            self.user_points,
        )
    }
}

/// State shared between the writer, the worker, and queries: the versioned
/// table levels, the unified metrics, and the (optional) manifest that
/// mirrors them.
struct TierState {
    version: Version,
    metrics: Metrics,
    manifest: Option<Manifest>,
    /// Debug-build temporal invariants, observed by the worker after every
    /// flush/compaction while the state lock is held.
    invariants: InvariantChecker,
    /// Why the engine is degraded (read-only), once the worker has exhausted
    /// its retries on a store failure. `None` while healthy.
    degraded: Option<DegradedState>,
    /// `true` while an L0→run merge is between its snapshot and its commit.
    /// [`compact_l0_once`] runs its store I/O with the state lock released;
    /// this flag keeps a second merge from planning against the same
    /// snapshot in that window. Cleared on every exit path and signalled on
    /// the engine's `flush_done` condvar.
    compacting: bool,
    /// Watermark-gated admission: consulted by the writer before every
    /// buffer insert against the combined L0 + pending-flush depth.
    admission: AdmissionController,
    /// Logical token bucket rate-limiting compaction output writes.
    pacer: IoPacer,
    /// Worker-side event sink (shared with the writer's handle).
    obs: ObserverHandle,
}

impl TierState {
    /// Runs the temporal invariant checks against the current state
    /// (no-op in release builds).
    fn check_invariants(&mut self) -> Result<()> {
        self.invariants
            .observe_metrics(&self.version, &self.metrics)
    }
}

/// One query's view of the version, captured under a single lock
/// acquisition so the table reads can run without it (see
/// [`TieredEngine::query`]).
struct QuerySnapshot {
    /// Flushing MemTable batches (oldest first, as the version stores them).
    flushing: Vec<Arc<Vec<DataPoint>>>,
    /// Overlapping L0 tables, newest first.
    l0: Vec<SsTableMeta>,
    /// Overlapping run tables, in key order.
    run: Vec<SsTableMeta>,
}

/// Merges every L0 table plus the overlapping part of the run through the
/// shared compaction pipeline, holding the state lock only around the
/// snapshot and the commit — never across table-store I/O:
///
/// 1. **Snapshot** (locked): wait out any in-flight merge via
///    [`TierState::compacting`], then capture the L0 and overlapping-run
///    metadata and raise the flag.
/// 2. **Write** (unlocked): read the inputs, plan, and store the merged
///    outputs ([`compaction::write_outputs`]).
/// 3. **Commit** (locked): apply the version edit, record the manifest, do
///    the metric accounting ([`compaction::commit`]), clear the flag, and
///    signal `flush_done`.
/// 4. **Retire** (unlocked): delete the consumed run and L0 tables.
///
/// A failure in phase 2 leaves the version untouched (plus orphan output
/// tables for recovery-time GC) and clears the flag, so a
/// [`retry_store`]-driven re-invocation restarts cleanly from a fresh
/// snapshot. A failure in phase 4 leaves the committed version correct and
/// the undeleted inputs as orphans.
fn compact_l0_once(
    state_mutex: &Mutex<TierState>,
    flush_done: &Condvar,
    store: &Arc<dyn TableStore>,
    sstable_points: usize,
    obs: &ObserverHandle,
) -> Result<()> {
    // Phase 1: snapshot the merge inputs under the lock.
    let mut state = state_mutex.lock();
    while state.compacting {
        let (guard, _timed_out) =
            flush_done.wait_timeout(state, Duration::from_millis(10));
        state = guard;
    }
    let l0: Vec<SsTableMeta> = state.version.l0().to_vec();
    let Some(range) = l0.iter().map(|m| m.range).reduce(|a, b| a.union(&b))
    else {
        return Ok(()); // L0 empty: nothing to merge.
    };
    let overlapping = state.version.run().overlapping(range);
    state.compacting = true;
    drop(state);

    // Phase 2: read inputs and write outputs with the lock released.
    // Priority: newest L0 table first, then older L0, then the run.
    let prepared = (|| {
        let mut fresh = Vec::with_capacity(l0.len());
        for meta in l0.iter().rev() {
            fresh.push(store.get(meta.id)?);
        }
        let mut inputs = Vec::with_capacity(overlapping.len());
        for meta in overlapping {
            inputs.push(RunInput {
                meta,
                points: store.get(meta.id)?,
            });
        }
        let plan = plan_merge(fresh, inputs, sstable_points, None);
        // Pace the output write against the logical token budget before it
        // hits the store. Ticks are accounting only — nothing sleeps — so
        // fault schedules stay deterministic while the charge shows up in
        // `paced_ticks` for the bench/stats trajectory.
        let paced = {
            let mut state = state_mutex.lock();
            match state.pacer.grant(plan.merged_points) {
                PaceDecision::Proceed => None,
                PaceDecision::Wait { ticks } => {
                    state.metrics.paced_ticks += ticks;
                    Some(ticks)
                }
            }
        };
        if let Some(ticks) = paced {
            obs.emit(|| Event::CompactionPaced { ticks });
        }
        compaction::write_outputs(plan, store.as_ref(), obs)
    })();

    // Phase 3: commit under the lock; the flag clears on every path out.
    let mut state = state_mutex.lock();
    state.compacting = false;
    let committed = prepared.and_then(|prepared| {
        let TierState {
            version,
            metrics,
            manifest,
            obs,
            ..
        } = &mut *state;
        compaction::commit(
            &prepared,
            version,
            manifest.as_mut(),
            metrics,
            true,
            obs,
        )?;
        Ok(prepared)
    });
    let committed = match committed {
        Ok(prepared) => prepared,
        Err(e) => {
            drop(state);
            flush_done.notify_all();
            return Err(e);
        }
    };
    state.check_invariants()?;
    let version_snapshot =
        cfg!(debug_assertions).then(|| state.version.clone());
    drop(state);
    flush_done.notify_all();

    // Phase 4: retire the consumed inputs; readers resolving the committed
    // version no longer reference them (a query snapshot taken before the
    // commit retries on the missing table).
    compaction::retire_inputs(&committed, store.as_ref())?;
    for meta in &l0 {
        store.delete(meta.id)?;
    }
    // Debug builds cross-check the committed version against what the
    // store actually holds, using the snapshot taken at commit time.
    if let Some(version) = version_snapshot {
        invariants::check_version_against_store(&version, store.as_ref())?;
    }
    Ok(())
}

/// The one way to open a [`TieredEngine`]: the tiered twin of
/// [`crate::engine::OpenOptions`], replacing the old
/// `new`/`with_wal`/`with_manifest`/`recover*`/`attach_faults` constructor
/// family.
///
/// [`OpenOptions::open`] starts a fresh engine and its compaction worker;
/// [`OpenOptions::open_or_recover`] rebuilds one after a crash (a manifest
/// is required — tiered recovery is manifest-driven) and returns the
/// [`RecoveryReport`]. A configured [`OpenOptions::faults`] plan attaches
/// to the WAL and manifest only after opening completes, so crash-schedule
/// op numbering starts at the first workload-driven disk touch.
#[must_use = "OpenOptions does nothing until .open()/.open_or_recover()"]
pub struct OpenOptions {
    config: EngineConfig,
    store: Option<Arc<dyn TableStore>>,
    wal: Option<PathBuf>,
    manifest: Option<PathBuf>,
    recovery: RecoveryOptions,
    faults: Option<Arc<FaultPlan>>,
    observer: ObserverHandle,
    sync_flush: bool,
    cache: Option<Arc<crate::cache::BlockCache>>,
    watermarks: Watermarks,
    pacer: IoPacer,
}

impl std::fmt::Debug for OpenOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpenOptions")
            .field("policy", &self.config.policy)
            .field("wal", &self.wal)
            .field("manifest", &self.manifest)
            .field("recovery", &self.recovery)
            .field("faults", &self.faults.is_some())
            .field("observer", &self.observer.is_attached())
            .field("sync_flush", &self.sync_flush)
            .field("cache", &self.cache.is_some())
            .field("watermarks", &self.watermarks)
            .finish()
    }
}

impl OpenOptions {
    /// Starts a builder for the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Self {
            config,
            store: None,
            wal: None,
            manifest: None,
            recovery: RecoveryOptions::strict(),
            faults: None,
            observer: ObserverHandle::detached(),
            sync_flush: false,
            cache: None,
            watermarks: Watermarks::default(),
            pacer: IoPacer::default(),
        }
    }

    /// Sets the slowdown/stop admission watermarks the writer consults
    /// before every buffer insert (default
    /// [`Watermarks::default`]: 8/16). Tight watermarks turn ingest
    /// bursts into typed [`AdmissionOutcome::Delayed`] /
    /// [`AdmissionOutcome::Stalled`] outcomes instead of unbounded L0
    /// growth.
    pub fn admission(mut self, watermarks: Watermarks) -> Self {
        self.watermarks = watermarks;
        self
    }

    /// Sets the logical token bucket that paces compaction output writes
    /// (default [`IoPacer::default`]).
    pub fn pacer(mut self, pacer: IoPacer) -> Self {
        self.pacer = pacer;
        self
    }

    /// Backs the engine with `store`. Defaults to a fresh in-memory store.
    pub fn store(mut self, store: Arc<dyn TableStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Attaches a write-ahead log at `path`.
    pub fn wal(mut self, path: impl Into<PathBuf>) -> Self {
        self.wal = Some(path.into());
        self
    }

    /// Attaches a manifest at `path` (required for
    /// [`OpenOptions::open_or_recover`]).
    pub fn manifest(mut self, path: impl Into<PathBuf>) -> Self {
        self.manifest = Some(path.into());
        self
    }

    /// Sets the [`RecoveryOptions`] used by
    /// [`OpenOptions::open_or_recover`] (default: strict).
    pub fn recovery(mut self, options: RecoveryOptions) -> Self {
        self.recovery = options;
        self
    }

    /// Attaches a fault plan to the WAL and manifest once opening
    /// completes; wrap the table store separately with the same plan.
    pub fn faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Delivers every storage-kernel [`Event`] — from the writer and the
    /// background worker alike — to `sink`.
    pub fn observer(mut self, sink: Arc<dyn Observer>) -> Self {
        self.observer = ObserverHandle::attached(sink);
        self
    }

    /// Makes every flush synchronous (see
    /// [`TieredEngine::with_sync_flush`]).
    pub fn sync_flush(mut self) -> Self {
        self.sync_flush = true;
        self
    }

    /// Routes table reads — the query path *and* the background worker's
    /// compaction reads — through `cache`, a shared decoded-block cache.
    /// The worker's `L0` compactions delete their input tables through the
    /// same wrapped store, so eviction is strict.
    pub fn cache(mut self, cache: Arc<crate::cache::BlockCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    fn store_or_default(
        store: Option<Arc<dyn TableStore>>,
    ) -> Arc<dyn TableStore> {
        store.unwrap_or_else(|| Arc::new(MemStore::new()))
    }

    /// Starts a fresh engine and its compaction worker.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] for degenerate configurations; I/O errors
    /// opening the WAL or manifest.
    pub fn open(self) -> Result<TieredEngine> {
        self.config.validate()?;
        let store = crate::engine::OpenOptions::wrap_cache(
            Self::store_or_default(self.store),
            self.cache,
            &self.observer,
        );
        let mut engine = TieredEngine::build(
            self.config,
            store,
            Version::new(),
            None,
            self.observer,
            self.watermarks,
            self.pacer,
        )?;
        if let Some(path) = self.wal {
            engine = engine.with_wal(path)?;
        }
        if let Some(path) = self.manifest {
            engine = engine.with_manifest(path)?;
        }
        engine.finish_open(self.faults);
        engine.sync_flush = self.sync_flush;
        Ok(engine)
    }

    /// Rebuilds an engine after a crash from its manifest (and WAL, when
    /// configured), returning the [`RecoveryReport`] alongside it.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] when no manifest is configured; in strict
    /// mode any damage, in salvage mode only unrecoverable failures.
    pub fn open_or_recover(self) -> Result<(TieredEngine, RecoveryReport)> {
        let Some(manifest_path) = self.manifest else {
            return Err(Error::InvalidConfig(
                "tiered recovery is manifest-driven: configure \
                 OpenOptions::manifest"
                    .into(),
            ));
        };
        let store = crate::engine::OpenOptions::wrap_cache(
            Self::store_or_default(self.store),
            self.cache,
            &self.observer,
        );
        let (mut engine, report) = TieredEngine::recover_with(
            self.config,
            store,
            manifest_path,
            self.wal,
            self.recovery,
            self.observer,
            self.watermarks,
            self.pacer,
        )?;
        engine.finish_open(self.faults);
        engine.sync_flush = self.sync_flush;
        Ok((engine, report))
    }
}

/// A leveled engine whose flush and compaction run on a background thread.
pub struct TieredEngine {
    config: EngineConfig,
    buffers: PolicyBuffers,
    tx: Option<Sender<Arc<Vec<DataPoint>>>>,
    handle: Option<JoinHandle<Result<()>>>,
    store: Arc<dyn TableStore>,
    state: Arc<Mutex<TierState>>,
    /// Signalled by the worker after each flush batch lands in L0 (and on
    /// worker exit); [`TieredEngine::drain`] waits on it.
    flush_done: Arc<Condvar>,
    wal: Option<Wal>,
    /// Largest generation time handed to the flush pipeline — the in-order
    /// classification pivot (it is "on disk" from the writer's perspective).
    flushed_max: Option<Timestamp>,
    /// Largest generation time appended at all.
    max_gen_seen: Option<Timestamp>,
    user_points: u64,
    /// When set, `append` waits for each flush to reach L0 before returning
    /// (deterministic on-disk state for query experiments).
    sync_flush: bool,
    /// Raised by the worker when it enters the degraded read-only state; the
    /// reason lives in [`TierState::degraded`]. Checked lock-free on the
    /// append fast path.
    degraded: Arc<AtomicBool>,
    /// Writer-side event sink; the worker carries its own clone.
    obs: ObserverHandle,
}

impl TieredEngine {
    /// Starts the engine and its compaction worker.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] on degenerate configurations.
    pub fn new(
        config: EngineConfig,
        store: Arc<dyn TableStore>,
    ) -> Result<Self> {
        config.validate()?;
        Self::build(
            config,
            store,
            Version::new(),
            None,
            ObserverHandle::detached(),
            Watermarks::default(),
            IoPacer::default(),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        config: EngineConfig,
        store: Arc<dyn TableStore>,
        version: Version,
        manifest: Option<Manifest>,
        obs: ObserverHandle,
        watermarks: Watermarks,
        pacer: IoPacer,
    ) -> Result<Self> {
        let pivot = version.last_stored_gen_time();
        let invariants = InvariantChecker::seeded(&version);
        let worker_obs = obs.clone();
        let state = Arc::new(Mutex::new(TierState {
            version,
            metrics: Metrics::default(),
            manifest,
            invariants,
            degraded: None,
            compacting: false,
            admission: AdmissionController::new(watermarks),
            pacer,
            obs: obs.clone(),
        }));
        let degraded = Arc::new(AtomicBool::new(false));
        let (tx, rx) = bounded::<Arc<Vec<DataPoint>>>(CHANNEL_DEPTH);
        let flush_done = Arc::new(Condvar::new());
        let worker_store = Arc::clone(&store);
        let worker_state = Arc::clone(&state);
        let worker_flush_done = Arc::clone(&flush_done);
        let worker_degraded = Arc::clone(&degraded);
        let sstable_points = config.sstable_points;
        let handle = std::thread::Builder::new()
            .name("seplsm-compaction".into())
            .spawn(move || -> Result<()> {
                // Wake any drain() waiter when this thread exits, even on
                // an error path, so waiters fall back to the liveness check.
                struct NotifyOnExit(Arc<Condvar>);
                impl Drop for NotifyOnExit {
                    fn drop(&mut self) {
                        self.0.notify_all();
                    }
                }
                let _exit_guard = NotifyOnExit(Arc::clone(&worker_flush_done));
                for batch in rx {
                    // Encode and store outside the lock; only the version
                    // edit and the (infrequent) compaction hold it.
                    let handed_off = batch.len() as u64;
                    worker_obs
                        .emit(|| Event::FlushStarted { points: handed_off });
                    let mut tables = Vec::new();
                    let mut written = 0u64;
                    let mut bytes = 0u64;
                    let mut flush_failure = None;
                    for chunk in batch.chunks(sstable_points) {
                        match retry_store(&worker_state, &worker_obs, || {
                            worker_store.put(chunk)
                        }) {
                            Ok((meta, size)) => {
                                written += chunk.len() as u64;
                                bytes += size as u64;
                                // A fresh L0 table is consumed by the next
                                // merge-compaction: cache its blocks with
                                // the weaker short-lived priority.
                                worker_store.note_short_lived(meta.id);
                                tables.push(meta);
                            }
                            Err(e) => {
                                flush_failure = Some(e);
                                break;
                            }
                        }
                    }
                    if let Some(e) = flush_failure {
                        // Retries exhausted: enter the degraded read-only
                        // state instead of panicking. The partially stored
                        // batch stays a registered flushing MemTable (still
                        // queryable, still WAL-covered); any chunks that did
                        // land are orphans for recovery-time GC.
                        enter_degraded(
                            &worker_state,
                            &worker_degraded,
                            DegradedOp::FlushWrite,
                            &e,
                        );
                        return Ok(());
                    }
                    let tables_created = tables.len() as u64;
                    let mut state = worker_state.lock();
                    // The batch lands in L0 and stops being a flushing
                    // MemTable in one atomic edit, so queries see the data
                    // in exactly one place.
                    let edits = [VersionEdit::FlushToL0 {
                        batch: Arc::clone(&batch),
                        tables,
                    }];
                    state.version.apply(&edits)?;
                    let TierState {
                        version,
                        metrics,
                        manifest,
                        ..
                    } = &mut *state;
                    if let Some(manifest) = manifest.as_mut() {
                        version.record(manifest, &edits)?;
                    }
                    metrics.disk_points_written += written;
                    metrics.disk_bytes_written += bytes;
                    metrics.tables_created += tables_created;
                    metrics.flushes += 1;
                    worker_obs.emit(|| Event::FlushFinished {
                        tables: tables_created,
                        points: written,
                    });
                    let backlog =
                        state.version.l0().len() >= L0_COMPACT_THRESHOLD;
                    state.check_invariants()?;
                    drop(state);
                    worker_flush_done.notify_all();
                    if backlog {
                        if let Err(e) =
                            retry_store(&worker_state, &worker_obs, || {
                                compact_l0_once(
                                    &worker_state,
                                    &worker_flush_done,
                                    &worker_store,
                                    sstable_points,
                                    &worker_obs,
                                )
                            })
                        {
                            // compact_l0_once only commits its version edit
                            // after every output table is stored, so a
                            // failed attempt leaves state consistent (plus
                            // orphan tables) and a retry restarts from
                            // scratch.
                            enter_degraded(
                                &worker_state,
                                &worker_degraded,
                                DegradedOp::Compaction,
                                &e,
                            );
                            return Ok(());
                        }
                    }
                }
                if let Err(e) = retry_store(&worker_state, &worker_obs, || {
                    compact_l0_once(
                        &worker_state,
                        &worker_flush_done,
                        &worker_store,
                        sstable_points,
                        &worker_obs,
                    )
                }) {
                    enter_degraded(
                        &worker_state,
                        &worker_degraded,
                        DegradedOp::Compaction,
                        &e,
                    );
                    return Ok(());
                }
                worker_state.lock().check_invariants()
            })
            .map_err(|e| Error::Io(std::io::Error::other(e)))?;
        Ok(Self {
            buffers: PolicyBuffers::for_policy(config.policy),
            config,
            tx: Some(tx),
            handle: Some(handle),
            store,
            state,
            flush_done,
            wal: None,
            flushed_max: pivot,
            max_gen_seen: pivot,
            user_points: 0,
            sync_flush: false,
            degraded,
            obs,
        })
    }

    /// Makes every flush synchronous: `append` returns only after the
    /// flushed MemTable is stored as an L0 table. Queries then observe a
    /// deterministic on-disk state (used by the query experiments); the
    /// throughput experiment keeps the default asynchronous pipeline.
    pub fn with_sync_flush(mut self) -> Self {
        self.sync_flush = true;
        self
    }

    /// Attaches a write-ahead log at `path`: points are logged before they
    /// are buffered, and the log is compacted to the not-yet-durable suffix
    /// on every flush hand-off.
    fn with_wal(mut self, path: impl AsRef<Path>) -> Result<Self> {
        let mut wal = Wal::open(path)?;
        wal.attach_observer(self.obs.clone());
        // Initialization, not truncation: this function opened the log
        // itself, and the survivor set is the full volatile snapshot.
        wal.rewrite(&self.buffers.snapshot_sorted())?;
        self.wal = Some(wal);
        Ok(self)
    }

    /// Attaches a manifest at `path`: the worker records every L0 addition
    /// and run replacement, enabling O(metadata) crash recovery through
    /// [`OpenOptions::open_or_recover`].
    fn with_manifest(self, path: impl AsRef<Path>) -> Result<Self> {
        let mut manifest = Manifest::open(path)?;
        manifest.attach_observer(self.obs.clone());
        {
            let mut state = self.state.lock();
            manifest.rewrite_levels(
                state.version.run().tables(),
                state.version.l0(),
            )?;
            state.manifest = Some(manifest);
        }
        Ok(self)
    }

    /// Post-open fixup shared by [`OpenOptions::open`] and
    /// [`OpenOptions::open_or_recover`]: faults attach only after opening
    /// completes so the op schedule starts at the first workload-driven
    /// disk touch.
    fn finish_open(&mut self, faults: Option<Arc<FaultPlan>>) {
        if let Some(plan) = faults {
            plan.set_observer(self.obs.clone());
            self.attach_faults(&plan);
        }
    }

    /// Rebuilds an engine after a crash: the manifest restores the run and
    /// L0 tables, the WAL (if any) replays the buffered tail through the
    /// normal append path. Replayed points re-enter the user-point
    /// counters. Points that were already flushed but still in the
    /// conservative WAL are deduplicated by the merge pipeline.
    ///
    /// Under [`RecoveryMode::Salvage`] the longest valid prefix of a
    /// damaged manifest or WAL is used, unreadable tables are quarantined
    /// (run tables additionally lose overlap clashes to their newer
    /// rewrites; L0 tables may overlap by design and are only probed), and
    /// the returned [`RecoveryReport`] names every loss.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn recover_with(
        config: EngineConfig,
        store: Arc<dyn TableStore>,
        manifest_path: PathBuf,
        wal_path: Option<PathBuf>,
        options: RecoveryOptions,
        obs: ObserverHandle,
        watermarks: Watermarks,
        pacer: IoPacer,
    ) -> Result<(Self, RecoveryReport)> {
        config.validate()?;
        let mut report = RecoveryReport::default();
        let (run_metas, l0_metas) = match options.mode {
            RecoveryMode::Strict => Manifest::replay_levels(&manifest_path)?,
            RecoveryMode::Salvage => {
                let (run_metas, l0_metas, dropped) =
                    Manifest::replay_levels_salvage(&manifest_path)?;
                report.manifest_records_dropped = dropped;
                let run_metas = recovery::salvage_tables(
                    store.as_ref(),
                    run_metas,
                    &mut report,
                    &obs,
                )?;
                let l0_metas = recovery::probe_tables(
                    store.as_ref(),
                    l0_metas,
                    &mut report,
                    &obs,
                )?;
                (run_metas, l0_metas)
            }
        };
        let replayed_tables = (run_metas.len() + l0_metas.len()) as u64;
        obs.emit(|| Event::RecoveryStep {
            step: RecoveryStepKind::ManifestReplayed,
            items: replayed_tables,
        });
        let run = Run::from_tables(run_metas)?;
        let version = Version::from_levels(run, l0_metas);
        let mut engine =
            Self::build(config, store, version, None, obs, watermarks, pacer)?;
        // Re-attach the manifest first so replay-triggered flushes are
        // recorded; re-seeding makes it authoritative for the rebuilt state.
        let mut manifest = Manifest::open(&manifest_path)?;
        manifest.attach_observer(engine.obs.clone());
        {
            let mut state = engine.state.lock();
            manifest.rewrite_levels(
                state.version.run().tables(),
                state.version.l0(),
            )?;
            state.manifest = Some(manifest);
        }
        if let Some(path) = wal_path {
            let replayed = match options.mode {
                RecoveryMode::Strict => Wal::replay(&path)?,
                RecoveryMode::Salvage => {
                    let (points, dropped) = Wal::replay_salvage(&path)?;
                    report.wal_records_dropped += dropped;
                    points
                }
            };
            engine.obs.emit(|| Event::RecoveryStep {
                step: RecoveryStepKind::WalReplayed,
                items: replayed.len() as u64,
            });
            for p in &replayed {
                engine.append_internal(*p, false)?;
            }
            let mut wal = Wal::open(&path)?;
            wal.attach_observer(engine.obs.clone());
            engine.wal = Some(wal);
            engine.compact_wal()?;
        }
        if options.gc_orphans {
            // Let replay-triggered flushes land first so the live set is
            // complete; the worker is then idle, so the sweep cannot race a
            // concurrent compaction.
            engine.drain();
            let live = engine.live_table_ids();
            recovery::gc_orphans(
                engine.store.as_ref(),
                &live,
                &mut report,
                &engine.obs,
            )?;
        }
        Ok((engine, report))
    }

    /// Ids of every table the current version references (run + L0).
    fn live_table_ids(&self) -> HashSet<SsTableId> {
        let state = self.state.lock();
        state
            .version
            .run()
            .tables()
            .iter()
            .map(|m| m.id)
            .chain(state.version.l0().iter().map(|m| m.id))
            .collect()
    }

    /// Routes every subsequent WAL and manifest write through `plan`'s
    /// fault schedule. The table store is wrapped separately (see
    /// [`FaultStore`](crate::fault::FaultStore)) — share one plan across
    /// both so crash schedules get a single global op numbering.
    pub(crate) fn attach_faults(&mut self, plan: &Arc<FaultPlan>) {
        if let Some(wal) = self.wal.as_mut() {
            wal.attach_faults(Arc::clone(plan));
        }
        if let Some(manifest) = self.state.lock().manifest.as_mut() {
            manifest.attach_faults(Arc::clone(plan));
        }
    }

    /// Audits the full version (structural invariants plus a decode probe of
    /// every referenced table) against the store. Runs in release builds;
    /// used as the post-recovery acceptance check.
    ///
    /// # Errors
    /// [`Error::Corrupt`] describing the first violation.
    pub fn check_integrity(&self) -> Result<()> {
        // Audit a cloned snapshot so the state lock is not held across the
        // store probes; the audit sees one consistent version either way.
        let version = self.state.lock().version.clone();
        invariants::audit_version_against_store(&version, self.store.as_ref())
    }

    /// The typed degraded (read-only) state, if the engine is in it. Set by
    /// the background worker once its backed-off retries
    /// ([`crate::admission::DEFAULT_RETRY_ATTEMPTS`]) at a store operation
    /// are exhausted; once set, writes fail with [`Error::Degraded`] while
    /// queries keep serving the surviving state.
    pub fn degraded_state(&self) -> Option<DegradedState> {
        if !self.degraded.load(Ordering::Acquire) {
            return None;
        }
        self.state.lock().degraded.clone()
    }

    /// [`TieredEngine::degraded_state`] rendered as the legacy reason
    /// string.
    pub fn degraded_reason(&self) -> Option<String> {
        self.degraded_state().map(|s| s.to_string())
    }

    fn degraded_error(&self) -> Option<Error> {
        if !self.degraded.load(Ordering::Acquire) {
            return None;
        }
        let reason = match self.state.lock().degraded.clone() {
            Some(state) => state.to_string(),
            None => "background storage failure".to_string(),
        };
        Some(Error::Degraded(reason))
    }

    fn send(&mut self, points: Vec<DataPoint>) -> Result<()> {
        if points.is_empty() {
            return Ok(());
        }
        if let Some(e) = self.degraded_error() {
            return Err(e);
        }
        let sealed = points.len() as u64;
        self.obs.emit(|| Event::MemtableSealed { points: sealed });
        self.flushed_max = Some(
            self.flushed_max
                .map_or(points[points.len() - 1].gen_time, |m| {
                    m.max(points[points.len() - 1].gen_time)
                }),
        );
        let batch = Arc::new(points);
        // Register as a flushing MemTable *before* handing it to the worker
        // so it never becomes invisible to queries; the WAL keeps covering it
        // until a later hand-off finds it durably retired.
        self.state
            .lock()
            .version
            .apply(&[VersionEdit::RegisterFlushing(Arc::clone(&batch))])?;
        self.compact_wal()?;
        let Some(tx) = self.tx.as_ref() else {
            return Err(Error::Io(std::io::Error::other(
                "flush after engine finished",
            )));
        };
        // Try the fast path first so a full queue is observable as a
        // backpressure stall before the writer blocks on it.
        let batch = match tx.try_send(batch) {
            Ok(()) => return Ok(()),
            Err(TrySendError::Full(batch)) => {
                self.obs.emit(|| Event::BackpressureStall);
                batch
            }
            Err(TrySendError::Disconnected(batch)) => batch,
        };
        tx.send(batch).map_err(|_| {
            // A dead worker almost always died into the degraded state;
            // surface that reason rather than a generic channel error.
            match self.degraded_error() {
                Some(e) => e,
                None => Error::Io(std::io::Error::other(
                    "compaction worker terminated",
                )),
            }
        })
    }

    /// Rewrites the WAL to the points that may not be durable yet: every
    /// batch still in the flush pipeline plus the buffered points.
    fn compact_wal(&mut self) -> Result<()> {
        let Some(wal) = self.wal.as_mut() else {
            return Ok(());
        };
        let mut survivors: Vec<DataPoint> = Vec::new();
        {
            let state = self.state.lock();
            for batch in state.version.flushing() {
                survivors.extend(batch.iter().copied());
            }
        }
        survivors.extend(self.buffers.snapshot_sorted());
        wal.rewrite(&survivors)
    }

    /// Flushes and fsyncs the write-ahead log (no-op without a WAL).
    ///
    /// # Errors
    /// I/O failures.
    pub fn sync_wal(&mut self) -> Result<()> {
        if let Some(wal) = self.wal.as_mut() {
            wal.sync()?;
        }
        Ok(())
    }

    /// Writes one point, reporting how admission treated it: `Admitted`
    /// below the slowdown watermark, `Delayed { ticks }` between slowdown
    /// and stop, `Stalled` when the append had to wait out a write stall
    /// (the point is still accepted once the backlog drains — durability
    /// is unchanged, only the outcome is typed). Also blocks if the flush
    /// queue is full.
    ///
    /// # Errors
    /// Worker-side failures surface here once the queue is gone.
    pub fn append(&mut self, p: DataPoint) -> Result<AdmissionOutcome> {
        self.append_internal(p, true)
    }

    /// Consults the admission controller against the combined L0 +
    /// pending-flush depth, blocking while the stop watermark is exceeded.
    /// A stalled writer parks on `flush_done` and re-consults on every
    /// wakeup; hysteresis ends the stall only once depth falls below the
    /// resume (slowdown) watermark. When the worker has nothing queued but
    /// L0 is still over the watermark, the writer merges L0 itself, so
    /// stalls always end even with an idle worker.
    fn admit(&mut self) -> Result<AdmissionOutcome> {
        let mut stalled_here = false;
        let mut state = self.state.lock();
        loop {
            let depth = AdmissionDepth {
                l0_tables: state.version.l0().len(),
                pending_flushes: state.version.flushing().len(),
            };
            let decision = state.admission.admit(depth);
            match decision.transition {
                Some(StallTransition::Began) => {
                    state.metrics.write_stalls += 1;
                    let d = depth.combined() as u64;
                    state.obs.emit(|| Event::WriteStallBegin { depth: d });
                }
                Some(StallTransition::Ended { ticks }) => {
                    state.metrics.stall_ticks += ticks;
                    state.obs.emit(|| Event::WriteStallEnd { ticks });
                }
                None => {}
            }
            match decision.outcome {
                AdmissionOutcome::Admitted => {
                    // An append that waited out a stall reports it.
                    return Ok(if stalled_here {
                        AdmissionOutcome::Stalled
                    } else {
                        AdmissionOutcome::Admitted
                    });
                }
                AdmissionOutcome::Delayed { ticks } => {
                    state.metrics.delayed_appends += 1;
                    state.metrics.stall_ticks += ticks;
                    state.obs.emit(|| Event::AdmissionDelayed { ticks });
                    return Ok(AdmissionOutcome::Delayed { ticks });
                }
                AdmissionOutcome::Stalled => {
                    stalled_here = true;
                    if state.degraded.is_some() {
                        // A degraded worker will never drain the backlog:
                        // close the episode and surface the typed error.
                        if let Some(ticks) = state.admission.interrupt_stall() {
                            state.metrics.stall_ticks += ticks;
                            state.obs.emit(|| Event::WriteStallEnd { ticks });
                        }
                        let reason = match state.degraded.clone() {
                            Some(s) => s.to_string(),
                            None => "background storage failure".to_string(),
                        };
                        return Err(Error::Degraded(reason));
                    }
                    if state.version.flushing().is_empty() && !state.compacting
                    {
                        // Idle worker, over-watermark L0: drain it from
                        // this thread (compact_l0_once locks internally).
                        drop(state);
                        compact_l0_once(
                            &self.state,
                            &self.flush_done,
                            &self.store,
                            self.config.sstable_points,
                            &self.obs,
                        )?;
                        state = self.state.lock();
                        continue;
                    }
                    if self.handle.as_ref().is_none_or(JoinHandle::is_finished)
                    {
                        // Worker gone without degrading (shutdown race):
                        // nothing will retire the backlog, so don't wait
                        // for it.
                        if let Some(ticks) = state.admission.interrupt_stall() {
                            state.metrics.stall_ticks += ticks;
                            state.obs.emit(|| Event::WriteStallEnd { ticks });
                        }
                        return Ok(AdmissionOutcome::Stalled);
                    }
                    let (guard, _timed_out) = self
                        .flush_done
                        .wait_timeout(state, Duration::from_millis(10));
                    state = guard;
                }
            }
        }
    }

    fn append_internal(
        &mut self,
        p: DataPoint,
        log_wal: bool,
    ) -> Result<AdmissionOutcome> {
        if let Some(e) = self.degraded_error() {
            return Err(e);
        }
        let outcome = self.admit()?;
        if log_wal {
            if let Some(wal) = self.wal.as_mut() {
                wal.append(&p)?;
            }
        }
        self.user_points += 1;
        self.max_gen_seen =
            Some(self.max_gen_seen.map_or(p.gen_time, |m| m.max(p.gen_time)));
        let pivot = self.flushed_max;
        self.obs.emit(|| Event::PointClassified {
            in_order: pivot.is_none_or(|pv| p.gen_time > pv),
        });
        let trigger = self.buffers.insert(p, self.flushed_max);
        if trigger != FlushTrigger::None {
            let points = self.buffers.take(trigger);
            self.send(points)?;
            if self.sync_flush {
                self.drain();
            }
        }
        Ok(outcome)
    }

    /// Switches the buffering policy mid-stream through the shared
    /// [`PolicyBuffers::migrate`] path: buffered points are re-classified
    /// against the current pivot and re-buffered, flushing any set that
    /// fills. Does not count as new user traffic.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] for degenerate policies; flush hand-off
    /// failures.
    pub fn set_policy(&mut self, policy: Policy) -> Result<()> {
        if policy.total_capacity() == 0 {
            return Err(Error::InvalidConfig(
                "memory budget must be >= 1 point".into(),
            ));
        }
        if policy == self.config.policy {
            return Ok(());
        }
        let buffered = self.buffers.migrate(policy);
        self.config.policy = policy;
        for p in buffered {
            let trigger = self.buffers.insert(p, self.flushed_max);
            if trigger != FlushTrigger::None {
                let points = self.buffers.take(trigger);
                self.send(points)?;
            }
        }
        self.compact_wal()
    }

    /// The active buffering policy.
    pub fn policy(&self) -> Policy {
        self.config.policy
    }

    /// Number of points the user has written.
    pub fn user_points(&self) -> u64 {
        self.user_points
    }

    /// Largest generation time appended so far.
    pub fn max_gen_time(&self) -> Option<Timestamp> {
        self.max_gen_seen
    }

    /// Snapshot of the unified kernel metrics (worker-side counters; the
    /// writer's `user_points` is folded in).
    pub fn metrics(&self) -> Metrics {
        let mut metrics = self.state.lock().metrics.clone();
        metrics.user_points = self.user_points;
        metrics
    }

    /// Snapshot of the admission controller's counters: admitted/delayed
    /// appends, stall episodes and ticks, and the peak combined
    /// L0 + pending-flush depth seen at admission time.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.state.lock().admission.stats()
    }

    /// Snapshot of the compaction I/O pacer's counters.
    pub fn pacer_stats(&self) -> PacerStats {
        self.state.lock().pacer.stats()
    }

    /// Range query over generation time, merging MemTables, every
    /// overlapping L0 file and the run.
    ///
    /// Like IoTDB's chunk-granularity reads, overlapping files are read in
    /// full; `QueryStats` counts the cost. Results reflect whatever the
    /// background worker has flushed/compacted at call time.
    ///
    /// # Errors
    /// Storage failures.
    pub fn query(
        &self,
        range: TimeRange,
    ) -> Result<(Vec<DataPoint>, QueryStats)> {
        // The version is snapshotted under the lock but the table reads run
        // without it, so a concurrent compaction can retire a snapshotted
        // table mid-read. A read error against a stale snapshot is not a
        // failure — retry against a fresh one; a bounded number of retries
        // keeps a pathological compaction storm from starving the reader.
        const SNAPSHOT_ATTEMPTS: usize = 8;
        let mut attempt = 0;
        loop {
            attempt += 1;
            let snapshot = self.query_snapshot(range);
            match self.read_query_snapshot(range, &snapshot) {
                Ok(out) => return Ok(out),
                Err(e) => {
                    if attempt >= SNAPSHOT_ATTEMPTS
                        || !self.snapshot_is_stale(&snapshot)
                    {
                        return Err(e);
                    }
                }
            }
        }
    }

    /// Captures, under one lock acquisition, every source a query needs:
    /// the flushing batches plus the overlapping L0 (newest first) and run
    /// table metadata.
    fn query_snapshot(&self, range: TimeRange) -> QuerySnapshot {
        let state = self.state.lock();
        let flushing = state.version.flushing().to_vec();
        let l0: Vec<SsTableMeta> = state
            .version
            .l0()
            .iter()
            .rev()
            .filter(|meta| meta.range.overlaps(&range))
            .copied()
            .collect();
        let run = state.version.run().overlapping(range);
        QuerySnapshot { flushing, l0, run }
    }

    /// `true` when any table of `snapshot` has left the current version —
    /// i.e. a compaction committed since the snapshot was taken, which is
    /// the benign explanation for a read error.
    fn snapshot_is_stale(&self, snapshot: &QuerySnapshot) -> bool {
        let state = self.state.lock();
        let live: HashSet<SsTableId> = state
            .version
            .l0()
            .iter()
            .chain(state.version.run().tables())
            .map(|meta| meta.id)
            .collect();
        drop(state);
        snapshot
            .l0
            .iter()
            .chain(snapshot.run.iter())
            .any(|meta| !live.contains(&meta.id))
    }

    /// Reads and merges every source of one [`QuerySnapshot`]; no lock is
    /// held, so a table retired by a concurrent compaction surfaces as a
    /// store error (classified by [`TieredEngine::snapshot_is_stale`]).
    fn read_query_snapshot(
        &self,
        range: TimeRange,
        snapshot: &QuerySnapshot,
    ) -> Result<(Vec<DataPoint>, QueryStats)> {
        let mut stats = QueryStats::default();
        let mut sources = self.buffers.scan_sources(range);
        stats.mem_points_scanned +=
            sources.iter().map(|s| s.len() as u64).sum::<u64>();
        for batch in snapshot.flushing.iter().rev() {
            let hits: Vec<DataPoint> = batch
                .iter()
                .copied()
                .filter(|p| range.contains(p.gen_time))
                .collect();
            stats.mem_points_scanned += hits.len() as u64;
            sources.push(hits);
        }
        for meta in snapshot.l0.iter().chain(snapshot.run.iter()) {
            // Pruning metadata (v3 filter block) can clear a table without
            // reading its data blocks; `Some(false)` is definitive.
            if self.store.may_contain(meta.id, range)? == Some(false) {
                stats.tables_pruned += 1;
                self.obs.emit(|| Event::TablePruned { table: meta.id.0 });
                continue;
            }
            let table_points = self.store.get(meta.id)?;
            stats.tables_read += 1;
            stats.disk_points_scanned += table_points.len() as u64;
            sources.push(
                table_points
                    .into_iter()
                    .filter(|p| range.contains(p.gen_time))
                    .collect(),
            );
        }
        let merged = merge_sorted(sources);
        stats.points_returned = merged.len() as u64;
        Ok((merged, stats))
    }

    /// Snapshot of the on-disk table layout: `(level, range, points)` per
    /// table, L0 first (flush order), then the run. Used by the Fig. 15
    /// visualisation of SSTable spans.
    pub fn table_layout(&self) -> Vec<(&'static str, TimeRange, u32)> {
        let state = self.state.lock();
        let mut out = Vec::with_capacity(
            state.version.l0().len() + state.version.run().len(),
        );
        for meta in state.version.l0() {
            out.push(("L0", meta.range, meta.count));
        }
        for meta in state.version.run().tables() {
            out.push(("run", meta.range, meta.count));
        }
        out
    }

    /// Waits (best effort) for the background worker to drain the flush
    /// queue, leaving whatever L0 backlog naturally remains — the state the
    /// paper's historical-query experiment measures.
    pub fn drain(&mut self) {
        let mut state = self.state.lock();
        while !state.version.flushing().is_empty() {
            if self.handle.as_ref().is_none_or(JoinHandle::is_finished) {
                // Worker gone (finished or crashed): nothing will ever
                // retire the remaining batches, so don't wait for them.
                return;
            }
            // The timeout only covers the unlucky interleaving where the
            // worker exits between the liveness check and the wait; the
            // worker signals after every batch and on exit.
            let (guard, _timed_out) = self
                .flush_done
                .wait_timeout(state, Duration::from_millis(100));
            state = guard;
        }
    }

    /// Blocks until the flush queue is drained *and* L0 is merged into the
    /// run (for deterministic post-ingest queries).
    ///
    /// # Errors
    /// Storage failures from the forced compaction.
    pub fn quiesce(&mut self) -> Result<()> {
        self.drain();
        compact_l0_once(
            &self.state,
            &self.flush_done,
            &self.store,
            self.config.sstable_points,
            &self.obs,
        )?;
        self.state.lock().check_invariants()
    }

    /// Flushes buffers, stops the worker, and returns the final report.
    ///
    /// # Errors
    /// Worker-side storage failures.
    pub fn finish(mut self) -> Result<TieredReport> {
        let drained = self.buffers.drain_all();
        self.send(drained.in_order)?;
        self.send(drained.merging)?;
        drop(self.tx.take());
        let Some(handle) = self.handle.take() else {
            return Err(Error::Io(std::io::Error::other(
                "engine already finished",
            )));
        };
        handle.join().map_err(|_| {
            Error::Io(std::io::Error::other("worker panicked"))
        })??;
        // The worker reports retry exhaustion through the degraded state
        // rather than its join result: surface it as the typed error.
        if let Some(e) = self.degraded_error() {
            return Err(e);
        }

        // Everything is durably in the run now; the WAL has nothing to cover.
        if let Some(wal) = self.wal.as_mut() {
            wal.rewrite(&[])?;
        }

        // Snapshot the report inputs under a short lock, then read the run
        // tables with the lock released (the worker is already joined, but
        // the discipline is uniform: no guard across store I/O).
        let (metrics, run_metas) = {
            let mut state = self.state.lock();
            state.metrics.user_points = self.user_points;
            (state.metrics.clone(), state.version.run().tables().to_vec())
        };
        let mut sources = Vec::with_capacity(run_metas.len());
        for meta in &run_metas {
            sources.push(self.store.get(meta.id)?);
        }
        let points = merge_sorted(sources);
        Ok(TieredReport::from_metrics(
            &metrics,
            run_metas.len(),
            points,
        ))
    }
}

impl Drop for TieredEngine {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn engine(config: EngineConfig) -> TieredEngine {
        TieredEngine::new(config, Arc::new(MemStore::new())).expect("engine")
    }

    #[test]
    fn preserves_all_points_conventional() {
        let mut e = engine(
            EngineConfig::new(Policy::conventional(16)).with_sstable_points(8),
        );
        let mut tgs: Vec<i64> = (0..500).map(|i| (i * 37) % 500).collect();
        tgs.sort_unstable();
        tgs.dedup();
        let n = tgs.len();
        for &tg in &tgs {
            e.append(DataPoint::new(tg, tg + 3, tg as f64))
                .expect("append");
        }
        let report = e.finish().expect("finish");
        assert_eq!(report.points.len(), n);
        assert!(report
            .points
            .windows(2)
            .all(|w| w[0].gen_time < w[1].gen_time));
        assert_eq!(report.user_points, n as u64);
        assert!(report.write_amplification() >= 1.0 - 1e-9);
    }

    #[test]
    fn preserves_all_points_separation_with_stragglers() {
        let mut e = engine(
            EngineConfig::new(Policy::separation(16, 8).expect("policy"))
                .with_sstable_points(8),
        );
        let mut expected = 0usize;
        for i in 0..400i64 {
            e.append(DataPoint::new(i * 10, i * 10, 0.0))
                .expect("append");
            expected += 1;
            if i % 5 == 4 {
                e.append(DataPoint::new(i * 10 - 35, i * 10, 1.0))
                    .expect("append straggler");
                expected += 1;
            }
        }
        let report = e.finish().expect("finish");
        assert_eq!(report.points.len(), expected);
        assert!(report
            .points
            .windows(2)
            .all(|w| w[0].gen_time < w[1].gen_time));
        assert!(report.compactions > 0);
    }

    #[test]
    fn duplicate_timestamps_keep_latest_write() {
        let mut e = engine(
            EngineConfig::new(Policy::conventional(4)).with_sstable_points(4),
        );
        for i in 0..8i64 {
            e.append(DataPoint::new(i, i, 0.0)).expect("append");
        }
        e.append(DataPoint::new(3, 100, 42.0)).expect("overwrite");
        for i in 8..11i64 {
            e.append(DataPoint::new(i, i, 0.0)).expect("append");
        }
        let report = e.finish().expect("finish");
        let p3 = report
            .points
            .iter()
            .find(|p| p.gen_time == 3)
            .expect("present");
        assert_eq!(p3.value, 42.0);
        assert_eq!(report.points.len(), 11);
    }

    #[test]
    fn queries_see_buffered_flushed_and_compacted_data() {
        let mut e = engine(
            EngineConfig::new(Policy::conventional(8)).with_sstable_points(8),
        );
        for i in 0..100i64 {
            e.append(DataPoint::new(i * 10, i * 10, i as f64))
                .expect("append");
        }
        e.quiesce().expect("quiesce");
        // 96 points flushed (12 tables → compacted), 4 still in memory.
        let (pts, stats) = e.query(TimeRange::new(0, 2_000)).expect("query");
        assert_eq!(pts.len(), 100); // gen times 0..990: all 100
        assert!(stats.tables_read > 0);
        let (tail, _) = e.query(TimeRange::new(950, 990)).expect("tail query");
        assert_eq!(tail.len(), 5);
    }

    #[test]
    fn cached_tiered_engine_invalidates_and_serves_warm_queries() {
        let cache = crate::cache::BlockCache::with_capacity(64 * 1024);
        let mut e = OpenOptions::new(
            EngineConfig::new(Policy::conventional(8)).with_sstable_points(8),
        )
        .cache(Arc::clone(&cache))
        .open()
        .expect("open");
        for i in 0..100i64 {
            e.append(DataPoint::new(i * 10, i * 10, i as f64))
                .expect("append");
        }
        e.quiesce().expect("quiesce");
        let (cold, _) = e.query(TimeRange::new(0, 2_000)).expect("cold");
        let (warm, _) = e.query(TimeRange::new(0, 2_000)).expect("warm");
        assert_eq!(cold, warm);
        assert_eq!(warm.len(), 100);
        let stats = cache.stats();
        assert!(stats.hits > 0, "warm query must hit the cache: {stats:?}");
        assert!(
            stats.invalidated_blocks > 0,
            "background L0 compactions must invalidate consumed tables: \
             {stats:?}"
        );
        let report = e.finish().expect("finish");
        assert_eq!(report.points.len(), 100);
    }

    #[test]
    fn straggler_widens_pi_c_files_but_not_pi_s() {
        // The Fig. 15 mechanism: one straggler inside a pi_c flush gives the
        // whole file a huge range, so recent-window queries must read it.
        let run = |policy: Policy| -> (usize, u64) {
            let mut e =
                engine(EngineConfig::new(policy).with_sstable_points(64));
            // 64 in-order points, then a straggler, then more in-order.
            for i in 1..=640i64 {
                e.append(DataPoint::new(i * 10, i * 10, 0.0))
                    .expect("append");
                if i == 320 {
                    e.append(DataPoint::new(5, i * 10, -1.0))
                        .expect("straggler");
                }
            }
            // Query a recent window before any compaction touches it.
            let (_, stats) =
                e.query(TimeRange::new(6_000, 6_400)).expect("query");
            (stats.tables_read as usize, stats.disk_points_scanned)
        };
        let (_, scanned_c) = run(Policy::conventional(64));
        let (_, scanned_s) = run(Policy::separation(64, 32).expect("policy"));
        assert!(
            scanned_c >= scanned_s,
            "pi_c should scan at least as much: c={scanned_c}, s={scanned_s}"
        );
    }

    #[test]
    fn in_flight_flushes_stay_queryable() {
        // A batch sitting in the flush queue must still be visible: the
        // writer registers it as a flushing MemTable before sending.
        let mut e = engine(
            EngineConfig::new(Policy::conventional(8)).with_sstable_points(8),
        );
        for i in 0..64i64 {
            e.append(DataPoint::new(i * 10, i * 10, i as f64))
                .expect("append");
        }
        // Query immediately, racing the worker: every point must be found.
        let (pts, _) = e.query(TimeRange::new(0, 630)).expect("query");
        assert_eq!(pts.len(), 64, "points lost while flushing");
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.value, i as f64);
        }
    }

    #[test]
    fn empty_engine_finishes_cleanly() {
        let e = engine(EngineConfig::new(Policy::conventional(8)));
        let report = e.finish().expect("finish");
        assert_eq!(report.user_points, 0);
        assert!(report.points.is_empty());
        assert_eq!(report.write_amplification(), 0.0);
    }

    #[test]
    fn drop_without_finish_does_not_hang() {
        let mut e = engine(
            EngineConfig::new(Policy::conventional(4)).with_sstable_points(4),
        );
        for i in 0..100i64 {
            e.append(DataPoint::new(i, i, 0.0)).expect("append");
        }
        drop(e);
    }

    #[test]
    fn transient_store_failure_is_absorbed_by_retry() {
        use crate::fault::{Fault, FaultStore};
        // Op 2 is a flush-path store write; FailOnce injects a single
        // failure there and the worker's bounded retry must absorb it.
        let plan = FaultPlan::new(7, Fault::FailOnce { at: 2 });
        let store =
            Arc::new(FaultStore::new(MemStore::new(), Arc::clone(&plan)));
        let mut e = TieredEngine::new(
            EngineConfig::new(Policy::conventional(4)).with_sstable_points(4),
            store,
        )
        .expect("engine")
        .with_sync_flush();
        for i in 0..32i64 {
            e.append(DataPoint::new(i, i, i as f64)).expect("append");
        }
        assert!(e.degraded_reason().is_none());
        let report = e.finish().expect("one transient failure is retried");
        assert_eq!(report.points.len(), 32);
        assert!(plan.injected_failures() >= 1, "fault must have fired");
    }

    #[test]
    fn persistent_store_failure_degrades_to_read_only() {
        use crate::fault::{Fault, FaultStore};
        let plan = FaultPlan::new(7, Fault::FailPersistent { from: 0 });
        let store = Arc::new(FaultStore::new(MemStore::new(), plan));
        let mut e = TieredEngine::new(
            EngineConfig::new(Policy::conventional(4)).with_sstable_points(4),
            store,
        )
        .expect("engine");
        let mut appended = 0i64;
        let degraded = loop {
            if appended >= 10_000 {
                break false;
            }
            match e.append(DataPoint::new(appended, appended, 0.0)) {
                Ok(_) => appended += 1,
                Err(Error::Degraded(reason)) => {
                    assert!(!reason.is_empty());
                    break true;
                }
                Err(other) => panic!("expected Degraded, got {other}"),
            }
        };
        assert!(degraded, "persistent faults must degrade the engine");
        assert!(e.degraded_reason().is_some());
        // Reads still serve the surviving (buffered + flushing) data. The
        // point whose append *failed* may legally survive too: if it
        // triggered the hand-off, the batch was registered as a flushing
        // MemTable before the dead worker was discovered (the same
        // may-resurrect-the-last-attempted-point window the crash-schedule
        // contract allows).
        let (pts, _) =
            e.query(TimeRange::new(0, 20_000)).expect("degraded query");
        assert!(
            pts.len() == appended as usize
                || pts.len() == appended as usize + 1,
            "no accepted point lost (appended {appended}, saw {})",
            pts.len()
        );
        assert!(matches!(e.finish(), Err(Error::Degraded(_))));
    }

    #[test]
    fn tight_watermarks_stall_and_resume() {
        // sync_flush drains the queue after every hand-off, so depth is L0
        // alone and fully deterministic: each 4-point seal adds one L0
        // table, so with stop=2 the third seal's successor append must
        // stall, self-compact L0 into the run, and resume.
        let mut e = OpenOptions::new(
            EngineConfig::new(Policy::conventional(4)).with_sstable_points(4),
        )
        .admission(Watermarks::new(1, 2).expect("watermarks"))
        .sync_flush()
        .open()
        .expect("open");
        let mut outcomes = Vec::new();
        for i in 0..64i64 {
            outcomes.push(e.append(DataPoint::new(i, i, 0.0)).expect("append"));
        }
        let stats = e.admission_stats();
        assert!(stats.stalls >= 1, "stop watermark never reached: {stats:?}");
        assert!(stats.stall_ticks >= stats.stalls);
        assert!(!stats.currently_stalled, "stall must have ended");
        assert!(
            stats.max_depth <= 2,
            "depth exceeded the stop watermark: {stats:?}"
        );
        assert!(outcomes
            .iter()
            .any(|o| matches!(o, AdmissionOutcome::Stalled)));
        let metrics = e.metrics();
        assert_eq!(metrics.write_stalls, stats.stalls);
        assert_eq!(metrics.stall_ticks, stats.stall_ticks);
        let report = e.finish().expect("finish");
        assert_eq!(report.points.len(), 64, "stalled appends must not lose");
    }

    #[test]
    fn delayed_outcomes_between_watermarks() {
        let mut e = OpenOptions::new(
            EngineConfig::new(Policy::conventional(4)).with_sstable_points(4),
        )
        .admission(Watermarks::new(1, 8).expect("watermarks"))
        .sync_flush()
        .open()
        .expect("open");
        let mut delayed = 0u64;
        for i in 0..32i64 {
            if let AdmissionOutcome::Delayed { ticks } =
                e.append(DataPoint::new(i, i, 0.0)).expect("append")
            {
                assert!(ticks >= 1);
                delayed += 1;
            }
        }
        assert!(delayed >= 1, "slowdown watermark never crossed");
        assert_eq!(e.admission_stats().delayed, delayed);
        assert_eq!(e.metrics().delayed_appends, delayed);
        let report = e.finish().expect("finish");
        assert_eq!(report.points.len(), 32);
    }

    #[test]
    fn starved_pacer_charges_ticks_to_compactions() {
        // A 1-token bucket makes every compaction after the first wait for
        // a refill, so the paced-ticks counter must move.
        let mut e = OpenOptions::new(
            EngineConfig::new(Policy::conventional(4)).with_sstable_points(4),
        )
        .pacer(IoPacer::new(1, 1).expect("pacer"))
        .sync_flush()
        .open()
        .expect("open");
        for i in 0..64i64 {
            e.append(DataPoint::new(i, i, 0.0)).expect("append");
        }
        e.quiesce().expect("quiesce");
        // In-order L0→run merges commit as flushes (nothing is rewritten),
        // so the pacer counters are the evidence the merges were paced.
        assert!(
            e.metrics().paced_ticks >= 1,
            "starved pacer never charged: {:?}",
            e.metrics()
        );
        let pacer = e.pacer_stats();
        assert!(pacer.waits >= 1, "{pacer:?}");
        assert!(pacer.granted >= 2, "{pacer:?}");
        let report = e.finish().expect("finish");
        assert_eq!(report.points.len(), 64);
    }

    #[test]
    fn transient_failures_back_off_before_retrying() {
        use crate::fault::{Fault, FaultStore};
        use crate::obs::AggregateSink;
        let plan = FaultPlan::new(7, Fault::FailOnce { at: 2 });
        let store =
            Arc::new(FaultStore::new(MemStore::new(), Arc::clone(&plan)));
        let sink = AggregateSink::with_logical_clock();
        let mut e = OpenOptions::new(
            EngineConfig::new(Policy::conventional(4)).with_sstable_points(4),
        )
        .store(store)
        .observer(Arc::clone(&sink) as Arc<dyn Observer>)
        .sync_flush()
        .open()
        .expect("open");
        for i in 0..32i64 {
            e.append(DataPoint::new(i, i, i as f64)).expect("append");
        }
        assert!(e.metrics().retry_backoffs >= 1, "{:?}", e.metrics());
        let agg = sink.report();
        let backoff_kind = Event::RetryBackoff {
            attempt: 2,
            ticks: 1,
        }
        .kind();
        assert!(
            agg.counts[backoff_kind] >= 1,
            "RetryBackoff event not observed"
        );
        assert!(agg.backoff_ticks >= 1);
        let report = e.finish().expect("finish");
        assert_eq!(report.points.len(), 32);
        assert!(plan.injected_failures() >= 1);
    }

    #[test]
    fn set_policy_reroutes_buffered_points() {
        let mut e = engine(
            EngineConfig::new(Policy::conventional(64)).with_sstable_points(8),
        );
        for i in 0..10i64 {
            e.append(DataPoint::new(i * 10, i * 10, 0.0))
                .expect("append");
        }
        e.set_policy(Policy::separation(64, 32).expect("policy"))
            .expect("switch");
        assert_eq!(e.user_points(), 10, "migration is not user traffic");
        for i in 10..20i64 {
            e.append(DataPoint::new(i * 10, i * 10, 0.0))
                .expect("append");
        }
        let report = e.finish().expect("finish");
        assert_eq!(report.points.len(), 20);
        assert!(report
            .points
            .windows(2)
            .all(|w| w[0].gen_time < w[1].gen_time));
    }
}
