//! The two-level engine with background compaction — the production write
//! path of Apache IoTDB described in §V-C, used by the throughput experiment
//! (Table III) and by the query experiments (Figs. 12–14, 20).
//!
//! §V-C: when a MemTable is full it is flushed to a level-1 file; level-1
//! files *may overlap* each other; a background thread consumes them and
//! produces the non-overlapping level-2 run. Ingestion therefore never waits
//! for compaction — and queries must read every overlapping level-1 file,
//! which is precisely what makes the policies differ on the read path: under
//! `π_c` a single straggler gives its whole flushed file a huge key range
//! that every recent-window query then has to scan (the paper's Fig. 15),
//! while `π_s` keeps in-order flushes narrow.
//!
//! [`TieredEngine`] reproduces that: the writer thread only buffers points
//! and hands full MemTables to a compaction worker over a bounded channel;
//! the worker encodes and stores them as L0 tables and periodically merges
//! L0 into the run. The bounded channel back-pressures the writer if the
//! worker cannot keep up (realistic write-stall behaviour).

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use seplsm_types::{DataPoint, Error, Policy, Result, TimeRange, Timestamp};

use crate::engine::EngineConfig;
use crate::iterator::merge_sorted;
use crate::level::Run;
use crate::memtable::MemTable;
use crate::query::QueryStats;
use crate::sstable::SsTableMeta;
use crate::store::TableStore;

/// How many L0 tables accumulate before the worker merges them into the run.
const L0_COMPACT_THRESHOLD: usize = 4;
/// Flush-queue depth before ingestion back-pressures.
const CHANNEL_DEPTH: usize = 8;

/// Counters reported when the engine is finished.
#[derive(Debug, Clone, Default)]
pub struct TieredReport {
    /// Points the user wrote.
    pub user_points: u64,
    /// Points physically written (L0 flushes + run rewrites).
    pub disk_points_written: u64,
    /// L0→run merge operations performed.
    pub compactions: u64,
    /// Tables remaining in the run at shutdown.
    pub run_tables: usize,
    /// All stored points, sorted by generation time (for verification).
    pub points: Vec<DataPoint>,
}

impl TieredReport {
    /// Overall write amplification.
    pub fn write_amplification(&self) -> f64 {
        if self.user_points == 0 {
            return 0.0;
        }
        self.disk_points_written as f64 / self.user_points as f64
    }
}

/// On-disk state shared between the writer, the worker, and queries.
struct TierState {
    /// Immutable MemTables handed to the worker but not yet stored as L0
    /// tables — still queryable, exactly like IoTDB's flushing MemTables.
    flushing: Vec<Arc<Vec<DataPoint>>>,
    /// L0 tables in flush order (later = newer; newer wins duplicates).
    l0: Vec<SsTableMeta>,
    /// The non-overlapping level-2 run.
    run: Run,
    disk_points_written: u64,
    compactions: u64,
}

impl TierState {
    /// Merges every L0 table plus the overlapping part of the run.
    /// Called with the state lock held; table reads/writes go to `store`.
    fn compact_l0(
        &mut self,
        store: &Arc<dyn TableStore>,
        sstable_points: usize,
    ) -> Result<()> {
        if self.l0.is_empty() {
            return Ok(());
        }
        let l0 = std::mem::take(&mut self.l0);
        let range = l0
            .iter()
            .map(|m| m.range)
            .reduce(|a, b| a.union(&b))
            .expect("non-empty");
        let overlapping = self.run.overlapping(range);

        // Priority: newest L0 table first, then older L0, then the run.
        let mut sources = Vec::with_capacity(l0.len() + overlapping.len());
        for meta in l0.iter().rev() {
            sources.push(store.get(meta.id)?);
        }
        for meta in &overlapping {
            sources.push(store.get(meta.id)?);
        }
        let merged = merge_sorted(sources);
        self.disk_points_written += merged.len() as u64;

        let mut new_metas = Vec::new();
        for chunk in merged.chunks(sstable_points) {
            let (meta, _) = store.put(chunk)?;
            new_metas.push(meta);
        }
        let removed: Vec<_> = overlapping.iter().map(|m| m.id).collect();
        self.run.replace(&removed, new_metas)?;
        for meta in l0.iter().chain(overlapping.iter()) {
            store.delete(meta.id)?;
        }
        self.compactions += 1;
        Ok(())
    }
}

/// The MemTable set of the writer side.
enum WriterBuffers {
    Conventional(MemTable),
    Separation { seq: MemTable, nonseq: MemTable },
}

/// A leveled engine whose flush and compaction run on a background thread.
pub struct TieredEngine {
    buffers: WriterBuffers,
    tx: Option<Sender<Arc<Vec<DataPoint>>>>,
    handle: Option<JoinHandle<Result<()>>>,
    store: Arc<dyn TableStore>,
    state: Arc<Mutex<TierState>>,
    sstable_points: usize,
    /// Largest generation time handed to the flush pipeline — the in-order
    /// classification pivot (it is "on disk" from the writer's perspective).
    flushed_max: Option<Timestamp>,
    /// Largest generation time appended at all.
    max_gen_seen: Option<Timestamp>,
    user_points: u64,
    /// When set, `append` waits for each flush to reach L0 before returning
    /// (deterministic on-disk state for query experiments).
    sync_flush: bool,
}

impl TieredEngine {
    /// Starts the engine and its compaction worker.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] on degenerate configurations.
    pub fn new(config: EngineConfig, store: Arc<dyn TableStore>) -> Result<Self> {
        if config.sstable_points == 0 || config.policy.total_capacity() == 0 {
            return Err(Error::InvalidConfig(
                "sstable_points and memory budget must be >= 1".into(),
            ));
        }
        let buffers = match config.policy {
            Policy::Conventional { capacity } => {
                WriterBuffers::Conventional(MemTable::new(capacity))
            }
            Policy::Separation { seq_capacity, nonseq_capacity } => {
                WriterBuffers::Separation {
                    seq: MemTable::new(seq_capacity),
                    nonseq: MemTable::new(nonseq_capacity),
                }
            }
        };
        let state = Arc::new(Mutex::new(TierState {
            flushing: Vec::new(),
            l0: Vec::new(),
            run: Run::new(),
            disk_points_written: 0,
            compactions: 0,
        }));
        let (tx, rx) = bounded::<Arc<Vec<DataPoint>>>(CHANNEL_DEPTH);
        let worker_store = Arc::clone(&store);
        let worker_state = Arc::clone(&state);
        let sstable_points = config.sstable_points;
        let handle = std::thread::Builder::new()
            .name("seplsm-compaction".into())
            .spawn(move || -> Result<()> {
                for batch in rx {
                    if batch.is_empty() {
                        continue;
                    }
                    // Encode and store outside the lock; only the meta push
                    // and the (infrequent) compaction hold it.
                    let mut metas = Vec::new();
                    let mut written = 0u64;
                    for chunk in batch.chunks(sstable_points) {
                        let (meta, _) = worker_store.put(chunk)?;
                        written += chunk.len() as u64;
                        metas.push(meta);
                    }
                    let mut state = worker_state.lock();
                    state.disk_points_written += written;
                    state.l0.extend(metas);
                    // The batch is on disk: it stops being a flushing
                    // MemTable in the same critical section, so queries see
                    // it in exactly one place.
                    state.flushing.retain(|b| !Arc::ptr_eq(b, &batch));
                    if state.l0.len() >= L0_COMPACT_THRESHOLD {
                        state.compact_l0(&worker_store, sstable_points)?;
                    }
                }
                worker_state
                    .lock()
                    .compact_l0(&worker_store, sstable_points)
            })
            .map_err(|e| Error::Io(std::io::Error::other(e)))?;
        Ok(Self {
            buffers,
            tx: Some(tx),
            handle: Some(handle),
            store,
            state,
            sstable_points,
            flushed_max: None,
            max_gen_seen: None,
            user_points: 0,
            sync_flush: false,
        })
    }

    /// Makes every flush synchronous: `append` returns only after the
    /// flushed MemTable is stored as an L0 table. Queries then observe a
    /// deterministic on-disk state (used by the query experiments); the
    /// throughput experiment keeps the default asynchronous pipeline.
    pub fn with_sync_flush(mut self) -> Self {
        self.sync_flush = true;
        self
    }

    fn send(&mut self, points: Vec<DataPoint>) -> Result<()> {
        if points.is_empty() {
            return Ok(());
        }
        self.flushed_max = Some(
            self.flushed_max
                .map_or(points[points.len() - 1].gen_time, |m| {
                    m.max(points[points.len() - 1].gen_time)
                }),
        );
        let batch = Arc::new(points);
        // Register as a flushing MemTable *before* handing it to the worker
        // so it never becomes invisible to queries.
        self.state.lock().flushing.push(Arc::clone(&batch));
        self.tx
            .as_ref()
            .expect("engine not finished")
            .send(batch)
            .map_err(|_| {
                Error::Io(std::io::Error::other("compaction worker terminated"))
            })
    }

    /// Writes one point; only blocks if the flush queue is full.
    ///
    /// # Errors
    /// Worker-side failures surface here once the queue is gone.
    pub fn append(&mut self, p: DataPoint) -> Result<()> {
        self.user_points += 1;
        self.max_gen_seen =
            Some(self.max_gen_seen.map_or(p.gen_time, |m| m.max(p.gen_time)));
        let flushed_max = self.flushed_max;
        let batch = match &mut self.buffers {
            WriterBuffers::Conventional(c0) => {
                c0.insert(p);
                c0.is_full().then(|| c0.drain_sorted())
            }
            WriterBuffers::Separation { seq, nonseq } => {
                let in_order = flushed_max.is_none_or(|m| p.gen_time > m);
                if in_order {
                    seq.insert(p);
                    seq.is_full().then(|| seq.drain_sorted())
                } else {
                    nonseq.insert(p);
                    nonseq.is_full().then(|| nonseq.drain_sorted())
                }
            }
        };
        if let Some(points) = batch {
            self.send(points)?;
            if self.sync_flush {
                self.drain();
            }
        }
        Ok(())
    }

    /// Number of points the user has written.
    pub fn user_points(&self) -> u64 {
        self.user_points
    }

    /// Largest generation time appended so far.
    pub fn max_gen_time(&self) -> Option<Timestamp> {
        self.max_gen_seen
    }

    /// Range query over generation time, merging MemTables, every
    /// overlapping L0 file and the run.
    ///
    /// Like IoTDB's chunk-granularity reads, overlapping files are read in
    /// full; `QueryStats` counts the cost. Results reflect whatever the
    /// background worker has flushed/compacted at call time.
    ///
    /// # Errors
    /// Storage failures.
    pub fn query(&self, range: TimeRange) -> Result<(Vec<DataPoint>, QueryStats)> {
        let mut stats = QueryStats::default();
        let mut sources: Vec<Vec<DataPoint>> = Vec::new();
        match &self.buffers {
            WriterBuffers::Conventional(c0) => {
                let hits = c0.scan(range);
                stats.mem_points_scanned += hits.len() as u64;
                sources.push(hits);
            }
            WriterBuffers::Separation { seq, nonseq } => {
                let seq_hits = seq.scan(range);
                let nonseq_hits = nonseq.scan(range);
                stats.mem_points_scanned +=
                    (seq_hits.len() + nonseq_hits.len()) as u64;
                sources.push(seq_hits);
                sources.push(nonseq_hits);
            }
        }
        // Hold the lock across the reads so compaction cannot delete tables
        // under us; experiment-scale tables make this cheap.
        let state = self.state.lock();
        for batch in state.flushing.iter().rev() {
            let hits: Vec<DataPoint> = batch
                .iter()
                .copied()
                .filter(|p| range.contains(p.gen_time))
                .collect();
            stats.mem_points_scanned += hits.len() as u64;
            sources.push(hits);
        }
        for meta in state.l0.iter().rev() {
            if !meta.range.overlaps(&range) {
                continue;
            }
            let table_points = self.store.get(meta.id)?;
            stats.tables_read += 1;
            stats.disk_points_scanned += table_points.len() as u64;
            sources.push(
                table_points
                    .into_iter()
                    .filter(|p| range.contains(p.gen_time))
                    .collect(),
            );
        }
        for meta in state.run.overlapping(range) {
            let table_points = self.store.get(meta.id)?;
            stats.tables_read += 1;
            stats.disk_points_scanned += table_points.len() as u64;
            sources.push(
                table_points
                    .into_iter()
                    .filter(|p| range.contains(p.gen_time))
                    .collect(),
            );
        }
        drop(state);
        let merged = merge_sorted(sources);
        stats.points_returned = merged.len() as u64;
        Ok((merged, stats))
    }

    /// Snapshot of the on-disk table layout: `(level, range, points)` per
    /// table, L0 first (flush order), then the run. Used by the Fig. 15
    /// visualisation of SSTable spans.
    pub fn table_layout(&self) -> Vec<(&'static str, TimeRange, u32)> {
        let state = self.state.lock();
        let mut out = Vec::with_capacity(state.l0.len() + state.run.len());
        for meta in &state.l0 {
            out.push(("L0", meta.range, meta.count));
        }
        for meta in state.run.tables() {
            out.push(("run", meta.range, meta.count));
        }
        out
    }

    /// Waits (best effort) for the background worker to drain the flush
    /// queue, leaving whatever L0 backlog naturally remains — the state the
    /// paper's historical-query experiment measures.
    pub fn drain(&mut self) {
        loop {
            if self.state.lock().flushing.is_empty() {
                return;
            }
            std::thread::yield_now();
        }
    }

    /// Blocks until the flush queue is drained *and* L0 is merged into the
    /// run (for deterministic post-ingest queries).
    ///
    /// # Errors
    /// Storage failures from the forced compaction.
    pub fn quiesce(&mut self) -> Result<()> {
        self.drain();
        let mut state = self.state.lock();
        state.compact_l0(&self.store, self.sstable_points)
    }

    /// Flushes buffers, stops the worker, and returns the final report.
    ///
    /// # Errors
    /// Worker-side storage failures.
    pub fn finish(mut self) -> Result<TieredReport> {
        let remaining: Vec<Vec<DataPoint>> = match &mut self.buffers {
            WriterBuffers::Conventional(c0) => vec![c0.drain_sorted()],
            WriterBuffers::Separation { seq, nonseq } => {
                vec![seq.drain_sorted(), nonseq.drain_sorted()]
            }
        };
        for batch in remaining {
            self.send(batch)?;
        }
        drop(self.tx.take());
        let handle = self.handle.take().expect("worker running");
        handle
            .join()
            .map_err(|_| Error::Io(std::io::Error::other("worker panicked")))??;

        let state = self.state.lock();
        let mut sources = Vec::with_capacity(state.run.len());
        for meta in state.run.tables() {
            sources.push(self.store.get(meta.id)?);
        }
        let points = merge_sorted(sources);
        Ok(TieredReport {
            user_points: self.user_points,
            disk_points_written: state.disk_points_written,
            compactions: state.compactions,
            run_tables: state.run.len(),
            points,
        })
    }
}

impl Drop for TieredEngine {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn engine(config: EngineConfig) -> TieredEngine {
        TieredEngine::new(config, Arc::new(MemStore::new())).expect("engine")
    }

    #[test]
    fn preserves_all_points_conventional() {
        let mut e =
            engine(EngineConfig::conventional(16).with_sstable_points(8));
        let mut tgs: Vec<i64> = (0..500).map(|i| (i * 37) % 500).collect();
        tgs.sort_unstable();
        tgs.dedup();
        let n = tgs.len();
        for &tg in &tgs {
            e.append(DataPoint::new(tg, tg + 3, tg as f64)).expect("append");
        }
        let report = e.finish().expect("finish");
        assert_eq!(report.points.len(), n);
        assert!(report
            .points
            .windows(2)
            .all(|w| w[0].gen_time < w[1].gen_time));
        assert_eq!(report.user_points, n as u64);
        assert!(report.write_amplification() >= 1.0 - 1e-9);
    }

    #[test]
    fn preserves_all_points_separation_with_stragglers() {
        let mut e = engine(
            EngineConfig::separation(16, 8)
                .expect("policy")
                .with_sstable_points(8),
        );
        let mut expected = 0usize;
        for i in 0..400i64 {
            e.append(DataPoint::new(i * 10, i * 10, 0.0)).expect("append");
            expected += 1;
            if i % 5 == 4 {
                e.append(DataPoint::new(i * 10 - 35, i * 10, 1.0))
                    .expect("append straggler");
                expected += 1;
            }
        }
        let report = e.finish().expect("finish");
        assert_eq!(report.points.len(), expected);
        assert!(report
            .points
            .windows(2)
            .all(|w| w[0].gen_time < w[1].gen_time));
        assert!(report.compactions > 0);
    }

    #[test]
    fn duplicate_timestamps_keep_latest_write() {
        let mut e = engine(EngineConfig::conventional(4).with_sstable_points(4));
        for i in 0..8i64 {
            e.append(DataPoint::new(i, i, 0.0)).expect("append");
        }
        e.append(DataPoint::new(3, 100, 42.0)).expect("overwrite");
        for i in 8..11i64 {
            e.append(DataPoint::new(i, i, 0.0)).expect("append");
        }
        let report = e.finish().expect("finish");
        let p3 = report
            .points
            .iter()
            .find(|p| p.gen_time == 3)
            .expect("present");
        assert_eq!(p3.value, 42.0);
        assert_eq!(report.points.len(), 11);
    }

    #[test]
    fn queries_see_buffered_flushed_and_compacted_data() {
        let mut e = engine(EngineConfig::conventional(8).with_sstable_points(8));
        for i in 0..100i64 {
            e.append(DataPoint::new(i * 10, i * 10, i as f64)).expect("append");
        }
        e.quiesce().expect("quiesce");
        // 96 points flushed (12 tables → compacted), 4 still in memory.
        let (pts, stats) = e.query(TimeRange::new(0, 2_000)).expect("query");
        assert_eq!(pts.len(), 100); // gen times 0..990: all 100
        assert!(stats.tables_read > 0);
        let (tail, _) = e.query(TimeRange::new(950, 990)).expect("tail query");
        assert_eq!(tail.len(), 5);
    }

    #[test]
    fn straggler_widens_pi_c_files_but_not_pi_s() {
        // The Fig. 15 mechanism: one straggler inside a pi_c flush gives the
        // whole file a huge range, so recent-window queries must read it.
        let run = |policy: Policy| -> (usize, u64) {
            let mut e = engine(EngineConfig::new(policy).with_sstable_points(64));
            // 64 in-order points, then a straggler, then more in-order.
            for i in 1..=640i64 {
                e.append(DataPoint::new(i * 10, i * 10, 0.0)).expect("append");
                if i == 320 {
                    e.append(DataPoint::new(5, i * 10, -1.0)).expect("straggler");
                }
            }
            // Query a recent window before any compaction touches it.
            let (_, stats) =
                e.query(TimeRange::new(6_000, 6_400)).expect("query");
            (stats.tables_read as usize, stats.disk_points_scanned)
        };
        let (_, scanned_c) = run(Policy::conventional(64));
        let (_, scanned_s) = run(Policy::separation(64, 32).expect("policy"));
        assert!(
            scanned_c >= scanned_s,
            "pi_c should scan at least as much: c={scanned_c}, s={scanned_s}"
        );
    }

    #[test]
    fn in_flight_flushes_stay_queryable() {
        // A batch sitting in the flush queue must still be visible: the
        // writer registers it as a flushing MemTable before sending.
        let mut e = engine(EngineConfig::conventional(8).with_sstable_points(8));
        for i in 0..64i64 {
            e.append(DataPoint::new(i * 10, i * 10, i as f64)).expect("append");
        }
        // Query immediately, racing the worker: every point must be found.
        let (pts, _) = e.query(TimeRange::new(0, 630)).expect("query");
        assert_eq!(pts.len(), 64, "points lost while flushing");
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.value, i as f64);
        }
    }

    #[test]
    fn empty_engine_finishes_cleanly() {
        let e = engine(EngineConfig::conventional(8));
        let report = e.finish().expect("finish");
        assert_eq!(report.user_points, 0);
        assert!(report.points.is_empty());
        assert_eq!(report.write_amplification(), 0.0);
    }

    #[test]
    fn drop_without_finish_does_not_hang() {
        let mut e = engine(EngineConfig::conventional(4).with_sstable_points(4));
        for i in 0..100i64 {
            e.append(DataPoint::new(i, i, 0.0)).expect("append");
        }
        drop(e);
    }
}
