//! The policy-aware MemTable set: π_c / π_s classification in one place.
//!
//! Every engine in this crate buffers incoming points in MemTables shaped by
//! the active [`Policy`]: one `C0` under `π_c`, or a `C_seq`/`C_nonseq` pair
//! under `π_s`. [`PolicyBuffers`] owns that set and the classification rule
//! (Definition 3): a point is *in order* iff its generation time lies after
//! the classification pivot — `LAST(R).t_g` for the foreground engine, the
//! largest flushed generation time for the tiered engine. The engines only
//! decide what a full buffer means (merge, append-flush, or hand-off to a
//! background worker); the routing itself lives here, so `π_c`/`π_s`
//! semantics cannot drift between engines.

use seplsm_types::{DataPoint, Policy, TimeRange, Timestamp};

use crate::iterator::merge_sorted;
use crate::memtable::MemTable;

/// What the buffer layer decided must happen after accepting a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushTrigger {
    /// Keep buffering.
    None,
    /// `π_c`: `C0` reached capacity — merge it into the run.
    MergeC0,
    /// `π_s`: `C_seq` reached capacity — append-flush it after the run tail.
    AppendSeq,
    /// `π_s`: `C_nonseq` reached capacity — merge it into the run
    /// (ends the current phase, §IV).
    MergeNonseq,
}

impl FlushTrigger {
    /// `true` when the triggered flush goes through merge-compaction rather
    /// than the in-order append path.
    pub fn is_merge(self) -> bool {
        matches!(self, FlushTrigger::MergeC0 | FlushTrigger::MergeNonseq)
    }
}

/// Buffered points drained for a full flush, split by write path.
#[derive(Debug, Default)]
pub struct DrainedBuffers {
    /// `C_seq` contents: strictly in order, eligible for append-flushing.
    pub in_order: Vec<DataPoint>,
    /// `C0` / `C_nonseq` contents: must go through merge-compaction.
    pub merging: Vec<DataPoint>,
}

/// The MemTable set, shaped by the active policy.
#[derive(Debug)]
enum Tables {
    Conventional(MemTable),
    Separation { seq: MemTable, nonseq: MemTable },
}

/// A policy-shaped set of MemTables with built-in in-order classification.
#[derive(Debug)]
pub struct PolicyBuffers {
    tables: Tables,
}

impl PolicyBuffers {
    /// Creates the MemTable set demanded by `policy`.
    pub fn for_policy(policy: Policy) -> Self {
        let tables = match policy {
            Policy::Conventional { capacity } => {
                Tables::Conventional(MemTable::new(capacity))
            }
            Policy::Separation {
                seq_capacity,
                nonseq_capacity,
            } => Tables::Separation {
                seq: MemTable::new(seq_capacity),
                nonseq: MemTable::new(nonseq_capacity),
            },
        };
        Self { tables }
    }

    /// Number of points currently buffered.
    pub fn buffered_points(&self) -> usize {
        match &self.tables {
            Tables::Conventional(c0) => c0.len(),
            Tables::Separation { seq, nonseq } => seq.len() + nonseq.len(),
        }
    }

    /// Buffers one point, classifying it against `pivot` (Definition 3: in
    /// order iff generated after everything on disk; an empty disk makes
    /// every point in order). Returns what the engine must flush, if
    /// anything.
    pub fn insert(
        &mut self,
        p: DataPoint,
        pivot: Option<Timestamp>,
    ) -> FlushTrigger {
        match &mut self.tables {
            Tables::Conventional(c0) => {
                c0.insert(p);
                if c0.is_full() {
                    FlushTrigger::MergeC0
                } else {
                    FlushTrigger::None
                }
            }
            Tables::Separation { seq, nonseq } => {
                let in_order = pivot.is_none_or(|l| p.gen_time > l);
                if in_order {
                    seq.insert(p);
                    if seq.is_full() {
                        FlushTrigger::AppendSeq
                    } else {
                        FlushTrigger::None
                    }
                } else {
                    nonseq.insert(p);
                    if nonseq.is_full() {
                        FlushTrigger::MergeNonseq
                    } else {
                        FlushTrigger::None
                    }
                }
            }
        }
    }

    /// Drains the MemTable named by `trigger`, sorted by generation time.
    /// [`FlushTrigger::None`] drains nothing.
    pub fn take(&mut self, trigger: FlushTrigger) -> Vec<DataPoint> {
        match (trigger, &mut self.tables) {
            (FlushTrigger::None, _) => Vec::new(),
            (FlushTrigger::MergeC0, Tables::Conventional(c0)) => {
                c0.drain_sorted()
            }
            (FlushTrigger::AppendSeq, Tables::Separation { seq, .. }) => {
                seq.drain_sorted()
            }
            (FlushTrigger::MergeNonseq, Tables::Separation { nonseq, .. }) => {
                nonseq.drain_sorted()
            }
            (trigger, _) => {
                unreachable!("{trigger:?} does not match the active policy")
            }
        }
    }

    /// Drains every buffer for a full flush, keeping the in-order points
    /// (`C_seq`) apart so they can still take the append path.
    pub fn drain_all(&mut self) -> DrainedBuffers {
        match &mut self.tables {
            Tables::Conventional(c0) => DrainedBuffers {
                in_order: Vec::new(),
                merging: c0.drain_sorted(),
            },
            Tables::Separation { seq, nonseq } => DrainedBuffers {
                in_order: seq.drain_sorted(),
                merging: nonseq.drain_sorted(),
            },
        }
    }

    /// Switches the MemTable set to `policy`, returning the previously
    /// buffered points (sorted) for the engine to re-route. This is the one
    /// mid-stream migration path shared by every `set_policy`
    /// implementation.
    pub fn migrate(&mut self, policy: Policy) -> Vec<DataPoint> {
        let buffered = self.drain_merged();
        *self = Self::for_policy(policy);
        buffered
    }

    /// All buffered points, sorted, leaving the buffers empty.
    fn drain_merged(&mut self) -> Vec<DataPoint> {
        match &mut self.tables {
            Tables::Conventional(c0) => c0.drain_sorted(),
            Tables::Separation { seq, nonseq } => {
                merge_sorted(vec![seq.drain_sorted(), nonseq.drain_sorted()])
            }
        }
    }

    /// All buffered points, sorted, without draining.
    pub fn snapshot_sorted(&self) -> Vec<DataPoint> {
        match &self.tables {
            Tables::Conventional(c0) => c0.snapshot_sorted(),
            Tables::Separation { seq, nonseq } => merge_sorted(vec![
                seq.snapshot_sorted(),
                nonseq.snapshot_sorted(),
            ]),
        }
    }

    /// Per-MemTable hits for `range`, freshest-priority order (`C_seq`
    /// before `C_nonseq`), for the engines' k-way query merges.
    pub fn scan_sources(&self, range: TimeRange) -> Vec<Vec<DataPoint>> {
        match &self.tables {
            Tables::Conventional(c0) => vec![c0.scan(range)],
            Tables::Separation { seq, nonseq } => {
                vec![seq.scan(range), nonseq.scan(range)]
            }
        }
    }

    /// All buffered hits for `range`, merged into one generation-time-sorted
    /// stream with the same last-writer-wins dedup as the query path — the
    /// MemTable side of an aggregation pushdown.
    pub fn merged_scan(&self, range: TimeRange) -> Vec<DataPoint> {
        merge_sorted(self.scan_sources(range))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(tg: i64) -> DataPoint {
        DataPoint::new(tg, tg, tg as f64)
    }

    #[test]
    fn conventional_triggers_merge_at_capacity() {
        let mut b = PolicyBuffers::for_policy(Policy::conventional(3));
        assert_eq!(b.insert(p(10), None), FlushTrigger::None);
        assert_eq!(b.insert(p(20), Some(5)), FlushTrigger::None);
        let trigger = b.insert(p(5), Some(5));
        assert_eq!(trigger, FlushTrigger::MergeC0);
        assert!(trigger.is_merge());
        let drained = b.take(trigger);
        assert_eq!(
            drained.iter().map(|q| q.gen_time).collect::<Vec<_>>(),
            vec![5, 10, 20]
        );
        assert_eq!(b.buffered_points(), 0);
    }

    #[test]
    fn separation_classifies_against_pivot() {
        let policy = Policy::separation(4, 2).expect("policy");
        let mut b = PolicyBuffers::for_policy(policy);
        // Empty disk: everything is in order.
        assert_eq!(b.insert(p(10), None), FlushTrigger::None);
        // At or below the pivot: out of order (strict comparison).
        assert_eq!(b.insert(p(30), Some(30)), FlushTrigger::None);
        assert_eq!(b.insert(p(15), Some(30)), FlushTrigger::MergeNonseq);
        let nonseq = b.take(FlushTrigger::MergeNonseq);
        assert_eq!(
            nonseq.iter().map(|q| q.gen_time).collect::<Vec<_>>(),
            vec![15, 30]
        );
        // Above the pivot: in order; C_seq (capacity 2) fills next.
        assert_eq!(b.insert(p(40), Some(30)), FlushTrigger::AppendSeq);
        assert!(!FlushTrigger::AppendSeq.is_merge());
        assert_eq!(b.take(FlushTrigger::AppendSeq).len(), 2);
    }

    #[test]
    fn drain_all_splits_by_write_path() {
        let policy = Policy::separation(8, 4).expect("policy");
        let mut b = PolicyBuffers::for_policy(policy);
        b.insert(p(100), Some(50));
        b.insert(p(20), Some(50));
        b.insert(p(10), Some(50));
        let drained = b.drain_all();
        assert_eq!(drained.in_order.len(), 1);
        assert_eq!(drained.merging.len(), 2);
        assert_eq!(b.buffered_points(), 0);

        let mut c = PolicyBuffers::for_policy(Policy::conventional(8));
        c.insert(p(1), None);
        let drained = c.drain_all();
        assert!(drained.in_order.is_empty());
        assert_eq!(drained.merging.len(), 1);
    }

    #[test]
    fn migrate_returns_sorted_contents_and_swaps_shape() {
        let mut b = PolicyBuffers::for_policy(Policy::conventional(10));
        for tg in [30i64, 10, 20] {
            b.insert(p(tg), None);
        }
        let moved = b.migrate(Policy::separation(10, 5).expect("policy"));
        assert_eq!(
            moved.iter().map(|q| q.gen_time).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
        assert_eq!(b.buffered_points(), 0);
        assert_eq!(b.scan_sources(TimeRange::new(0, 100)).len(), 2);
    }

    #[test]
    fn scan_sources_orders_seq_before_nonseq() {
        let policy = Policy::separation(8, 4).expect("policy");
        let mut b = PolicyBuffers::for_policy(policy);
        b.insert(p(60), Some(50)); // in order -> C_seq
        b.insert(p(40), Some(50)); // out of order -> C_nonseq
        let sources = b.scan_sources(TimeRange::new(0, 100));
        assert_eq!(sources.len(), 2);
        assert_eq!(sources[0][0].gen_time, 60);
        assert_eq!(sources[1][0].gen_time, 40);
        assert_eq!(b.snapshot_sorted().len(), 2);
        assert_eq!(b.buffered_points(), 2);
    }
}
