//! Recovery modes and the salvage report.
//!
//! Strict recovery (the default, and the only behaviour before this module
//! existed) aborts on the first unreadable table, torn log, or metadata
//! disagreement. Salvage recovery instead *degrades*: unreadable tables are
//! moved into the store's quarantine area
//! ([`TableStore::quarantine`](crate::store::TableStore::quarantine)), the
//! longest valid prefix of a damaged WAL or manifest is used, and the
//! returned [`RecoveryReport`] names every lost time range so operators know
//! exactly what the surviving data set is missing. Either mode can also
//! garbage-collect orphan `.sst` files leaked by a crash mid-compaction
//! (opt-in: see [`RecoveryOptions::gc_orphans`]).

use seplsm_types::{Result, TimeRange};

use crate::invariants::probe_table;
use crate::obs::{Event, ObserverHandle, RecoveryStepKind};
use crate::sstable::{SsTableId, SsTableMeta};
use crate::store::TableStore;

/// How recovery reacts to damage it finds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryMode {
    /// Abort with an error on the first unreadable table or corrupt log
    /// record (beyond the always-tolerated torn tail).
    #[default]
    Strict,
    /// Quarantine unreadable tables, use the longest valid prefix of
    /// damaged logs, and report the losses instead of aborting.
    Salvage,
}

/// Options for the `recover_with` constructors.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryOptions {
    /// Strict or salvage handling of damage.
    pub mode: RecoveryMode,
    /// Delete stored tables that the recovered version does not reference
    /// (debris leaked by a crash between writing a compaction's outputs and
    /// logging the result). Opt-in because it is only safe when the
    /// recovered version(s) cover *everything* live in the store — a
    /// multi-series engine must union all series before sweeping, and a
    /// store shared beyond that must never be swept.
    pub gc_orphans: bool,
}

impl RecoveryOptions {
    /// Strict recovery, no GC — the pre-existing behaviour.
    pub fn strict() -> Self {
        Self::default()
    }

    /// Salvage-mode recovery, no GC.
    pub fn salvage() -> Self {
        Self {
            mode: RecoveryMode::Salvage,
            ..Self::default()
        }
    }

    /// Enables orphan-table garbage collection.
    pub fn with_gc_orphans(mut self) -> Self {
        self.gc_orphans = true;
        self
    }
}

/// One table salvage removed from the live set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedTable {
    /// The table's id (its bytes now live under `quarantine/`).
    pub id: SsTableId,
    /// The time range the metadata claimed, when any metadata existed.
    pub range: Option<TimeRange>,
    /// Why the table was unusable.
    pub reason: String,
}

/// What recovery found and did. Strict recovery returns a clean report or
/// no engine at all; salvage recovery returns the damage inventory.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Tables moved out of the live set, in quarantine order.
    pub quarantined: Vec<QuarantinedTable>,
    /// Time ranges the surviving data set no longer covers (one per
    /// quarantined table with known metadata; overlapping entries are not
    /// merged).
    pub lost_ranges: Vec<TimeRange>,
    /// Whole WAL records dropped past the last valid prefix (salvage only).
    pub wal_records_dropped: u64,
    /// Whole manifest records dropped past the last valid prefix.
    pub manifest_records_dropped: u64,
    /// Orphan tables deleted by [`RecoveryOptions::gc_orphans`].
    pub orphans_removed: Vec<SsTableId>,
}

impl RecoveryReport {
    /// True when recovery found no damage at all (orphan GC alone still
    /// counts as clean — orphans are invisible to readers).
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
            && self.lost_ranges.is_empty()
            && self.wal_records_dropped == 0
            && self.manifest_records_dropped == 0
    }

    /// Folds another report (e.g. one series of a multi-series recovery)
    /// into this one.
    pub fn merge(&mut self, other: RecoveryReport) {
        self.quarantined.extend(other.quarantined);
        self.lost_ranges.extend(other.lost_ranges);
        self.wal_records_dropped += other.wal_records_dropped;
        self.manifest_records_dropped += other.manifest_records_dropped;
        self.orphans_removed.extend(other.orphans_removed);
    }

    fn note_quarantine(
        &mut self,
        meta: &SsTableMeta,
        reason: impl Into<String>,
    ) {
        self.quarantined.push(QuarantinedTable {
            id: meta.id,
            range: Some(meta.range),
            reason: reason.into(),
        });
        self.lost_ranges.push(meta.range);
    }
}

/// Probes every candidate table against the store and quarantines the ones
/// that are unreadable or disagree with their metadata, then resolves any
/// range overlaps among the survivors (a salvaged metadata set can pair an
/// old table with the newer table that re-wrote it — the newer one, a
/// superset, wins). Returns the surviving metadata; `report` accumulates
/// the losses.
///
/// # Errors
/// Only store-level failures while *quarantining* propagate; unreadable
/// tables themselves are handled, not raised.
pub(crate) fn salvage_tables(
    store: &dyn TableStore,
    candidates: Vec<SsTableMeta>,
    report: &mut RecoveryReport,
    obs: &ObserverHandle,
) -> Result<Vec<SsTableMeta>> {
    let survivors = probe_tables(store, candidates, report, obs)?;
    resolve_overlaps(store, survivors, report, obs)
}

/// Probe-only variant of [`salvage_tables`] for levels whose tables may
/// legitimately overlap (L0): unreadable tables are quarantined, but no
/// overlap resolution is applied.
///
/// # Errors
/// Store-level failures while quarantining.
pub(crate) fn probe_tables(
    store: &dyn TableStore,
    candidates: Vec<SsTableMeta>,
    report: &mut RecoveryReport,
    obs: &ObserverHandle,
) -> Result<Vec<SsTableMeta>> {
    let probed = candidates.len() as u64;
    let mut survivors = Vec::with_capacity(candidates.len());
    for meta in candidates {
        match probe_table(store, &meta) {
            Ok(()) => survivors.push(meta),
            Err(e) => {
                store.quarantine(meta.id)?;
                obs.emit(|| Event::Quarantine { table: meta.id.0 });
                report.note_quarantine(&meta, e.to_string());
            }
        }
    }
    obs.emit(|| Event::RecoveryStep {
        step: RecoveryStepKind::TablesProbed,
        items: probed,
    });
    Ok(survivors)
}

/// Drops the older table of every overlapping pair until the set is
/// non-overlapping (the newer table of a pair produced by a crashed merge
/// contains the older one's points).
fn resolve_overlaps(
    store: &dyn TableStore,
    mut tables: Vec<SsTableMeta>,
    report: &mut RecoveryReport,
    obs: &ObserverHandle,
) -> Result<Vec<SsTableMeta>> {
    tables.sort_by_key(|m| (m.range.start, m.range.end, m.id));
    loop {
        let mut clash = None;
        for i in 1..tables.len() {
            if tables[i].range.start <= tables[i - 1].range.end {
                // Quarantine the older (lower-id) table of the pair.
                clash = Some(if tables[i].id < tables[i - 1].id {
                    i
                } else {
                    i - 1
                });
                break;
            }
        }
        let Some(idx) = clash else {
            return Ok(tables);
        };
        let meta = tables.remove(idx);
        store.quarantine(meta.id)?;
        obs.emit(|| Event::Quarantine { table: meta.id.0 });
        report.note_quarantine(&meta, "overlaps a newer recovered table");
    }
}

/// Deletes every stored table not in `live`, recording the removals.
///
/// # Errors
/// Store list/delete failures propagate.
pub(crate) fn gc_orphans(
    store: &dyn TableStore,
    live: &std::collections::HashSet<SsTableId>,
    report: &mut RecoveryReport,
    obs: &ObserverHandle,
) -> Result<()> {
    let mut swept = 0u64;
    for id in store.list()? {
        if !live.contains(&id) {
            store.delete(id)?;
            report.orphans_removed.push(id);
            swept += 1;
        }
    }
    obs.emit(|| Event::RecoveryStep {
        step: RecoveryStepKind::OrphansSwept,
        items: swept,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use seplsm_types::DataPoint;

    use super::*;
    use crate::store::MemStore;

    fn stored(store: &MemStore, range: std::ops::Range<i64>) -> SsTableMeta {
        let points: Vec<DataPoint> =
            range.map(|i| DataPoint::new(i, i, i as f64)).collect();
        store.put(&points).expect("put").0
    }

    #[test]
    fn salvage_keeps_readable_tables_and_reports_the_rest() {
        let store = MemStore::new();
        let ok = stored(&store, 0..10);
        let mut missing = stored(&store, 20..30);
        store.delete(missing.id).expect("delete"); // unreadable now
        missing.count = 10;
        let mut report = RecoveryReport::default();
        let survivors = salvage_tables(
            &store,
            vec![ok, missing],
            &mut report,
            &ObserverHandle::detached(),
        )
        .expect("salvage");
        assert_eq!(survivors, vec![ok]);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].id, missing.id);
        assert_eq!(report.lost_ranges, vec![missing.range]);
        assert!(!report.is_clean());
    }

    #[test]
    fn overlap_resolution_prefers_the_newer_table() {
        let store = MemStore::new();
        // A crashed merge: the old table and the wider table that re-wrote
        // it both survive on disk.
        let old = stored(&store, 5..10);
        let merged = stored(&store, 0..15);
        let mut report = RecoveryReport::default();
        let survivors = salvage_tables(
            &store,
            vec![old, merged],
            &mut report,
            &ObserverHandle::detached(),
        )
        .expect("salvage");
        assert_eq!(survivors, vec![merged], "newer superset table wins");
        assert_eq!(report.quarantined[0].id, old.id);
    }

    #[test]
    fn torn_v3_write_is_quarantined_with_a_precise_reason() {
        use crate::store::FileStore;
        let dir = std::env::temp_dir().join(format!(
            "seplsm-recovery-torn-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let store = FileStore::open(&dir).expect("open");
        let points: Vec<DataPoint> =
            (0..64).map(|i| DataPoint::new(i, i, i as f64)).collect();
        let (meta, size) = store.put(&points).expect("put");
        // Tear the file: the data region reached disk, the footer did not.
        let path = dir.join(format!("{:08}.sst", meta.id.0));
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .expect("reopen table");
        file.set_len(size as u64 - 10).expect("truncate");
        let mut report = RecoveryReport::default();
        let survivors = salvage_tables(
            &store,
            vec![meta],
            &mut report,
            &ObserverHandle::detached(),
        )
        .expect("salvage");
        assert!(survivors.is_empty());
        assert_eq!(report.quarantined.len(), 1);
        assert!(
            report.quarantined[0].reason.contains("torn v3 write"),
            "probe must name the torn footer, got: {}",
            report.quarantined[0].reason
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_removes_only_unreferenced_tables() {
        let store = MemStore::new();
        let live_meta = stored(&store, 0..5);
        let orphan = stored(&store, 100..105);
        let mut report = RecoveryReport::default();
        let live = std::collections::HashSet::from([live_meta.id]);
        gc_orphans(&store, &live, &mut report, &ObserverHandle::detached())
            .expect("gc");
        assert_eq!(report.orphans_removed, vec![orphan.id]);
        assert!(store.get(live_meta.id).is_ok());
        assert!(store.get(orphan.id).is_err());
        assert!(report.is_clean(), "orphan GC alone is still clean");
    }
}
