//! Write-ahead log: makes buffered MemTable contents durable.
//!
//! Each appended point becomes one fixed-size record protected by a CRC-32.
//! After a flush empties a MemTable the engine rewrites the log with the
//! surviving buffered points, keeping the log proportional to memory state.
//! Replay tolerates a truncated tail record (torn write at crash) but
//! reports mid-log corruption.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use seplsm_types::{DataPoint, Error, Result};

use crate::codec;
use crate::fault::{self, FaultPlan, IoOp, WriteCheck};
use crate::obs::{Event, ObserverHandle};
use crate::sstable::crc32::crc32;
use crate::store::sync_dir;

/// Payload layout: gen_time i64 LE + arrival_time i64 LE + value bits u64 LE.
const PAYLOAD: usize = 24;
/// Record layout: crc u32 LE + payload.
const RECORD: usize = 4 + PAYLOAD;

/// An append-only, checksummed log of data points.
pub struct Wal {
    writer: BufWriter<File>,
    path: PathBuf,
    faults: Option<Arc<FaultPlan>>,
    obs: ObserverHandle,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal").field("path", &self.path).finish()
    }
}

fn encode_record(p: &DataPoint) -> [u8; RECORD] {
    let mut rec = [0u8; RECORD];
    rec[4..12].copy_from_slice(&p.gen_time.to_le_bytes());
    rec[12..20].copy_from_slice(&p.arrival_time.to_le_bytes());
    rec[20..28].copy_from_slice(&p.value.to_bits().to_le_bytes());
    let crc = crc32(&rec[4..]);
    rec[..4].copy_from_slice(&crc.to_le_bytes());
    rec
}

/// Walks `data` as a sequence of fixed-size records. Returns
/// `(good_len, tail_is_garbage)`: `good_len` is the byte length of the
/// contiguous CRC-valid prefix, and `tail_is_garbage` is true when no
/// CRC-valid record exists at any record-aligned offset past `good_len` —
/// i.e. the damage is a torn tail, not mid-log corruption in front of
/// still-valid records.
fn scan(data: &[u8]) -> (usize, bool) {
    let mut good_len = 0;
    while good_len + RECORD <= data.len() {
        let rec = &data[good_len..good_len + RECORD];
        let stored = u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]);
        if stored != crc32(&rec[4..]) {
            break;
        }
        good_len += RECORD;
    }
    let mut offset = good_len + RECORD;
    while offset + RECORD <= data.len() {
        let rec = &data[offset..offset + RECORD];
        let stored = u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]);
        if stored == crc32(&rec[4..]) {
            return (good_len, false);
        }
        offset += RECORD;
    }
    (good_len, true)
}

impl Wal {
    /// Opens (creating if needed) the log at `path` for appending.
    ///
    /// Stale `wal.tmp` debris from a crashed [`Wal::rewrite`] is swept, and
    /// a torn tail (a truncated or garbage final record with nothing valid
    /// after it) is truncated back to the last good record boundary —
    /// appending after a garbage tail would corrupt the next record's
    /// framing. Mid-log corruption is left in place for replay to report.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let tmp = path.with_extension("wal.tmp");
        match std::fs::remove_file(&tmp) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        Self::repair_tail(&path)?;
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self {
            writer: BufWriter::new(file),
            path,
            faults: None,
            obs: ObserverHandle::detached(),
        })
    }

    /// Truncates `path` to its last good record boundary when the tail is
    /// garbage-only; no-op for a missing, clean, or mid-log-corrupt file.
    fn repair_tail(path: &Path) -> Result<()> {
        let mut data = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e.into()),
        }
        let (good_len, tail_is_garbage) = scan(&data);
        if tail_is_garbage && good_len < data.len() {
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(good_len as u64)?;
            f.sync_all()?;
        }
        Ok(())
    }

    /// Attaches a fault plan: every subsequent append/sync/rewrite consults
    /// the plan first. Used by the crash-schedule harness.
    pub fn attach_faults(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    /// Attaches an observer: appends, syncs and rewrites emit
    /// [`Event::WalAppend`] / [`Event::WalSync`] / [`Event::WalTruncate`].
    pub fn attach_observer(&mut self, obs: ObserverHandle) {
        self.obs = obs;
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one point (buffered; call [`Wal::sync`] for durability).
    pub fn append(&mut self, p: &DataPoint) -> Result<()> {
        let rec = encode_record(p);
        match fault::hook_write(
            self.faults.as_ref(),
            IoOp::WalAppend,
            rec.len(),
        )? {
            WriteCheck::Proceed => {
                self.writer.write_all(&rec)?;
                self.obs.emit(|| Event::WalAppend {
                    bytes: rec.len() as u64,
                });
                Ok(())
            }
            WriteCheck::Torn { keep } => {
                // A torn append: the record's prefix reaches the file (the
                // modelled power cut happened mid-write), then the op fails.
                self.writer.write_all(&rec[..keep.min(rec.len())])?;
                self.writer.flush()?;
                Err(fault::injected_crash(IoOp::WalAppend, self.op_index()))
            }
        }
    }

    fn op_index(&self) -> u64 {
        self.faults
            .as_ref()
            .map_or(0, |p| p.ops().saturating_sub(1))
    }

    /// Flushes buffered records and fsyncs the file.
    pub fn sync(&mut self) -> Result<()> {
        fault::hook(self.faults.as_ref(), IoOp::WalSync)?;
        self.writer.flush()?;
        self.writer.get_ref().sync_all()?;
        self.obs.emit(|| Event::WalSync);
        Ok(())
    }

    /// Atomically replaces the log contents with `survivors` (the points
    /// still buffered in memory after a flush).
    pub fn rewrite(&mut self, survivors: &[DataPoint]) -> Result<()> {
        let tmp = self.path.with_extension("wal.tmp");
        let mut buf = Vec::with_capacity(survivors.len() * RECORD);
        for p in survivors {
            buf.extend_from_slice(&encode_record(p));
        }
        {
            let mut f = File::create(&tmp)?;
            match fault::hook_write(
                self.faults.as_ref(),
                IoOp::WalRewrite,
                buf.len(),
            )? {
                WriteCheck::Proceed => f.write_all(&buf)?,
                WriteCheck::Torn { keep } => {
                    f.write_all(&buf[..keep.min(buf.len())])?;
                    f.sync_all()?;
                    // Tmp debris stays behind; swept on the next open.
                    return Err(fault::injected_crash(
                        IoOp::WalRewrite,
                        self.op_index(),
                    ));
                }
            }
            f.sync_all()?;
        }
        fault::hook(self.faults.as_ref(), IoOp::WalRename)?;
        std::fs::rename(&tmp, &self.path)?;
        if let Some(parent) =
            self.path.parent().filter(|p| !p.as_os_str().is_empty())
        {
            fault::hook(self.faults.as_ref(), IoOp::DirSync)?;
            sync_dir(parent)?;
        }
        let file = OpenOptions::new().append(true).open(&self.path)?;
        self.writer = BufWriter::new(file);
        self.obs.emit(|| Event::WalTruncate {
            survivors: survivors.len() as u64,
        });
        Ok(())
    }

    /// Replays the log at `path`, returning the points in append order.
    ///
    /// A torn tail — a truncated or garbage final stretch with no valid
    /// record after it — is dropped silently (indistinguishable from a
    /// power cut mid-append); corruption sitting in front of still-valid
    /// records is reported as [`Error::Corrupt`].
    pub fn replay(path: impl AsRef<Path>) -> Result<Vec<DataPoint>> {
        let path = path.as_ref();
        let data = match Self::read_log(path)? {
            Some(data) => data,
            None => return Ok(Vec::new()),
        };
        let (good_len, tail_is_garbage) = scan(&data);
        if !tail_is_garbage {
            return Err(Error::Corrupt(format!(
                "WAL record at offset {good_len} fails CRC \
                 with valid records after it"
            )));
        }
        Self::decode_prefix(&data, good_len)
    }

    /// Salvage replay: returns the longest decodable prefix plus the number
    /// of whole records dropped after it, never failing on corruption. Used
    /// by salvage-mode recovery, which reports (rather than hides) the loss.
    pub fn replay_salvage(
        path: impl AsRef<Path>,
    ) -> Result<(Vec<DataPoint>, u64)> {
        let path = path.as_ref();
        let data = match Self::read_log(path)? {
            Some(data) => data,
            None => return Ok((Vec::new(), 0)),
        };
        let (good_len, _) = scan(&data);
        let dropped = ((data.len() - good_len) / RECORD) as u64;
        Ok((Self::decode_prefix(&data, good_len)?, dropped))
    }

    fn read_log(path: &Path) -> Result<Option<Vec<u8>>> {
        let mut data = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
                Ok(Some(data))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn decode_prefix(data: &[u8], good_len: usize) -> Result<Vec<DataPoint>> {
        let mut points = Vec::with_capacity(good_len / RECORD);
        let mut offset = 0;
        while offset + RECORD <= good_len {
            let rec = &data[offset..offset + RECORD];
            let gen_time = codec::read_i64_le(rec, 4)?;
            let arrival_time = codec::read_i64_le(rec, 12)?;
            let value = f64::from_bits(codec::read_u64_le(rec, 20)?);
            points.push(DataPoint::new(gen_time, arrival_time, value));
            offset += RECORD;
        }
        Ok(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "seplsm-wal-{tag}-{}-{:?}.wal",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn append_sync_replay_round_trips() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let pts: Vec<DataPoint> = (0..100)
            .map(|i| DataPoint::new(i, i + 7, i as f64 * 0.5))
            .collect();
        {
            let mut wal = Wal::open(&path).expect("open");
            for p in &pts {
                wal.append(p).expect("append");
            }
            wal.sync().expect("sync");
        }
        assert_eq!(Wal::replay(&path).expect("replay"), pts);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn replay_of_missing_file_is_empty() {
        let path = temp_path("missing");
        let _ = std::fs::remove_file(&path);
        assert!(Wal::replay(&path).expect("replay").is_empty());
    }

    #[test]
    fn torn_tail_record_is_dropped() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).expect("open");
            wal.append(&DataPoint::new(1, 1, 1.0)).expect("append");
            wal.append(&DataPoint::new(2, 2, 2.0)).expect("append");
            wal.sync().expect("sync");
        }
        // Chop half of the last record off.
        let data = std::fs::read(&path).expect("read");
        std::fs::write(&path, &data[..data.len() - 10]).expect("truncate");
        let points = Wal::replay(&path).expect("replay tolerates torn tail");
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].gen_time, 1);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn append_after_torn_tail_truncates_then_stays_readable() {
        let path = temp_path("torn-append");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).expect("open");
            wal.append(&DataPoint::new(1, 1, 1.0)).expect("append");
            wal.append(&DataPoint::new(2, 2, 2.0)).expect("append");
            wal.sync().expect("sync");
        }
        // Tear the last record mid-write.
        let data = std::fs::read(&path).expect("read");
        std::fs::write(&path, &data[..data.len() - 10]).expect("truncate");
        // Re-open for appending (the crash-recovery path) and keep writing.
        // Before the torn-tail fix the new record landed after the garbage
        // tail, shifting the record framing and corrupting the whole log.
        {
            let mut wal = Wal::open(&path).expect("re-open repairs tail");
            wal.append(&DataPoint::new(3, 3, 3.0)).expect("append");
            wal.sync().expect("sync");
        }
        let points = Wal::replay(&path).expect("log must stay readable");
        let gens: Vec<i64> = points.iter().map(|p| p.gen_time).collect();
        assert_eq!(gens, vec![1, 3], "torn record dropped, new one kept");
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn open_sweeps_stale_rewrite_tmp() {
        let path = temp_path("tmp-sweep");
        let _ = std::fs::remove_file(&path);
        let tmp = path.with_extension("wal.tmp");
        std::fs::write(&tmp, b"half a rewrite").expect("stale tmp");
        let _wal = Wal::open(&path).expect("open");
        assert!(!tmp.exists(), "open must sweep rewrite debris");
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn salvage_replay_recovers_prefix_past_mid_log_corruption() {
        let path = temp_path("salvage");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).expect("open");
            for i in 0..5 {
                wal.append(&DataPoint::new(i, i, 0.0)).expect("append");
            }
            wal.sync().expect("sync");
        }
        let mut data = std::fs::read(&path).expect("read");
        data[2 * RECORD + 8] ^= 0xff; // corrupt the third record
        std::fs::write(&path, &data).expect("rewrite");
        assert!(Wal::replay(&path).is_err(), "strict replay refuses");
        let (points, dropped) =
            Wal::replay_salvage(&path).expect("salvage replay");
        assert_eq!(points.len(), 2, "valid prefix recovered");
        assert_eq!(dropped, 3, "loss is reported, not hidden");
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn mid_log_corruption_is_detected() {
        let path = temp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).expect("open");
            for i in 0..5 {
                wal.append(&DataPoint::new(i, i, 0.0)).expect("append");
            }
            wal.sync().expect("sync");
        }
        let mut data = std::fs::read(&path).expect("read");
        data[RECORD + 8] ^= 0xff; // inside the second record's payload
        std::fs::write(&path, &data).expect("rewrite");
        assert!(Wal::replay(&path).is_err());
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn rewrite_replaces_contents() {
        let path = temp_path("rewrite");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).expect("open");
        for i in 0..10 {
            wal.append(&DataPoint::new(i, i, 0.0)).expect("append");
        }
        wal.sync().expect("sync");
        let survivors = vec![DataPoint::new(100, 101, 9.0)];
        wal.rewrite(&survivors).expect("rewrite");
        // New appends continue after the rewritten contents.
        wal.append(&DataPoint::new(200, 202, 1.0)).expect("append");
        wal.sync().expect("sync");
        let points = Wal::replay(&path).expect("replay");
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].gen_time, 100);
        assert_eq!(points[1].gen_time, 200);
        std::fs::remove_file(&path).expect("cleanup");
    }
}
