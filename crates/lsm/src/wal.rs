//! Write-ahead log: makes buffered MemTable contents durable.
//!
//! Each appended point becomes one fixed-size record protected by a CRC-32.
//! After a flush empties a MemTable the engine rewrites the log with the
//! surviving buffered points, keeping the log proportional to memory state.
//! Replay tolerates a truncated tail record (torn write at crash) but
//! reports mid-log corruption.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use seplsm_types::{DataPoint, Error, Result};

use crate::codec;
use crate::sstable::crc32::crc32;

/// Payload layout: gen_time i64 LE + arrival_time i64 LE + value bits u64 LE.
const PAYLOAD: usize = 24;
/// Record layout: crc u32 LE + payload.
const RECORD: usize = 4 + PAYLOAD;

/// An append-only, checksummed log of data points.
pub struct Wal {
    writer: BufWriter<File>,
    path: PathBuf,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal").field("path", &self.path).finish()
    }
}

fn encode_record(p: &DataPoint) -> [u8; RECORD] {
    let mut rec = [0u8; RECORD];
    rec[4..12].copy_from_slice(&p.gen_time.to_le_bytes());
    rec[12..20].copy_from_slice(&p.arrival_time.to_le_bytes());
    rec[20..28].copy_from_slice(&p.value.to_bits().to_le_bytes());
    let crc = crc32(&rec[4..]);
    rec[..4].copy_from_slice(&crc.to_le_bytes());
    rec
}

impl Wal {
    /// Opens (creating if needed) the log at `path` for appending.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self {
            writer: BufWriter::new(file),
            path,
        })
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one point (buffered; call [`Wal::sync`] for durability).
    pub fn append(&mut self, p: &DataPoint) -> Result<()> {
        self.writer.write_all(&encode_record(p))?;
        Ok(())
    }

    /// Flushes buffered records and fsyncs the file.
    pub fn sync(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_all()?;
        Ok(())
    }

    /// Atomically replaces the log contents with `survivors` (the points
    /// still buffered in memory after a flush).
    pub fn rewrite(&mut self, survivors: &[DataPoint]) -> Result<()> {
        let tmp = self.path.with_extension("wal.tmp");
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            for p in survivors {
                w.write_all(&encode_record(p))?;
            }
            w.flush()?;
            w.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        let file = OpenOptions::new().append(true).open(&self.path)?;
        self.writer = BufWriter::new(file);
        Ok(())
    }

    /// Replays the log at `path`, returning the points in append order.
    ///
    /// A truncated final record (torn write) is dropped silently; a CRC
    /// mismatch anywhere is reported as [`Error::Corrupt`].
    pub fn replay(path: impl AsRef<Path>) -> Result<Vec<DataPoint>> {
        let path = path.as_ref();
        let mut data = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Vec::new())
            }
            Err(e) => return Err(e.into()),
        }
        let mut points = Vec::with_capacity(data.len() / RECORD);
        let mut offset = 0;
        while offset + RECORD <= data.len() {
            let rec = &data[offset..offset + RECORD];
            let stored = codec::read_u32_le(rec, 0)?;
            if stored != crc32(&rec[4..]) {
                return Err(Error::Corrupt(format!(
                    "WAL record at offset {offset} fails CRC"
                )));
            }
            let gen_time = codec::read_i64_le(rec, 4)?;
            let arrival_time = codec::read_i64_le(rec, 12)?;
            let value = f64::from_bits(codec::read_u64_le(rec, 20)?);
            points.push(DataPoint::new(gen_time, arrival_time, value));
            offset += RECORD;
        }
        // Anything shorter than a record at the tail is a torn write.
        Ok(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "seplsm-wal-{tag}-{}-{:?}.wal",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn append_sync_replay_round_trips() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let pts: Vec<DataPoint> = (0..100)
            .map(|i| DataPoint::new(i, i + 7, i as f64 * 0.5))
            .collect();
        {
            let mut wal = Wal::open(&path).expect("open");
            for p in &pts {
                wal.append(p).expect("append");
            }
            wal.sync().expect("sync");
        }
        assert_eq!(Wal::replay(&path).expect("replay"), pts);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn replay_of_missing_file_is_empty() {
        let path = temp_path("missing");
        let _ = std::fs::remove_file(&path);
        assert!(Wal::replay(&path).expect("replay").is_empty());
    }

    #[test]
    fn torn_tail_record_is_dropped() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).expect("open");
            wal.append(&DataPoint::new(1, 1, 1.0)).expect("append");
            wal.append(&DataPoint::new(2, 2, 2.0)).expect("append");
            wal.sync().expect("sync");
        }
        // Chop half of the last record off.
        let data = std::fs::read(&path).expect("read");
        std::fs::write(&path, &data[..data.len() - 10]).expect("truncate");
        let points = Wal::replay(&path).expect("replay tolerates torn tail");
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].gen_time, 1);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn mid_log_corruption_is_detected() {
        let path = temp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).expect("open");
            for i in 0..5 {
                wal.append(&DataPoint::new(i, i, 0.0)).expect("append");
            }
            wal.sync().expect("sync");
        }
        let mut data = std::fs::read(&path).expect("read");
        data[RECORD + 8] ^= 0xff; // inside the second record's payload
        std::fs::write(&path, &data).expect("rewrite");
        assert!(Wal::replay(&path).is_err());
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn rewrite_replaces_contents() {
        let path = temp_path("rewrite");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).expect("open");
        for i in 0..10 {
            wal.append(&DataPoint::new(i, i, 0.0)).expect("append");
        }
        wal.sync().expect("sync");
        let survivors = vec![DataPoint::new(100, 101, 9.0)];
        wal.rewrite(&survivors).expect("rewrite");
        // New appends continue after the rewritten contents.
        wal.append(&DataPoint::new(200, 202, 1.0)).expect("append");
        wal.sync().expect("sync");
        let points = Wal::replay(&path).expect("replay");
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].gen_time, 100);
        assert_eq!(points[1].gen_time, 200);
        std::fs::remove_file(&path).expect("cleanup");
    }
}
