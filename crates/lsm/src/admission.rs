//! Write-stall admission control and deterministic I/O pacing.
//!
//! Production LSM-trees die by tail latency, not mean throughput: an
//! unbounded L0 lets ingest outrun merges until queries and recovery
//! degrade (Luo & Carey, "On Performance Stability in LSM-based Storage
//! Systems"). This module is the kernel half of the fix:
//!
//! * [`AdmissionController`] — watermark admission over the combined
//!   L0-table + pending-flush depth. Below the *slowdown* watermark every
//!   append is [`AdmissionOutcome::Admitted`]; between *slowdown* and
//!   *stop* it is [`AdmissionOutcome::Delayed`] with a logical-tick
//!   penalty that grows with depth; at *stop* the writer is
//!   [`AdmissionOutcome::Stalled`] until compaction drains the depth back
//!   below the resume threshold (hysteresis: a stall does not end at
//!   `stop - 1`, it ends below *slowdown*, so admission cannot flap).
//! * [`IoPacer`] — a token-bucket budget over background compaction
//!   writes, denominated in points per logical tick, so merges drain
//!   smoothly instead of in bursts.
//! * [`RetryBackoff`] — a bounded exponential backoff schedule for store
//!   retries, replacing fixed immediate-retry loops.
//!
//! Everything here is a pure state machine on *logical* ticks: no wall
//! clock, no threads, no I/O (seplint rule R3). The engines own the
//! blocking — a stalled tiered append waits on the flush condvar and
//! re-consults the controller per wakeup; each consult while stalled
//! charges one stall tick, so seeded runs account identically on every
//! machine.

use seplsm_types::{Error, Result};

/// Default slowdown watermark: combined depth at which appends start
/// being delayed.
pub const DEFAULT_SLOWDOWN_DEPTH: usize = 8;

/// Default stop watermark: combined depth at which appends stall.
pub const DEFAULT_STOP_DEPTH: usize = 16;

/// Default pacer refill: points of compaction output budget per logical
/// tick.
pub const DEFAULT_PACER_TOKENS_PER_TICK: u64 = 4096;

/// Default pacer bucket capacity (burst allowance, in points).
pub const DEFAULT_PACER_BURST: u64 = 65_536;

/// Default depth bound on the multi-series flush queue: at most this many
/// series are outstanding in the flush pool at once; further series wait
/// for the next wave and surface as [`AdmissionOutcome::Delayed`].
pub const DEFAULT_FLUSH_QUEUE_DEPTH: usize = 8;

/// Default retry budget for transient store failures.
pub const DEFAULT_RETRY_ATTEMPTS: u32 = 3;

/// Default base backoff delay (logical ticks) before the second attempt.
pub const DEFAULT_RETRY_BASE_TICKS: u64 = 1;

/// Default backoff cap (logical ticks) for any single retry delay.
pub const DEFAULT_RETRY_MAX_TICKS: u64 = 64;

/// The slowdown / stop watermark pair admission decisions are made
/// against. Invariant: `0 < slowdown < stop`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watermarks {
    slowdown: usize,
    stop: usize,
}

impl Default for Watermarks {
    fn default() -> Self {
        Self {
            slowdown: DEFAULT_SLOWDOWN_DEPTH,
            stop: DEFAULT_STOP_DEPTH,
        }
    }
}

impl Watermarks {
    /// Watermarks with `slowdown < stop`, both positive.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] when `slowdown` is zero or `stop` does not
    /// exceed `slowdown`.
    pub fn new(slowdown: usize, stop: usize) -> Result<Self> {
        if slowdown == 0 {
            return Err(Error::InvalidConfig(
                "slowdown watermark must be positive".into(),
            ));
        }
        if stop <= slowdown {
            return Err(Error::InvalidConfig(format!(
                "stop watermark ({stop}) must exceed slowdown ({slowdown})"
            )));
        }
        Ok(Self { slowdown, stop })
    }

    /// Depth at which appends start being delayed.
    pub fn slowdown(&self) -> usize {
        self.slowdown
    }

    /// Depth at which appends stall outright.
    pub fn stop(&self) -> usize {
        self.stop
    }

    /// Hysteresis resume threshold: an active stall ends only once the
    /// depth falls strictly below this (equal to the slowdown watermark),
    /// so a stall cannot flap around `stop`.
    pub fn resume(&self) -> usize {
        self.slowdown
    }
}

/// The depth inputs consulted on every append.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionDepth {
    /// L0 tables awaiting merge into the run.
    pub l0_tables: usize,
    /// Sealed batches registered as flushing but not yet on disk.
    pub pending_flushes: usize,
}

impl AdmissionDepth {
    /// The combined depth the watermarks compare against.
    pub fn combined(self) -> usize {
        self.l0_tables.saturating_add(self.pending_flushes)
    }
}

/// What admission control decided about one append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionOutcome {
    /// Below the slowdown watermark: proceed immediately.
    Admitted,
    /// Between slowdown and stop: proceed, charged `ticks` logical ticks
    /// of delay.
    Delayed {
        /// Logical ticks of delay charged to this append.
        ticks: u64,
    },
    /// At or above the stop watermark (or a stall is still draining):
    /// the writer must wait and re-consult.
    Stalled,
}

impl AdmissionOutcome {
    /// `true` when the append may proceed (admitted or merely delayed).
    pub fn proceeds(self) -> bool {
        !matches!(self, Self::Stalled)
    }
}

/// A stall-state edge reported alongside an admission outcome, so the
/// engine can emit `WriteStallBegin` / `WriteStallEnd` exactly once per
/// episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallTransition {
    /// This consult entered a stall (depth reached `stop`).
    Began,
    /// This consult ended a stall (depth fell below `resume`).
    Ended {
        /// Logical ticks the finished episode accrued.
        ticks: u64,
    },
}

/// One admission decision: the outcome plus any stall-state edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionDecision {
    /// What the append should do.
    pub outcome: AdmissionOutcome,
    /// Stall edge crossed by this consult, if any.
    pub transition: Option<StallTransition>,
}

/// Cumulative admission accounting, snapshot via
/// [`AdmissionController::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Appends admitted below the slowdown watermark.
    pub admitted: u64,
    /// Appends delayed between slowdown and stop.
    pub delayed: u64,
    /// Stall episodes begun (stop watermark reached).
    pub stalls: u64,
    /// Logical ticks charged to delays and stall waits.
    pub stall_ticks: u64,
    /// Largest combined depth ever consulted.
    pub max_depth: usize,
    /// `true` while a stall episode is active.
    pub currently_stalled: bool,
}

/// The watermark admission state machine. Owns the hysteresis flag and
/// the cumulative accounting; the engine owns the actual blocking.
#[derive(Debug, Default)]
pub struct AdmissionController {
    watermarks: Watermarks,
    stalled: bool,
    current_stall_ticks: u64,
    stats: AdmissionStats,
}

impl AdmissionController {
    /// A controller over `watermarks`, initially unstalled.
    pub fn new(watermarks: Watermarks) -> Self {
        Self {
            watermarks,
            ..Self::default()
        }
    }

    /// The configured watermarks.
    pub fn watermarks(&self) -> Watermarks {
        self.watermarks
    }

    /// `true` while a stall episode is active.
    pub fn is_stalled(&self) -> bool {
        self.stalled
    }

    /// Snapshot of the cumulative accounting.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            currently_stalled: self.stalled,
            ..self.stats
        }
    }

    /// Consults admission for one append at `depth`. Pure and
    /// deterministic: identical consult sequences yield identical
    /// decisions and accounting. A stalled writer re-consults per wakeup;
    /// every stalled consult charges one stall tick.
    pub fn admit(&mut self, depth: AdmissionDepth) -> AdmissionDecision {
        let d = depth.combined();
        self.stats.max_depth = self.stats.max_depth.max(d);
        if self.stalled {
            if d < self.watermarks.resume() {
                self.stalled = false;
                let ticks = self.current_stall_ticks;
                self.current_stall_ticks = 0;
                self.stats.admitted += 1;
                return AdmissionDecision {
                    outcome: AdmissionOutcome::Admitted,
                    transition: Some(StallTransition::Ended { ticks }),
                };
            }
            self.current_stall_ticks += 1;
            self.stats.stall_ticks += 1;
            return AdmissionDecision {
                outcome: AdmissionOutcome::Stalled,
                transition: None,
            };
        }
        if d >= self.watermarks.stop() {
            self.stalled = true;
            self.current_stall_ticks = 1;
            self.stats.stalls += 1;
            self.stats.stall_ticks += 1;
            return AdmissionDecision {
                outcome: AdmissionOutcome::Stalled,
                transition: Some(StallTransition::Began),
            };
        }
        if d >= self.watermarks.slowdown() {
            let ticks = (d - self.watermarks.slowdown() + 1) as u64;
            self.stats.delayed += 1;
            self.stats.stall_ticks += ticks;
            return AdmissionDecision {
                outcome: AdmissionOutcome::Delayed { ticks },
                transition: None,
            };
        }
        self.stats.admitted += 1;
        AdmissionDecision {
            outcome: AdmissionOutcome::Admitted,
            transition: None,
        }
    }

    /// Logical ticks charged to the *current* stall episode so far (for
    /// the `WriteStallEnd` event payload). Zero when unstalled.
    pub fn current_stall_ticks(&self) -> u64 {
        self.current_stall_ticks
    }

    /// Force-ends an active stall without admitting anything — used when
    /// the engine degrades mid-stall so waiters can fail over to the
    /// typed degraded error instead of spinning forever. Returns the
    /// ticks the interrupted episode had accrued, or `None` if no stall
    /// was active.
    pub fn interrupt_stall(&mut self) -> Option<u64> {
        if !self.stalled {
            return None;
        }
        self.stalled = false;
        let ticks = self.current_stall_ticks;
        self.current_stall_ticks = 0;
        Some(ticks)
    }
}

/// What the pacer decided about one write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaceDecision {
    /// The bucket covered the cost: write immediately.
    Proceed,
    /// The bucket was short: the write is granted *after* `ticks` logical
    /// ticks of refill, which this call has already applied.
    Wait {
        /// Logical ticks of refill the writer is charged.
        ticks: u64,
    },
}

/// Cumulative pacer accounting, snapshot via [`IoPacer::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PacerStats {
    /// Writes granted without waiting.
    pub granted: u64,
    /// Writes that had to wait for refill.
    pub waits: u64,
    /// Total logical ticks charged to waits.
    pub wait_ticks: u64,
}

/// A deterministic token bucket over background compaction writes,
/// denominated in points. The bucket holds at most `burst` tokens and
/// refills `tokens_per_tick` per logical tick; a write of `cost` points
/// that overdraws the bucket is charged the whole ticks of refill needed
/// to cover the deficit. No wall clock is read — ticks are accounting,
/// and the engine decides what (if anything) to do with them.
#[derive(Debug)]
pub struct IoPacer {
    tokens_per_tick: u64,
    burst: u64,
    tokens: u64,
    stats: PacerStats,
}

impl Default for IoPacer {
    fn default() -> Self {
        Self {
            tokens_per_tick: DEFAULT_PACER_TOKENS_PER_TICK,
            burst: DEFAULT_PACER_BURST,
            tokens: DEFAULT_PACER_BURST,
            stats: PacerStats::default(),
        }
    }
}

impl IoPacer {
    /// A pacer refilling `tokens_per_tick` into a bucket of capacity
    /// `burst`, starting full.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] when `tokens_per_tick` is zero or `burst`
    /// is below `tokens_per_tick`.
    pub fn new(tokens_per_tick: u64, burst: u64) -> Result<Self> {
        if tokens_per_tick == 0 {
            return Err(Error::InvalidConfig(
                "pacer refill rate must be positive".into(),
            ));
        }
        if burst < tokens_per_tick {
            return Err(Error::InvalidConfig(format!(
                "pacer burst ({burst}) must be at least one tick's refill \
                 ({tokens_per_tick})"
            )));
        }
        Ok(Self {
            tokens_per_tick,
            burst,
            tokens: burst,
            stats: PacerStats::default(),
        })
    }

    /// Charges `cost` points against the bucket. A cost above the burst
    /// capacity is clamped to it, so one oversized write can never wedge
    /// the pacer.
    pub fn grant(&mut self, cost: u64) -> PaceDecision {
        let cost = cost.min(self.burst);
        if self.tokens >= cost {
            self.tokens -= cost;
            self.stats.granted += 1;
            return PaceDecision::Proceed;
        }
        let deficit = cost - self.tokens;
        let ticks = deficit.div_ceil(self.tokens_per_tick);
        let refilled = self
            .tokens
            .saturating_add(ticks.saturating_mul(self.tokens_per_tick))
            .min(self.burst);
        // `cost <= burst` and `refilled >= cost` by construction of
        // `ticks`, so this cannot underflow.
        self.tokens = refilled - cost;
        self.stats.granted += 1;
        self.stats.waits += 1;
        self.stats.wait_ticks += ticks;
        PaceDecision::Wait { ticks }
    }

    /// Snapshot of the cumulative accounting.
    pub fn stats(&self) -> PacerStats {
        self.stats
    }
}

/// A bounded exponential backoff schedule on logical ticks: delays of
/// `base`, `2*base`, `4*base`, … before attempts 2, 3, 4, …, each capped
/// at `max_ticks`, with `attempts` tries total. Replaces fixed
/// immediate-retry loops so transient faults are not hammered.
#[derive(Debug, Clone, Copy)]
pub struct RetryBackoff {
    attempts: u32,
    base_ticks: u64,
    max_ticks: u64,
    made: u32,
}

impl Default for RetryBackoff {
    fn default() -> Self {
        Self {
            attempts: DEFAULT_RETRY_ATTEMPTS,
            base_ticks: DEFAULT_RETRY_BASE_TICKS,
            max_ticks: DEFAULT_RETRY_MAX_TICKS,
            made: 0,
        }
    }
}

impl RetryBackoff {
    /// A schedule of `attempts` total tries with delays starting at
    /// `base_ticks` and capped at `max_ticks`.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] when `attempts` or `base_ticks` is zero,
    /// or `max_ticks < base_ticks`.
    pub fn new(attempts: u32, base_ticks: u64, max_ticks: u64) -> Result<Self> {
        if attempts == 0 {
            return Err(Error::InvalidConfig(
                "retry budget must allow at least one attempt".into(),
            ));
        }
        if base_ticks == 0 {
            return Err(Error::InvalidConfig(
                "retry base delay must be positive".into(),
            ));
        }
        if max_ticks < base_ticks {
            return Err(Error::InvalidConfig(format!(
                "retry delay cap ({max_ticks}) must be at least the base \
                 delay ({base_ticks})"
            )));
        }
        Ok(Self {
            attempts,
            base_ticks,
            max_ticks,
            made: 0,
        })
    }

    /// The next retry's `(attempt_number, delay_ticks)` — attempt numbers
    /// start at 2 (the first try is free) — or `None` once the budget is
    /// exhausted and the caller must surface the error.
    pub fn next_delay(&mut self) -> Option<(u32, u64)> {
        // `made` counts retries granted so far; the initial try is not a
        // retry, so the budget allows `attempts - 1` of them.
        if self.made + 1 >= self.attempts {
            return None;
        }
        let exp = self.made.min(63);
        let ticks = self
            .base_ticks
            .checked_shl(exp)
            .unwrap_or(self.max_ticks)
            .min(self.max_ticks);
        self.made += 1;
        Some((self.made + 1, ticks))
    }

    /// Retries granted so far.
    pub fn retries_made(&self) -> u32 {
        self.made
    }

    /// The total attempt budget.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use proptest::prelude::*;

    fn wm(slowdown: usize, stop: usize) -> Watermarks {
        Watermarks::new(slowdown, stop).expect("watermarks")
    }

    fn depth(d: usize) -> AdmissionDepth {
        AdmissionDepth {
            l0_tables: d,
            pending_flushes: 0,
        }
    }

    #[test]
    fn watermarks_reject_degenerate_configs() {
        assert!(Watermarks::new(0, 4).is_err());
        assert!(Watermarks::new(4, 4).is_err());
        assert!(Watermarks::new(4, 3).is_err());
        let w = wm(2, 5);
        assert_eq!(w.slowdown(), 2);
        assert_eq!(w.stop(), 5);
        assert_eq!(w.resume(), 2);
    }

    #[test]
    fn admission_tiers_by_depth() {
        let mut c = AdmissionController::new(wm(2, 5));
        assert_eq!(c.admit(depth(0)).outcome, AdmissionOutcome::Admitted);
        assert_eq!(c.admit(depth(1)).outcome, AdmissionOutcome::Admitted);
        assert_eq!(
            c.admit(depth(2)).outcome,
            AdmissionOutcome::Delayed { ticks: 1 }
        );
        assert_eq!(
            c.admit(depth(4)).outcome,
            AdmissionOutcome::Delayed { ticks: 3 }
        );
        let stalled = c.admit(depth(5));
        assert_eq!(stalled.outcome, AdmissionOutcome::Stalled);
        assert_eq!(stalled.transition, Some(StallTransition::Began));
        assert!(c.is_stalled());
        let stats = c.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.delayed, 2);
        assert_eq!(stats.stalls, 1);
        assert_eq!(stats.max_depth, 5);
        assert!(stats.currently_stalled);
    }

    #[test]
    fn stall_hysteresis_resumes_below_slowdown_only() {
        let mut c = AdmissionController::new(wm(2, 4));
        assert_eq!(c.admit(depth(4)).outcome, AdmissionOutcome::Stalled);
        // Depth fell below stop but not below resume: still stalled (no
        // flapping at the stop boundary).
        assert_eq!(c.admit(depth(3)).outcome, AdmissionOutcome::Stalled);
        assert_eq!(c.admit(depth(2)).outcome, AdmissionOutcome::Stalled);
        // Strictly below resume (= slowdown): the stall ends and the
        // append is admitted.
        let resumed = c.admit(depth(1));
        assert_eq!(resumed.outcome, AdmissionOutcome::Admitted);
        assert_eq!(
            resumed.transition,
            Some(StallTransition::Ended { ticks: 3 })
        );
        assert!(!c.is_stalled());
        // Three stalled consults charged one tick each.
        assert_eq!(c.stats().stall_ticks, 3);
    }

    #[test]
    fn interrupt_stall_clears_the_episode() {
        let mut c = AdmissionController::new(wm(2, 4));
        assert!(c.interrupt_stall().is_none());
        c.admit(depth(9));
        c.admit(depth(9));
        assert_eq!(c.interrupt_stall(), Some(2));
        assert!(!c.is_stalled());
        assert_eq!(c.current_stall_ticks(), 0);
    }

    #[test]
    fn pacer_grants_until_the_bucket_runs_dry() {
        let mut p = IoPacer::new(10, 30).expect("pacer");
        assert_eq!(p.grant(30), PaceDecision::Proceed);
        // Bucket empty: 25 points need ceil(25/10) = 3 ticks of refill.
        assert_eq!(p.grant(25), PaceDecision::Wait { ticks: 3 });
        // 3 ticks refilled 30 (capped), minus 25 leaves 5 tokens.
        assert_eq!(p.grant(5), PaceDecision::Proceed);
        assert_eq!(p.grant(10), PaceDecision::Wait { ticks: 1 });
        let stats = p.stats();
        assert_eq!(stats.granted, 4);
        assert_eq!(stats.waits, 2);
        assert_eq!(stats.wait_ticks, 4);
    }

    #[test]
    fn pacer_clamps_oversized_writes_to_burst() {
        let mut p = IoPacer::new(10, 30).expect("pacer");
        // A cost above burst is clamped: it cannot wedge the bucket.
        assert_eq!(p.grant(1_000_000), PaceDecision::Proceed);
        assert_eq!(p.grant(1_000_000), PaceDecision::Wait { ticks: 3 });
    }

    #[test]
    fn pacer_rejects_degenerate_configs() {
        assert!(IoPacer::new(0, 10).is_err());
        assert!(IoPacer::new(10, 5).is_err());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut b = RetryBackoff::new(5, 2, 6).expect("backoff");
        assert_eq!(b.next_delay(), Some((2, 2)));
        assert_eq!(b.next_delay(), Some((3, 4)));
        assert_eq!(b.next_delay(), Some((4, 6))); // capped (would be 8)
        assert_eq!(b.next_delay(), Some((5, 6)));
        assert_eq!(b.next_delay(), None);
        assert_eq!(b.retries_made(), 4);
    }

    #[test]
    fn backoff_budget_of_one_never_retries() {
        let mut b = RetryBackoff::new(1, 1, 1).expect("backoff");
        assert_eq!(b.next_delay(), None);
    }

    #[test]
    fn backoff_rejects_degenerate_configs() {
        assert!(RetryBackoff::new(0, 1, 1).is_err());
        assert!(RetryBackoff::new(3, 0, 1).is_err());
        assert!(RetryBackoff::new(3, 4, 2).is_err());
    }

    /// One step of the simulated append/compaction interleaving the
    /// watermark proptests drive.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        /// One writer consults admission and inserts iff not stalled.
        Append,
        /// Background work retires one unit of depth.
        Drain,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // Appends outnumber drains 3:1 so the interleavings actually
        // reach the watermarks (the vendored proptest has no weighted
        // oneof; duplication is the weighting).
        prop_oneof![
            Just(Op::Append),
            Just(Op::Append),
            Just(Op::Append),
            Just(Op::Drain),
        ]
    }

    proptest! {
        /// Satellite invariant: under arbitrary append/drain
        /// interleavings, a writer that respects admission (no insert
        /// while stalled) never pushes the combined depth past the stop
        /// watermark.
        #[test]
        fn depth_never_exceeds_stop(
            slowdown in 1usize..6,
            extra in 1usize..6,
            ops in proptest::collection::vec(op_strategy(), 0..200),
        ) {
            let w = wm(slowdown, slowdown + extra);
            let mut c = AdmissionController::new(w);
            let mut d = 0usize;
            for op in ops {
                match op {
                    Op::Append => {
                        if c.admit(depth(d)).outcome.proceeds() {
                            d += 1;
                        }
                    }
                    Op::Drain => d = d.saturating_sub(1),
                }
                prop_assert!(
                    d <= w.stop(),
                    "depth {d} exceeded stop {}", w.stop()
                );
            }
        }

        /// Satellite invariant: stalls always end — whatever state an
        /// interleaving leaves the controller in, draining the depth to
        /// zero admits the next append (no deadlocked `Stalled`).
        #[test]
        fn stalls_always_end(
            slowdown in 1usize..6,
            extra in 1usize..6,
            ops in proptest::collection::vec(op_strategy(), 0..200),
        ) {
            let w = wm(slowdown, slowdown + extra);
            let mut c = AdmissionController::new(w);
            let mut d = 0usize;
            for op in ops {
                match op {
                    Op::Append => {
                        if c.admit(depth(d)).outcome.proceeds() {
                            d += 1;
                        }
                    }
                    Op::Drain => d = d.saturating_sub(1),
                }
            }
            let was_stalled = c.is_stalled();
            let decision = c.admit(depth(0));
            prop_assert_eq!(decision.outcome, AdmissionOutcome::Admitted);
            if was_stalled {
                prop_assert!(matches!(
                    decision.transition,
                    Some(StallTransition::Ended { .. })
                ));
            }
            prop_assert!(!c.is_stalled());
        }

        /// Identical consult sequences produce identical decisions and
        /// accounting — the determinism the byte-identical trace checks
        /// build on.
        #[test]
        fn admission_is_deterministic(
            slowdown in 1usize..6,
            extra in 1usize..6,
            depths in proptest::collection::vec(0usize..16, 0..100),
        ) {
            let w = wm(slowdown, slowdown + extra);
            let mut a = AdmissionController::new(w);
            let mut b = AdmissionController::new(w);
            for &d in &depths {
                prop_assert_eq!(a.admit(depth(d)), b.admit(depth(d)));
            }
            prop_assert_eq!(a.stats(), b.stats());
        }
    }
}
