//! The level-1 *run*: an ordered set of non-overlapping SSTables.
//!
//! In IoTDB's leveled organisation (paper §II), the SSTables on `L1` have
//! pairwise-disjoint generation-time ranges; taken together they form a
//! single sorted run `R`. `LAST(R)` — the latest generation time on disk —
//! is the pivot that classifies incoming points as in-order or out-of-order
//! (Definition 3).

use seplsm_types::{Error, Result, TimeRange, Timestamp};

use crate::sstable::{SsTableId, SsTableMeta};

/// The non-overlapping run of SSTables on level `L1`.
#[derive(Debug, Clone, Default)]
pub struct Run {
    /// Table metadata sorted by `range.start`; ranges are pairwise disjoint.
    tables: Vec<SsTableMeta>,
}

impl Run {
    /// Creates an empty run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a run from arbitrary table metadata (e.g. during recovery).
    ///
    /// # Errors
    /// [`Error::Corrupt`] if any two tables overlap.
    pub fn from_tables(mut tables: Vec<SsTableMeta>) -> Result<Self> {
        tables.sort_by_key(|m| m.range.start);
        let run = Self { tables };
        run.check_invariants()?;
        Ok(run)
    }

    /// Rebuilds a run from pre-sorted tables *without* validating the
    /// non-overlap invariant — corrupted-state construction for the
    /// invariant-checker tests only.
    #[cfg(test)]
    pub(crate) fn from_tables_unchecked(tables: Vec<SsTableMeta>) -> Self {
        Self { tables }
    }

    /// Number of tables in the run.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` when the run holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// The tables in ascending range order.
    pub fn tables(&self) -> &[SsTableMeta] {
        &self.tables
    }

    /// Total number of points across the run.
    pub fn total_points(&self) -> u64 {
        self.tables.iter().map(|m| u64::from(m.count)).sum()
    }

    /// `LAST(R).t_g`: the latest generation time on disk, if any.
    pub fn last_gen_time(&self) -> Option<Timestamp> {
        self.tables.last().map(|m| m.range.end)
    }

    /// Earliest generation time on disk, if any.
    pub fn first_gen_time(&self) -> Option<Timestamp> {
        self.tables.first().map(|m| m.range.start)
    }

    /// Metadata of tables whose range intersects `range`.
    pub fn overlapping(&self, range: TimeRange) -> Vec<SsTableMeta> {
        // Tables are sorted and disjoint: binary-search the window.
        let start = self.tables.partition_point(|m| m.range.end < range.start);
        self.tables[start..]
            .iter()
            .take_while(|m| m.range.start <= range.end)
            .copied()
            .collect()
    }

    /// Number of points in tables lying entirely *above* `tg` (every point in
    /// them has `gen_time > tg`). Straddling tables are not counted here —
    /// callers must inspect their contents.
    pub fn points_in_tables_above(&self, tg: Timestamp) -> u64 {
        let start = self.tables.partition_point(|m| m.range.start <= tg);
        self.tables[start..]
            .iter()
            .map(|m| u64::from(m.count))
            .sum()
    }

    /// The table whose range contains `tg`, if any (binary search).
    pub fn table_containing(&self, tg: Timestamp) -> Option<&SsTableMeta> {
        let idx = self.tables.partition_point(|m| m.range.end < tg);
        self.tables.get(idx).filter(|m| m.range.contains(tg))
    }

    /// Appends a table that must lie strictly after the current run tail.
    ///
    /// This is the `C_seq` flush path of `π_s`: in-order flushes extend the
    /// run without disturbing existing tables.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] if the table would overlap the tail.
    pub fn append(&mut self, meta: SsTableMeta) -> Result<()> {
        if let Some(last) = self.tables.last() {
            if meta.range.start <= last.range.end {
                return Err(Error::InvalidConfig(format!(
                    "append would overlap run tail: tail ends {}, new starts {}",
                    last.range.end, meta.range.start
                )));
            }
        }
        self.tables.push(meta);
        Ok(())
    }

    /// Replaces the tables with ids in `removed` by `added` (a compaction
    /// result), re-establishing the sorted non-overlapping invariant.
    ///
    /// # Errors
    /// [`Error::Corrupt`] if the result violates the run invariant.
    pub fn replace(
        &mut self,
        removed: &[SsTableId],
        added: Vec<SsTableMeta>,
    ) -> Result<()> {
        self.tables.retain(|m| !removed.contains(&m.id));
        self.tables.extend(added);
        self.tables.sort_by_key(|m| m.range.start);
        self.check_invariants()
    }

    /// Verifies the sorted / non-overlapping invariant.
    ///
    /// # Errors
    /// [`Error::Corrupt`] describing the first violation found.
    pub fn check_invariants(&self) -> Result<()> {
        for w in self.tables.windows(2) {
            if w[1].range.start <= w[0].range.end {
                return Err(Error::Corrupt(format!(
                    "run invariant violated: {} [{} .. {}] overlaps {} [{} .. {}]",
                    w[0].id,
                    w[0].range.start,
                    w[0].range.end,
                    w[1].id,
                    w[1].range.start,
                    w[1].range.end
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(
        id: u64,
        start: Timestamp,
        end: Timestamp,
        count: u32,
    ) -> SsTableMeta {
        SsTableMeta {
            id: SsTableId(id),
            range: TimeRange::new(start, end),
            count,
        }
    }

    #[test]
    fn from_tables_sorts_and_validates() {
        let run =
            Run::from_tables(vec![meta(2, 100, 199, 10), meta(1, 0, 99, 10)])
                .expect("valid run");
        assert_eq!(run.first_gen_time(), Some(0));
        assert_eq!(run.last_gen_time(), Some(199));
        assert_eq!(run.total_points(), 20);
    }

    #[test]
    fn from_tables_rejects_overlap() {
        assert!(Run::from_tables(vec![
            meta(1, 0, 100, 5),
            meta(2, 100, 200, 5)
        ])
        .is_err());
    }

    #[test]
    fn overlapping_finds_exactly_the_intersecting_tables() {
        let run = Run::from_tables(vec![
            meta(1, 0, 99, 10),
            meta(2, 100, 199, 10),
            meta(3, 200, 299, 10),
            meta(4, 300, 399, 10),
        ])
        .expect("valid");
        let hits = run.overlapping(TimeRange::new(150, 250));
        let ids: Vec<u64> = hits.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, vec![2, 3]);
        assert!(run.overlapping(TimeRange::new(400, 500)).is_empty());
        assert_eq!(run.overlapping(TimeRange::new(0, 399)).len(), 4);
        // Closed-range boundaries.
        assert_eq!(run.overlapping(TimeRange::new(99, 100)).len(), 2);
    }

    #[test]
    fn points_in_tables_above_counts_strictly_later_tables() {
        let run = Run::from_tables(vec![
            meta(1, 0, 99, 10),
            meta(2, 100, 199, 20),
            meta(3, 200, 299, 30),
        ])
        .expect("valid");
        assert_eq!(run.points_in_tables_above(150), 30); // table 3 only
        assert_eq!(run.points_in_tables_above(99), 50); // tables 2+3
        assert_eq!(run.points_in_tables_above(-1), 60);
        assert_eq!(run.points_in_tables_above(300), 0);
    }

    #[test]
    fn table_containing_finds_the_right_table() {
        let run =
            Run::from_tables(vec![meta(1, 0, 99, 10), meta(2, 200, 299, 10)])
                .expect("valid");
        assert_eq!(run.table_containing(50).expect("hit").id.0, 1);
        assert_eq!(run.table_containing(200).expect("hit").id.0, 2);
        assert_eq!(run.table_containing(299).expect("hit").id.0, 2);
        assert!(run.table_containing(150).is_none()); // gap
        assert!(run.table_containing(-5).is_none());
        assert!(run.table_containing(300).is_none());
    }

    #[test]
    fn append_extends_tail_only() {
        let mut run = Run::new();
        run.append(meta(1, 0, 99, 10)).expect("first");
        run.append(meta(2, 100, 199, 10)).expect("second");
        assert!(run.append(meta(3, 150, 250, 10)).is_err());
        assert_eq!(run.len(), 2);
    }

    #[test]
    fn replace_swaps_compaction_inputs_for_outputs() {
        let mut run = Run::from_tables(vec![
            meta(1, 0, 99, 10),
            meta(2, 100, 199, 10),
            meta(3, 200, 299, 10),
        ])
        .expect("valid");
        run.replace(
            &[SsTableId(2), SsTableId(3)],
            vec![meta(4, 100, 180, 12), meta(5, 181, 299, 14)],
        )
        .expect("replace");
        assert_eq!(run.len(), 3);
        assert_eq!(run.total_points(), 36);
        assert_eq!(run.last_gen_time(), Some(299));
    }

    #[test]
    fn replace_rejects_invalid_results() {
        let mut run =
            Run::from_tables(vec![meta(1, 0, 99, 10)]).expect("valid");
        assert!(run.replace(&[], vec![meta(2, 50, 150, 10)]).is_err());
    }

    #[test]
    fn empty_run_edge_cases() {
        let run = Run::new();
        assert_eq!(run.last_gen_time(), None);
        assert!(run.overlapping(TimeRange::new(0, 100)).is_empty());
        assert_eq!(run.points_in_tables_above(0), 0);
        run.check_invariants().expect("empty run is valid");
    }
}
