//! Multi-series management: one logical store, many independent series.
//!
//! The paper's industrial setting (§VI) records *thousands* of time series
//! per vehicle, each with its own delay behaviour — IoTDB buffers and tunes
//! them independently. [`MultiSeriesEngine`] provides that shape: each
//! [`SeriesId`] gets its own MemTables, level-1 run and metrics (so policies
//! can differ per series), while all series share one [`TableStore`].
//!
//! With [`MultiSeriesEngine::durable`] every series additionally gets a WAL
//! and a manifest namespaced by its id (`series-<n>.wal` /
//! `series-<n>.manifest`) inside one metadata directory;
//! [`MultiSeriesEngine::recover`] scans that directory and rebuilds every
//! series through the single-series recovery path.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use seplsm_types::{DataPoint, Error, Policy, Result, TimeRange};

use crate::engine::{EngineConfig, LsmEngine};
use crate::fault::FaultPlan;
use crate::metrics::Metrics;
use crate::query::QueryStats;
use crate::recovery::{self, RecoveryOptions, RecoveryReport};
use crate::sstable::SsTableId;
use crate::store::{MemStore, TableStore};

/// Identifier of one time series (e.g. one sensor channel of one vehicle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeriesId(pub u32);

impl std::fmt::Display for SeriesId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "series-{}", self.0)
    }
}

/// Aggregate write counters across all series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MultiMetrics {
    /// Series hosted.
    pub series: usize,
    /// Total user points across series.
    pub user_points: u64,
    /// Total points physically written.
    pub disk_points_written: u64,
    /// Total flushes.
    pub flushes: u64,
    /// Total merge compactions.
    pub compactions: u64,
}

impl MultiMetrics {
    /// Builds the aggregate view from a summed kernel [`Metrics`].
    pub fn from_metrics(series: usize, metrics: &Metrics) -> Self {
        Self {
            series,
            user_points: metrics.user_points,
            disk_points_written: metrics.disk_points_written,
            flushes: metrics.flushes,
            compactions: metrics.compactions,
        }
    }

    /// Fleet-wide write amplification (the shared §I-B definition).
    pub fn write_amplification(&self) -> f64 {
        crate::metrics::write_amplification(
            self.disk_points_written,
            self.user_points,
        )
    }
}

/// A collection of independently-buffered series over one shared store.
pub struct MultiSeriesEngine {
    store: Arc<dyn TableStore>,
    template: EngineConfig,
    series: HashMap<SeriesId, LsmEngine>,
    /// When set, every series gets a WAL and manifest under this directory,
    /// namespaced by its id.
    durable_dir: Option<PathBuf>,
    /// When set, every series' WAL and manifest writes route through this
    /// fault schedule (the shared store is wrapped separately).
    faults: Option<Arc<FaultPlan>>,
}

impl MultiSeriesEngine {
    /// Creates a multi-series engine; new series start from `template`.
    pub fn new(template: EngineConfig, store: Arc<dyn TableStore>) -> Self {
        Self {
            store,
            template,
            series: HashMap::new(),
            durable_dir: None,
            faults: None,
        }
    }

    /// In-memory-store convenience constructor.
    pub fn in_memory(template: EngineConfig) -> Self {
        Self::new(template, Arc::new(MemStore::new()))
    }

    /// Creates a durable multi-series engine: each series logs to
    /// `dir/series-<n>.wal` and records run membership in
    /// `dir/series-<n>.manifest`, so the whole collection survives a crash
    /// (see [`MultiSeriesEngine::recover`]).
    ///
    /// # Errors
    /// I/O errors creating `dir`.
    pub fn durable(
        template: EngineConfig,
        store: Arc<dyn TableStore>,
        dir: impl AsRef<Path>,
    ) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut engine = Self::new(template, store);
        engine.durable_dir = Some(dir);
        Ok(engine)
    }

    /// Rebuilds a durable multi-series engine after a crash: scans `dir` for
    /// `series-<n>.manifest` files and recovers each series through
    /// [`LsmEngine::recover_from_manifest`] (manifest → run, WAL → buffers).
    ///
    /// # Errors
    /// I/O errors scanning `dir`; manifest/WAL corruption in any series.
    pub fn recover(
        template: EngineConfig,
        store: Arc<dyn TableStore>,
        dir: impl AsRef<Path>,
    ) -> Result<Self> {
        Self::recover_with(template, store, dir, RecoveryOptions::strict())
            .map(|(engine, _)| engine)
    }

    /// [`MultiSeriesEngine::recover`] with explicit [`RecoveryOptions`]:
    /// each series recovers through
    /// [`LsmEngine::recover_from_manifest_with`] and their
    /// [`RecoveryReport`]s are folded into one fleet-wide report. Orphan GC
    /// (when requested) runs once, *after* every series has recovered,
    /// against the union of all series' live tables — the shared store makes
    /// any per-series sweep unsound.
    ///
    /// # Errors
    /// Strict mode: any corruption in any series. Salvage mode: only
    /// unrecoverable store/log failures.
    pub fn recover_with(
        template: EngineConfig,
        store: Arc<dyn TableStore>,
        dir: impl AsRef<Path>,
        options: RecoveryOptions,
    ) -> Result<(Self, RecoveryReport)> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        // GC is deferred to the fleet-wide sweep below; a per-series sweep
        // would delete the other series' tables.
        let per_series = RecoveryOptions {
            gc_orphans: false,
            ..options
        };
        let mut report = RecoveryReport::default();
        let mut series = HashMap::new();
        for entry in std::fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(id) = name
                .strip_prefix("series-")
                .and_then(|rest| rest.strip_suffix(".manifest"))
                .and_then(|n| n.parse::<u32>().ok())
            else {
                continue;
            };
            let (engine, series_report) =
                LsmEngine::recover_from_manifest_with(
                    template.clone(),
                    Arc::clone(&store),
                    dir.join(format!("series-{id}.manifest")),
                    Some(dir.join(format!("series-{id}.wal"))),
                    per_series,
                )?;
            report.merge(series_report);
            series.insert(SeriesId(id), engine);
        }
        let engine = Self {
            store,
            template,
            series,
            durable_dir: Some(dir),
            faults: None,
        };
        if options.gc_orphans {
            let mut live: HashSet<SsTableId> = HashSet::new();
            for e in engine.series.values() {
                live.extend(e.live_table_ids());
            }
            recovery::gc_orphans(engine.store.as_ref(), &live, &mut report)?;
        }
        Ok((engine, report))
    }

    /// Routes every series' WAL and manifest writes (current series and any
    /// created later) through `plan`'s fault schedule. Wrap the shared
    /// table store separately with the *same* plan for a single global op
    /// numbering.
    pub fn attach_faults(&mut self, plan: &Arc<FaultPlan>) {
        for engine in self.series.values_mut() {
            engine.attach_faults(plan);
        }
        self.faults = Some(Arc::clone(plan));
    }

    /// Audits every series' version and tables against the shared store.
    ///
    /// # Errors
    /// [`Error::Corrupt`] (or a store read error) on the first violation in
    /// any series.
    pub fn check_integrity(&self) -> Result<()> {
        for engine in self.series.values() {
            engine.check_integrity()?;
        }
        Ok(())
    }

    /// Number of series hosted so far.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// `true` before the first append.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// The hosted series ids, in ascending order.
    pub fn series_ids(&self) -> Vec<SeriesId> {
        let mut ids: Vec<SeriesId> = self.series.keys().copied().collect();
        ids.sort();
        ids
    }

    /// The engine behind `series`, if it exists.
    pub fn engine(&self, series: SeriesId) -> Option<&LsmEngine> {
        self.series.get(&series)
    }

    fn engine_entry(&mut self, series: SeriesId) -> Result<&mut LsmEngine> {
        match self.series.entry(series) {
            Entry::Occupied(slot) => Ok(slot.into_mut()),
            Entry::Vacant(slot) => {
                let mut engine = LsmEngine::new(
                    self.template.clone(),
                    Arc::clone(&self.store),
                )?;
                if let Some(dir) = &self.durable_dir {
                    engine = engine
                        .with_wal(dir.join(format!("series-{}.wal", series.0)))?
                        .with_manifest(
                            dir.join(format!("series-{}.manifest", series.0)),
                        )?;
                }
                if let Some(plan) = &self.faults {
                    engine.attach_faults(plan);
                }
                Ok(slot.insert(engine))
            }
        }
    }

    /// Writes one point into `series` (creating the series on first write).
    ///
    /// # Errors
    /// Storage failures.
    pub fn append(&mut self, series: SeriesId, p: DataPoint) -> Result<()> {
        self.engine_entry(series)?.append(p)
    }

    /// Range query against one series.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] for an unknown series; storage failures.
    pub fn query(
        &self,
        series: SeriesId,
        range: TimeRange,
    ) -> Result<(Vec<DataPoint>, QueryStats)> {
        self.series
            .get(&series)
            .ok_or_else(|| Error::InvalidConfig(format!("unknown {series}")))?
            .query(range)
    }

    /// Switches the buffering policy of one series (e.g. after a per-series
    /// tuning decision). Delegates to [`LsmEngine::set_policy`], so the
    /// buffered points migrate through the same
    /// [`PolicyBuffers::migrate`](crate::buffer::PolicyBuffers::migrate)
    /// path as every other engine.
    ///
    /// # Errors
    /// Unknown series, degenerate policies, or storage failures.
    pub fn set_policy(
        &mut self,
        series: SeriesId,
        policy: Policy,
    ) -> Result<()> {
        self.series
            .get_mut(&series)
            .ok_or_else(|| Error::InvalidConfig(format!("unknown {series}")))?
            .set_policy(policy)
    }

    /// Flushes every series.
    ///
    /// # Errors
    /// Storage failures.
    pub fn flush_all(&mut self) -> Result<()> {
        for engine in self.series.values_mut() {
            engine.flush_all()?;
        }
        Ok(())
    }

    /// Fsyncs every series' WAL (no-op for non-durable engines): after this,
    /// every acknowledged point survives a crash.
    ///
    /// # Errors
    /// I/O failures.
    pub fn sync_wal_all(&mut self) -> Result<()> {
        for engine in self.series.values_mut() {
            engine.sync_wal()?;
        }
        Ok(())
    }

    /// Aggregated counters across all series — a [`MultiMetrics`] view over
    /// the summed kernel metrics.
    pub fn metrics(&self) -> MultiMetrics {
        MultiMetrics::from_metrics(self.series.len(), &self.combined_metrics())
    }

    /// The full kernel [`Metrics`] summed across every series.
    pub fn combined_metrics(&self) -> Metrics {
        let mut sum = Metrics::default();
        for engine in self.series.values() {
            let em = engine.metrics();
            sum.user_points += em.user_points;
            sum.disk_points_written += em.disk_points_written;
            sum.disk_bytes_written += em.disk_bytes_written;
            sum.flushes += em.flushes;
            sum.compactions += em.compactions;
            sum.rewritten_points += em.rewritten_points;
            sum.tables_created += em.tables_created;
            sum.tables_deleted += em.tables_deleted;
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> EngineConfig {
        EngineConfig::conventional(8).with_sstable_points(8)
    }

    #[test]
    fn series_are_created_lazily_and_isolated() {
        let mut m = MultiSeriesEngine::in_memory(config());
        assert!(m.is_empty());
        for i in 0..20i64 {
            m.append(SeriesId(1), DataPoint::new(i * 10, i * 10, 1.0))
                .expect("append");
            m.append(SeriesId(2), DataPoint::new(i * 10, i * 10, 2.0))
                .expect("append");
        }
        assert_eq!(m.len(), 2);
        assert_eq!(m.series_ids(), vec![SeriesId(1), SeriesId(2)]);
        let (a, _) =
            m.query(SeriesId(1), TimeRange::new(0, 200)).expect("query");
        assert_eq!(a.len(), 20);
        assert!(
            a.iter().all(|p| p.value == 1.0),
            "series 1 must not see series 2"
        );
    }

    #[test]
    fn unknown_series_is_an_error() {
        let m = MultiSeriesEngine::in_memory(config());
        assert!(m.query(SeriesId(9), TimeRange::new(0, 10)).is_err());
    }

    #[test]
    fn per_series_policies_can_differ() {
        let mut m = MultiSeriesEngine::in_memory(config());
        m.append(SeriesId(1), DataPoint::new(0, 0, 0.0))
            .expect("append");
        m.append(SeriesId(2), DataPoint::new(0, 0, 0.0))
            .expect("append");
        m.set_policy(SeriesId(2), Policy::separation(8, 4).expect("policy"))
            .expect("switch");
        assert!(!m.engine(SeriesId(1)).expect("s1").policy().is_separation());
        assert!(m.engine(SeriesId(2)).expect("s2").policy().is_separation());
        assert!(m.set_policy(SeriesId(3), Policy::conventional(8)).is_err());
    }

    #[test]
    fn aggregate_metrics_sum_across_series() {
        let mut m = MultiSeriesEngine::in_memory(config());
        for s in 0..4u32 {
            for i in 0..50i64 {
                m.append(SeriesId(s), DataPoint::new(i * 10, i * 10, 0.0))
                    .expect("append");
            }
        }
        let agg = m.metrics();
        assert_eq!(agg.series, 4);
        assert_eq!(agg.user_points, 200);
        assert!(agg.disk_points_written >= 4 * 48);
        assert!((agg.write_amplification() - 1.0).abs() < 0.25);
    }

    #[test]
    fn durable_series_survive_crash_and_recover() {
        use crate::store::FileStore;

        let dir = std::env::temp_dir().join(format!(
            "seplsm-multi-durable-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store: Arc<dyn TableStore> =
                Arc::new(FileStore::open(dir.join("tables")).expect("store"));
            let mut m =
                MultiSeriesEngine::durable(config(), store, dir.join("meta"))
                    .expect("durable");
            for s in 0..3u32 {
                // 20 points per series: some flushed, the tail buffered.
                for i in 0..20i64 {
                    m.append(
                        SeriesId(s),
                        DataPoint::new(i * 10, i * 10, s as f64),
                    )
                    .expect("append");
                }
            }
            m.sync_wal_all().expect("sync");
            // Crash: dropped without flushing the buffers.
        }
        let store: Arc<dyn TableStore> =
            Arc::new(FileStore::open(dir.join("tables")).expect("store"));
        let m = MultiSeriesEngine::recover(config(), store, dir.join("meta"))
            .expect("recover");
        assert_eq!(m.len(), 3);
        for s in 0..3u32 {
            let (pts, _) = m
                .query(SeriesId(s), TimeRange::new(0, 1_000))
                .expect("query");
            assert_eq!(pts.len(), 20, "series {s} lost points");
            assert!(pts.iter().all(|p| p.value == s as f64));
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn flush_all_drains_every_series() {
        let mut m = MultiSeriesEngine::in_memory(config());
        for s in 0..3u32 {
            m.append(SeriesId(s), DataPoint::new(5, 5, 0.0))
                .expect("append");
        }
        m.flush_all().expect("flush");
        for s in 0..3u32 {
            assert_eq!(
                m.engine(SeriesId(s)).expect("series").buffered_points(),
                0
            );
            let (pts, _) =
                m.query(SeriesId(s), TimeRange::new(0, 10)).expect("query");
            assert_eq!(pts.len(), 1);
        }
    }
}
