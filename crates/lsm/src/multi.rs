//! Multi-series management: one logical store, many independent series.
//!
//! The paper's industrial setting (§VI) records *thousands* of time series
//! per vehicle, each with its own delay behaviour — IoTDB buffers and tunes
//! them independently. [`MultiSeriesEngine`] provides that shape: each
//! [`SeriesId`] gets its own MemTables, level-1 run and metrics (so policies
//! can differ per series), while all series share one [`TableStore`].
//!
//! With [`OpenOptions::durable_dir`] every series additionally gets a WAL
//! and a manifest namespaced by its id (`series-<n>.wal` /
//! `series-<n>.manifest`) inside one metadata directory;
//! [`OpenOptions::open_or_recover`] scans that directory and rebuilds every
//! series through the single-series recovery path.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crossbeam::channel;
use parking_lot::Mutex;
use seplsm_types::{DataPoint, Error, Policy, Result, TimeRange};

use crate::admission::{AdmissionOutcome, DEFAULT_FLUSH_QUEUE_DEPTH};
use crate::arbiter::{Arbiter, ArbiterConfig, ArbiterStats, Rebalance};
use crate::cache::BlockCache;
use crate::engine::{EngineConfig, LsmEngine};
use crate::fault::FaultPlan;
use crate::metrics::Metrics;
use crate::obs::{Event, Observer, ObserverHandle};
use crate::query::QueryStats;
use crate::recovery::{self, RecoveryOptions, RecoveryReport};
use crate::sstable::SsTableId;
use crate::store::{MemStore, TableStore};

/// Identifier of one time series (e.g. one sensor channel of one vehicle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeriesId(pub u32);

impl std::fmt::Display for SeriesId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "series-{}", self.0)
    }
}

/// Aggregate write counters across all series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MultiMetrics {
    /// Series hosted.
    pub series: usize,
    /// Total user points across series.
    pub user_points: u64,
    /// Total points physically written.
    pub disk_points_written: u64,
    /// Total flushes.
    pub flushes: u64,
    /// Total merge compactions.
    pub compactions: u64,
}

impl MultiMetrics {
    /// Builds the aggregate view from a summed kernel [`Metrics`].
    pub fn from_metrics(series: usize, metrics: &Metrics) -> Self {
        Self {
            series,
            user_points: metrics.user_points,
            disk_points_written: metrics.disk_points_written,
            flushes: metrics.flushes,
            compactions: metrics.compactions,
        }
    }

    /// Fleet-wide write amplification (the shared §I-B definition).
    pub fn write_amplification(&self) -> f64 {
        crate::metrics::write_amplification(
            self.disk_points_written,
            self.user_points,
        )
    }
}

/// The one way to open a [`MultiSeriesEngine`]: the fleet twin of
/// [`crate::engine::OpenOptions`], replacing the old
/// `new`/`in_memory`/`durable`/`recover*`/`attach_faults` constructor
/// family.
///
/// [`OpenOptions::open`] starts a fresh collection;
/// [`OpenOptions::open_or_recover`] scans the
/// [`OpenOptions::durable_dir`] for `series-<n>.manifest` files and
/// rebuilds every series through the single-series recovery path, folding
/// the per-series [`RecoveryReport`]s into one fleet-wide report.
#[must_use = "OpenOptions does nothing until .open()/.open_or_recover()"]
pub struct OpenOptions {
    template: EngineConfig,
    store: Option<Arc<dyn TableStore>>,
    durable_dir: Option<PathBuf>,
    recovery: RecoveryOptions,
    faults: Option<Arc<FaultPlan>>,
    observer: ObserverHandle,
    cache: Option<Arc<BlockCache>>,
    workers: usize,
    flush_queue_depth: usize,
    arbiter: Option<ArbiterConfig>,
}

impl std::fmt::Debug for OpenOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpenOptions")
            .field("policy", &self.template.policy)
            .field("durable_dir", &self.durable_dir)
            .field("recovery", &self.recovery)
            .field("faults", &self.faults.is_some())
            .field("observer", &self.observer.is_attached())
            .field("cache", &self.cache.is_some())
            .field("workers", &self.workers)
            .field("flush_queue_depth", &self.flush_queue_depth)
            .field("arbiter", &self.arbiter.is_some())
            .finish()
    }
}

impl OpenOptions {
    /// Starts a builder; new series start from `template`.
    pub fn new(template: EngineConfig) -> Self {
        Self {
            template,
            store: None,
            durable_dir: None,
            recovery: RecoveryOptions::strict(),
            faults: None,
            observer: ObserverHandle::detached(),
            cache: None,
            workers: 1,
            flush_queue_depth: DEFAULT_FLUSH_QUEUE_DEPTH,
            arbiter: None,
        }
    }

    /// Backs every series with `store`. Defaults to a fresh in-memory
    /// store.
    pub fn store(mut self, store: Arc<dyn TableStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Makes the collection durable: each series logs to
    /// `dir/series-<n>.wal` and records run membership in
    /// `dir/series-<n>.manifest`, so the whole collection survives a crash.
    pub fn durable_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durable_dir = Some(dir.into());
        self
    }

    /// Sets the [`RecoveryOptions`] used by
    /// [`OpenOptions::open_or_recover`] (default: strict).
    pub fn recovery(mut self, options: RecoveryOptions) -> Self {
        self.recovery = options;
        self
    }

    /// Routes every series' WAL and manifest writes (current series and
    /// any created later) through `plan`'s fault schedule; wrap the shared
    /// table store separately with the *same* plan.
    pub fn faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Delivers every series' storage-kernel [`Event`](crate::obs::Event)s
    /// to `sink`.
    pub fn observer(mut self, sink: Arc<dyn Observer>) -> Self {
        self.observer = ObserverHandle::attached(sink);
        self
    }

    /// Routes every series' table reads through one shared decoded-block
    /// cache: the backing store is wrapped in a
    /// [`CachedStore`](crate::store::CachedStore) once, so the whole fleet
    /// competes for (and benefits from) the same capacity budget, and any
    /// series' compaction strictly invalidates the blocks of the tables it
    /// deletes.
    pub fn cache(mut self, cache: Arc<BlockCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Fans [`MultiSeriesEngine::flush_all`] across up to `n` worker
    /// threads, one series at a time per worker (default 1 = fully
    /// sequential, never spawning). Each series' kernel stays
    /// single-threaded, so per-series results and summed metrics are
    /// identical for every worker count; only wall-clock changes.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Bounds the flush queue: [`MultiSeriesEngine::flush_all`] admits at
    /// most `n` series into the pool per wave; further series wait for the
    /// next wave, each extra wave surfacing as one
    /// [`AdmissionOutcome::Delayed`] tick (default
    /// [`DEFAULT_FLUSH_QUEUE_DEPTH`]). The wave schedule depends only on
    /// the series set and `n` — never on the worker count — so traces stay
    /// identical across worker counts.
    pub fn flush_queue_depth(mut self, n: usize) -> Self {
        self.flush_queue_depth = n.max(1);
        self
    }

    /// Arbitrates memory across the fleet: an [`Arbiter`] splits
    /// `config`'s global point budget between every series' MemTables and
    /// the block-cache share, growing hot series and shrinking cold ones
    /// toward the floor. Series are admitted at the floor on first append
    /// (the template policy's shape is preserved, rescaled via
    /// [`Policy::resized`]); every rebalance emits
    /// [`Event::HeatSample`]s and one [`Event::ArbiterRebalance`] from
    /// the deterministic append path.
    pub fn arbiter(mut self, config: ArbiterConfig) -> Self {
        self.arbiter = Some(config);
        self
    }

    fn store_or_default(
        store: Option<Arc<dyn TableStore>>,
    ) -> Arc<dyn TableStore> {
        store.unwrap_or_else(|| Arc::new(MemStore::new()))
    }

    /// Opens a fresh collection (creating the durable directory if one is
    /// configured).
    ///
    /// # Errors
    /// I/O errors creating the durable directory.
    pub fn open(self) -> Result<MultiSeriesEngine> {
        let store = crate::engine::OpenOptions::wrap_cache(
            Self::store_or_default(self.store),
            self.cache,
            &self.observer,
        );
        let mut engine = MultiSeriesEngine::new(self.template, store);
        if let Some(dir) = self.durable_dir {
            std::fs::create_dir_all(&dir)?;
            engine.durable_dir = Some(dir);
        }
        engine.obs = self.observer;
        engine.workers = self.workers;
        engine.flush_queue_depth = self.flush_queue_depth;
        engine.install_arbiter(self.arbiter)?;
        engine.install_faults(self.faults);
        Ok(engine)
    }

    /// Rebuilds a durable collection after a crash: every
    /// `series-<n>.manifest` under the [`OpenOptions::durable_dir`] is
    /// recovered through the single-series path (manifest → run, WAL →
    /// buffers). Orphan GC (when requested) runs once, *after* every series
    /// has recovered, against the union of all series' live tables — the
    /// shared store makes any per-series sweep unsound.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] when no durable directory is configured;
    /// strict mode: any corruption in any series; salvage mode: only
    /// unrecoverable store/log failures.
    pub fn open_or_recover(
        self,
    ) -> Result<(MultiSeriesEngine, RecoveryReport)> {
        let Some(dir) = self.durable_dir else {
            return Err(Error::InvalidConfig(
                "multi-series recovery scans the durable directory: \
                 configure OpenOptions::durable_dir"
                    .into(),
            ));
        };
        let store = crate::engine::OpenOptions::wrap_cache(
            Self::store_or_default(self.store),
            self.cache,
            &self.observer,
        );
        let (mut engine, report) = MultiSeriesEngine::recover_with(
            self.template,
            store,
            dir,
            self.recovery,
            self.observer,
        )?;
        engine.workers = self.workers;
        engine.flush_queue_depth = self.flush_queue_depth;
        engine.install_arbiter(self.arbiter)?;
        engine.install_faults(self.faults);
        Ok((engine, report))
    }
}

/// A collection of independently-buffered series over one shared store.
pub struct MultiSeriesEngine {
    store: Arc<dyn TableStore>,
    template: EngineConfig,
    series: HashMap<SeriesId, LsmEngine>,
    /// When set, every series gets a WAL and manifest under this directory,
    /// namespaced by its id.
    durable_dir: Option<PathBuf>,
    /// When set, every series' WAL and manifest writes route through this
    /// fault schedule (the shared store is wrapped separately).
    faults: Option<Arc<FaultPlan>>,
    /// Event sink cloned into every series engine (current and future).
    obs: ObserverHandle,
    /// Upper bound on flush worker threads (1 = sequential, no spawning).
    workers: usize,
    /// At most this many series are outstanding in the flush pool at once.
    flush_queue_depth: usize,
    /// Cumulative flush waves (and inline fallbacks) that had to wait on
    /// the depth-bounded queue — the fleet-level `Delayed` count.
    fleet_delayed_waves: u64,
    /// The fleet memory arbiter, when opened with
    /// [`OpenOptions::arbiter`]. Behind a `Mutex` only because the
    /// (read-only) query path records heat; the lock is always dropped
    /// before any engine I/O, and rebalances run exclusively on the
    /// `&mut self` append path.
    arbiter: Option<Mutex<Arbiter>>,
    /// Cumulative online policy switches applied through
    /// [`MultiSeriesEngine::retune`].
    fleet_retunes: u64,
}

impl MultiSeriesEngine {
    /// Creates a multi-series engine; new series start from `template`.
    /// Shorthand for [`OpenOptions::new`]`(template).store(store).open()`.
    pub fn new(template: EngineConfig, store: Arc<dyn TableStore>) -> Self {
        Self {
            store,
            template,
            series: HashMap::new(),
            durable_dir: None,
            faults: None,
            obs: ObserverHandle::detached(),
            workers: 1,
            flush_queue_depth: DEFAULT_FLUSH_QUEUE_DEPTH,
            fleet_delayed_waves: 0,
            arbiter: None,
            fleet_retunes: 0,
        }
    }

    /// In-memory-store convenience constructor.
    pub fn in_memory(template: EngineConfig) -> Self {
        Self::new(template, Arc::new(MemStore::new()))
    }

    /// [`MultiSeriesEngine::recover_with`]: each series recovers through
    /// the single-series manifest path and their [`RecoveryReport`]s are
    /// folded into one fleet-wide report.
    pub(crate) fn recover_with(
        template: EngineConfig,
        store: Arc<dyn TableStore>,
        dir: impl AsRef<Path>,
        options: RecoveryOptions,
        obs: ObserverHandle,
    ) -> Result<(Self, RecoveryReport)> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        // GC is deferred to the fleet-wide sweep below; a per-series sweep
        // would delete the other series' tables.
        let per_series = RecoveryOptions {
            gc_orphans: false,
            ..options
        };
        let mut report = RecoveryReport::default();
        let mut series = HashMap::new();
        for entry in std::fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(id) = name
                .strip_prefix("series-")
                .and_then(|rest| rest.strip_suffix(".manifest"))
                .and_then(|n| n.parse::<u32>().ok())
            else {
                continue;
            };
            let (engine, series_report) =
                LsmEngine::recover_from_manifest_with(
                    template.clone(),
                    Arc::clone(&store),
                    dir.join(format!("series-{id}.manifest")),
                    Some(dir.join(format!("series-{id}.wal"))),
                    per_series,
                    obs.clone(),
                )?;
            report.merge(series_report);
            series.insert(SeriesId(id), engine);
        }
        let engine = Self {
            store,
            template,
            series,
            durable_dir: Some(dir),
            faults: None,
            obs,
            workers: 1,
            flush_queue_depth: DEFAULT_FLUSH_QUEUE_DEPTH,
            fleet_delayed_waves: 0,
            arbiter: None,
            fleet_retunes: 0,
        };
        if options.gc_orphans {
            let mut live: HashSet<SsTableId> = HashSet::new();
            for e in engine.series.values() {
                live.extend(e.live_table_ids());
            }
            recovery::gc_orphans(
                engine.store.as_ref(),
                &live,
                &mut report,
                &engine.obs,
            )?;
        }
        Ok((engine, report))
    }

    /// Installs the fleet memory arbiter. Series already hosted (the
    /// recovery path) stay at their recovered capacity until their first
    /// post-open append admits them into arbitration.
    fn install_arbiter(&mut self, config: Option<ArbiterConfig>) -> Result<()> {
        if let Some(config) = config {
            self.arbiter = Some(Mutex::new(Arbiter::new(config)?));
        }
        Ok(())
    }

    /// Routes every series' WAL and manifest writes (current series and any
    /// created later) through `plan`'s fault schedule, reporting injections
    /// to the collection's observer.
    fn install_faults(&mut self, plan: Option<Arc<FaultPlan>>) {
        let Some(plan) = plan else { return };
        plan.set_observer(self.obs.clone());
        for engine in self.series.values_mut() {
            engine.attach_faults(&plan);
        }
        self.faults = Some(plan);
    }

    /// Audits every series' version and tables against the shared store.
    ///
    /// # Errors
    /// [`Error::Corrupt`] (or a store read error) on the first violation in
    /// any series.
    pub fn check_integrity(&self) -> Result<()> {
        for engine in self.series.values() {
            engine.check_integrity()?;
        }
        Ok(())
    }

    /// Number of series hosted so far.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// `true` before the first append.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// The hosted series ids, in ascending order.
    pub fn series_ids(&self) -> Vec<SeriesId> {
        let mut ids: Vec<SeriesId> = self.series.keys().copied().collect();
        ids.sort();
        ids
    }

    /// The engine behind `series`, if it exists.
    pub fn engine(&self, series: SeriesId) -> Option<&LsmEngine> {
        self.series.get(&series)
    }

    fn engine_entry(&mut self, series: SeriesId) -> Result<&mut LsmEngine> {
        match self.series.entry(series) {
            Entry::Occupied(slot) => Ok(slot.into_mut()),
            Entry::Vacant(slot) => {
                let mut engine = LsmEngine::new(
                    self.template.clone(),
                    Arc::clone(&self.store),
                )?;
                engine.set_observer(self.obs.clone());
                if let Some(dir) = &self.durable_dir {
                    engine = engine
                        .with_wal(dir.join(format!("series-{}.wal", series.0)))?
                        .with_manifest(
                            dir.join(format!("series-{}.manifest", series.0)),
                        )?;
                }
                if let Some(plan) = &self.faults {
                    engine.attach_faults(plan);
                }
                Ok(slot.insert(engine))
            }
        }
    }

    /// Writes one point into `series` (creating the series on first write)
    /// and reports the admission outcome observed by that series' engine.
    ///
    /// With an [`OpenOptions::arbiter`] configured the append first ticks
    /// the arbiter (admitting a new series at the floor, or erroring when
    /// the budget cannot host it), and any due [`Rebalance`] plan is
    /// applied — and its events emitted — right after the point lands,
    /// still on this single-threaded path, so seeded traces stay
    /// byte-identical across worker counts.
    ///
    /// # Errors
    /// Arbiter budget exhaustion for a brand-new series; storage failures.
    pub fn append(
        &mut self,
        series: SeriesId,
        p: DataPoint,
    ) -> Result<AdmissionOutcome> {
        let mut plan = None;
        let mut admitted = None;
        if let Some(arb) = self.arbiter.as_mut() {
            let fresh = !self.series.contains_key(&series);
            let arb = arb.get_mut();
            plan = arb.record_append(series.0)?;
            if fresh {
                admitted = arb.capacity_of(series.0);
            }
        }
        let engine = self.engine_entry(series)?;
        if let Some(capacity) = admitted {
            // A freshly admitted series starts at its arbiter-assigned
            // capacity, keeping the template policy's shape.
            let policy = engine.policy().resized(capacity as usize)?;
            engine.set_policy(policy)?;
        }
        let outcome = engine.append(p)?;
        if let Some(plan) = plan {
            self.apply_rebalance(&plan)?;
        }
        Ok(outcome)
    }

    /// Applies one arbiter [`Rebalance`]: every decayed heat is sampled as
    /// an [`Event::HeatSample`] (ascending series id), each resized series
    /// migrates to its rescaled policy through the normal
    /// [`LsmEngine::set_policy`] path, and one [`Event::ArbiterRebalance`]
    /// closes the round.
    fn apply_rebalance(&mut self, plan: &Rebalance) -> Result<()> {
        for &(series, heat) in &plan.heats {
            self.obs.emit(|| Event::HeatSample {
                series: u64::from(series),
                heat,
            });
        }
        let mut resized = 0u64;
        for assignment in &plan.assignments {
            let id = SeriesId(assignment.series);
            if let Some(engine) = self.series.get_mut(&id) {
                let policy =
                    engine.policy().resized(assignment.capacity as usize)?;
                engine.set_policy(policy)?;
                resized += 1;
            }
        }
        self.obs.emit(|| Event::ArbiterRebalance {
            round: plan.round,
            resized,
            cache_share: plan.cache_share,
        });
        Ok(())
    }

    /// Range query against one series. With an arbiter configured the
    /// query also heats the series (the lock is released before any
    /// engine I/O); rebalances still fire only from the append path.
    ///
    /// # Errors
    /// [`Error::UnknownSeries`] for an unknown series; storage failures.
    pub fn query(
        &self,
        series: SeriesId,
        range: TimeRange,
    ) -> Result<(Vec<DataPoint>, QueryStats)> {
        let engine = self
            .series
            .get(&series)
            .ok_or(Error::UnknownSeries(series.0))?;
        if let Some(arb) = &self.arbiter {
            arb.lock().record_query(series.0);
        }
        engine.query(range)
    }

    /// Aggregation pushdown against one series: delegates to
    /// [`LsmEngine::aggregate`], folding v3 index pre-aggregates where the
    /// plan allows and decoding the rest. Heats the series exactly like
    /// [`query`](Self::query) — a pushed-down aggregate is still a read
    /// for the memory arbiter.
    ///
    /// # Errors
    /// [`Error::UnknownSeries`] for an unknown series; storage failures.
    pub fn aggregate(
        &self,
        series: SeriesId,
        range: TimeRange,
    ) -> Result<(crate::query::Agg, QueryStats)> {
        let engine = self
            .series
            .get(&series)
            .ok_or(Error::UnknownSeries(series.0))?;
        if let Some(arb) = &self.arbiter {
            arb.lock().record_query(series.0);
        }
        engine.aggregate(range)
    }

    /// Downsampling pushdown against one series: delegates to
    /// [`LsmEngine::downsample`] with the same arbiter heating as
    /// [`query`](Self::query).
    ///
    /// # Errors
    /// [`Error::UnknownSeries`], a non-positive `bucket_width`, or storage
    /// failures.
    pub fn downsample(
        &self,
        series: SeriesId,
        range: TimeRange,
        bucket_width: i64,
    ) -> Result<(Vec<crate::query::Bucket>, QueryStats)> {
        let engine = self
            .series
            .get(&series)
            .ok_or(Error::UnknownSeries(series.0))?;
        if let Some(arb) = &self.arbiter {
            arb.lock().record_query(series.0);
        }
        engine.downsample(range, bucket_width)
    }

    /// Switches the buffering policy of one series (e.g. after a per-series
    /// tuning decision). Delegates to [`LsmEngine::set_policy`], so the
    /// buffered points migrate through the same
    /// [`PolicyBuffers::migrate`](crate::buffer::PolicyBuffers::migrate)
    /// path as every other engine.
    ///
    /// # Errors
    /// [`Error::UnknownSeries`], degenerate policies, or storage failures.
    pub fn set_policy(
        &mut self,
        series: SeriesId,
        policy: Policy,
    ) -> Result<()> {
        self.series
            .get_mut(&series)
            .ok_or(Error::UnknownSeries(series.0))?
            .set_policy(policy)
    }

    /// An *online* policy switch decided by a per-series tuner: exactly
    /// [`MultiSeriesEngine::set_policy`], plus the fleet-level retune
    /// counter and one [`Event::PolicyRetuned`] witness (`n_seq` is 0 for
    /// `π_c`). The adaptive fleet controller in `seplsm-core` calls this
    /// whenever drift makes Algorithm 1 pick a new policy for a series.
    ///
    /// # Errors
    /// [`Error::UnknownSeries`], degenerate policies, or storage failures.
    pub fn retune(&mut self, series: SeriesId, policy: Policy) -> Result<()> {
        self.series
            .get_mut(&series)
            .ok_or(Error::UnknownSeries(series.0))?
            .set_policy(policy)?;
        self.fleet_retunes += 1;
        self.obs.emit(|| Event::PolicyRetuned {
            series: u64::from(series.0),
            separation: policy.is_separation(),
            n_seq: match policy {
                Policy::Separation { seq_capacity, .. } => seq_capacity as u64,
                Policy::Conventional { .. } => 0,
            },
        });
        Ok(())
    }

    /// Cumulative online policy switches applied through
    /// [`MultiSeriesEngine::retune`].
    pub fn retunes(&self) -> u64 {
        self.fleet_retunes
    }

    /// The arbiter's counters, when one is configured.
    pub fn arbiter_stats(&self) -> Option<ArbiterStats> {
        self.arbiter.as_ref().map(|a| a.lock().stats())
    }

    /// The arbiter-assigned MemTable capacity of `series`, when an
    /// arbiter is configured and the series has been admitted.
    pub fn series_capacity(&self, series: SeriesId) -> Option<u64> {
        self.arbiter
            .as_ref()
            .and_then(|a| a.lock().capacity_of(series.0))
    }

    /// The configured flush worker bound (1 = sequential).
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// The configured flush queue depth bound (series per wave).
    pub fn flush_queue_depth(&self) -> usize {
        self.flush_queue_depth
    }

    /// Cumulative flush waves (and inline fallbacks) that waited on the
    /// depth-bounded queue since open — the fleet-level `Delayed` count.
    pub fn fleet_delayed_waves(&self) -> u64 {
        self.fleet_delayed_waves
    }

    /// Flushes every series in ascending [`SeriesId`] order, admitting at
    /// most [`OpenOptions::flush_queue_depth`] series into the flush queue
    /// per *wave*. Each wave drains completely before the next is admitted;
    /// every wave after the first counts one logical tick of backpressure,
    /// emits [`Event::AdmissionDelayed`], and turns the returned outcome
    /// into [`AdmissionOutcome::Delayed`] — callers observe queue pressure
    /// as typed admission feedback, never as silent inline degradation.
    ///
    /// With [`OpenOptions::workers`] above 1 (and more than one series to
    /// flush) the series of a wave fan out across a bounded pool of
    /// short-lived worker threads. Each series is still flushed by exactly
    /// one thread, and each worker emits into a private per-series capture
    /// that the wave barrier replays in ascending id order, so the wave
    /// schedule, per-series contents, summed metrics *and the emitted
    /// event trace* are identical for every worker count; only wall-clock
    /// changes. (Durable fleets are the one caveat: WAL and manifest
    /// handles clone the sink at attach time, so their events bypass the
    /// capture.) With the default of 1 worker no thread is ever spawned.
    ///
    /// # Errors
    /// Storage failures. The sequential path stops at the first failing
    /// series; the pooled path gives every series its flush attempt and
    /// returns the error of the lowest failing [`SeriesId`] (all engines
    /// are retained either way).
    pub fn flush_all(&mut self) -> Result<AdmissionOutcome> {
        let ids = self.series_ids();
        let pooled = self.workers > 1 && ids.len() > 1;
        let mut delayed = 0u64;
        let mut first_error: Option<Error> = None;
        for (w, wave) in ids.chunks(self.flush_queue_depth.max(1)).enumerate() {
            if w > 0 {
                // The queue is full: this wave waited for the previous one
                // to drain. One logical tick per extra wave, emitted from
                // the single-threaded dispatcher so the trace position is
                // the same for every worker count.
                delayed += 1;
                self.fleet_delayed_waves += 1;
                self.obs.emit(|| Event::AdmissionDelayed { ticks: 1 });
            }
            if pooled {
                if let (None, Err(err)) =
                    (&first_error, self.flush_wave_pooled(wave, &mut delayed))
                {
                    first_error = Some(err);
                }
            } else {
                for id in wave {
                    if let Some(engine) = self.series.get_mut(id) {
                        engine.flush_all()?;
                    }
                }
            }
        }
        if let Some(err) = first_error {
            return Err(err);
        }
        if delayed > 0 {
            Ok(AdmissionOutcome::Delayed { ticks: delayed })
        } else {
            Ok(AdmissionOutcome::Admitted)
        }
    }

    /// The multi-worker arm of one [`MultiSeriesEngine::flush_all`] wave:
    /// engines are handed out by value to `min(workers, wave)` named
    /// threads (`seplsm-fleet-<w>`) round-robin in ascending id order,
    /// flushed, and handed back over a shared result channel — the wave
    /// barrier. Vendored-crossbeam bounded channels are sized so no send
    /// ever blocks; a send or spawn failure surfaces as one `Delayed` tick
    /// (with an [`Event::AdmissionDelayed`]) before the series flushes
    /// inline on the caller thread, so no engine is ever lost and no
    /// backpressure goes unreported.
    fn flush_wave_pooled(
        &mut self,
        wave: &[SeriesId],
        delayed: &mut u64,
    ) -> Result<()> {
        let total = wave.len();
        let worker_count = self.workers.min(total);
        let capturing = self.obs.is_attached();
        let (done_tx, done_rx) =
            channel::bounded::<(SeriesId, LsmEngine, Result<()>)>(total);
        let mut workers = Vec::new();
        let mut handles = Vec::new();
        for w in 0..worker_count {
            let (work_tx, work_rx) =
                channel::bounded::<(SeriesId, LsmEngine)>(total);
            let done = done_tx.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("seplsm-fleet-{w}"))
                .spawn(move || {
                    for (id, mut engine) in work_rx {
                        let outcome = engine.flush_all();
                        if done.send((id, engine, outcome)).is_err() {
                            // Caller is gone; nothing left to hand back to.
                            break;
                        }
                    }
                });
            match spawned {
                // The channel is still empty on spawn failure, so dropping
                // the pair loses nothing; the remaining workers (or the
                // inline fallback below) absorb the load.
                Ok(handle) => {
                    workers.push(work_tx);
                    handles.push(handle);
                }
                Err(_) => drop(work_tx),
            }
        }
        let mut captures: Vec<(SeriesId, Arc<CaptureSink>)> = Vec::new();
        let mut finished: Vec<(SeriesId, LsmEngine, Result<()>)> =
            Vec::with_capacity(total);
        let mut dispatched = 0usize;
        for (i, id) in wave.iter().copied().enumerate() {
            let Some(mut engine) = self.series.remove(&id) else {
                continue;
            };
            if capturing {
                // Worker threads emit into a private per-series capture;
                // the barrier replays them in ascending id order below, so
                // the observed trace never depends on thread scheduling.
                let capture = Arc::new(CaptureSink::default());
                engine
                    .set_observer(ObserverHandle::attached(
                        Arc::clone(&capture) as Arc<dyn Observer>,
                    ));
                captures.push((id, capture));
            }
            let mut item = (id, engine);
            if !workers.is_empty() {
                let slot = i % workers.len();
                match workers[slot].try_send(item) {
                    Ok(()) => {
                        dispatched += 1;
                        continue;
                    }
                    Err(err) => {
                        // Full (cannot happen: capacity = wave size) or the
                        // worker died; recover the engine and run inline.
                        item = match err {
                            channel::TrySendError::Full(it)
                            | channel::TrySendError::Disconnected(it) => it,
                        };
                    }
                }
            }
            // The queue would not take the series: surface the
            // backpressure as one `Delayed` tick — never a silent inline
            // degrade — then flush on this thread.
            *delayed += 1;
            self.fleet_delayed_waves += 1;
            self.obs.emit(|| Event::AdmissionDelayed { ticks: 1 });
            let (id, mut engine) = item;
            let outcome = engine.flush_all();
            finished.push((id, engine, outcome));
        }
        drop(workers);
        drop(done_tx);
        // The wave barrier: every dispatched series hands its engine back
        // before this wave completes and the next may enter the queue.
        finished.extend(done_rx.into_iter().take(dispatched));
        for handle in handles {
            // Workers hold no engines once their channels drain; a panicked
            // worker (impossible for a panic-free kernel) only loses its
            // in-flight series, which the length check below surfaces.
            let _ = handle.join();
        }
        finished.sort_by_key(|(id, _, _)| *id);
        let mut first_error = None;
        let returned = finished.len();
        for (id, mut engine, outcome) in finished {
            if capturing {
                engine.set_observer(self.obs.clone());
            }
            self.series.insert(id, engine);
            if let (None, Err(err)) = (&first_error, outcome) {
                first_error = Some(err);
            }
        }
        for (_, capture) in captures {
            capture.replay_into(&self.obs);
        }
        if let Some(err) = first_error {
            return Err(err);
        }
        if returned != total {
            return Err(Error::Corrupt(format!(
                "flush pool returned {returned} of {total} series"
            )));
        }
        Ok(())
    }

    /// Fsyncs every series' WAL (no-op for non-durable engines), in
    /// ascending [`SeriesId`] order: after this, every acknowledged point
    /// survives a crash.
    ///
    /// # Errors
    /// I/O failures.
    pub fn sync_wal_all(&mut self) -> Result<()> {
        for id in self.series_ids() {
            if let Some(engine) = self.series.get_mut(&id) {
                engine.sync_wal()?;
            }
        }
        Ok(())
    }

    /// Aggregated counters across all series — a [`MultiMetrics`] view over
    /// the summed kernel metrics.
    pub fn metrics(&self) -> MultiMetrics {
        MultiMetrics::from_metrics(self.series.len(), &self.combined_metrics())
    }

    /// The full kernel [`Metrics`] summed across every series, plus the
    /// fleet-level flush-queue delays (which belong to no single series)
    /// folded into `delayed_appends`/`stall_ticks`.
    pub fn combined_metrics(&self) -> Metrics {
        let mut sum = Metrics::default();
        for engine in self.series.values() {
            let em = engine.metrics();
            sum.user_points += em.user_points;
            sum.disk_points_written += em.disk_points_written;
            sum.disk_bytes_written += em.disk_bytes_written;
            sum.flushes += em.flushes;
            sum.compactions += em.compactions;
            sum.rewritten_points += em.rewritten_points;
            sum.tables_created += em.tables_created;
            sum.tables_deleted += em.tables_deleted;
            sum.delayed_appends += em.delayed_appends;
            sum.write_stalls += em.write_stalls;
            sum.stall_ticks += em.stall_ticks;
            sum.paced_ticks += em.paced_ticks;
            sum.retry_backoffs += em.retry_backoffs;
        }
        sum.delayed_appends += self.fleet_delayed_waves;
        sum.stall_ticks += self.fleet_delayed_waves;
        sum
    }
}

/// Buffers one series' kernel events while a flush worker owns its engine;
/// the wave barrier replays them into the shared sink in ascending
/// [`SeriesId`] order, making pooled flush traces independent of thread
/// scheduling and worker count.
#[derive(Default)]
struct CaptureSink {
    events: Mutex<Vec<Event>>,
}

impl CaptureSink {
    /// Drains the captured events into `obs`, preserving emission order.
    fn replay_into(&self, obs: &ObserverHandle) {
        let events = std::mem::take(&mut *self.events.lock());
        for event in events {
            obs.emit(move || event);
        }
    }
}

impl Observer for CaptureSink {
    fn observe(&self, event: &Event) {
        self.events.lock().push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> EngineConfig {
        EngineConfig::new(Policy::conventional(8)).with_sstable_points(8)
    }

    #[test]
    fn series_are_created_lazily_and_isolated() {
        let mut m = MultiSeriesEngine::in_memory(config());
        assert!(m.is_empty());
        for i in 0..20i64 {
            m.append(SeriesId(1), DataPoint::new(i * 10, i * 10, 1.0))
                .expect("append");
            m.append(SeriesId(2), DataPoint::new(i * 10, i * 10, 2.0))
                .expect("append");
        }
        assert_eq!(m.len(), 2);
        assert_eq!(m.series_ids(), vec![SeriesId(1), SeriesId(2)]);
        let (a, _) =
            m.query(SeriesId(1), TimeRange::new(0, 200)).expect("query");
        assert_eq!(a.len(), 20);
        assert!(
            a.iter().all(|p| p.value == 1.0),
            "series 1 must not see series 2"
        );
    }

    #[test]
    fn unknown_series_is_an_error() {
        let m = MultiSeriesEngine::in_memory(config());
        assert!(m.query(SeriesId(9), TimeRange::new(0, 10)).is_err());
    }

    #[test]
    fn per_series_policies_can_differ() {
        let mut m = MultiSeriesEngine::in_memory(config());
        m.append(SeriesId(1), DataPoint::new(0, 0, 0.0))
            .expect("append");
        m.append(SeriesId(2), DataPoint::new(0, 0, 0.0))
            .expect("append");
        m.set_policy(SeriesId(2), Policy::separation(8, 4).expect("policy"))
            .expect("switch");
        assert!(!m.engine(SeriesId(1)).expect("s1").policy().is_separation());
        assert!(m.engine(SeriesId(2)).expect("s2").policy().is_separation());
        assert!(m.set_policy(SeriesId(3), Policy::conventional(8)).is_err());
    }

    #[test]
    fn fleet_aggregate_and_downsample_push_down_per_series() {
        let mut m = MultiSeriesEngine::in_memory(config());
        for i in 0..32i64 {
            m.append(SeriesId(1), DataPoint::new(i * 10, i * 10, i as f64))
                .expect("append");
            m.append(SeriesId(2), DataPoint::new(i * 10, i * 10, -1.0))
                .expect("append");
        }
        let range = TimeRange::new(0, 310);
        let (agg, stats) = m.aggregate(SeriesId(1), range).expect("agg");
        assert_eq!(agg.count, 32);
        assert_eq!(agg.max, 31.0);
        assert!(stats.blocks_folded > 0, "flushed v3 tables must fold");
        // Series isolation holds on the pushdown path too.
        let (other, _) = m.aggregate(SeriesId(2), range).expect("agg");
        assert_eq!((other.min, other.max), (-1.0, -1.0));
        let (buckets, _) =
            m.downsample(SeriesId(1), range, 80).expect("downsample");
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0].0, 0);
        assert_eq!(buckets[0].1.count, 8);
        assert!(matches!(
            m.aggregate(SeriesId(9), range),
            Err(Error::UnknownSeries(9))
        ));
        assert!(matches!(
            m.downsample(SeriesId(9), range, 10),
            Err(Error::UnknownSeries(9))
        ));
    }

    #[test]
    fn unknown_series_errors_are_typed() {
        let mut m = MultiSeriesEngine::in_memory(config());
        m.append(SeriesId(1), DataPoint::new(0, 0, 0.0))
            .expect("append");
        let q = m.query(SeriesId(9), TimeRange::new(0, 10));
        assert!(matches!(q, Err(Error::UnknownSeries(9))));
        let s = m.set_policy(SeriesId(9), Policy::conventional(8));
        assert!(matches!(s, Err(Error::UnknownSeries(9))));
        let r = m.retune(SeriesId(9), Policy::conventional(8));
        assert!(matches!(r, Err(Error::UnknownSeries(9))));
    }

    #[test]
    fn retune_switches_policy_and_emits_a_witness() {
        let ring = crate::obs::RingBufferSink::new(1 << 12);
        let mut m = OpenOptions::new(config())
            .observer(ring.clone())
            .open()
            .expect("open");
        m.append(SeriesId(4), DataPoint::new(0, 0, 0.0))
            .expect("append");
        assert_eq!(m.retunes(), 0);
        m.retune(SeriesId(4), Policy::separation(8, 5).expect("policy"))
            .expect("retune");
        assert!(m.engine(SeriesId(4)).expect("s4").policy().is_separation());
        assert_eq!(m.retunes(), 1);
        m.retune(SeriesId(4), Policy::conventional(8))
            .expect("retune back");
        assert_eq!(m.retunes(), 2);
        let retuned: Vec<(u64, bool, u64)> = ring
            .events()
            .into_iter()
            .filter_map(|e| match e {
                Event::PolicyRetuned {
                    series,
                    separation,
                    n_seq,
                } => Some((series, separation, n_seq)),
                _ => None,
            })
            .collect();
        assert_eq!(retuned, vec![(4, true, 5), (4, false, 0)]);
    }

    #[test]
    fn arbiter_grows_hot_series_and_shrinks_cold_ones() {
        let ring = crate::obs::RingBufferSink::new(1 << 16);
        let mut m = OpenOptions::new(config())
            .observer(ring.clone())
            .arbiter(
                ArbiterConfig::new(256)
                    .with_floor(8)
                    .with_rebalance_every(64),
            )
            .open()
            .expect("open");
        // Two series, then a heavily skewed append stream onto series 0.
        m.append(SeriesId(0), DataPoint::new(0, 0, 0.0))
            .expect("append");
        m.append(SeriesId(1), DataPoint::new(0, 0, 1.0))
            .expect("append");
        for i in 1..400i64 {
            m.append(SeriesId(0), DataPoint::new(i * 10, i * 10, 0.0))
                .expect("append");
            if i % 20 == 0 {
                m.append(SeriesId(1), DataPoint::new(i * 10, i * 10, 1.0))
                    .expect("append");
            }
        }
        let hot = m.series_capacity(SeriesId(0)).expect("hot");
        let cold = m.series_capacity(SeriesId(1)).expect("cold");
        assert!(hot > cold, "hot={hot} cold={cold}");
        // The engines' actual buffer policies track the assignments.
        assert_eq!(
            m.engine(SeriesId(0)).expect("s0").policy().total_capacity() as u64,
            hot
        );
        assert_eq!(
            m.engine(SeriesId(1)).expect("s1").policy().total_capacity() as u64,
            cold
        );
        let stats = m.arbiter_stats().expect("stats");
        assert!(stats.rounds >= 1);
        // Budget partition: capacities + cache share = budget.
        assert_eq!(hot + cold + stats.cache_share, 256);
        // The rounds were witnessed by typed events, heat samples first.
        let events = ring.events();
        let rebalances = events
            .iter()
            .filter(|e| matches!(e, Event::ArbiterRebalance { .. }))
            .count() as u64;
        assert_eq!(rebalances, stats.rounds);
        assert!(events.iter().any(|e| matches!(e, Event::HeatSample { .. })));
        // Data is intact after the policy migrations.
        let (pts, _) = m
            .query(SeriesId(0), TimeRange::new(0, 4_000))
            .expect("query");
        assert_eq!(pts.len(), 400);
    }

    #[test]
    fn arbiter_rejects_series_beyond_the_budget() {
        let mut m = OpenOptions::new(config())
            .arbiter(ArbiterConfig::new(16).with_floor(8))
            .open()
            .expect("open");
        m.append(SeriesId(0), DataPoint::new(0, 0, 0.0))
            .expect("append");
        m.append(SeriesId(1), DataPoint::new(0, 0, 0.0))
            .expect("append");
        let err = m
            .append(SeriesId(2), DataPoint::new(0, 0, 0.0))
            .expect_err("third series must not fit");
        assert!(err.to_string().contains("budget exhausted"));
        // The over-budget series was never created.
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn aggregate_metrics_sum_across_series() {
        let mut m = MultiSeriesEngine::in_memory(config());
        for s in 0..4u32 {
            for i in 0..50i64 {
                m.append(SeriesId(s), DataPoint::new(i * 10, i * 10, 0.0))
                    .expect("append");
            }
        }
        let agg = m.metrics();
        assert_eq!(agg.series, 4);
        assert_eq!(agg.user_points, 200);
        assert!(agg.disk_points_written >= 4 * 48);
        assert!((agg.write_amplification() - 1.0).abs() < 0.25);
    }

    #[test]
    fn durable_series_survive_crash_and_recover() {
        use crate::store::FileStore;

        let dir = std::env::temp_dir().join(format!(
            "seplsm-multi-durable-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store: Arc<dyn TableStore> =
                Arc::new(FileStore::open(dir.join("tables")).expect("store"));
            let mut m = OpenOptions::new(config())
                .store(store)
                .durable_dir(dir.join("meta"))
                .open()
                .expect("durable");
            for s in 0..3u32 {
                // 20 points per series: some flushed, the tail buffered.
                for i in 0..20i64 {
                    m.append(
                        SeriesId(s),
                        DataPoint::new(i * 10, i * 10, s as f64),
                    )
                    .expect("append");
                }
            }
            m.sync_wal_all().expect("sync");
            // Crash: dropped without flushing the buffers.
        }
        let store: Arc<dyn TableStore> =
            Arc::new(FileStore::open(dir.join("tables")).expect("store"));
        let (m, _report) = OpenOptions::new(config())
            .store(store)
            .durable_dir(dir.join("meta"))
            .open_or_recover()
            .expect("recover");
        assert_eq!(m.len(), 3);
        for s in 0..3u32 {
            let (pts, _) = m
                .query(SeriesId(s), TimeRange::new(0, 1_000))
                .expect("query");
            assert_eq!(pts.len(), 20, "series {s} lost points");
            assert!(pts.iter().all(|p| p.value == s as f64));
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// Builds a fleet with `workers` flush workers and feeds it the same
    /// deterministic out-of-order workload, then flushes.
    fn flushed_fleet(
        workers: usize,
        points: &[(u32, i64)],
    ) -> MultiSeriesEngine {
        let mut m = OpenOptions::new(config())
            .workers(workers)
            .open()
            .expect("open");
        for &(series, tg) in points {
            m.append(SeriesId(series), DataPoint::new(tg, tg + 3, tg as f64))
                .expect("append");
        }
        m.flush_all().expect("flush");
        m
    }

    /// Like [`flushed_fleet`] but with an explicit queue depth and a ring
    /// observer: returns the fleet plus the full emitted event trace.
    fn traced_fleet(
        workers: usize,
        depth: usize,
        points: &[(u32, i64)],
    ) -> (MultiSeriesEngine, Vec<Event>) {
        let ring = crate::obs::RingBufferSink::new(1 << 16);
        let mut m = OpenOptions::new(config())
            .workers(workers)
            .flush_queue_depth(depth)
            .observer(ring.clone())
            .open()
            .expect("open");
        for &(series, tg) in points {
            m.append(SeriesId(series), DataPoint::new(tg, tg + 3, tg as f64))
                .expect("append");
        }
        m.flush_all().expect("flush");
        (m, ring.events())
    }

    /// Like [`traced_fleet`] but with the memory arbiter enabled at a
    /// cadence the workloads actually reach, so rebalances land inside
    /// the traced window.
    fn traced_arbiter_fleet(
        workers: usize,
        depth: usize,
        points: &[(u32, i64)],
    ) -> (MultiSeriesEngine, Vec<Event>) {
        let ring = crate::obs::RingBufferSink::new(1 << 16);
        let mut m = OpenOptions::new(config())
            .workers(workers)
            .flush_queue_depth(depth)
            .observer(ring.clone())
            .arbiter(
                ArbiterConfig::new(512)
                    .with_floor(8)
                    .with_rebalance_every(16),
            )
            .open()
            .expect("open");
        for &(series, tg) in points {
            m.append(SeriesId(series), DataPoint::new(tg, tg + 3, tg as f64))
                .expect("append");
        }
        m.flush_all().expect("flush");
        (m, ring.events())
    }

    /// A mixed-order workload across `series_count` series: mostly
    /// ascending with every 7th point a straggler, unique per series.
    fn pool_workload(series_count: u32, per_series: i64) -> Vec<(u32, i64)> {
        let mut points = Vec::new();
        for s in 0..series_count {
            for i in 0..per_series {
                let tg = if i % 7 == 3 { i * 10 - 25 } else { i * 10 };
                points.push((s, tg + i64::from(s)));
            }
        }
        points
    }

    fn fleet_scans(m: &MultiSeriesEngine) -> Vec<(SeriesId, Vec<DataPoint>)> {
        m.series_ids()
            .into_iter()
            .map(|id| {
                let pts =
                    m.engine(id).expect("series").scan_all().expect("scan");
                (id, pts)
            })
            .collect()
    }

    #[test]
    fn pooled_flush_matches_sequential_flush() {
        let points = pool_workload(8, 40);
        let sequential = flushed_fleet(1, &points);
        let pooled = flushed_fleet(4, &points);
        assert_eq!(pooled.worker_count(), 4);
        assert_eq!(
            pooled.combined_metrics(),
            sequential.combined_metrics(),
            "summed kernel metrics must not depend on worker count"
        );
        assert_eq!(fleet_scans(&pooled), fleet_scans(&sequential));
        for id in pooled.series_ids() {
            assert_eq!(
                pooled.engine(id).expect("series").buffered_points(),
                0,
                "{id} left points buffered"
            );
        }
    }

    #[test]
    fn more_workers_than_series_is_fine() {
        let points = pool_workload(2, 12);
        let wide = flushed_fleet(16, &points);
        let narrow = flushed_fleet(1, &points);
        assert_eq!(fleet_scans(&wide), fleet_scans(&narrow));
    }

    #[test]
    fn deep_fleets_flush_in_bounded_waves() {
        // 10 series against a queue depth of 4: three waves, two of which
        // wait on the queue and surface as typed `Delayed` backpressure.
        let points = pool_workload(10, 12);
        let mut m = OpenOptions::new(config())
            .workers(3)
            .flush_queue_depth(4)
            .open()
            .expect("open");
        for &(series, tg) in &points {
            m.append(SeriesId(series), DataPoint::new(tg, tg + 3, tg as f64))
                .expect("append");
        }
        let outcome = m.flush_all().expect("flush");
        assert_eq!(outcome, AdmissionOutcome::Delayed { ticks: 2 });
        assert_eq!(m.fleet_delayed_waves(), 2);
        let combined = m.combined_metrics();
        assert_eq!(combined.delayed_appends, 2);
        assert_eq!(combined.stall_ticks, 2);
        for id in m.series_ids() {
            assert_eq!(
                m.engine(id).expect("series").buffered_points(),
                0,
                "{id} left points buffered"
            );
        }
        // The wave schedule depends only on the series set and the depth
        // bound: a sequential fleet reports identical backpressure.
        let mut seq = OpenOptions::new(config())
            .workers(1)
            .flush_queue_depth(4)
            .open()
            .expect("open");
        for &(series, tg) in &points {
            seq.append(SeriesId(series), DataPoint::new(tg, tg + 3, tg as f64))
                .expect("append");
        }
        assert_eq!(
            seq.flush_all().expect("flush"),
            AdmissionOutcome::Delayed { ticks: 2 }
        );
        assert_eq!(seq.combined_metrics(), m.combined_metrics());
    }

    #[test]
    fn pooled_flush_traces_match_sequential_traces() {
        // Capture-replay at the wave barrier makes the emitted event trace
        // a pure function of the workload — thread scheduling and worker
        // count must be invisible in it.
        let points = pool_workload(10, 24);
        let (seq, seq_trace) = traced_fleet(1, 4, &points);
        let (pooled, pooled_trace) = traced_fleet(4, 4, &points);
        assert!(!seq_trace.is_empty(), "workload emitted no events");
        assert_eq!(
            pooled_trace, seq_trace,
            "pooled flush trace diverged from the sequential trace"
        );
        assert_eq!(fleet_scans(&pooled), fleet_scans(&seq));
    }

    #[test]
    fn single_series_never_enters_the_pool() {
        // One series short-circuits to the sequential path even with a
        // large worker bound; the observable outcome is identical.
        let points = pool_workload(1, 20);
        let m = flushed_fleet(8, &points);
        assert_eq!(m.len(), 1);
        assert_eq!(m.engine(SeriesId(0)).expect("series").buffered_points(), 0);
    }

    proptest::proptest! {
        #![proptest_config(
            proptest::prelude::ProptestConfig::with_cases(16)
        )]

        /// Worker count is unobservable: any fleet workload flushed with N
        /// workers yields the same per-series points, summed metrics *and
        /// byte-identical event trace* as the sequential path, even when
        /// the depth-bounded queue forces multiple waves.
        #[test]
        fn worker_count_is_unobservable(
            raw in proptest::collection::vec(
                (0u32..5, 0i64..400),
                1..120,
            ),
            workers in 2usize..6,
        ) {
            // Dedupe (series, gen_time) pairs: engines require unique
            // generation times within one series.
            let mut seen = HashSet::new();
            let points: Vec<(u32, i64)> = raw
                .into_iter()
                .filter(|p| seen.insert(*p))
                .collect();
            // Depth 3 against up to 5 series exercises multi-wave flushes.
            let (sequential, seq_trace) = traced_fleet(1, 3, &points);
            let (pooled, pooled_trace) = traced_fleet(workers, 3, &points);
            proptest::prop_assert_eq!(
                pooled.combined_metrics(),
                sequential.combined_metrics()
            );
            proptest::prop_assert_eq!(
                fleet_scans(&pooled),
                fleet_scans(&sequential)
            );
            proptest::prop_assert_eq!(pooled_trace, seq_trace);
            // With the arbiter rebalancing mid-workload the trace (heat
            // samples, rebalances, migrations) must still be a pure
            // function of the workload, never of the worker count.
            let (arb_seq, arb_seq_trace) =
                traced_arbiter_fleet(1, 3, &points);
            let (arb_pooled, arb_pooled_trace) =
                traced_arbiter_fleet(workers, 3, &points);
            proptest::prop_assert_eq!(
                arb_pooled.combined_metrics(),
                arb_seq.combined_metrics()
            );
            proptest::prop_assert_eq!(
                fleet_scans(&arb_pooled),
                fleet_scans(&arb_seq)
            );
            proptest::prop_assert_eq!(arb_pooled_trace, arb_seq_trace);
            proptest::prop_assert_eq!(
                arb_pooled.arbiter_stats(),
                arb_seq.arbiter_stats()
            );
        }
    }

    #[test]
    fn flush_all_drains_every_series() {
        let mut m = MultiSeriesEngine::in_memory(config());
        for s in 0..3u32 {
            m.append(SeriesId(s), DataPoint::new(5, 5, 0.0))
                .expect("append");
        }
        m.flush_all().expect("flush");
        for s in 0..3u32 {
            assert_eq!(
                m.engine(SeriesId(s)).expect("series").buffered_points(),
                0
            );
            let (pts, _) =
                m.query(SeriesId(s), TimeRange::new(0, 10)).expect("query");
            assert_eq!(pts.len(), 1);
        }
    }
}
