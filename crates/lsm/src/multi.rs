//! Multi-series management: one logical store, many independent series.
//!
//! The paper's industrial setting (§VI) records *thousands* of time series
//! per vehicle, each with its own delay behaviour — IoTDB buffers and tunes
//! them independently. [`MultiSeriesEngine`] provides that shape: each
//! [`SeriesId`] gets its own MemTables, level-1 run and metrics (so policies
//! can differ per series), while all series share one [`TableStore`].

use std::collections::HashMap;
use std::sync::Arc;

use seplsm_types::{DataPoint, Error, Policy, Result, TimeRange};

use crate::engine::{EngineConfig, LsmEngine};
use crate::query::QueryStats;
use crate::store::{MemStore, TableStore};

/// Identifier of one time series (e.g. one sensor channel of one vehicle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeriesId(pub u32);

impl std::fmt::Display for SeriesId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "series-{}", self.0)
    }
}

/// Aggregate write counters across all series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MultiMetrics {
    /// Series hosted.
    pub series: usize,
    /// Total user points across series.
    pub user_points: u64,
    /// Total points physically written.
    pub disk_points_written: u64,
    /// Total flushes.
    pub flushes: u64,
    /// Total merge compactions.
    pub compactions: u64,
}

impl MultiMetrics {
    /// Fleet-wide write amplification.
    pub fn write_amplification(&self) -> f64 {
        if self.user_points == 0 {
            return 0.0;
        }
        self.disk_points_written as f64 / self.user_points as f64
    }
}

/// A collection of independently-buffered series over one shared store.
pub struct MultiSeriesEngine {
    store: Arc<dyn TableStore>,
    template: EngineConfig,
    series: HashMap<SeriesId, LsmEngine>,
}

impl MultiSeriesEngine {
    /// Creates a multi-series engine; new series start from `template`.
    pub fn new(template: EngineConfig, store: Arc<dyn TableStore>) -> Self {
        Self { store, template, series: HashMap::new() }
    }

    /// In-memory-store convenience constructor.
    pub fn in_memory(template: EngineConfig) -> Self {
        Self::new(template, Arc::new(MemStore::new()))
    }

    /// Number of series hosted so far.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// `true` before the first append.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// The hosted series ids, in ascending order.
    pub fn series_ids(&self) -> Vec<SeriesId> {
        let mut ids: Vec<SeriesId> = self.series.keys().copied().collect();
        ids.sort();
        ids
    }

    /// The engine behind `series`, if it exists.
    pub fn engine(&self, series: SeriesId) -> Option<&LsmEngine> {
        self.series.get(&series)
    }

    fn engine_entry(&mut self, series: SeriesId) -> Result<&mut LsmEngine> {
        if !self.series.contains_key(&series) {
            let engine =
                LsmEngine::new(self.template.clone(), Arc::clone(&self.store))?;
            self.series.insert(series, engine);
        }
        Ok(self.series.get_mut(&series).expect("inserted above"))
    }

    /// Writes one point into `series` (creating the series on first write).
    ///
    /// # Errors
    /// Storage failures.
    pub fn append(&mut self, series: SeriesId, p: DataPoint) -> Result<()> {
        self.engine_entry(series)?.append(p)
    }

    /// Range query against one series.
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] for an unknown series; storage failures.
    pub fn query(
        &self,
        series: SeriesId,
        range: TimeRange,
    ) -> Result<(Vec<DataPoint>, QueryStats)> {
        self.series
            .get(&series)
            .ok_or_else(|| Error::InvalidConfig(format!("unknown {series}")))?
            .query(range)
    }

    /// Switches the buffering policy of one series (e.g. after a per-series
    /// tuning decision).
    ///
    /// # Errors
    /// Unknown series, degenerate policies, or storage failures.
    pub fn set_policy(&mut self, series: SeriesId, policy: Policy) -> Result<()> {
        self.series
            .get_mut(&series)
            .ok_or_else(|| Error::InvalidConfig(format!("unknown {series}")))?
            .set_policy(policy)
    }

    /// Flushes every series.
    ///
    /// # Errors
    /// Storage failures.
    pub fn flush_all(&mut self) -> Result<()> {
        for engine in self.series.values_mut() {
            engine.flush_all()?;
        }
        Ok(())
    }

    /// Aggregated counters across all series.
    pub fn metrics(&self) -> MultiMetrics {
        let mut m = MultiMetrics { series: self.series.len(), ..Default::default() };
        for engine in self.series.values() {
            let em = engine.metrics();
            m.user_points += em.user_points;
            m.disk_points_written += em.disk_points_written;
            m.flushes += em.flushes;
            m.compactions += em.compactions;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> EngineConfig {
        EngineConfig::conventional(8).with_sstable_points(8)
    }

    #[test]
    fn series_are_created_lazily_and_isolated() {
        let mut m = MultiSeriesEngine::in_memory(config());
        assert!(m.is_empty());
        for i in 0..20i64 {
            m.append(SeriesId(1), DataPoint::new(i * 10, i * 10, 1.0))
                .expect("append");
            m.append(SeriesId(2), DataPoint::new(i * 10, i * 10, 2.0))
                .expect("append");
        }
        assert_eq!(m.len(), 2);
        assert_eq!(m.series_ids(), vec![SeriesId(1), SeriesId(2)]);
        let (a, _) = m.query(SeriesId(1), TimeRange::new(0, 200)).expect("query");
        assert_eq!(a.len(), 20);
        assert!(a.iter().all(|p| p.value == 1.0), "series 1 must not see series 2");
    }

    #[test]
    fn unknown_series_is_an_error() {
        let m = MultiSeriesEngine::in_memory(config());
        assert!(m.query(SeriesId(9), TimeRange::new(0, 10)).is_err());
    }

    #[test]
    fn per_series_policies_can_differ() {
        let mut m = MultiSeriesEngine::in_memory(config());
        m.append(SeriesId(1), DataPoint::new(0, 0, 0.0)).expect("append");
        m.append(SeriesId(2), DataPoint::new(0, 0, 0.0)).expect("append");
        m.set_policy(SeriesId(2), Policy::separation(8, 4).expect("policy"))
            .expect("switch");
        assert!(!m.engine(SeriesId(1)).expect("s1").policy().is_separation());
        assert!(m.engine(SeriesId(2)).expect("s2").policy().is_separation());
        assert!(m.set_policy(SeriesId(3), Policy::conventional(8)).is_err());
    }

    #[test]
    fn aggregate_metrics_sum_across_series() {
        let mut m = MultiSeriesEngine::in_memory(config());
        for s in 0..4u32 {
            for i in 0..50i64 {
                m.append(SeriesId(s), DataPoint::new(i * 10, i * 10, 0.0))
                    .expect("append");
            }
        }
        let agg = m.metrics();
        assert_eq!(agg.series, 4);
        assert_eq!(agg.user_points, 200);
        assert!(agg.disk_points_written >= 4 * 48);
        assert!((agg.write_amplification() - 1.0).abs() < 0.25);
    }

    #[test]
    fn flush_all_drains_every_series() {
        let mut m = MultiSeriesEngine::in_memory(config());
        for s in 0..3u32 {
            m.append(SeriesId(s), DataPoint::new(5, 5, 0.0)).expect("append");
        }
        m.flush_all().expect("flush");
        for s in 0..3u32 {
            assert_eq!(
                m.engine(SeriesId(s)).expect("series").buffered_points(),
                0
            );
            let (pts, _) =
                m.query(SeriesId(s), TimeRange::new(0, 10)).expect("query");
            assert_eq!(pts.len(), 1);
        }
    }
}
