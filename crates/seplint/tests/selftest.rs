//! seplint self-test: every fixture fires exactly its rule, suppressions
//! work, and — most importantly — the real workspace is clean.

use std::path::{Path, PathBuf};

use seplint::callgraph::CallGraph;
use seplint::{lint_workspace, rules};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn r1_fires_on_unwrap_expect_and_panic_outside_tests() {
    let src = fixture("r1_unwrap.rs");
    let v = rules::no_panics(Path::new("r1_unwrap.rs"), &src);
    let rules_hit: Vec<&str> = v.iter().map(|x| x.rule).collect();
    assert_eq!(
        rules_hit,
        ["R1", "R1", "R1"],
        "unwrap + panic! + expect: {v:?}"
    );
    assert!(v[0].message.contains("unwrap"));
    assert!(v[1].message.contains("panic"));
    assert!(v[2].message.contains("expect"));
}

#[test]
fn r1_ignores_test_modules() {
    let src = "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); }\n}\n";
    assert!(rules::no_panics(Path::new("t.rs"), src).is_empty());
}

#[test]
fn r1_honours_allow_directive() {
    let src = "fn f() {\n // seplint: allow(R1): fixture\n x.unwrap();\n}\n";
    assert!(rules::no_panics(Path::new("t.rs"), src).is_empty());
    let src2 = "fn f() {\n x.unwrap(); // seplint: allow(R1): fixture\n}\n";
    assert!(rules::no_panics(Path::new("t.rs"), src2).is_empty());
}

#[test]
fn r2_fires_on_missing_forbid() {
    let src = fixture("r2_missing_forbid.rs");
    let v = rules::forbids_unsafe(Path::new("lib.rs"), &src);
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].rule, "R2");
}

#[test]
fn r2_passes_when_forbid_is_present() {
    let src = "#![forbid(unsafe_code)]\npub fn f() {}\n";
    assert!(rules::forbids_unsafe(Path::new("lib.rs"), src).is_empty());
}

#[test]
fn r3_fires_on_wallclock_and_thread_use() {
    let src = fixture("r3_wallclock.rs");
    let v = rules::deterministic_kernel(Path::new("r3_wallclock.rs"), &src);
    // `Instant` appears twice (use + call), `spawn` once.
    assert!(v.len() >= 3, "{v:?}");
    assert!(v.iter().all(|x| x.rule == "R3"));
    assert!(v.iter().any(|x| x.message.contains("Instant")));
    assert!(v.iter().any(|x| x.message.contains("spawn")));
}

#[test]
fn r3_fires_on_wallclock_in_an_observer_sink() {
    // `obs.rs` is a kernel module: a sink stamping events with
    // `SystemTime` instead of an injected `Clock` must be caught.
    let src = fixture("r3_obs_wallclock.rs");
    let v = rules::deterministic_kernel(Path::new("obs.rs"), &src);
    // `SystemTime` appears three times (use + now() + UNIX_EPOCH).
    assert!(v.len() >= 3, "{v:?}");
    assert!(v.iter().all(|x| x.rule == "R3"));
    assert!(v.iter().any(|x| x.message.contains("SystemTime")));
}

#[test]
fn r3_fires_on_wallclock_eviction_in_the_block_cache() {
    // `cache.rs` is a kernel module: an eviction policy ordered by
    // `Instant` recency instead of the CLOCK hand's logical tick must be
    // caught.
    let src = fixture("r3_cache_wallclock.rs");
    let v = rules::deterministic_kernel(Path::new("cache.rs"), &src);
    // `Instant` appears three times (use + field type + now()).
    assert!(v.len() >= 3, "{v:?}");
    assert!(v.iter().all(|x| x.rule == "R3"));
    assert!(v.iter().any(|x| x.message.contains("Instant")));
}

#[test]
fn r3_fires_on_wallclock_salt_in_the_pruning_filter() {
    // `filter.rs` is a kernel module: a pruning filter salted from the
    // wall clock would admit different keys on replay, so the same table
    // could prune differently across crash-schedule re-runs.
    let src = fixture("r3_filter_wallclock.rs");
    let v = rules::deterministic_kernel(Path::new("filter.rs"), &src);
    // `Instant` appears twice (use + now() call).
    assert!(v.len() >= 2, "{v:?}");
    assert!(v.iter().all(|x| x.rule == "R3"));
    assert!(v.iter().any(|x| x.message.contains("Instant")));
}

#[test]
fn r3_fires_on_wallclock_stall_tracking_in_admission() {
    // `admission.rs` is a kernel module: watermark decisions, stall ticks
    // and pacer budgets must advance on the logical clock only — an
    // `Instant`-timed stall or a background refill thread would make the
    // same workload stall differently across replays.
    let src = fixture("r3_admission_wallclock.rs");
    let v = rules::deterministic_kernel(Path::new("admission.rs"), &src);
    // `Instant` appears three times (use + field type + now), `spawn` once.
    assert!(v.len() >= 4, "{v:?}");
    assert!(v.iter().all(|x| x.rule == "R3"));
    assert!(v.iter().any(|x| x.message.contains("Instant")));
    assert!(v.iter().any(|x| x.message.contains("spawn")));
}

#[test]
fn r3_fires_on_wallclock_rebalancing_in_the_arbiter() {
    // `arbiter.rs` is a kernel module: heat decay and rebalance cadence
    // must advance on the logical append/query tick only — a wall-clock
    // interval or a background decay thread would hand out different
    // capacities (and emit different rebalance events) across replays.
    let src = fixture("r3_arbiter_wallclock.rs");
    let v = rules::deterministic_kernel(Path::new("arbiter.rs"), &src);
    // `Instant` appears four times (use + field + elapsed arm + now),
    // `spawn` once.
    assert!(v.len() >= 4, "{v:?}");
    assert!(v.iter().all(|x| x.rule == "R3"));
    assert!(v.iter().any(|x| x.message.contains("Instant")));
    assert!(v.iter().any(|x| x.message.contains("spawn")));
}

#[test]
fn r4_fires_only_on_pub_non_result_panicking_fns() {
    let src = fixture("r4_pub_panic.rs");
    let v = rules::kernel_returns_results(Path::new("r4_pub_panic.rs"), &src);
    let names: Vec<&str> = v
        .iter()
        .map(|x| {
            x.message
                .split('`')
                .nth(1)
                .expect("message names the function")
        })
        .collect();
    assert_eq!(names, ["pop", "insert"], "{v:?}");
    assert!(v.iter().all(|x| x.rule == "R4"));
}

#[test]
fn r5_fires_on_buffer_before_append_and_uncovered_truncate() {
    let src = fixture("r5_insert_before_append.rs");
    let v = rules::durability_order(Path::new("r5.rs"), &src);
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v[0].message.contains("WAL-before-buffer"), "{v:?}");
    assert!(v[1].message.contains("truncates the WAL"), "{v:?}");
}

#[test]
fn r5_passes_the_compliant_orderings() {
    // Append-then-insert is the durable order.
    let ok_put = "
        impl Engine {
            pub fn put(&mut self, p: Point) -> Result<()> {
                self.wal.append(&p)?;
                self.buffers.insert(p);
                Ok(())
            }
        }";
    assert!(rules::durability_order(Path::new("ok.rs"), ok_put).is_empty());

    // A manifest record covers the truncation, even through a same-file
    // helper call.
    let ok_flush = "
        impl Engine {
            pub fn flush(&mut self) -> Result<()> {
                self.manifest.record(&edit)?;
                self.compact_wal()?;
                Ok(())
            }
            fn compact_wal(&mut self) -> Result<()> {
                self.wal.rewrite(&self.survivors())
            }
        }";
    assert!(
        rules::durability_order(Path::new("ok.rs"), ok_flush).is_empty(),
        "truncate-only helper must be judged at its call site"
    );

    // Replay (recovery) legitimately buffers without a fresh append.
    let ok_recover = "
        impl Engine {
            pub fn recover(&mut self) -> Result<()> {
                for p in self.wal.replay()? {
                    self.buffers.insert(p);
                }
                Ok(())
            }
        }";
    assert!(rules::durability_order(Path::new("ok.rs"), ok_recover).is_empty());
}

#[test]
fn r6_fires_on_rename_without_dir_sync() {
    let src = fixture("r6_rename_no_sync.rs");
    let v = rules::rename_syncs_dir(Path::new("store.rs"), &src);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "R6");
    assert!(v[0].message.contains("put_unsynced"), "{v:?}");
}

/// Builds a [`CallGraph`] over `(file-name, source)` pairs for the
/// cross-file tests.
fn graph(files: &[(&str, &str)]) -> CallGraph {
    let sources: Vec<(PathBuf, String)> = files
        .iter()
        .map(|(name, src)| (PathBuf::from(name), (*src).to_string()))
        .collect();
    CallGraph::build(&sources)
}

#[test]
fn r5_resolves_helpers_across_files() {
    // The durable append order is split across two files: `put` lives in
    // the engine, the `wal.append` inside a helper in another module. The
    // per-file scanner was blind to this; the graph judges it at the call
    // site.
    let engine_ok = "
        impl Engine {
            pub fn put(&mut self, p: Point) -> Result<()> {
                log_point(&mut self.wal, &p)?;
                self.buffers.insert(p);
                Ok(())
            }
        }";
    let helper = "
        pub fn log_point(wal: &mut Wal, p: &Point) -> Result<()> {
            wal.append(p)
        }";
    let g = graph(&[("engine.rs", engine_ok), ("helper.rs", helper)]);
    assert!(
        rules::durability_order_with(Path::new("engine.rs"), engine_ok, &g)
            .is_empty(),
        "cross-file append must dominate the insert"
    );

    // Same shape with the helper call *after* the insert: the expansion
    // must still see the missing append.
    let engine_bad = "
        impl Engine {
            pub fn put(&mut self, p: Point) -> Result<()> {
                self.buffers.insert(p);
                log_point(&mut self.wal, &p)?;
                Ok(())
            }
        }";
    let g = graph(&[("engine.rs", engine_bad), ("helper.rs", helper)]);
    let v =
        rules::durability_order_with(Path::new("engine.rs"), engine_bad, &g);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].message.contains("WAL-before-buffer"), "{v:?}");
}

#[test]
fn r5_treats_rewrite_after_wal_open_as_initialization() {
    // A function that opened the log itself and rewrites it to the full
    // volatile snapshot is initializing, not truncating — this pattern
    // previously needed an `allow(R5)` suppression.
    let src = "
        impl Engine {
            fn with_wal(mut self, path: &Path) -> Result<Self> {
                let mut wal = Wal::open(path)?;
                wal.rewrite(&self.buffers.snapshot_sorted())?;
                self.wal = Some(wal);
                Ok(self)
            }
        }";
    assert!(
        rules::durability_order(Path::new("engine.rs"), src).is_empty(),
        "rewrite after Wal::open is initialization"
    );
}

#[test]
fn r7_fires_on_unchecked_decoded_lengths() {
    let src = fixture("r7_unchecked_len.rs");
    let v = rules::untrusted_len(Path::new("format.rs"), &src);
    let names: Vec<&str> = v
        .iter()
        .map(|x| {
            x.message
                .split('`')
                .nth(1)
                .expect("message names the function")
        })
        .collect();
    assert_eq!(
        names,
        ["decode_unchecked", "decode_derived", "decode_macro"],
        "{v:?}"
    );
    assert!(v.iter().all(|x| x.rule == "R7"));
}

#[test]
fn r8_fires_on_guards_held_across_io_and_order_inversions() {
    let src = fixture("r8_lock_across_io.rs");
    let v = rules::lock_discipline(Path::new("background.rs"), &src);
    let names: Vec<&str> = v
        .iter()
        .map(|x| {
            x.message
                .split('`')
                .nth(1)
                .expect("message names the function")
        })
        .collect();
    assert_eq!(
        names,
        ["read_locked", "send_locked", "log_locked", "inverted"],
        "{v:?}"
    );
    assert!(v.iter().all(|x| x.rule == "R8"));
    assert!(v[0].message.contains("store I/O"), "{v:?}");
    assert!(v[1].message.contains("channel `send`"), "{v:?}");
    assert!(v[2].message.contains("WAL I/O"), "{v:?}");
    assert!(v[3].message.contains("acquires `state`"), "{v:?}");
}

#[test]
fn r8_sees_io_through_cross_file_helpers() {
    // The I/O hides behind a helper in another file; the call-graph I/O
    // summary must surface it at the locked call site.
    let engine = "
        impl Engine {
            pub fn tick(&self) -> Result<()> {
                let state = self.state.lock();
                flush_all(&self.store)?;
                drop(state);
                Ok(())
            }
        }";
    let helper = "
        pub fn flush_all(store: &dyn TableStore) -> Result<()> {
            store.put(&[])?;
            Ok(())
        }";
    let g = graph(&[("engine.rs", engine), ("helper.rs", helper)]);
    let v = rules::lock_discipline_with(Path::new("engine.rs"), engine, &g);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].message.contains("flush_all"), "{v:?}");
    // Without the graph the same source is (wrongly) silent — the graph is
    // what buys the cross-file visibility.
    assert!(rules::lock_discipline(Path::new("engine.rs"), engine).is_empty());
}

#[test]
fn r9_fires_on_silent_metric_mutations() {
    let src = fixture("r9_silent_metric.rs");
    let v = rules::event_coverage(Path::new("engine.rs"), &src);
    let fields: Vec<&str> = v
        .iter()
        .map(|x| {
            x.message
                .split('`')
                .nth(3)
                .expect("message names the metric")
        })
        .collect();
    assert_eq!(
        fields,
        [
            "metrics.flushes",
            "metrics.disk_points_written",
            "metrics.subsequent_counts"
        ],
        "{v:?}"
    );
    assert!(v.iter().all(|x| x.rule == "R9"));
}

/// The core guarantee: the real workspace is lint-clean. Any regression in
/// the kernel contracts turns this test (and CI's dedicated seplint step)
/// red.
#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let violations = lint_workspace(&root).expect("workspace lint runs");
    assert!(
        violations.is_empty(),
        "workspace has seplint violations:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
