//! seplint self-test: every fixture fires exactly its rule, suppressions
//! work, and — most importantly — the real workspace is clean.

use std::path::Path;

use seplint::{lint_workspace, rules};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn r1_fires_on_unwrap_expect_and_panic_outside_tests() {
    let src = fixture("r1_unwrap.rs");
    let v = rules::no_panics(Path::new("r1_unwrap.rs"), &src);
    let rules_hit: Vec<&str> = v.iter().map(|x| x.rule).collect();
    assert_eq!(
        rules_hit,
        ["R1", "R1", "R1"],
        "unwrap + panic! + expect: {v:?}"
    );
    assert!(v[0].message.contains("unwrap"));
    assert!(v[1].message.contains("panic"));
    assert!(v[2].message.contains("expect"));
}

#[test]
fn r1_ignores_test_modules() {
    let src = "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); }\n}\n";
    assert!(rules::no_panics(Path::new("t.rs"), src).is_empty());
}

#[test]
fn r1_honours_allow_directive() {
    let src = "fn f() {\n // seplint: allow(R1): fixture\n x.unwrap();\n}\n";
    assert!(rules::no_panics(Path::new("t.rs"), src).is_empty());
    let src2 = "fn f() {\n x.unwrap(); // seplint: allow(R1): fixture\n}\n";
    assert!(rules::no_panics(Path::new("t.rs"), src2).is_empty());
}

#[test]
fn r2_fires_on_missing_forbid() {
    let src = fixture("r2_missing_forbid.rs");
    let v = rules::forbids_unsafe(Path::new("lib.rs"), &src);
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].rule, "R2");
}

#[test]
fn r2_passes_when_forbid_is_present() {
    let src = "#![forbid(unsafe_code)]\npub fn f() {}\n";
    assert!(rules::forbids_unsafe(Path::new("lib.rs"), src).is_empty());
}

#[test]
fn r3_fires_on_wallclock_and_thread_use() {
    let src = fixture("r3_wallclock.rs");
    let v = rules::deterministic_kernel(Path::new("r3_wallclock.rs"), &src);
    // `Instant` appears twice (use + call), `spawn` once.
    assert!(v.len() >= 3, "{v:?}");
    assert!(v.iter().all(|x| x.rule == "R3"));
    assert!(v.iter().any(|x| x.message.contains("Instant")));
    assert!(v.iter().any(|x| x.message.contains("spawn")));
}

#[test]
fn r3_fires_on_wallclock_in_an_observer_sink() {
    // `obs.rs` is a kernel module: a sink stamping events with
    // `SystemTime` instead of an injected `Clock` must be caught.
    let src = fixture("r3_obs_wallclock.rs");
    let v = rules::deterministic_kernel(Path::new("obs.rs"), &src);
    // `SystemTime` appears three times (use + now() + UNIX_EPOCH).
    assert!(v.len() >= 3, "{v:?}");
    assert!(v.iter().all(|x| x.rule == "R3"));
    assert!(v.iter().any(|x| x.message.contains("SystemTime")));
}

#[test]
fn r3_fires_on_wallclock_eviction_in_the_block_cache() {
    // `cache.rs` is a kernel module: an eviction policy ordered by
    // `Instant` recency instead of the CLOCK hand's logical tick must be
    // caught.
    let src = fixture("r3_cache_wallclock.rs");
    let v = rules::deterministic_kernel(Path::new("cache.rs"), &src);
    // `Instant` appears three times (use + field type + now()).
    assert!(v.len() >= 3, "{v:?}");
    assert!(v.iter().all(|x| x.rule == "R3"));
    assert!(v.iter().any(|x| x.message.contains("Instant")));
}

#[test]
fn r3_fires_on_wallclock_salt_in_the_pruning_filter() {
    // `filter.rs` is a kernel module: a pruning filter salted from the
    // wall clock would admit different keys on replay, so the same table
    // could prune differently across crash-schedule re-runs.
    let src = fixture("r3_filter_wallclock.rs");
    let v = rules::deterministic_kernel(Path::new("filter.rs"), &src);
    // `Instant` appears twice (use + now() call).
    assert!(v.len() >= 2, "{v:?}");
    assert!(v.iter().all(|x| x.rule == "R3"));
    assert!(v.iter().any(|x| x.message.contains("Instant")));
}

#[test]
fn r4_fires_only_on_pub_non_result_panicking_fns() {
    let src = fixture("r4_pub_panic.rs");
    let v = rules::kernel_returns_results(Path::new("r4_pub_panic.rs"), &src);
    let names: Vec<&str> = v
        .iter()
        .map(|x| {
            x.message
                .split('`')
                .nth(1)
                .expect("message names the function")
        })
        .collect();
    assert_eq!(names, ["pop", "insert"], "{v:?}");
    assert!(v.iter().all(|x| x.rule == "R4"));
}

#[test]
fn r5_fires_on_buffer_before_append_and_uncovered_truncate() {
    let src = fixture("r5_insert_before_append.rs");
    let v = rules::durability_order(Path::new("r5.rs"), &src);
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v[0].message.contains("WAL-before-buffer"), "{v:?}");
    assert!(v[1].message.contains("truncates the WAL"), "{v:?}");
}

#[test]
fn r5_passes_the_compliant_orderings() {
    // Append-then-insert is the durable order.
    let ok_put = "
        impl Engine {
            pub fn put(&mut self, p: Point) -> Result<()> {
                self.wal.append(&p)?;
                self.buffers.insert(p);
                Ok(())
            }
        }";
    assert!(rules::durability_order(Path::new("ok.rs"), ok_put).is_empty());

    // A manifest record covers the truncation, even through a same-file
    // helper call.
    let ok_flush = "
        impl Engine {
            pub fn flush(&mut self) -> Result<()> {
                self.manifest.record(&edit)?;
                self.compact_wal()?;
                Ok(())
            }
            fn compact_wal(&mut self) -> Result<()> {
                self.wal.rewrite(&self.survivors())
            }
        }";
    assert!(
        rules::durability_order(Path::new("ok.rs"), ok_flush).is_empty(),
        "truncate-only helper must be judged at its call site"
    );

    // Replay (recovery) legitimately buffers without a fresh append.
    let ok_recover = "
        impl Engine {
            pub fn recover(&mut self) -> Result<()> {
                for p in self.wal.replay()? {
                    self.buffers.insert(p);
                }
                Ok(())
            }
        }";
    assert!(rules::durability_order(Path::new("ok.rs"), ok_recover).is_empty());
}

#[test]
fn r6_fires_on_rename_without_dir_sync() {
    let src = fixture("r6_rename_no_sync.rs");
    let v = rules::rename_syncs_dir(Path::new("store.rs"), &src);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "R6");
    assert!(v[0].message.contains("put_unsynced"), "{v:?}");
}

/// The core guarantee: the real workspace is lint-clean. Any regression in
/// the kernel contracts turns this test (and CI's dedicated seplint step)
/// red.
#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let violations = lint_workspace(&root).expect("workspace lint runs");
    assert!(
        violations.is_empty(),
        "workspace has seplint violations:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
