//! R3 fixture: an observer sink that stamps events with the wall clock
//! instead of an injected `Clock` — exactly the nondeterminism the
//! observability layer must not reintroduce into the kernel.

use std::time::SystemTime;

pub struct WallClockSink {
    lines: Vec<String>,
}

impl WallClockSink {
    pub fn observe(&mut self, event_name: &str) {
        let ts = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_micros())
            .unwrap_or_default();
        self.lines.push(format!("{ts} {event_name}"));
    }
}
