//! R2 fixture: a library crate root without `#![forbid(unsafe_code)]`.

pub mod buffer;
pub mod wal;

pub fn version() -> &'static str {
    "0.1.0"
}
