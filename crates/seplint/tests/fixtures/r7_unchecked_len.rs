//! R7 fixture: decoders that size allocations from lengths read out of
//! untrusted bytes, with and without the bounds check that keeps a corrupt
//! file from choosing the allocation size.

// VIOLATION: the decoded count reaches `Vec::with_capacity` unchecked — a
// 4-byte flip in the header allocates gigabytes.
pub fn decode_unchecked(buf: &mut &[u8]) -> Result<Vec<Point>, Error> {
    let count = buf.get_u32_le() as usize;
    let mut points = Vec::with_capacity(count);
    for _ in 0..count {
        points.push(read_point(buf)?);
    }
    Ok(points)
}

// VIOLATION: a value *derived* from a decoded length is just as untrusted.
pub fn decode_derived(buf: &mut &[u8]) -> Result<Vec<u8>, Error> {
    let half = buf.get_u16_le() as usize;
    let total = half * 2;
    let mut out = Vec::new();
    out.reserve(total);
    Ok(out)
}

// VIOLATION: `vec![elem; n]` is the same sink in macro clothing.
pub fn decode_macro(buf: &mut &[u8]) -> Result<Vec<u64>, Error> {
    let slots = buf.get_u64_le() as usize;
    let table = vec![0u64; slots];
    Ok(table)
}

// Compliant: the count is rejected against the remaining input first.
pub fn decode_bounded(buf: &mut &[u8]) -> Result<Vec<Point>, Error> {
    let count = buf.get_u32_le() as usize;
    if count > buf.remaining() / MIN_RECORD {
        return Err(Error::Corrupt("count exceeds payload".into()));
    }
    let mut points = Vec::with_capacity(count);
    for _ in 0..count {
        points.push(read_point(buf)?);
    }
    Ok(points)
}

// Compliant: clamping against a named cap at the allocation site.
pub fn decode_clamped(buf: &mut &[u8]) -> Result<Vec<u8>, Error> {
    let hint = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(hint.min(MAX_BLOCK_BYTES));
    out.extend_from_slice(buf);
    Ok(out)
}

// Suppressed: the directive acknowledges the unchecked size.
pub fn decode_suppressed(buf: &mut &[u8]) -> Result<Vec<u8>, Error> {
    let len = buf.get_u32_le() as usize;
    // seplint: allow(R7): fixture exercising the suppression path
    let out = Vec::with_capacity(len);
    Ok(out)
}
