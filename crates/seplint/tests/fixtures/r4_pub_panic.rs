//! R4 fixture: public kernel functions that can panic without returning
//! `Result`, next to compliant shapes that must NOT fire.

pub struct Buffer {
    points: Vec<u64>,
}

impl Buffer {
    // VIOLATION: pub fn, panics, returns a plain value.
    pub fn pop(&mut self) -> u64 {
        self.points.pop().unwrap()
    }

    // VIOLATION: assert! in a pub fn without Result.
    pub fn insert(&mut self, p: u64) {
        assert!(p > 0, "zero timestamp");
        self.points.push(p);
    }

    // OK: returns Result, so the unwrap-shaped failure is reachable as Err.
    pub fn checked_pop(&mut self) -> Result<u64, String> {
        self.points.pop().ok_or_else(|| "empty".to_string())
    }

    // OK: debug_assert! is exempt by design.
    pub fn len(&self) -> usize {
        debug_assert!(self.points.len() < usize::MAX);
        self.points.len()
    }

    // OK: private functions are out of R4's scope.
    fn internal_pop(&mut self) -> u64 {
        self.points.pop().unwrap()
    }
}
