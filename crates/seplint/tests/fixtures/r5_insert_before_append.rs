//! R5 fixture: an engine that buffers before logging and truncates the WAL
//! without covering the dropped data.

pub struct Engine {
    wal: Wal,
    buffers: Buffers,
}

impl Engine {
    // VIOLATION: the point is buffered before it hits the WAL; a crash
    // between the two lines loses it.
    pub fn put(&mut self, p: Point) -> Result<(), Error> {
        self.buffers.insert(p);
        self.wal.append(&p)?;
        Ok(())
    }

    // VIOLATION: the WAL is truncated with no manifest record or flushing
    // registration covering the dropped tail.
    pub fn flush(&mut self) -> Result<(), Error> {
        let survivors = self.buffers.drain();
        self.wal.rewrite(&survivors)?;
        Ok(())
    }
}
