//! R1 fixture: library code that unwraps and panics. Not compiled by
//! cargo (lives under tests/fixtures); read as text by the selftest.

pub fn lookup(map: &std::collections::HashMap<u32, u32>, k: u32) -> u32 {
    *map.get(&k).unwrap()
}

pub fn must_be_even(x: u32) -> u32 {
    if x % 2 != 0 {
        panic!("odd input");
    }
    x
}

pub fn parse(s: &str) -> u64 {
    s.parse().expect("not a number")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
