//! R3 fixture: a pruning filter that salts its hash probes from the
//! process RNG and wall clock — nondeterminism that would make the same
//! table admit different keys on replay, breaking the no-false-negative
//! contract crash-schedule exploration relies on.

use std::time::Instant;

pub struct SaltedFilter {
    words: Vec<u64>,
    salt: u64,
}

impl SaltedFilter {
    pub fn build(keys: &[i64]) -> Self {
        let salt = Instant::now().elapsed().as_nanos() as u64
            ^ rand::random::<u64>();
        let mut words = vec![0u64; keys.len().max(1)];
        for &key in keys {
            let h = (key as u64).wrapping_mul(salt | 1);
            let bit = h % (words.len() as u64 * 64);
            words[(bit / 64) as usize] |= 1 << (bit % 64);
        }
        Self { words, salt }
    }

    pub fn may_contain(&self, key: i64) -> bool {
        let h = (key as u64).wrapping_mul(self.salt | 1);
        let bit = h % (self.words.len() as u64 * 64);
        self.words[(bit / 64) as usize] & (1 << (bit % 64)) != 0
    }
}
