//! R6 fixture: tmp-write-then-rename publication patterns, with and without
//! the parent-directory fsync that makes the new name itself durable.

pub struct Store {
    dir: PathBuf,
}

impl Store {
    // VIOLATION: the file contents are fsynced, but the directory entry
    // created by the rename is not — a crash can make the table vanish.
    pub fn put_unsynced(&self, id: u64, bytes: &[u8]) -> Result<(), Error> {
        let tmp = self.dir.join(format!("{id}.tmp"));
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, self.dir.join(format!("{id}.sst")))?;
        Ok(())
    }

    // Compliant: rename is followed by a parent-directory sync.
    pub fn put_synced(&self, id: u64, bytes: &[u8]) -> Result<(), Error> {
        let tmp = self.dir.join(format!("{id}.tmp"));
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, self.dir.join(format!("{id}.sst")))?;
        sync_dir(&self.dir)?;
        Ok(())
    }

    // Suppressed: the directive acknowledges the missing sync.
    pub fn put_suppressed(&self, id: u64, bytes: &[u8]) -> Result<(), Error> {
        let tmp = self.dir.join(format!("{id}.tmp"));
        std::fs::write(&tmp, bytes)?;
        // seplint: allow(R6): fixture exercising the suppression path
        std::fs::rename(&tmp, self.dir.join(format!("{id}.sst")))?;
        Ok(())
    }
}

// Exempt by name: this *is* the durability primitive R6 asks for.
pub fn sync_dir(dir: &Path) -> Result<(), Error> {
    std::fs::File::open(dir)?.sync_all()?;
    Ok(())
}
