//! R3 fixture: a block-cache eviction policy that ranks entries by
//! wall-clock recency (`Instant`) instead of a logical tick — exactly the
//! nondeterminism the CLOCK sweep's hand position must not reintroduce
//! into the kernel.

use std::collections::HashMap;
use std::time::Instant;

pub struct WallClockCache {
    last_touch: HashMap<u64, Instant>,
}

impl WallClockCache {
    pub fn touch(&mut self, block: u64) {
        self.last_touch.insert(block, Instant::now());
    }

    pub fn victim(&self) -> Option<u64> {
        self.last_touch
            .iter()
            .min_by_key(|(_, at)| **at)
            .map(|(block, _)| *block)
    }
}
