//! R3 fixture: an admission controller that measures stall duration with
//! `Instant` and spins up its own pacer-refill thread — wall-clock state
//! and hidden concurrency would make stall ticks (and hence traces and
//! crash schedules) unreproducible across replays.

use std::time::Instant;

pub struct WallClockController {
    stall_began: Option<Instant>,
}

impl WallClockController {
    pub fn admit(&mut self, depth: usize, stop: usize) -> bool {
        if depth >= stop {
            self.stall_began.get_or_insert_with(Instant::now);
            return false;
        }
        self.stall_began = None;
        true
    }

    pub fn start_refill(&self) {
        std::thread::spawn(|| {
            // Refill pacer tokens in the background.
        });
    }
}
