//! R3 fixture: a "deterministic" kernel module that reads the wall clock
//! and spawns a thread.

use std::time::Instant;

pub fn compact_with_timing(points: &mut Vec<u64>) -> std::time::Duration {
    let start = Instant::now();
    points.sort_unstable();
    start.elapsed()
}

pub fn background_sort(mut points: Vec<u64>) {
    std::thread::spawn(move || {
        points.sort_unstable();
    });
}
