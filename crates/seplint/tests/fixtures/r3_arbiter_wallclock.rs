//! R3 fixture: a memory arbiter that rebalances on a wall-clock interval
//! and decays heat from a background thread — capacity assignments would
//! depend on machine speed, so the same seeded workload could hand a
//! series different budgets (and emit different rebalance events) across
//! replays.

use std::time::Instant;

pub struct WallClockArbiter {
    last_rebalance: Option<Instant>,
    heat: Vec<u64>,
}

impl WallClockArbiter {
    pub fn record_append(&mut self, series: usize) -> bool {
        self.heat[series] += 1;
        let due = self
            .last_rebalance
            .map(|at| at.elapsed().as_millis() >= 100)
            .unwrap_or(true);
        if due {
            self.last_rebalance = Some(Instant::now());
        }
        due
    }

    pub fn start_decay(&self) {
        std::thread::spawn(|| {
            // Halve every series' heat once a second.
        });
    }
}
