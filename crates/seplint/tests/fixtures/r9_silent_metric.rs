//! R9 fixture: metric mutations with and without a typed obs event in the
//! same function — the metric/event correspondence as a lint.

pub struct Engine {
    metrics: Metrics,
    obs: ObserverHandle,
}

impl Engine {
    // VIOLATION: the flush counter moves but no event witnesses it.
    pub fn silent_flush(&mut self, points: u64) {
        self.metrics.flushes += 1;
        self.metrics.disk_points_written += points;
    }

    // VIOLATION: `.push` mutates a metric series just like `+=`.
    pub fn silent_probe(&mut self, subsequent: u64) {
        self.metrics.subsequent_counts.push(subsequent);
    }

    // Compliant: the mutation and its event live in the same function.
    pub fn witnessed_flush(&mut self, points: u64) {
        self.metrics.flushes += 1;
        self.obs.emit(|| Event::FlushFinished { tables: 1, points });
    }

    // Compliant: plain `=` stores fold writer-side counters into a
    // snapshot; they mutate no kernel counter.
    pub fn snapshot(&mut self, user_points: u64) -> Metrics {
        self.metrics.user_points = user_points;
        self.metrics.clone()
    }

    // Suppressed: the directive acknowledges the silent mutation.
    pub fn suppressed(&mut self) {
        // seplint: allow(R9): fixture exercising the suppression path
        self.metrics.compactions += 1;
    }
}
