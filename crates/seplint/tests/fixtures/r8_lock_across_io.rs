//! R8 fixture: `MutexGuard`s held across store/WAL/channel operations, a
//! lock-order inversion, and the compliant snapshot-then-read patterns.

pub struct Engine {
    state: Mutex<State>,
    inner: Mutex<Inner>,
    store: Arc<dyn TableStore>,
    wal: Wal,
    tx: Sender<Batch>,
}

impl Engine {
    // VIOLATION: store I/O while the state guard is live.
    pub fn read_locked(&self, id: u64) -> Result<Vec<Point>, Error> {
        let state = self.state.lock();
        let points = self.store.get(id)?;
        drop(state);
        Ok(points)
    }

    // VIOLATION: a bounded-channel send can block behind backpressure
    // while every other thread waits on the guard.
    pub fn send_locked(&self, batch: Batch) -> Result<(), Error> {
        let mut state = self.state.lock();
        state.pending += 1;
        self.tx.send(batch)?;
        Ok(())
    }

    // VIOLATION: WAL I/O under the guard.
    pub fn log_locked(&mut self, p: Point) -> Result<(), Error> {
        let state = self.state.lock();
        self.wal.append(&p)?;
        drop(state);
        Ok(())
    }

    // VIOLATION: acquires the outer `state` lock while holding the inner
    // one — the documented order is tier state first.
    pub fn inverted(&self) -> u64 {
        let inner = self.inner.lock();
        let state = self.state.lock();
        state.epoch + inner.count
    }

    // Compliant: snapshot under the guard, read after it is dropped.
    pub fn read_snapshot(&self, id: u64) -> Result<Vec<Point>, Error> {
        let metas = {
            let state = self.state.lock();
            state.metas.clone()
        };
        let _ = metas;
        self.store.get(id)
    }

    // Compliant: the guard is explicitly dropped before the send.
    pub fn send_unlocked(&self, batch: Batch) -> Result<(), Error> {
        let mut state = self.state.lock();
        state.pending += 1;
        drop(state);
        self.tx.send(batch)?;
        Ok(())
    }

    // Compliant: a guard created and consumed inside one statement is
    // never held across anything.
    pub fn counter(&self) -> u64 {
        self.state.lock().epoch
    }

    // Suppressed: the directive acknowledges the held guard.
    pub fn read_suppressed(&self, id: u64) -> Result<Vec<Point>, Error> {
        let state = self.state.lock();
        // seplint: allow(R8): fixture exercising the suppression path
        let points = self.store.get(id)?;
        drop(state);
        Ok(points)
    }
}
