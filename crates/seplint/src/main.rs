//! CLI entry point: `seplint [--format json] [workspace-root]` (root
//! defaults to `.`). Prints every violation and exits non-zero if any were
//! found. With `--format json` the findings are emitted to stdout as a JSON
//! array of `{file, line, rule, message}` objects (an empty array when
//! clean), so CI can name the exact violation without scraping text.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!(
                        "seplint: unknown format {:?} (expected `json` or `text`)",
                        other.unwrap_or("<missing>")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--format=json" => json = true,
            "--format=text" => json = false,
            other => root = PathBuf::from(other),
        }
    }
    match seplint::lint_workspace(&root) {
        Ok(violations) => {
            if json {
                println!("{}", to_json(&violations));
            } else if violations.is_empty() {
                println!("seplint: ok (R1-R9 clean)");
            } else {
                for v in &violations {
                    eprintln!("{v}");
                }
                eprintln!("seplint: {} violation(s)", violations.len());
            }
            if violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("seplint: error: {err}");
            ExitCode::FAILURE
        }
    }
}

/// Renders the findings as a JSON array. Hand-rolled (the crate is
/// dependency-free by design); strings are escaped per RFC 8259.
fn to_json(violations: &[seplint::Violation]) -> String {
    let mut out = String::from("[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            escape(&v.file.display().to_string()),
            v.line,
            escape(v.rule),
            escape(&v.message)
        ));
    }
    if !violations.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// JSON string escaping: backslash, quote, and control characters.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}
