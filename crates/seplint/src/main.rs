//! CLI entry point: `seplint [workspace-root]` (defaults to `.`).
//! Prints every violation and exits non-zero if any were found.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args_os()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    match seplint::lint_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("seplint: ok (R1-R6 clean)");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("seplint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("seplint: error: {err}");
            ExitCode::FAILURE
        }
    }
}
