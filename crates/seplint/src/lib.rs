//! `seplint` — the workspace's own static-analysis pass.
//!
//! An offline, dependency-free lint binary that mechanically enforces the
//! storage-kernel contracts the test suite can only probabilistically
//! witness:
//!
//! * **R1** — library crates never `unwrap`/`expect`/`panic!` outside tests.
//! * **R2** — every library crate root carries `#![forbid(unsafe_code)]`.
//! * **R3** — deterministic kernel modules never read wall clocks or touch
//!   threads.
//! * **R4** — public kernel functions that can panic must return `Result`.
//! * **R5** — engine modules keep the durability order: WAL append before
//!   buffer insert, manifest/flushing cover before WAL truncation.
//! * **R6** — durability modules fsync the parent directory (`sync_dir`)
//!   after every `rename`, or the new name itself can vanish in a crash.
//! * **R7** — decoder modules bounds-check every length decoded from
//!   untrusted bytes before it sizes an allocation.
//! * **R8** — lock modules acquire locks in the documented order and never
//!   hold a `MutexGuard` across store/WAL I/O or channel operations.
//! * **R9** — engine modules emit a typed obs event in every function that
//!   mutates a metric counter.
//!
//! R5 and R8 resolve helper calls through a crate-wide call graph
//! ([`callgraph::CallGraph`]) built over every `.rs` file of the `lsm`
//! crate, so contracts that span files are checked at the call site.
//!
//! Run it as `cargo run -p seplint -- <workspace-root>` (add
//! `--format json` for machine-readable output); CI runs it before the
//! build. Suppress a finding with
//! `// seplint: allow(Rn): reason` on the offending line or the line above.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod lexer;
pub mod rules;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use callgraph::{module_matches, CallGraph};

/// Library crates subject to R1 (no panics) and R2 (forbid unsafe).
pub const LIB_CRATES: &[&str] = &["types", "dist", "core", "lsm", "workload"];

/// Deterministic kernel modules subject to R3 and R4 — the pure state
/// machines that replay, crash-schedule exploration and proptest shrinking
/// rely on.
pub const KERNEL_MODULES: &[&str] = &[
    "admission.rs",
    "arbiter.rs",
    "buffer.rs",
    "cache.rs",
    "compaction.rs",
    "version.rs",
    "memtable.rs",
    "fault.rs",
    "recovery.rs",
    "obs.rs",
    "filter.rs",
];

/// Engine modules subject to the R5 durability-ordering and R9
/// event-coverage lints.
pub const ORDERING_MODULES: &[&str] =
    &["engine.rs", "background.rs", "multi.rs"];

/// Physical-durability modules subject to the R6 rename-then-sync-dir lint.
pub const DURABILITY_MODULES: &[&str] = &["store.rs", "wal.rs", "manifest.rs"];

/// Modules that decode attacker-grade bytes (corrupt SSTables, WALs,
/// manifests), subject to the R7 untrusted-length lint. Matched as
/// `/`-normalized path suffixes on component boundaries, so nested modules
/// like `sstable/format.rs` resolve correctly.
pub const DECODER_MODULES: &[&str] = &[
    "sstable/format.rs",
    "codec.rs",
    "sstable/varint.rs",
    "sstable/compress.rs",
    "wal.rs",
    "manifest.rs",
];

/// Modules with real lock/channel concurrency, subject to the R8
/// lock-discipline lint.
pub const LOCK_MODULES: &[&str] = &[
    "engine.rs",
    "background.rs",
    "multi.rs",
    "cache.rs",
    "store.rs",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Rule id (`"R1"` .. `"R9"`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Lints every library crate under `root/crates`, returning all findings
/// sorted by file then line. Runs in two passes: first every `.rs` file of
/// the `lsm` crate is read and indexed into a [`CallGraph`], then each file
/// is linted with cross-file call edges available to R5 and R8.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for name in LIB_CRATES {
        let src_dir = root.join("crates").join(name).join("src");
        if !src_dir.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "library crate `{name}` not found at {}",
                    src_dir.display()
                ),
            ));
        }
        let mut sources = Vec::new();
        for file in rust_files(&src_dir)? {
            let src = fs::read_to_string(&file)?;
            sources.push((file, src));
        }
        // The cross-file graph only matters for `lsm` (the sole crate with
        // R5/R8 scope); other crates lint with an empty graph.
        let graph = if *name == "lsm" {
            CallGraph::build(&sources)
        } else {
            CallGraph::empty()
        };
        for (file, src) in &sources {
            out.extend(lint_file_with(file, src, name, &graph));
        }
    }
    out.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(out)
}

/// Applies every rule whose scope matches `file` (which lives in library
/// crate `crate_name`), resolving helper calls within this file only.
/// Prefer [`lint_workspace`], which supplies the crate-wide graph.
pub fn lint_file(file: &Path, src: &str, crate_name: &str) -> Vec<Violation> {
    let graph = CallGraph::build(&[(file.to_path_buf(), src.to_string())]);
    lint_file_with(file, src, crate_name, &graph)
}

/// Applies every rule whose scope matches `file`, resolving calls through
/// `graph`.
pub fn lint_file_with(
    file: &Path,
    src: &str,
    crate_name: &str,
    graph: &CallGraph,
) -> Vec<Violation> {
    let mut out = rules::no_panics(file, src);
    let base = file
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or_default();
    if base == "lib.rs" {
        out.extend(rules::forbids_unsafe(file, src));
    }
    if crate_name == "lsm" && KERNEL_MODULES.contains(&base) {
        out.extend(rules::deterministic_kernel(file, src));
        out.extend(rules::kernel_returns_results(file, src));
    }
    if crate_name == "lsm" && ORDERING_MODULES.contains(&base) {
        out.extend(rules::durability_order_with(file, src, graph));
        out.extend(rules::event_coverage(file, src));
    }
    if crate_name == "lsm" && DURABILITY_MODULES.contains(&base) {
        out.extend(rules::rename_syncs_dir(file, src));
    }
    if crate_name == "lsm"
        && DECODER_MODULES.iter().any(|m| module_matches(file, m))
    {
        out.extend(rules::untrusted_len(file, src));
    }
    if crate_name == "lsm" && LOCK_MODULES.contains(&base) {
        out.extend(rules::lock_discipline_with(file, src, graph));
    }
    out
}

/// Recursively collects every `.rs` file under `dir`, sorted for
/// deterministic output.
fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}
