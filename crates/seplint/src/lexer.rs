//! A minimal hand-rolled Rust lexer — just enough token structure for
//! line-accurate, comment/string-safe linting. No external dependencies.
//!
//! The lexer understands everything that could make a naive text search
//! lie: line and (nested) block comments, string / raw-string / byte-string
//! literals, character literals vs. lifetimes, and numeric literals. It
//! also collects `// seplint: allow(Rn): reason` suppression directives so
//! rules can honour per-line opt-outs.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `pub`, `fn`, ...).
    Ident(String),
    /// A single punctuation character (`.`, `!`, `{`, ...).
    Punct(char),
    /// Any literal (string, char, number); contents are irrelevant to every
    /// rule, so they are collapsed.
    Literal,
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: usize,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// `true` if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// `true` if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }
}

/// Lexer output: the token stream plus suppression directives.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// `(line, rule)` pairs from `// seplint: allow(Rn): reason` comments.
    pub allows: Vec<(usize, String)>,
}

impl LexOutput {
    /// `true` when rule `rule` is suppressed for a violation on `line`
    /// (the directive may sit on the offending line or the line above).
    pub fn is_allowed(&self, line: usize, rule: &str) -> bool {
        self.allows
            .iter()
            .any(|(l, r)| r == rule && (*l == line || l + 1 == line))
    }
}

/// Lexes `src` into tokens and suppression directives. Never fails: input
/// that is not valid Rust just produces a best-effort token stream.
pub fn lex(src: &str) -> LexOutput {
    let chars: Vec<char> = src.chars().collect();
    let mut out = LexOutput::default();
    let mut i = 0;
    let mut line = 1;

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                collect_allows(&text, line, &mut out.allows);
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Nested block comments, per the Rust grammar.
                let mut depth = 1;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/')
                    {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
                i = skip_string(&chars, i + 1, &mut line);
            }
            '\'' => {
                i = lex_quote(&chars, i, &mut line, &mut out.tokens);
            }
            c if c.is_alphabetic() || c == '_' => {
                if let Some(next) = try_raw_or_byte_string(&chars, i) {
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        line,
                    });
                    // Re-count the newlines the literal spans.
                    line +=
                        chars[i..next].iter().filter(|&&c| c == '\n').count();
                    i = next;
                    continue;
                }
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_')
                {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident(chars[start..i].iter().collect()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
                while i < chars.len()
                    && (chars[i].is_alphanumeric()
                        || chars[i] == '_'
                        || (chars[i] == '.'
                            && chars
                                .get(i + 1)
                                .is_some_and(char::is_ascii_digit)))
                {
                    i += 1;
                }
            }
            c => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Records `seplint: allow(R1, R2): why` directives found in a comment.
fn collect_allows(
    comment: &str,
    line: usize,
    allows: &mut Vec<(usize, String)>,
) {
    let Some(idx) = comment.find("seplint: allow(") else {
        return;
    };
    let rest = &comment[idx + "seplint: allow(".len()..];
    let Some(close) = rest.find(')') else {
        return;
    };
    for rule in rest[..close].split(',') {
        allows.push((line, rule.trim().to_string()));
    }
}

/// Skips past a (non-raw) string body starting *after* the opening quote;
/// returns the index past the closing quote.
fn skip_string(chars: &[char], mut i: usize, line: &mut usize) -> usize {
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Lexes a `'`-introduced token: a character literal (collapsed to
/// `Literal`) or a lifetime (skipped; the following identifier lexes as a
/// plain ident, which no rule cares about).
fn lex_quote(
    chars: &[char],
    i: usize,
    line: &mut usize,
    tokens: &mut Vec<Token>,
) -> usize {
    let next = chars.get(i + 1).copied();
    let is_char_literal = match next {
        Some('\\') => true,
        Some(c) if c.is_alphanumeric() || c == '_' => {
            // `'a'` is a char literal; `'a` (no closing quote right after
            // one ident char run) is a lifetime.
            chars.get(i + 2) == Some(&'\'')
        }
        Some('\'') | None => false,
        Some(_) => true, // e.g. '(' as a char literal
    };
    if !is_char_literal {
        return i + 1; // lifetime: drop the quote, lex the ident normally
    }
    tokens.push(Token {
        kind: TokenKind::Literal,
        line: *line,
    });
    let mut j = i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '\'' => return j + 1,
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// If position `i` starts a raw / byte / raw-byte string (`r"`, `r#"`,
/// `b"`, `br#"` ...), returns the index just past its closing delimiter.
fn try_raw_or_byte_string(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    let raw = chars.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    if !raw && j == i {
        return None; // plain identifier starting with something else
    }
    let mut hashes = 0;
    if raw {
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
    }
    if chars.get(j) == Some(&'\'') && !raw && chars[i] == 'b' {
        // Byte char literal b'x'.
        let mut k = j + 1;
        while k < chars.len() {
            match chars[k] {
                '\\' => k += 2,
                '\'' => return Some(k + 1),
                _ => k += 1,
            }
        }
        return Some(k);
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    j += 1;
    if !raw {
        // Byte string with ordinary escapes.
        while j < chars.len() {
            match chars[j] {
                '\\' => j += 2,
                '"' => return Some(j + 1),
                _ => j += 1,
            }
        }
        return Some(j);
    }
    // Raw (byte) string: ends at `"` followed by `hashes` hash marks.
    while j < chars.len() {
        if chars[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0;
            while seen < hashes && chars.get(k) == Some(&'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some(k);
            }
        }
        j += 1;
    }
    Some(j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r##"
            // unwrap in a comment
            /* panic! in a /* nested */ block */
            let s = "unwrap inside a string";
            let r = r#"expect in a raw "string""#;
            let b = b"panic bytes";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.iter().any(|i| i == "unwrap" || i == "panic"));
    }

    #[test]
    fn char_literals_and_lifetimes_are_distinguished() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }";
        let ids = idents(src);
        // Lifetime names survive as plain idents; char contents do not.
        assert!(ids.contains(&"a".to_string()));
        assert!(!ids.contains(&"x ".to_string()));
        let literals = lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(literals, 2, "two char literals");
    }

    #[test]
    fn line_numbers_are_accurate() {
        let src = "a\nb\n\nc";
        let lines: Vec<usize> =
            lex(src).tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn allow_directives_are_collected() {
        let src = "x(); // seplint: allow(R1): test harness only\ny();";
        let out = lex(src);
        assert_eq!(out.allows, vec![(1, "R1".to_string())]);
        assert!(out.is_allowed(1, "R1"));
        assert!(out.is_allowed(2, "R1"), "next line is covered too");
        assert!(!out.is_allowed(1, "R2"));
        assert!(!out.is_allowed(3, "R1"));
    }

    #[test]
    fn numeric_literals_do_not_eat_method_calls() {
        let src = "let x = 1.max(2); let y = 1.5e-3; let r = 0..10;";
        let ids = idents(src);
        assert!(ids.contains(&"max".to_string()));
    }
}
