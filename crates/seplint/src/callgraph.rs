//! Workspace-wide function index and call graph.
//!
//! The first seplint generation judged every rule one file at a time, so a
//! contract spanning a helper boundary was invisible unless caller and
//! callee happened to share a file — R5's expansion stopped at the file
//! edge, and cross-file helpers needed `// seplint: allow` paper-overs.
//! This pass indexes every `fn` defined in the analyzed crate, keeps each
//! body's (test-stripped) token stream, and resolves call edges by callee
//! name across the whole crate. On top of the edges it computes a
//! transitive *I/O summary* per function name — "does calling this reach a
//! table-store or WAL operation?" — which R8 uses to flag I/O performed
//! through helpers while a lock guard is live.
//!
//! Resolution is purely by name (the lexer has no type information). Two
//! conservative choices keep that sound in practice:
//!
//! * call edges merge **every** definition of the callee name, so an
//!   ambiguous name over-approximates rather than picking one impl;
//! * the I/O summary only treats a call as I/O when **all** definitions of
//!   the name perform I/O — ubiquitous names (`get`, `insert`, ...) with
//!   one pure impl therefore never poison their callers.

use std::collections::{HashMap, HashSet};
use std::ops::Range;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Token, TokenKind};

/// Table-store methods that constitute storage I/O when invoked on a
/// store-typed receiver (`store.get(...)`, `worker_store.put(...)`).
pub const STORE_OPS: &[&str] = &[
    "get",
    "put",
    "delete",
    "may_contain",
    "table_len",
    "read_span",
    "list",
];

/// WAL methods that constitute log I/O (`wal.append(...)`, ...).
pub const WAL_OPS: &[&str] =
    &["append", "rewrite", "sync", "replay", "replay_salvage"];

/// A function parsed out of a token stream: name, visibility, whether the
/// signature mentions `Result`, and the token range of the body
/// (*excluding* the outer braces).
pub(crate) struct FnItem {
    pub(crate) name: String,
    pub(crate) is_pub: bool,
    pub(crate) returns_result: bool,
    /// Line of the `fn` name token.
    pub(crate) line: usize,
    pub(crate) body: Range<usize>,
}

/// Removes every test-only item: any item annotated with an outer attribute
/// containing the identifier `test` (so `#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, ...))]`) is dropped together with its body. Attributes
/// containing `not` (e.g. `#[cfg(not(test))]`) are kept.
pub(crate) fn strip_test_items(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
        {
            // Collect the attribute to its matching `]`.
            let mut j = i + 2;
            let mut depth = 1;
            let mut has_test = false;
            let mut has_not = false;
            while j < tokens.len() && depth > 0 {
                match &tokens[j].kind {
                    TokenKind::Punct('[') => depth += 1,
                    TokenKind::Punct(']') => depth -= 1,
                    TokenKind::Ident(id) if id == "test" => has_test = true,
                    TokenKind::Ident(id) if id == "not" => has_not = true,
                    _ => {}
                }
                j += 1;
            }
            if has_test && !has_not {
                // Skip the annotated item: through the next `;` at brace
                // depth zero, or through the matching `}` of its body.
                let mut brace_depth = 0usize;
                while j < tokens.len() {
                    match &tokens[j].kind {
                        TokenKind::Punct('{') => brace_depth += 1,
                        TokenKind::Punct('}') => {
                            brace_depth -= 1;
                            if brace_depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        TokenKind::Punct(';') if brace_depth == 0 => {
                            j += 1;
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j;
                continue;
            }
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Finds every `fn` item and its balanced-brace body in `tokens`.
pub(crate) fn parse_functions(tokens: &[Token]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name) = tokens.get(i + 1).and_then(Token::ident) else {
            i += 1;
            continue;
        };
        let line = tokens[i + 1].line;
        // `pub` (possibly `pub(crate)` / `pub(super)`) and fn qualifiers
        // appear a few tokens back.
        let mut is_pub = false;
        for back in tokens[i.saturating_sub(6)..i].iter() {
            if back.is_ident("pub") {
                is_pub = true;
            }
            // A `}`, `;` or `{` between `pub` and `fn` means the `pub`
            // belonged to a previous item.
            if back.is_punct('}') || back.is_punct(';') || back.is_punct('{') {
                is_pub = false;
            }
        }
        // Scan the signature to the body `{` (or `;` for trait decls).
        let mut j = i + 2;
        let mut returns_result = false;
        let mut body = None;
        while j < tokens.len() {
            match &tokens[j].kind {
                TokenKind::Ident(id) if id == "Result" => {
                    returns_result = true;
                    j += 1;
                }
                TokenKind::Punct('{') => {
                    body = Some(j);
                    break;
                }
                TokenKind::Punct(';') => break,
                _ => j += 1,
            }
        }
        let Some(open) = body else {
            i = j + 1;
            continue;
        };
        // Balanced-brace scan for the body end.
        let mut depth = 0usize;
        let mut k = open;
        while k < tokens.len() {
            match &tokens[k].kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        out.push(FnItem {
            name: name.to_string(),
            is_pub,
            returns_result,
            line,
            body: open + 1..k,
        });
        // Recurse into the body too (nested fns are rare but cheap to
        // support): continue scanning right after the signature.
        i = open + 1;
    }
    out
}

/// One indexed function definition.
pub struct FnDef {
    /// File the function is defined in.
    pub file: PathBuf,
    /// Function name (no path or type qualification).
    pub name: String,
    /// 1-based line of the name token.
    pub line: usize,
    /// Test-stripped body tokens (outer braces excluded).
    pub body: Vec<Token>,
    /// `(callee name, call line)` for every `ident(`-shaped call in the
    /// body whose identifier names some indexed function.
    pub calls: Vec<(String, usize)>,
    /// Whether the body reaches a table-store or WAL operation, directly or
    /// through calls (fixpoint over the graph, all-definitions rule).
    pub does_io: bool,
}

/// The crate-wide call graph: every function definition plus name-resolved
/// call edges and transitive I/O summaries.
#[derive(Default)]
pub struct CallGraph {
    defs: Vec<FnDef>,
    by_name: HashMap<String, Vec<usize>>,
}

impl CallGraph {
    /// An empty graph: every lookup misses, so rules degrade to the
    /// same-file behaviour of their inputs.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Indexes every function in `files` (path + source pairs) and resolves
    /// call edges and I/O summaries across all of them.
    pub fn build(files: &[(PathBuf, String)]) -> Self {
        let mut defs = Vec::new();
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (path, src) in files {
            let lexed = lex(src);
            let tokens = strip_test_items(&lexed.tokens);
            for item in parse_functions(&tokens) {
                let body: Vec<Token> = tokens[item.body.clone()].to_vec();
                by_name
                    .entry(item.name.clone())
                    .or_default()
                    .push(defs.len());
                defs.push(FnDef {
                    file: path.clone(),
                    name: item.name,
                    line: item.line,
                    body,
                    calls: Vec::new(),
                    does_io: false,
                });
            }
        }
        // Call edges: any `name(`-shaped use of an indexed function name.
        let names: HashSet<&str> = by_name.keys().map(String::as_str).collect();
        let mut all_calls = Vec::with_capacity(defs.len());
        for def in &defs {
            let mut calls = Vec::new();
            for (i, t) in def.body.iter().enumerate() {
                let Some(id) = t.ident() else { continue };
                if names.contains(id)
                    && def.body.get(i + 1).is_some_and(|n| n.is_punct('('))
                {
                    calls.push((id.to_string(), t.line));
                }
            }
            all_calls.push(calls);
        }
        for (def, calls) in defs.iter_mut().zip(all_calls) {
            def.calls = calls;
        }
        // Seed the I/O summaries with direct store/WAL operations, then
        // propagate to callers until the fixpoint: a call counts only when
        // *every* definition of the callee name does I/O.
        for def in &mut defs {
            def.does_io = direct_io(&def.body);
        }
        loop {
            let mut changed = false;
            for i in 0..defs.len() {
                if defs[i].does_io {
                    continue;
                }
                let reaches = defs[i].calls.iter().any(|(name, _)| {
                    by_name.get(name).is_some_and(|ids| {
                        !ids.is_empty() && ids.iter().all(|&j| defs[j].does_io)
                    })
                });
                if reaches {
                    defs[i].does_io = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Self { defs, by_name }
    }

    /// Every definition of `name`, across all indexed files.
    pub fn defs_named(&self, name: &str) -> impl Iterator<Item = &FnDef> {
        self.by_name
            .get(name)
            .map(Vec::as_slice)
            .unwrap_or_default()
            .iter()
            .map(|&i| &self.defs[i])
    }

    /// `true` when `name` is defined somewhere in the indexed crate.
    pub fn defines(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// `true` when calling `name` reaches store/WAL I/O under the
    /// all-definitions rule (so an ambiguous name with one pure definition
    /// stays clean).
    pub fn call_does_io(&self, name: &str) -> bool {
        self.by_name.get(name).is_some_and(|ids| {
            !ids.is_empty() && ids.iter().all(|&i| self.defs[i].does_io)
        })
    }

    /// Names that are called from at least one indexed function body.
    pub fn called_names(&self) -> HashSet<&str> {
        self.defs
            .iter()
            .flat_map(|d| d.calls.iter())
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Every indexed definition (in insertion order).
    pub fn defs(&self) -> &[FnDef] {
        &self.defs
    }
}

/// `true` when the body performs a store or WAL operation directly:
/// `<store-ish>.op(...)` with `op` from [`STORE_OPS`], or `wal.op(...)`
/// with `op` from [`WAL_OPS`]. A "store-ish" receiver is an identifier
/// named `store` or ending in `_store` (the workspace convention for
/// `dyn TableStore` handles).
fn direct_io(body: &[Token]) -> bool {
    body.iter().enumerate().any(|(i, t)| {
        let Some(id) = t.ident() else { return false };
        let method_call = |ops: &[&str]| {
            body.get(i + 1).is_some_and(|n| n.is_punct('.'))
                && body.get(i + 2).is_some_and(|n| {
                    n.ident().is_some_and(|m| ops.contains(&m))
                })
                && body.get(i + 3).is_some_and(|n| n.is_punct('('))
        };
        if (id == "store" || id.ends_with("_store")) && method_call(STORE_OPS) {
            return true;
        }
        id == "wal" && method_call(WAL_OPS)
    })
}

/// `true` when `path` (normalized to `/` separators) ends with the module
/// suffix `suffix` on a path-component boundary, so `codec.rs` matches
/// `crates/lsm/src/codec.rs` but not `xcodec.rs`, and `sstable/format.rs`
/// matches only the submodule file.
pub fn module_matches(path: &Path, suffix: &str) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    p == suffix || p.ends_with(&format!("/{suffix}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let files: Vec<(PathBuf, String)> = files
            .iter()
            .map(|(p, s)| (PathBuf::from(p), (*s).to_string()))
            .collect();
        CallGraph::build(&files)
    }

    #[test]
    fn resolves_call_edges_across_files() {
        let g = graph(&[
            ("a.rs", "fn caller() { helper(1); }"),
            ("b.rs", "fn helper(x: u32) -> u32 { x }"),
        ]);
        let caller = g.defs_named("caller").next().expect("caller indexed");
        assert_eq!(caller.calls, vec![("helper".to_string(), 1)]);
        assert!(g.defines("helper"));
        assert_eq!(g.defs_named("helper").count(), 1);
    }

    #[test]
    fn io_summary_propagates_transitively() {
        let g = graph(&[
            ("a.rs", "fn top(&self) { self.middle(); }\nfn middle(&self) { leaf(); }"),
            ("b.rs", "fn leaf() { store.put(&points); }"),
        ]);
        assert!(g.call_does_io("leaf"));
        assert!(g.call_does_io("middle"));
        assert!(g.call_does_io("top"));
    }

    #[test]
    fn ambiguous_names_with_a_pure_definition_stay_clean() {
        let g = graph(&[
            ("a.rs", "fn get(&self) { store.get(id); }"),
            ("b.rs", "fn get(&self) -> u32 { self.field }"),
            ("c.rs", "fn user(&self) { self.get(); }"),
        ]);
        assert!(
            !g.call_does_io("get"),
            "one pure `get` must veto the summary"
        );
        assert!(!g.call_does_io("user"));
    }

    #[test]
    fn wal_ops_count_as_io() {
        let g =
            graph(&[("a.rs", "fn log(&mut self) { self.wal.append(&p); }")]);
        assert!(g.call_does_io("log"));
    }

    #[test]
    fn module_suffix_matching_requires_component_boundary() {
        use std::path::Path;
        assert!(module_matches(
            Path::new("crates/lsm/src/codec.rs"),
            "codec.rs"
        ));
        assert!(module_matches(
            Path::new("crates/lsm/src/sstable/format.rs"),
            "sstable/format.rs"
        ));
        assert!(!module_matches(
            Path::new("crates/lsm/src/xcodec.rs"),
            "codec.rs"
        ));
        assert!(!module_matches(
            Path::new("crates/lsm/src/format.rs"),
            "sstable/format.rs"
        ));
    }
}
