//! The six storage-kernel rules, R1–R6, over lexed token streams.
//!
//! | rule | scope | contract |
//! |------|-------|----------|
//! | R1 | library crates | no `unwrap` / `expect` / `panic!` outside tests |
//! | R2 | library crate roots | `#![forbid(unsafe_code)]` present |
//! | R3 | kernel modules | no wall-clock or thread calls (determinism) |
//! | R4 | kernel modules | panicking `pub fn`s must return `Result` |
//! | R5 | engine modules | WAL-before-buffer, cover-before-truncate |
//! | R6 | durability modules | every `rename` followed by a `sync_dir` |
//!
//! Every rule honours `// seplint: allow(Rn): reason` on the offending
//! line or the line above, and none of them look inside `#[cfg(test)]`
//! items or `#[test]` functions.

use std::path::Path;

use crate::lexer::{lex, Token, TokenKind};
use crate::Violation;

/// Wall-clock and thread identifiers banned from deterministic kernel
/// modules by R3.
const NONDETERMINISTIC: &[&str] = &[
    "SystemTime",
    "Instant",
    "spawn",
    "yield_now",
    "sleep",
    "park",
];

/// Panicking macros whose *debug-only* or *statically-proven* variants are
/// exempt from R4 by design: `debug_assert!` family disappears in release
/// builds, and `unreachable!` marks arms the type system cannot remove.
/// (These are distinct identifiers, so they never collide with the banned
/// `assert`/`panic` tokens.)
const R4_BANNED_MACROS: &[&str] =
    &["panic", "assert", "assert_eq", "assert_ne"];

fn violation(
    path: &Path,
    line: usize,
    rule: &'static str,
    message: impl Into<String>,
) -> Violation {
    Violation {
        file: path.to_path_buf(),
        line,
        rule,
        message: message.into(),
    }
}

/// Removes every test-only item: any item annotated with an outer attribute
/// containing the identifier `test` (so `#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, ...))]`) is dropped together with its body. Attributes
/// containing `not` (e.g. `#[cfg(not(test))]`) are kept.
fn strip_test_items(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
        {
            // Collect the attribute to its matching `]`.
            let mut j = i + 2;
            let mut depth = 1;
            let mut has_test = false;
            let mut has_not = false;
            while j < tokens.len() && depth > 0 {
                match &tokens[j].kind {
                    TokenKind::Punct('[') => depth += 1,
                    TokenKind::Punct(']') => depth -= 1,
                    TokenKind::Ident(id) if id == "test" => has_test = true,
                    TokenKind::Ident(id) if id == "not" => has_not = true,
                    _ => {}
                }
                j += 1;
            }
            if has_test && !has_not {
                // Skip the annotated item: through the next `;` at brace
                // depth zero, or through the matching `}` of its body.
                let mut brace_depth = 0usize;
                while j < tokens.len() {
                    match &tokens[j].kind {
                        TokenKind::Punct('{') => brace_depth += 1,
                        TokenKind::Punct('}') => {
                            brace_depth -= 1;
                            if brace_depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        TokenKind::Punct(';') if brace_depth == 0 => {
                            j += 1;
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j;
                continue;
            }
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// R1: no `.unwrap()`, `.expect(...)` or `panic!` in library code.
/// (`unwrap_or`, `unwrap_or_default`, `debug_assert!` etc. are distinct
/// identifiers and naturally unaffected.)
pub fn no_panics(path: &Path, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let tokens = strip_test_items(&lexed.tokens);
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        let offense = match id {
            "unwrap" | "expect" if i > 0 && tokens[i - 1].is_punct('.') => {
                format!("`.{id}()` in library code; return the error instead")
            }
            "panic" if tokens.get(i + 1).is_some_and(|n| n.is_punct('!')) => {
                "`panic!` in library code; return `Error` instead".into()
            }
            _ => continue,
        };
        if !lexed.is_allowed(t.line, "R1") {
            out.push(violation(path, t.line, "R1", offense));
        }
    }
    out
}

/// R2: the crate root must carry `#![forbid(unsafe_code)]`.
pub fn forbids_unsafe(path: &Path, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let found = lexed.tokens.windows(3).any(|w| {
        w[0].is_ident("forbid")
            && w[1].is_punct('(')
            && w[2].is_ident("unsafe_code")
    });
    if found || lexed.is_allowed(1, "R2") {
        Vec::new()
    } else {
        vec![violation(
            path,
            1,
            "R2",
            "library crate root is missing `#![forbid(unsafe_code)]`",
        )]
    }
}

/// R3: deterministic kernel modules must not read wall clocks or touch
/// threads — replays and proptest shrinking depend on pure state machines.
pub fn deterministic_kernel(path: &Path, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let tokens = strip_test_items(&lexed.tokens);
    let mut out = Vec::new();
    for t in &tokens {
        let Some(id) = t.ident() else { continue };
        if NONDETERMINISTIC.contains(&id) && !lexed.is_allowed(t.line, "R3") {
            out.push(violation(
                path,
                t.line,
                "R3",
                format!("`{id}` makes a deterministic kernel module nondeterministic"),
            ));
        }
    }
    out
}

/// R4: a public kernel function whose body can panic (`panic!`,
/// `.unwrap(`, `.expect(`, `assert!`-family) must return `Result` so the
/// failure reaches the caller as the shared error type. `debug_assert!`
/// and `unreachable!` are exempt by design (see [`R4_BANNED_MACROS`]).
pub fn kernel_returns_results(path: &Path, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let tokens = strip_test_items(&lexed.tokens);
    let mut out = Vec::new();
    for func in parse_functions(&tokens) {
        if !func.is_pub || func.returns_result {
            continue;
        }
        let body = &tokens[func.body.clone()];
        for (i, t) in body.iter().enumerate() {
            let Some(id) = t.ident() else { continue };
            let panics = match id {
                "unwrap" | "expect" => {
                    i > 0
                        && body[i - 1].is_punct('.')
                        && body.get(i + 1).is_some_and(|n| n.is_punct('('))
                }
                m if R4_BANNED_MACROS.contains(&m) => {
                    body.get(i + 1).is_some_and(|n| n.is_punct('!'))
                }
                _ => false,
            };
            if panics && !lexed.is_allowed(t.line, "R4") {
                out.push(violation(
                    path,
                    t.line,
                    "R4",
                    format!(
                        "pub fn `{}` can panic (`{id}`) but does not return `Result`",
                        func.name
                    ),
                ));
            }
        }
    }
    out
}

/// A function parsed out of the token stream: name, visibility, whether the
/// signature mentions `Result`, and the token range of the body
/// (*excluding* the outer braces).
struct FnItem {
    name: String,
    is_pub: bool,
    returns_result: bool,
    body: std::ops::Range<usize>,
}

/// Finds every `fn` item and its balanced-brace body in `tokens`.
fn parse_functions(tokens: &[Token]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name) = tokens.get(i + 1).and_then(Token::ident) else {
            i += 1;
            continue;
        };
        // `pub` (possibly `pub(crate)` / `pub(super)`) and fn qualifiers
        // appear a few tokens back.
        let mut is_pub = false;
        for back in tokens[i.saturating_sub(6)..i].iter() {
            if back.is_ident("pub") {
                is_pub = true;
            }
            // A `}`, `;` or `{` between `pub` and `fn` means the `pub`
            // belonged to a previous item.
            if back.is_punct('}') || back.is_punct(';') || back.is_punct('{') {
                is_pub = false;
            }
        }
        // Scan the signature to the body `{` (or `;` for trait decls).
        let mut j = i + 2;
        let mut returns_result = false;
        let mut body = None;
        while j < tokens.len() {
            match &tokens[j].kind {
                TokenKind::Ident(id) if id == "Result" => {
                    returns_result = true;
                    j += 1;
                }
                TokenKind::Punct('{') => {
                    body = Some(j);
                    break;
                }
                TokenKind::Punct(';') => break,
                _ => j += 1,
            }
        }
        let Some(open) = body else {
            i = j + 1;
            continue;
        };
        // Balanced-brace scan for the body end.
        let mut depth = 0usize;
        let mut k = open;
        while k < tokens.len() {
            match &tokens[k].kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        out.push(FnItem {
            name: name.to_string(),
            is_pub,
            returns_result,
            body: open + 1..k,
        });
        // Recurse into the body too (nested fns are rare but cheap to
        // support): continue scanning right after the signature.
        i = open + 1;
    }
    out
}

// ---------------------------------------------------------------------------
// R5: durability-ordering lint.
// ---------------------------------------------------------------------------

/// One durability-relevant event in a function body, in token order.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    /// `wal.append(...)` — the point became durable before buffering.
    WalAppend,
    /// `buffers.insert(...)` — a point entered a MemTable.
    BufferInsert(usize),
    /// `wal.rewrite(...)` — the WAL was truncated to a survivor set.
    WalTruncate(usize),
    /// Evidence the truncated data is covered elsewhere: a manifest record
    /// (`manifest`, `record`, `rewrite_levels`, `log_add*`) or a
    /// still-queryable flushing registration (`RegisterFlushing`).
    Cover,
    /// A recovery / migration source (`replay`, `migrate`): points flowing
    /// from here were already durable, so they need no fresh WAL append,
    /// and rewriting the WAL around them is the *point* of the path.
    Source,
    /// Call to another function defined in the same file.
    Call(String),
}

/// Identifiers that count as [`Event::Cover`].
const COVER_IDENTS: &[&str] = &[
    "manifest",
    "record",
    "rewrite_levels",
    "log_add",
    "log_add_l0",
    "RegisterFlushing",
];

/// Identifiers that count as [`Event::Source`].
const SOURCE_IDENTS: &[&str] = &["replay", "migrate"];

/// Extracts the event sequence of one function body.
fn extract_events(body: &[Token], fn_names: &[String]) -> Vec<Event> {
    let mut events = Vec::new();
    for (i, t) in body.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        let next_dot_method = |method: &str| {
            body.get(i + 1).is_some_and(|n| n.is_punct('.'))
                && body.get(i + 2).is_some_and(|n| n.is_ident(method))
        };
        if id == "wal" && next_dot_method("append") {
            events.push(Event::WalAppend);
        } else if id == "wal" && next_dot_method("rewrite") {
            events.push(Event::WalTruncate(t.line));
        } else if id == "buffers"
            && body.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && body.get(i + 2).is_some_and(|n| n.is_ident("insert"))
        {
            events.push(Event::BufferInsert(t.line));
        } else if COVER_IDENTS.contains(&id) {
            events.push(Event::Cover);
        } else if SOURCE_IDENTS.contains(&id) {
            events.push(Event::Source);
        } else if fn_names.iter().any(|n| n == id)
            && body.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            events.push(Event::Call(id.to_string()));
        }
    }
    events
}

/// Expands same-file calls (up to `depth` levels) into the caller's event
/// sequence, so ordering is judged across helper boundaries.
fn expand(
    events: &[Event],
    by_name: &std::collections::HashMap<String, Vec<Event>>,
    depth: usize,
) -> Vec<Event> {
    let mut out = Vec::new();
    for e in events {
        match e {
            Event::Call(name) if depth > 0 => {
                if let Some(callee) = by_name.get(name) {
                    out.extend(expand(callee, by_name, depth - 1));
                }
            }
            Event::Call(_) => {}
            other => out.push(other.clone()),
        }
    }
    out
}

/// R5: in the engine modules, every `buffers.insert` must be dominated by a
/// `wal.append` (or a replay/migrate source), and every `wal.rewrite`
/// (truncate) must be dominated by a manifest record / flushing
/// registration (or a source). Helpers whose only events are truncates are
/// judged at their call sites instead (`compact_wal` is deliberately a
/// leaf).
pub fn durability_order(path: &Path, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let tokens = strip_test_items(&lexed.tokens);
    let functions = parse_functions(&tokens);
    let fn_names: Vec<String> =
        functions.iter().map(|f| f.name.clone()).collect();

    let mut by_name: std::collections::HashMap<String, Vec<Event>> =
        std::collections::HashMap::new();
    let mut direct: Vec<(String, Vec<Event>)> = Vec::new();
    for f in &functions {
        let events = extract_events(&tokens[f.body.clone()], &fn_names);
        // Same-named functions across impl blocks merge conservatively.
        by_name
            .entry(f.name.clone())
            .or_default()
            .extend(events.clone());
        direct.push((f.name.clone(), events));
    }

    // Names invoked from some other function in this file: truncate-only
    // helpers among them are judged at their call sites, not here.
    let called: std::collections::HashSet<&str> = direct
        .iter()
        .flat_map(|(_, events)| events.iter())
        .filter_map(|e| match e {
            Event::Call(n) => Some(n.as_str()),
            _ => None,
        })
        .collect();

    let mut out = Vec::new();
    for (name, events) in &direct {
        let non_call: Vec<&Event> = events
            .iter()
            .filter(|e| !matches!(e, Event::Call(_)))
            .collect();
        let truncate_only = called.contains(name.as_str())
            && !non_call.is_empty()
            && non_call.iter().all(|e| matches!(e, Event::WalTruncate(_)));
        let expanded = expand(events, &by_name, 3);
        let mut covered_append = false;
        let mut covered_truncate = false;
        for e in &expanded {
            match e {
                Event::WalAppend => covered_append = true,
                Event::Cover => covered_truncate = true,
                Event::Source => {
                    covered_append = true;
                    covered_truncate = true;
                }
                Event::BufferInsert(line) => {
                    if !covered_append && !lexed.is_allowed(*line, "R5") {
                        out.push(violation(
                            path,
                            *line,
                            "R5",
                            format!(
                                "`{name}` buffers a point before any WAL \
                                 append (WAL-before-buffer violated)"
                            ),
                        ));
                    }
                }
                Event::WalTruncate(line) => {
                    if truncate_only {
                        continue; // leaf helper; judged at call sites
                    }
                    if !covered_truncate && !lexed.is_allowed(*line, "R5") {
                        out.push(violation(
                            path,
                            *line,
                            "R5",
                            format!(
                                "`{name}` truncates the WAL before the \
                                 dropped data is covered by a manifest \
                                 record or flushing registration"
                            ),
                        ));
                    }
                }
                Event::Call(_) => {}
            }
        }
    }
    out.sort_by_key(|v| v.line);
    out.dedup_by(|a, b| a.line == b.line && a.message == b.message);
    out
}

// ---------------------------------------------------------------------------
// R6: rename-then-sync-dir lint.
// ---------------------------------------------------------------------------

/// R6: a tmp-write + fsync + `rename` makes the *file contents* durable,
/// but the new directory entry itself only survives a crash once the parent
/// directory is fsynced. In the durability modules every function that
/// calls `rename(...)` must therefore call `sync_dir` later in the same
/// body. The `sync_dir` helper itself is the primitive and is exempt.
pub fn rename_syncs_dir(path: &Path, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let tokens = strip_test_items(&lexed.tokens);
    let mut out = Vec::new();
    for func in parse_functions(&tokens) {
        if func.name == "sync_dir" {
            continue;
        }
        let body = &tokens[func.body.clone()];
        for (i, t) in body.iter().enumerate() {
            let is_rename = t.is_ident("rename")
                && body.get(i + 1).is_some_and(|n| n.is_punct('('));
            if !is_rename {
                continue;
            }
            let synced_later =
                body[i + 1..].iter().any(|n| n.is_ident("sync_dir"));
            if !synced_later && !lexed.is_allowed(t.line, "R6") {
                out.push(violation(
                    path,
                    t.line,
                    "R6",
                    format!(
                        "`{}` renames without a later `sync_dir` — the new \
                         directory entry may not survive a crash",
                        func.name
                    ),
                ));
            }
        }
    }
    out
}
