//! The nine storage-kernel rules, R1–R9, over lexed token streams.
//!
//! | rule | scope | contract |
//! |------|-------|----------|
//! | R1 | library crates | no `unwrap` / `expect` / `panic!` outside tests |
//! | R2 | library crate roots | `#![forbid(unsafe_code)]` present |
//! | R3 | kernel modules | no wall-clock or thread calls (determinism) |
//! | R4 | kernel modules | panicking `pub fn`s must return `Result` |
//! | R5 | engine modules | WAL-before-buffer, cover-before-truncate |
//! | R6 | durability modules | every `rename` followed by a `sync_dir` |
//! | R7 | decoder modules | decoded lengths bounds-checked before allocation |
//! | R8 | lock modules | fixed lock order; no guard held across I/O or sends |
//! | R9 | engine modules | metric mutations emit a typed obs event |
//!
//! R5 and R8 judge helper calls through the crate-wide
//! [`CallGraph`](crate::callgraph::CallGraph), so a contract split across
//! files is checked at the call site instead of being invisible.
//!
//! Every rule honours `// seplint: allow(Rn): reason` on the offending
//! line or the line above, and none of them look inside `#[cfg(test)]`
//! items or `#[test]` functions.

use std::collections::{HashMap, HashSet};
use std::path::Path;

use crate::callgraph::{
    parse_functions, strip_test_items, CallGraph, STORE_OPS, WAL_OPS,
};
use crate::lexer::{lex, LexOutput, Token, TokenKind};
use crate::Violation;

/// Wall-clock and thread identifiers banned from deterministic kernel
/// modules by R3.
const NONDETERMINISTIC: &[&str] = &[
    "SystemTime",
    "Instant",
    "spawn",
    "yield_now",
    "sleep",
    "park",
];

/// Panicking macros whose *debug-only* or *statically-proven* variants are
/// exempt from R4 by design: `debug_assert!` family disappears in release
/// builds, and `unreachable!` marks arms the type system cannot remove.
/// (These are distinct identifiers, so they never collide with the banned
/// `assert`/`panic` tokens.)
const R4_BANNED_MACROS: &[&str] =
    &["panic", "assert", "assert_eq", "assert_ne"];

fn violation(
    path: &Path,
    line: usize,
    rule: &'static str,
    message: impl Into<String>,
) -> Violation {
    Violation {
        file: path.to_path_buf(),
        line,
        rule,
        message: message.into(),
    }
}

/// R1: no `.unwrap()`, `.expect(...)` or `panic!` in library code.
/// (`unwrap_or`, `unwrap_or_default`, `debug_assert!` etc. are distinct
/// identifiers and naturally unaffected.)
pub fn no_panics(path: &Path, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let tokens = strip_test_items(&lexed.tokens);
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        let offense = match id {
            "unwrap" | "expect" if i > 0 && tokens[i - 1].is_punct('.') => {
                format!("`.{id}()` in library code; return the error instead")
            }
            "panic" if tokens.get(i + 1).is_some_and(|n| n.is_punct('!')) => {
                "`panic!` in library code; return `Error` instead".into()
            }
            _ => continue,
        };
        if !lexed.is_allowed(t.line, "R1") {
            out.push(violation(path, t.line, "R1", offense));
        }
    }
    out
}

/// R2: the crate root must carry `#![forbid(unsafe_code)]`.
pub fn forbids_unsafe(path: &Path, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let found = lexed.tokens.windows(3).any(|w| {
        w[0].is_ident("forbid")
            && w[1].is_punct('(')
            && w[2].is_ident("unsafe_code")
    });
    if found || lexed.is_allowed(1, "R2") {
        Vec::new()
    } else {
        vec![violation(
            path,
            1,
            "R2",
            "library crate root is missing `#![forbid(unsafe_code)]`",
        )]
    }
}

/// R3: deterministic kernel modules must not read wall clocks or touch
/// threads — replays and proptest shrinking depend on pure state machines.
pub fn deterministic_kernel(path: &Path, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let tokens = strip_test_items(&lexed.tokens);
    let mut out = Vec::new();
    for t in &tokens {
        let Some(id) = t.ident() else { continue };
        if NONDETERMINISTIC.contains(&id) && !lexed.is_allowed(t.line, "R3") {
            out.push(violation(
                path,
                t.line,
                "R3",
                format!("`{id}` makes a deterministic kernel module nondeterministic"),
            ));
        }
    }
    out
}

/// R4: a public kernel function whose body can panic (`panic!`,
/// `.unwrap(`, `.expect(`, `assert!`-family) must return `Result` so the
/// failure reaches the caller as the shared error type. `debug_assert!`
/// and `unreachable!` are exempt by design (see [`R4_BANNED_MACROS`]).
pub fn kernel_returns_results(path: &Path, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let tokens = strip_test_items(&lexed.tokens);
    let mut out = Vec::new();
    for func in parse_functions(&tokens) {
        if !func.is_pub || func.returns_result {
            continue;
        }
        let body = &tokens[func.body.clone()];
        for (i, t) in body.iter().enumerate() {
            let Some(id) = t.ident() else { continue };
            let panics = match id {
                "unwrap" | "expect" => {
                    i > 0
                        && body[i - 1].is_punct('.')
                        && body.get(i + 1).is_some_and(|n| n.is_punct('('))
                }
                m if R4_BANNED_MACROS.contains(&m) => {
                    body.get(i + 1).is_some_and(|n| n.is_punct('!'))
                }
                _ => false,
            };
            if panics && !lexed.is_allowed(t.line, "R4") {
                out.push(violation(
                    path,
                    t.line,
                    "R4",
                    format!(
                        "pub fn `{}` can panic (`{id}`) but does not return `Result`",
                        func.name
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R5: durability-ordering lint (call-graph aware).
// ---------------------------------------------------------------------------

/// What a durability-relevant event *is*; see [`Ev`] for where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
enum EvKind {
    /// `wal.append(...)` — the point became durable before buffering.
    WalAppend,
    /// `buffers.insert(...)` — a point entered a MemTable.
    BufferInsert,
    /// `wal.rewrite(...)` — the WAL was truncated to a survivor set.
    WalTruncate,
    /// Evidence the truncated data is covered elsewhere: a manifest record
    /// (`manifest`, `record`, `rewrite_levels`, `log_add*`) or a
    /// still-queryable flushing registration (`RegisterFlushing`).
    Cover,
    /// A recovery / migration source (`replay`, `migrate`): points flowing
    /// from here were already durable, so they need no fresh WAL append,
    /// and rewriting the WAL around them is the *point* of the path.
    Source,
    /// Call to another function defined somewhere in the indexed crate.
    Call(String),
}

/// One durability-relevant event: its kind, the line it is judged at (the
/// call-site line for events inlined through the graph), and the helper it
/// was inlined from, if any.
#[derive(Debug, Clone)]
struct Ev {
    kind: EvKind,
    line: usize,
    via: Option<String>,
}

/// Identifiers that count as [`EvKind::Cover`].
const COVER_IDENTS: &[&str] = &[
    "manifest",
    "record",
    "rewrite_levels",
    "log_add",
    "log_add_l0",
    "RegisterFlushing",
];

/// Identifiers that count as [`EvKind::Source`].
const SOURCE_IDENTS: &[&str] = &["replay", "migrate"];

/// Extracts the event sequence of one function body. A `wal.rewrite`
/// preceded by `Wal::open` in the same body is *initialization* — the
/// function opened the log itself and is rewriting it to the full current
/// snapshot before attaching it — and produces no truncate event.
fn extract_events(body: &[Token], graph: &CallGraph) -> Vec<Ev> {
    let mut events = Vec::new();
    let mut opened_wal = false;
    for (i, t) in body.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        let next_dot_method = |method: &str| {
            body.get(i + 1).is_some_and(|n| n.is_punct('.'))
                && body.get(i + 2).is_some_and(|n| n.is_ident(method))
        };
        let ev = |kind| Ev {
            kind,
            line: t.line,
            via: None,
        };
        if id == "Wal"
            && body.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && body.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && body.get(i + 3).is_some_and(|n| n.is_ident("open"))
        {
            opened_wal = true;
        } else if id == "wal" && next_dot_method("append") {
            events.push(ev(EvKind::WalAppend));
        } else if id == "wal" && next_dot_method("rewrite") {
            if !opened_wal {
                events.push(ev(EvKind::WalTruncate));
            }
        } else if id == "buffers" && next_dot_method("insert") {
            events.push(ev(EvKind::BufferInsert));
        } else if COVER_IDENTS.contains(&id) {
            events.push(ev(EvKind::Cover));
        } else if SOURCE_IDENTS.contains(&id) {
            events.push(ev(EvKind::Source));
        } else if graph.defines(id)
            && body.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            events.push(ev(EvKind::Call(id.to_string())));
        }
    }
    events
}

/// Expands calls (up to `depth` levels) into the caller's event sequence
/// through the crate-wide graph, so ordering is judged across helper *and
/// file* boundaries. Inlined events are re-anchored at the call-site line
/// and remember the outermost helper they came from.
fn expand(events: &[Ev], graph: &CallGraph, depth: usize) -> Vec<Ev> {
    let mut out = Vec::new();
    for e in events {
        match &e.kind {
            EvKind::Call(name) if depth > 0 => {
                for def in graph.defs_named(name) {
                    let callee = extract_events(&def.body, graph);
                    for mut inlined in expand(&callee, graph, depth - 1) {
                        inlined.line = e.line;
                        inlined.via.get_or_insert_with(|| name.clone());
                        out.push(inlined);
                    }
                }
            }
            EvKind::Call(_) => {}
            _ => out.push(e.clone()),
        }
    }
    out
}

/// R5 against a single file, with helper calls resolved within that file
/// only (the pre-graph behaviour; used by fixtures and direct callers).
pub fn durability_order(path: &Path, src: &str) -> Vec<Violation> {
    let graph = CallGraph::build(&[(path.to_path_buf(), src.to_string())]);
    durability_order_with(path, src, &graph)
}

/// R5: in the engine modules, every `buffers.insert` must be dominated by a
/// `wal.append` (or a replay/migrate source), and every `wal.rewrite`
/// (truncate) must be dominated by a manifest record / flushing
/// registration (or a source). Helpers whose only events are truncates are
/// judged at their call sites instead (`compact_wal` is deliberately a
/// leaf), and calls are resolved through the crate-wide graph, so a helper
/// defined in another file is judged with its caller's context.
pub fn durability_order_with(
    path: &Path,
    src: &str,
    graph: &CallGraph,
) -> Vec<Violation> {
    let lexed = lex(src);
    let tokens = strip_test_items(&lexed.tokens);
    let functions = parse_functions(&tokens);

    // Names invoked from anywhere in the indexed crate: truncate-only
    // helpers among them are judged at their call sites, not here.
    let called = graph.called_names();

    let mut out = Vec::new();
    for f in &functions {
        let events = extract_events(&tokens[f.body.clone()], graph);
        let non_call: Vec<&Ev> = events
            .iter()
            .filter(|e| !matches!(e.kind, EvKind::Call(_)))
            .collect();
        let truncate_only = called.contains(f.name.as_str())
            && !non_call.is_empty()
            && non_call
                .iter()
                .all(|e| matches!(e.kind, EvKind::WalTruncate));
        let expanded = expand(&events, graph, 3);
        let mut covered_append = false;
        let mut covered_truncate = false;
        for e in &expanded {
            let via = e
                .via
                .as_ref()
                .map(|h| format!(" (via `{h}`)"))
                .unwrap_or_default();
            match &e.kind {
                EvKind::WalAppend => covered_append = true,
                EvKind::Cover => covered_truncate = true,
                EvKind::Source => {
                    covered_append = true;
                    covered_truncate = true;
                }
                EvKind::BufferInsert => {
                    if !covered_append && !lexed.is_allowed(e.line, "R5") {
                        out.push(violation(
                            path,
                            e.line,
                            "R5",
                            format!(
                                "`{}` buffers a point before any WAL \
                                 append{via} (WAL-before-buffer violated)",
                                f.name
                            ),
                        ));
                    }
                }
                EvKind::WalTruncate => {
                    if truncate_only {
                        continue; // leaf helper; judged at call sites
                    }
                    if !covered_truncate && !lexed.is_allowed(e.line, "R5") {
                        out.push(violation(
                            path,
                            e.line,
                            "R5",
                            format!(
                                "`{}` truncates the WAL{via} before the \
                                 dropped data is covered by a manifest \
                                 record or flushing registration",
                                f.name
                            ),
                        ));
                    }
                }
                EvKind::Call(_) => {}
            }
        }
    }
    out.sort_by_key(|v| v.line);
    out.dedup_by(|a, b| a.line == b.line && a.message == b.message);
    out
}

// ---------------------------------------------------------------------------
// R6: rename-then-sync-dir lint.
// ---------------------------------------------------------------------------

/// R6: a tmp-write + fsync + `rename` makes the *file contents* durable,
/// but the new directory entry itself only survives a crash once the parent
/// directory is fsynced. In the durability modules every function that
/// calls `rename(...)` must therefore call `sync_dir` later in the same
/// body. The `sync_dir` helper itself is the primitive and is exempt.
pub fn rename_syncs_dir(path: &Path, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let tokens = strip_test_items(&lexed.tokens);
    let mut out = Vec::new();
    for func in parse_functions(&tokens) {
        if func.name == "sync_dir" {
            continue;
        }
        let body = &tokens[func.body.clone()];
        for (i, t) in body.iter().enumerate() {
            let is_rename = t.is_ident("rename")
                && body.get(i + 1).is_some_and(|n| n.is_punct('('));
            if !is_rename {
                continue;
            }
            let synced_later =
                body[i + 1..].iter().any(|n| n.is_ident("sync_dir"));
            if !synced_later && !lexed.is_allowed(t.line, "R6") {
                out.push(violation(
                    path,
                    t.line,
                    "R6",
                    format!(
                        "`{}` renames without a later `sync_dir` — the new \
                         directory entry may not survive a crash",
                        func.name
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R7: untrusted-length allocation lint.
// ---------------------------------------------------------------------------

/// Byte-decoding calls whose integer results are attacker-controlled in
/// the decoder modules (a corrupt SSTable, WAL or manifest chooses them).
const DECODE_SOURCES: &[&str] = &[
    "get_u16_le",
    "get_u32_le",
    "get_u64_le",
    "get_i64_le",
    "read_u16_le",
    "read_u32_le",
    "read_u64_le",
    "read_i64_le",
    "get_uvarint",
    "get_ivarint",
];

/// `true` when the identifier is bounds-check evidence: comparing against
/// the input's length/remaining bytes, clamping with `.min(...)`, or a
/// named cap constant (`..MAX..`, `..CAP..`, `..LIMIT..`).
fn is_bound_ident(id: &str) -> bool {
    if matches!(id, "len" | "remaining" | "min") {
        return true;
    }
    id.chars()
        .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
        && (id.contains("MAX") || id.contains("CAP") || id.contains("LIMIT"))
}

/// R7: in decoder modules, a length/count decoded from untrusted bytes must
/// be bounds-checked (against the remaining input or a named cap) before it
/// sizes an allocation — `Vec::with_capacity(n)`, `vec![x; n]`,
/// `.reserve(n)`. Otherwise a corrupt file chooses the allocation size and
/// a 4-byte flip can OOM salvage recovery.
///
/// The analysis is a per-function, statement-granular taint pass: `let`
/// bindings whose initializer calls a [`DECODE_SOURCES`] routine become
/// tainted roots; derived bindings inherit their roots; any statement that
/// mentions a tainted name together with bounds evidence
/// ([`is_bound_ident`]) sanitizes those roots. Slice reads are out of
/// scope: the workspace routes them through the checked `codec`/`varint`
/// helpers, which R7 instead treats as taint sources.
pub fn untrusted_len(path: &Path, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let tokens = strip_test_items(&lexed.tokens);
    let mut out = Vec::new();
    for func in parse_functions(&tokens) {
        let body = &tokens[func.body.clone()];
        check_untrusted_len_fn(path, &func.name, body, &lexed, &mut out);
    }
    out
}

/// Taint state and statement scan for one function body (see
/// [`untrusted_len`]).
fn check_untrusted_len_fn(
    path: &Path,
    fn_name: &str,
    body: &[Token],
    lexed: &LexOutput,
    out: &mut Vec<Violation>,
) {
    // ident -> the tainted roots its value derives from.
    let mut taint: HashMap<String, HashSet<String>> = HashMap::new();
    let mut sanitized: HashSet<String> = HashSet::new();

    let mut start = 0;
    let mut nest = 0usize; // '(' / '[' depth: a ';' inside `vec![x; n]`
                           // or a closure argument is not a statement end.
    for i in 0..=body.len() {
        if let Some(t) = body.get(i) {
            match t.kind {
                TokenKind::Punct('(' | '[') => nest += 1,
                TokenKind::Punct(')' | ']') => nest = nest.saturating_sub(1),
                _ => {}
            }
        }
        let boundary = i == body.len()
            || (nest == 0
                && matches!(body[i].kind, TokenKind::Punct('{' | '}' | ';')));
        if !boundary {
            continue;
        }
        let stmt = &body[start..i];
        start = i + 1;
        if stmt.is_empty() {
            continue;
        }

        let has_bound =
            stmt.iter().any(|t| t.ident().is_some_and(is_bound_ident));

        // Sanitize first: a statement that compares (or clamps) a tainted
        // name against a bound clears every root it derives from, and an
        // inline `n.min(CAP)` clamp at the allocation site counts too.
        if has_bound {
            let mut cleared: Vec<String> = Vec::new();
            for t in stmt {
                if let Some(id) = t.ident() {
                    if let Some(roots) = taint.get(id) {
                        cleared.extend(roots.iter().cloned());
                    }
                }
            }
            sanitized.extend(cleared);
        }

        // Taint propagation through `let` bindings.
        if stmt.first().is_some_and(|t| t.is_ident("let")) {
            if let Some(eq) = stmt.iter().position(|t| t.is_punct('=')) {
                let (pat, rhs) = (&stmt[1..eq], &stmt[eq + 1..]);
                let direct = rhs.iter().enumerate().any(|(k, t)| {
                    t.ident().is_some_and(|id| DECODE_SOURCES.contains(&id))
                        && rhs.get(k + 1).is_some_and(|n| n.is_punct('('))
                });
                let mut roots: HashSet<String> = rhs
                    .iter()
                    .filter_map(Token::ident)
                    .filter_map(|id| taint.get(id))
                    .flatten()
                    .cloned()
                    .collect();
                let bound_names: Vec<&str> = pat
                    .iter()
                    .filter_map(Token::ident)
                    .filter(|id| !matches!(*id, "mut" | "ref"))
                    .collect();
                if direct {
                    for name in &bound_names {
                        roots.insert((*name).to_string());
                    }
                }
                if !roots.is_empty() && !has_bound {
                    for name in bound_names {
                        taint
                            .entry(name.to_string())
                            .or_default()
                            .extend(roots.iter().cloned());
                    }
                }
            }
        }

        if has_bound {
            continue; // allocation guarded in the same statement
        }

        // Allocation sinks.
        for (k, t) in stmt.iter().enumerate() {
            let Some(id) = t.ident() else { continue };
            let args = match id {
                "with_capacity"
                    if stmt.get(k + 1).is_some_and(|n| n.is_punct('(')) =>
                {
                    group(stmt, k + 1, '(', ')')
                }
                "reserve"
                    if k > 0
                        && stmt[k - 1].is_punct('.')
                        && stmt.get(k + 1).is_some_and(|n| n.is_punct('(')) =>
                {
                    group(stmt, k + 1, '(', ')')
                }
                "vec" if stmt.get(k + 1).is_some_and(|n| n.is_punct('!')) => {
                    // `vec![elem; n]`: only the repeat count after `;`
                    // sizes the allocation.
                    let g = group(stmt, k + 2, '[', ']');
                    g.iter()
                        .position(|t| t.is_punct(';'))
                        .map(|semi| g[semi + 1..].to_vec())
                        .unwrap_or_default()
                }
                _ => continue,
            };
            for (a, arg) in args.iter().enumerate() {
                let Some(aid) = arg.ident() else { continue };
                let direct_source = DECODE_SOURCES.contains(&aid)
                    && args.get(a + 1).is_some_and(|n| n.is_punct('('));
                let unsanitized_taint = taint.get(aid).is_some_and(|roots| {
                    roots.iter().any(|r| !sanitized.contains(r))
                });
                if (direct_source || unsanitized_taint)
                    && !lexed.is_allowed(t.line, "R7")
                {
                    out.push(violation(
                        path,
                        t.line,
                        "R7",
                        format!(
                            "`{fn_name}` sizes an allocation with `{aid}`, \
                             decoded from untrusted bytes, without a bounds \
                             check against the remaining input or a named cap"
                        ),
                    ));
                    break; // one finding per sink
                }
            }
        }
    }
}

/// The tokens inside the bracket group opening at `stmt[open]` (exclusive
/// of the brackets); empty if `stmt[open]` is not `open_c`.
fn group(
    stmt: &[Token],
    open: usize,
    open_c: char,
    close_c: char,
) -> Vec<Token> {
    if !stmt.get(open).is_some_and(|t| t.is_punct(open_c)) {
        return Vec::new();
    }
    let mut depth = 0usize;
    for (i, t) in stmt.iter().enumerate().skip(open) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return stmt[open + 1..i].to_vec();
            }
        }
    }
    stmt[open + 1..].to_vec() // unterminated (statement boundary split)
}

// ---------------------------------------------------------------------------
// R8: lock-discipline lint.
// ---------------------------------------------------------------------------

/// The documented lock-acquisition order, outermost first. Unknown lock
/// names rank innermost (they may be acquired under anything, but nothing
/// known may be acquired under them while they are held).
const LOCK_RANKS: &[(&str, usize)] = &[
    // Engine tier state — the outermost lock.
    ("state", 0),
    ("worker_state", 0),
    ("state_mutex", 0),
    // Block-cache structures.
    ("indexes", 1),
    ("shard", 1),
    ("shards", 1),
    ("shard_for", 1),
    // Store / sink internals — innermost.
    ("inner", 2),
    ("next_id", 2),
];

fn lock_rank(name: &str) -> usize {
    LOCK_RANKS
        .iter()
        .find(|(n, _)| *n == name)
        .map_or(usize::MAX, |(_, r)| *r)
}

/// Channel operations that must not run while a `MutexGuard` is live (a
/// bounded-channel send can block indefinitely behind backpressure).
const CHANNEL_OPS: &[&str] =
    &["send", "try_send", "recv", "recv_timeout", "try_recv"];

/// A live `let`-bound `MutexGuard`.
struct Guard {
    var: String,
    lock: String,
    rank: usize,
    depth: usize,
}

/// R8 against a single file with no cross-file call knowledge (fixtures and
/// direct callers).
pub fn lock_discipline(path: &Path, src: &str) -> Vec<Violation> {
    lock_discipline_with(path, src, &CallGraph::empty())
}

/// R8: in the lock modules, (a) locks are acquired in the documented order
/// ([`LOCK_RANKS`]: tier state → cache → store internals), and (b) no
/// `MutexGuard` is held across store/WAL/filesystem I/O or a channel
/// operation — directly or through a helper whose crate-wide call-graph
/// summary reaches I/O. Manifest writes and `obs` event emission are
/// deliberately exempt: the manifest is the metadata journal and must stay
/// serialized with the version edits it mirrors, and observer sinks are
/// wait-free buffers.
///
/// Tracking is lexical: a guard is born at `let g = <lock>.lock();`, dies
/// at `drop(g)` or its enclosing block's `}`, and guards created and
/// consumed inside one statement (`x.lock().field.clone()`) are not held
/// across anything by construction.
pub fn lock_discipline_with(
    path: &Path,
    src: &str,
    graph: &CallGraph,
) -> Vec<Violation> {
    let lexed = lex(src);
    let tokens = strip_test_items(&lexed.tokens);
    let mut out = Vec::new();
    for func in parse_functions(&tokens) {
        let body = &tokens[func.body.clone()];
        check_lock_fn(path, &func.name, body, &lexed, graph, &mut out);
    }
    out.sort_by_key(|v| v.line);
    out.dedup_by(|a, b| a.line == b.line);
    out
}

/// Guard-liveness walk for one function body (see
/// [`lock_discipline_with`]).
fn check_lock_fn(
    path: &Path,
    fn_name: &str,
    body: &[Token],
    lexed: &LexOutput,
    graph: &CallGraph,
    out: &mut Vec<Violation>,
) {
    let mut live: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut push = |line: usize, message: String| {
        if !lexed.is_allowed(line, "R8") {
            out.push(Violation {
                file: path.to_path_buf(),
                line,
                rule: "R8",
                message,
            });
        }
    };
    for (i, t) in body.iter().enumerate() {
        match &t.kind {
            TokenKind::Punct('{') => {
                depth += 1;
                continue;
            }
            TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                live.retain(|g| g.depth <= depth);
                continue;
            }
            _ => {}
        }
        let Some(id) = t.ident() else { continue };

        // `drop(g)` ends a guard early.
        if id == "drop" && body.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            if let Some(var) = body.get(i + 2).and_then(Token::ident) {
                if body.get(i + 3).is_some_and(|n| n.is_punct(')')) {
                    live.retain(|g| g.var != var);
                    continue;
                }
            }
        }

        // A `.lock()` acquisition: rank-check it, then track it if it is
        // `let`-bound as a plain guard (no trailing method chain).
        if id == "lock"
            && i > 0
            && body[i - 1].is_punct('.')
            && body.get(i + 1).is_some_and(|n| n.is_punct('('))
            && body.get(i + 2).is_some_and(|n| n.is_punct(')'))
        {
            let lock = lock_receiver(body, i - 1);
            let rank = lock_rank(&lock);
            if let Some(held) = live.iter().find(|g| rank <= g.rank) {
                push(
                    t.line,
                    format!(
                        "`{fn_name}` acquires `{lock}` while holding \
                         `{held_lock}` — the documented order is tier state \
                         → cache → store internals",
                        held_lock = held.lock
                    ),
                );
            }
            if let Some(var) = guard_binding(body, i) {
                live.push(Guard {
                    var,
                    lock,
                    rank,
                    depth,
                });
            }
            continue;
        }

        if live.is_empty() {
            continue;
        }
        let held = &live[live.len() - 1].lock;

        // Channel operations under a guard.
        if CHANNEL_OPS.contains(&id)
            && i > 0
            && body[i - 1].is_punct('.')
            && body.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            push(
                t.line,
                format!(
                    "`{fn_name}` performs a channel `{id}` while holding \
                     `{held}` — sends can block behind backpressure"
                ),
            );
            continue;
        }

        // Direct store / WAL / filesystem I/O under a guard.
        let method_call = |ops: &[&str]| {
            body.get(i + 1).is_some_and(|n| n.is_punct('.'))
                && body.get(i + 2).is_some_and(|n| {
                    n.ident().is_some_and(|m| ops.contains(&m))
                })
                && body.get(i + 3).is_some_and(|n| n.is_punct('('))
        };
        if (id == "store" || id.ends_with("_store")) && method_call(STORE_OPS) {
            let op = body[i + 2].ident().unwrap_or_default();
            push(
                t.line,
                format!(
                    "`{fn_name}` performs store I/O (`.{op}`) while \
                     holding `{held}`"
                ),
            );
            continue;
        }
        if id == "wal" && method_call(WAL_OPS) {
            let op = body[i + 2].ident().unwrap_or_default();
            push(
                t.line,
                format!(
                    "`{fn_name}` performs WAL I/O (`.{op}`) while \
                     holding `{held}`"
                ),
            );
            continue;
        }
        if id == "fs" && body.get(i + 1).is_some_and(|n| n.is_punct(':')) {
            push(
                t.line,
                format!(
                    "`{fn_name}` performs filesystem I/O while holding \
                     `{held}`"
                ),
            );
            continue;
        }

        // Transitive I/O through a helper whose call-graph summary reaches
        // a store/WAL operation (all-definitions rule).
        if graph.call_does_io(id)
            && body.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            push(
                t.line,
                format!(
                    "`{fn_name}` calls `{id}`, which reaches store/WAL \
                     I/O, while holding `{held}`"
                ),
            );
        }
    }
}

/// The lock name behind the `.` at `body[dot]` in a `.lock()` chain:
/// `self.state.lock()` → `state`; `self.shard_for(k).lock()` →
/// `shard_for`.
fn lock_receiver(body: &[Token], dot: usize) -> String {
    if dot == 0 {
        return String::new();
    }
    let mut j = dot - 1;
    if body[j].is_punct(')') {
        // Balance back over the call arguments to the callee name.
        let mut depth = 0usize;
        loop {
            if body[j].is_punct(')') {
                depth += 1;
            } else if body[j].is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if j == 0 {
                return String::new();
            }
            j -= 1;
        }
        if j == 0 {
            return String::new();
        }
        j -= 1;
    }
    body[j].ident().unwrap_or_default().to_string()
}

/// The guard variable when `body[lock_idx]`'s `.lock()` ends a
/// `let <var> = ... .lock();` statement — i.e. the next meaningful token is
/// the statement end (`;` or `?;`), and the statement starts with `let`.
fn guard_binding(body: &[Token], lock_idx: usize) -> Option<String> {
    // The token after `.lock()`'s closing paren must end the statement; a
    // trailing `.field`/`.method()` chain means the guard is a temporary.
    let mut after = lock_idx + 3;
    if body.get(after).is_some_and(|t| t.is_punct('?')) {
        after += 1;
    }
    if !body.get(after).is_some_and(|t| t.is_punct(';')) {
        return None;
    }
    // Walk back to the statement start and require `let [mut] <var> =`.
    let mut j = lock_idx;
    while j > 0 {
        match &body[j - 1].kind {
            TokenKind::Punct(';' | '{' | '}') => break,
            _ => j -= 1,
        }
    }
    if !body.get(j).is_some_and(|t| t.is_ident("let")) {
        return None;
    }
    let mut k = j + 1;
    if body.get(k).is_some_and(|t| t.is_ident("mut")) {
        k += 1;
    }
    body.get(k).and_then(Token::ident).map(str::to_string)
}

// ---------------------------------------------------------------------------
// R9: metric/event coverage lint.
// ---------------------------------------------------------------------------

/// R9: in the engine modules, every function that *mutates* a metric
/// (`metrics.<field> += ...`, `-=`, or `metrics.<field>.push(...)`) must
/// emit a typed `obs` event somewhere in the same function, so the metric
/// delta is always witnessed by the event stream (PR 4's metric/event
/// correspondence, as a lint). Plain `=` stores are exempt: the workspace
/// uses them only to fold writer-side counters into snapshots
/// (`metrics.user_points = self.user_points`), which mutate no kernel
/// counter.
pub fn event_coverage(path: &Path, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let tokens = strip_test_items(&lexed.tokens);
    let mut out = Vec::new();
    for func in parse_functions(&tokens) {
        let body = &tokens[func.body.clone()];
        let has_event = body.iter().any(|t| {
            t.is_ident("Event")
                || t.ident().is_some_and(|id| id.starts_with("emit"))
        });
        if has_event {
            continue;
        }
        for (i, t) in body.iter().enumerate() {
            if !t.is_ident("metrics")
                || !body.get(i + 1).is_some_and(|n| n.is_punct('.'))
            {
                continue;
            }
            let Some(field) = body.get(i + 2).and_then(Token::ident) else {
                continue;
            };
            let compound = matches!(
                (body.get(i + 3), body.get(i + 4)),
                (Some(a), Some(b))
                    if (a.is_punct('+') || a.is_punct('-')) && b.is_punct('=')
            );
            let push = body.get(i + 3).is_some_and(|n| n.is_punct('.'))
                && body.get(i + 4).is_some_and(|n| n.is_ident("push"))
                && body.get(i + 5).is_some_and(|n| n.is_punct('('));
            if (compound || push) && !lexed.is_allowed(t.line, "R9") {
                out.push(violation(
                    path,
                    t.line,
                    "R9",
                    format!(
                        "`{}` mutates `metrics.{field}` without emitting a \
                         typed obs event in the same function",
                        func.name
                    ),
                ));
            }
        }
    }
    out
}
