//! Shared harness for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation (see `DESIGN.md` for the experiment index). They share:
//!
//! * [`args`] — a tiny `--flag value` CLI parser (no external deps) so every
//!   experiment can be scaled (`--points`, `--seed`) or exported
//!   (`--json out.json`);
//! * [`drive`] — experiment drivers: ingest a dataset under a policy and
//!   collect WA metrics, run query workloads, measure tiered-engine
//!   throughput, run the adaptive engine;
//! * [`report`] — aligned-table printing and JSON export.

pub mod args;
pub mod drive;
pub mod report;
