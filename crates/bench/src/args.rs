//! Minimal `--flag value` argument parsing for the experiment binaries.

/// Returns the value following `--name`, if present.
pub fn flag(name: &str) -> Option<String> {
    let key = format!("--{name}");
    let argv: Vec<String> = std::env::args().collect();
    argv.iter()
        .position(|a| *a == key)
        .and_then(|i| argv.get(i + 1))
        .cloned()
}

/// Parses `--name <value>` with a default.
pub fn flag_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    flag(name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// `true` if the bare switch `--name` is present.
pub fn switch(name: &str) -> bool {
    let key = format!("--{name}");
    std::env::args().any(|a| a == key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_flags_fall_back_to_defaults() {
        assert_eq!(flag_or("definitely-not-passed", 42usize), 42);
        assert!(flag("definitely-not-passed").is_none());
        assert!(!switch("definitely-not-passed"));
    }
}
