//! Output helpers: aligned text tables and JSON export.

use std::io::Write;
use std::path::Path;

/// Prints `rows` under `headers` with aligned columns.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:>width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Prints a figure/table banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Writes `value` as pretty JSON to `path` (if given), creating parents.
pub fn maybe_write_json(
    path: Option<String>,
    value: &serde_json::Value,
) -> std::io::Result<()> {
    let Some(path) = path else { return Ok(()) };
    let path = Path::new(&path);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{}", serde_json::to_string_pretty(value)?)?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

/// Converts adaptive tuning decisions into JSON rows for report export.
pub fn tunes_json(tunes: &[seplsm_core::TuneRecord]) -> Vec<serde_json::Value> {
    tunes
        .iter()
        .map(|t| {
            serde_json::json!({
                "at_user_points": t.at_user_points,
                "r_c": t.r_c,
                "r_s_star": t.r_s_star,
                "decision": t.decision.name(),
                "delta_t": t.delta_t,
            })
        })
        .collect()
}

/// Formats a float with 3 decimals for table cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal for table cells.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_printing_does_not_panic() {
        print_table(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        banner("test");
    }

    #[test]
    fn json_writing_round_trips() {
        let dir = std::env::temp_dir()
            .join(format!("seplsm-report-{}", std::process::id()));
        let path = dir.join("out.json");
        maybe_write_json(
            Some(path.to_string_lossy().into_owned()),
            &serde_json::json!({"x": 1}),
        )
        .expect("write");
        let back: serde_json::Value = serde_json::from_str(
            &std::fs::read_to_string(&path).expect("read"),
        )
        .expect("parse");
        assert_eq!(back["x"], 1);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
    }
}
