//! Experiment drivers: feed datasets through engines and collect the
//! quantities the paper reports.

use std::path::Path;
use std::time::Instant;

use seplsm_core::{AdaptiveConfig, AdaptiveOpen, TuneRecord};
use seplsm_lsm::{
    AggregateReport, AggregateSink, DiskModel, EngineConfig, FanoutSink,
    JsonlSink, LsmEngine, MemStore, Metrics, Observer, OpenOptions, QueryStats,
    TieredEngine,
};
use seplsm_types::{DataPoint, Policy, Result};
use seplsm_workload::{HistoricalQueries, RecentQueries};

/// Ingests `points` (already in arrival order) under `policy` and returns
/// the engine's final metrics.
pub fn measure_wa(
    points: &[DataPoint],
    policy: Policy,
    sstable_points: usize,
) -> Result<Metrics> {
    let mut engine = LsmEngine::in_memory(
        EngineConfig::new(policy).with_sstable_points(sstable_points),
    )?;
    for p in points {
        engine.append(*p)?;
    }
    Ok(engine.metrics().clone())
}

/// Like [`measure_wa`] with the observability layer attached: aggregates
/// every storage-kernel event (returned as an [`AggregateReport`]) and, if
/// `trace` is given, writes the full typed event stream to it as JSONL.
/// Both run on the deterministic logical clock, so two runs of the same
/// seeded workload produce byte-identical traces.
pub fn measure_wa_traced(
    points: &[DataPoint],
    policy: Policy,
    sstable_points: usize,
    trace: Option<&Path>,
) -> Result<(Metrics, AggregateReport)> {
    let aggregate = AggregateSink::with_logical_clock();
    let mut sinks: Vec<std::sync::Arc<dyn Observer>> = vec![aggregate.clone()];
    let jsonl = match trace {
        Some(path) => {
            let file = std::fs::File::create(path)?;
            let sink = JsonlSink::with_logical_clock(Box::new(file));
            sinks.push(sink.clone());
            Some(sink)
        }
        None => None,
    };
    let mut engine = OpenOptions::new(
        EngineConfig::new(policy).with_sstable_points(sstable_points),
    )
    .observer(FanoutSink::new(sinks))
    .open()?;
    for p in points {
        engine.append(*p)?;
    }
    engine.flush_all()?;
    if let Some(sink) = jsonl {
        sink.flush()?;
    }
    Ok((engine.metrics().clone(), aggregate.report()))
}

/// Like [`measure_wa`] with the per-compaction subsequent-point probe on.
pub fn measure_wa_with_probe(
    points: &[DataPoint],
    policy: Policy,
    sstable_points: usize,
) -> Result<Metrics> {
    let mut engine = LsmEngine::in_memory(
        EngineConfig::new(policy)
            .with_sstable_points(sstable_points)
            .with_subsequent_probe(),
    )?;
    for p in points {
        engine.append(*p)?;
    }
    Ok(engine.metrics().clone())
}

/// Like [`measure_wa`] with WA snapshots every `snapshot_every` user points
/// (the Fig. 10 time series).
pub fn measure_wa_windowed(
    points: &[DataPoint],
    policy: Policy,
    sstable_points: usize,
    snapshot_every: u64,
) -> Result<Metrics> {
    let mut engine = LsmEngine::in_memory(
        EngineConfig::new(policy)
            .with_sstable_points(sstable_points)
            .with_wa_snapshots(snapshot_every),
    )?;
    for p in points {
        engine.append(*p)?;
    }
    Ok(engine.metrics().clone())
}

/// Runs the adaptive engine over `points`, returning its metrics and the
/// tuning decisions it took. `engine` carries the mechanics (initial
/// policy, table size, snapshots); `config` carries the controller knobs.
pub fn measure_adaptive(
    points: &[DataPoint],
    engine: EngineConfig,
    config: AdaptiveConfig,
) -> Result<(Metrics, Vec<TuneRecord>)> {
    let mut engine = OpenOptions::new(engine).adaptive(config)?;
    for p in points {
        engine.append(*p)?;
    }
    Ok((engine.engine().metrics().clone(), engine.tunes().to_vec()))
}

/// Aggregated result of a query workload run.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryReport {
    /// Queries executed (with a non-empty result, for RA averaging).
    pub queries: u64,
    /// Mean read amplification over non-empty queries.
    pub mean_read_amplification: f64,
    /// Mean simulated latency (ns) over all queries.
    pub mean_latency_ns: f64,
    /// Mean SSTables touched per query.
    pub mean_tables_read: f64,
    /// Mean points returned per query.
    pub mean_points_returned: f64,
}

fn summarize(per_query: &[QueryStats], disk: &DiskModel) -> QueryReport {
    if per_query.is_empty() {
        return QueryReport::default();
    }
    let ra: Vec<f64> = per_query
        .iter()
        .filter_map(QueryStats::read_amplification)
        .collect();
    let mean_ra = if ra.is_empty() {
        0.0
    } else {
        ra.iter().sum::<f64>() / ra.len() as f64
    };
    let n = per_query.len() as f64;
    QueryReport {
        queries: per_query.len() as u64,
        mean_read_amplification: mean_ra,
        mean_latency_ns: per_query
            .iter()
            .map(|s| disk.latency_ns(s))
            .sum::<f64>()
            / n,
        mean_tables_read: per_query
            .iter()
            .map(|s| s.tables_read as f64)
            .sum::<f64>()
            / n,
        mean_points_returned: per_query
            .iter()
            .map(|s| s.points_returned as f64)
            .sum::<f64>()
            / n,
    }
}

/// Runs the recent-data query workload of §V-D1 on the production-style
/// [`TieredEngine`] (overlapping level-1 files, background compaction — the
/// configuration the paper's query experiments ran on): while ingesting
/// `points`, every `workload.every_points` appended points issue
/// `time ∈ (max_written − window, max_written]`.
pub fn run_recent_queries(
    points: &[DataPoint],
    policy: Policy,
    sstable_points: usize,
    workload: RecentQueries,
    disk: &DiskModel,
) -> Result<QueryReport> {
    let mut engine = TieredEngine::new(
        EngineConfig::new(policy).with_sstable_points(sstable_points),
        std::sync::Arc::new(MemStore::new()),
    )?
    .with_sync_flush();
    let mut per_query = Vec::new();
    for (i, p) in points.iter().enumerate() {
        engine.append(*p)?;
        if workload.due(i as u64 + 1) {
            let max_gen =
                engine.max_gen_time().expect("at least one point written");
            let (_, stats) = engine.query(workload.range(max_gen))?;
            per_query.push(stats);
        }
    }
    Ok(summarize(&per_query, disk))
}

/// Runs the historical query workload of §V-D2 after ingesting `points`
/// into a [`TieredEngine`]. The level-1 backlog left by ingestion is *not*
/// force-compacted first — the paper attributes the historical-query gap to
/// exactly those not-yet-compacted overlapping files (Fig. 15).
pub fn run_historical_queries(
    points: &[DataPoint],
    policy: Policy,
    sstable_points: usize,
    workload: HistoricalQueries,
    disk: &DiskModel,
) -> Result<QueryReport> {
    let mut engine = TieredEngine::new(
        EngineConfig::new(policy).with_sstable_points(sstable_points),
        std::sync::Arc::new(MemStore::new()),
    )?
    .with_sync_flush();
    let mut min_gen = i64::MAX;
    for p in points {
        engine.append(*p)?;
        min_gen = min_gen.min(p.gen_time);
    }
    engine.drain();
    let max_gen = engine.max_gen_time().expect("non-empty dataset");
    let mut per_query = Vec::new();
    for range in workload.ranges(min_gen, max_gen) {
        let (_, stats) = engine.query(range)?;
        per_query.push(stats);
    }
    Ok(summarize(&per_query, disk))
}

/// Runs Algorithm 1 on a known delay law and returns the recommended policy
/// (used by the query experiments, which run `π_s` "with the values
/// recommended by the system", §V-D1).
pub fn recommended_policy(
    dist: std::sync::Arc<dyn seplsm_dist::DelayDistribution>,
    delta_t: f64,
    budget: usize,
) -> Result<Policy> {
    use seplsm_core::{tune, TunerOptions, WaModel};
    let model = WaModel::new(dist, delta_t, budget);
    Ok(tune(&model, TunerOptions::online(budget))?.decision)
}

/// Result of the real-world-dataset pipeline: fit → tune → measure, the flow
/// of the paper's Figs. 11, 16(b) and 18(b).
#[derive(Debug, Clone)]
pub struct EstimateVsReal {
    /// Estimated generation interval (median of sorted gen-time gaps).
    pub delta_t: f64,
    /// Model estimate of WA under `π_c`.
    pub rc_model: f64,
    /// Measured WA under `π_c`.
    pub rc_measured: f64,
    /// Recommended in-order capacity `n̂*_seq`.
    pub n_seq_star: usize,
    /// Model estimate of WA under `π_s(n̂*_seq)`.
    pub rs_model: f64,
    /// Measured WA under `π_s(n̂*_seq)`.
    pub rs_measured: f64,
}

impl EstimateVsReal {
    /// `true` when the model picked the policy with the lower *measured* WA.
    pub fn decision_correct(&self) -> bool {
        let model_separation = self.rs_model < self.rc_model;
        let real_separation = self.rs_measured < self.rc_measured;
        model_separation == real_separation
    }
}

/// Fits the empirical delay distribution of `points`, estimates WA under both
/// policies (tuning `n_seq` with Algorithm 1), and measures the real WA of
/// both — the full analyzer pipeline on a recorded dataset.
pub fn estimate_and_measure(
    points: &[DataPoint],
    budget: usize,
    sstable_points: usize,
) -> Result<EstimateVsReal> {
    use seplsm_core::{tune, TunerOptions, WaModel};
    use seplsm_dist::Empirical;

    let delays: Vec<f64> = points.iter().map(|p| p.delay() as f64).collect();
    let mut gen_times: Vec<i64> = points.iter().map(|p| p.gen_time).collect();
    gen_times.sort_unstable();
    let mut gaps: Vec<i64> = gen_times
        .windows(2)
        .map(|w| w[1] - w[0])
        .filter(|&g| g > 0)
        .collect();
    gaps.sort_unstable();
    let delta_t = gaps.get(gaps.len() / 2).copied().ok_or_else(|| {
        seplsm_types::Error::Model("dataset too small for a delta_t".into())
    })? as f64;

    let dist = std::sync::Arc::new(Empirical::from_samples(&delays));
    let model = WaModel::new(dist, delta_t, budget);
    let outcome = tune(&model, TunerOptions::online(budget))?;

    let rc_measured =
        measure_wa(points, Policy::conventional(budget), sstable_points)?
            .write_amplification();
    let rs_measured = measure_wa(
        points,
        Policy::separation(budget, outcome.best_n_seq)?,
        sstable_points,
    )?
    .write_amplification();
    Ok(EstimateVsReal {
        delta_t,
        rc_model: outcome.r_c,
        rc_measured,
        n_seq_star: outcome.best_n_seq,
        rs_model: outcome.r_s_star,
        rs_measured,
    })
}

/// Measures ingestion throughput (points/ms) on the background-compaction
/// engine — the Table III setup. Returns `(points_per_ms, report_wa)`.
pub fn measure_throughput(
    points: &[DataPoint],
    policy: Policy,
    sstable_points: usize,
) -> Result<(f64, f64)> {
    let mut engine = TieredEngine::new(
        EngineConfig::new(policy).with_sstable_points(sstable_points),
        std::sync::Arc::new(MemStore::new()),
    )?;
    let start = Instant::now();
    for p in points {
        engine.append(*p)?;
    }
    let elapsed = start.elapsed();
    let report = engine.finish()?;
    let per_ms = points.len() as f64 / elapsed.as_secs_f64() / 1_000.0;
    Ok((per_ms, report.write_amplification()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use seplsm_workload::SyntheticWorkload;

    fn dataset() -> Vec<DataPoint> {
        SyntheticWorkload::new(
            50,
            seplsm_dist::LogNormal::new(4.0, 1.5),
            20_000,
            1,
        )
        .generate()
    }

    #[test]
    fn measure_wa_reports_amplification() {
        let pts = dataset();
        let m = measure_wa(&pts, Policy::conventional(512), 512).expect("run");
        assert_eq!(m.user_points, 20_000);
        assert!(m.write_amplification() >= 0.9);
    }

    #[test]
    fn probe_records_compactions() {
        let pts = dataset();
        let m = measure_wa_with_probe(&pts, Policy::conventional(256), 256)
            .expect("run");
        assert!(!m.subsequent_counts.is_empty());
    }

    #[test]
    fn recent_queries_produce_a_report() {
        let pts = dataset();
        let report = run_recent_queries(
            &pts,
            Policy::conventional(512),
            512,
            RecentQueries::new(5_000, 1_000),
            &DiskModel::hdd(),
        )
        .expect("run");
        assert!(report.queries > 0);
        assert!(report.mean_read_amplification >= 0.0);
        assert!(report.mean_latency_ns > 0.0);
    }

    #[test]
    fn historical_queries_produce_a_report() {
        let pts = dataset();
        let report = run_historical_queries(
            &pts,
            Policy::separation(512, 256).expect("policy"),
            512,
            HistoricalQueries::new(5_000, 50, 3),
            &DiskModel::hdd(),
        )
        .expect("run");
        assert_eq!(report.queries, 50);
        assert!(report.mean_points_returned > 0.0);
    }

    #[test]
    fn throughput_is_positive() {
        let pts = dataset();
        let (per_ms, wa) =
            measure_throughput(&pts, Policy::conventional(512), 512)
                .expect("run");
        assert!(per_ms > 0.0);
        assert!(wa >= 1.0 - 1e-9);
    }
}
