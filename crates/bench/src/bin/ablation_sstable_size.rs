//! **Ablation** — SSTable size vs write amplification and model accuracy.
//!
//! The WA models count *subsequent points* while the engine rewrites whole
//! SSTables, so the model-vs-measurement gap should shrink as tables get
//! smaller (finer rewrite granularity) and grow as they get bigger. This
//! ablation quantifies that, sweeping the table size on a fixed workload.
//!
//! ```text
//! cargo run --release -p seplsm-bench --bin ablation_sstable_size -- [--points N] [--seed S]
//! ```

use std::sync::Arc;

use seplsm_bench::{args, drive, report};
use seplsm_core::WaModel;
use seplsm_types::Policy;
use seplsm_workload::paper_dataset;

fn main() -> seplsm_types::Result<()> {
    let points: usize = args::flag_or("points", 120_000);
    let seed: u64 = args::flag_or("seed", 41);
    let n = 512usize;

    let ds = paper_dataset("M6").expect("exists");
    let dataset = ds.workload(points, seed).generate();
    let model = WaModel::new(Arc::new(ds.distribution()), ds.delta_t as f64, n);
    let rc_model = model.wa_conventional();
    let rs_model = model.wa_separation(256)?.wa;

    report::banner("Ablation: SSTable size vs WA (dataset M6, n=512)");
    println!("model predictions (size-independent): r_c={rc_model:.3}, r_s(256)={rs_model:.3}");
    let mut rows = Vec::new();
    for sstable in [64usize, 128, 256, 512, 1024, 2048] {
        let wa_c =
            drive::measure_wa(&dataset, Policy::conventional(n), sstable)?
                .write_amplification();
        let wa_s =
            drive::measure_wa(&dataset, Policy::separation(n, 256)?, sstable)?
                .write_amplification();
        rows.push(vec![
            sstable.to_string(),
            report::f3(wa_c),
            report::f3(wa_c - rc_model),
            report::f3(wa_s),
            report::f3(wa_s - rs_model),
        ]);
    }
    report::print_table(
        &["sstable_pts", "pi_c WA", "gap_c", "pi_s WA", "gap_s"],
        &rows,
    );
    println!(
        "\nexpectation: gaps shrink as tables shrink (rewrite granularity \
         approaches the models' per-point accounting)"
    );
    Ok(())
}
