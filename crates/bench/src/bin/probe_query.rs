//! Diagnostic probe (not a paper figure): per-query statistics of the
//! recent-data workload on the tiered engine, for calibrating the
//! query-experiment defaults.

use std::sync::Arc;

use seplsm_bench::args;
use seplsm_lsm::{EngineConfig, MemStore, TieredEngine};
use seplsm_types::Policy;
use seplsm_workload::{paper_dataset, RecentQueries};

fn main() -> seplsm_types::Result<()> {
    let points: usize = args::flag_or("points", 20_000);
    let name = args::flag("dataset").unwrap_or_else(|| "M1".into());
    let window: i64 = args::flag_or("window", 5_000);
    let every: u64 = args::flag_or("every", 500);
    let n_seq: usize = args::flag_or("nseq", 0);

    let ds = paper_dataset(&name).expect("dataset");
    let dataset = ds.workload(points, 12).generate();
    let policy = if n_seq == 0 {
        Policy::conventional(512)
    } else {
        Policy::separation(512, n_seq)?
    };
    let mut engine = TieredEngine::new(
        EngineConfig::new(policy).with_sstable_points(512),
        Arc::new(MemStore::new()),
    )?;
    let q = RecentQueries::new(window, every);
    let mut hits = 0u32;
    let mut total = 0u32;
    for (i, p) in dataset.iter().enumerate() {
        engine.append(*p)?;
        if q.due(i as u64 + 1) {
            let max = engine.max_gen_time().expect("written");
            let (_, stats) = engine.query(q.range(max))?;
            total += 1;
            if stats.tables_read > 0 {
                hits += 1;
            }
            if total > 25 {
                println!(
                    "q{total:>3}: tables={} disk={} mem={} ret={}",
                    stats.tables_read,
                    stats.disk_points_scanned,
                    stats.mem_points_scanned,
                    stats.points_returned
                );
            }
        }
    }
    println!("queries touching disk: {hits}/{total}");
    Ok(())
}
