//! **Ablation** — storage format and read granularity.
//!
//! Compares the v1 flat format against the v2 compressed-block format on
//! encoded size, and chunk-granularity (whole-table) reads against
//! block-granular reads on read amplification — quantifying how much of the
//! paper's read-amplification discussion is an artefact of IoTDB's
//! chunk-granularity reads.
//!
//! ```text
//! cargo run --release -p seplsm-bench --bin ablation_block_reads -- [--points N] [--seed S]
//! ```

use std::sync::Arc;

use seplsm_bench::{args, report};
use seplsm_lsm::sstable::format::{encode, encode_with, EncodeOptions};
use seplsm_lsm::{EngineConfig, LsmEngine, MemStore};
use seplsm_types::{Policy, TimeRange};
use seplsm_workload::{paper_dataset, VehicleWorkload};

fn main() -> seplsm_types::Result<()> {
    let points: usize = args::flag_or("points", 60_000);
    let seed: u64 = args::flag_or("seed", 42);

    report::banner("Ablation (a): encoded bytes per point, v1 vs v2");
    let mut rows = Vec::new();
    for (name, dataset) in [
        (
            "M6 (lognormal)",
            paper_dataset("M6")
                .expect("exists")
                .workload(points, seed)
                .generate(),
        ),
        ("H (vehicle)", VehicleWorkload::new(points, seed).generate()),
    ] {
        let mut sorted = dataset.clone();
        sorted.sort();
        let v1: usize = sorted
            .chunks(512)
            .map(|c| encode(c).expect("v1").len())
            .sum();
        let v2: usize = sorted
            .chunks(512)
            .map(|c| {
                encode_with(c, &EncodeOptions::compressed())
                    .expect("v2")
                    .len()
            })
            .sum();
        rows.push(vec![
            name.to_string(),
            format!("{:.2}", v1 as f64 / sorted.len() as f64),
            format!("{:.2}", v2 as f64 / sorted.len() as f64),
            format!("{:.2}x", v1 as f64 / v2 as f64),
        ]);
    }
    report::print_table(&["dataset", "v1 B/pt", "v2 B/pt", "ratio"], &rows);

    report::banner("Ablation (b): read granularity vs read amplification");
    let dataset = paper_dataset("M6")
        .expect("exists")
        .workload(points, seed)
        .generate();
    let mut rows = Vec::new();
    for (label, block_reads) in
        [("whole-table", false), ("block (128 pts)", true)]
    {
        let mut config = EngineConfig::new(Policy::conventional(512));
        if block_reads {
            config = config.with_block_reads();
        }
        let store =
            Arc::new(MemStore::with_options(EncodeOptions::compressed()));
        let mut engine = LsmEngine::new(config, store)?;
        for p in &dataset {
            engine.append(*p)?;
        }
        // 200 interior windows of 5000 ms.
        let max = engine.max_gen_time().expect("points");
        let mut scanned = 0u64;
        let mut returned = 0u64;
        let mut blocks = 0u64;
        for i in 0..200i64 {
            let lo = (i * 7919) % (max - 5_000).max(1);
            let (_, stats) = engine.query(TimeRange::new(lo, lo + 5_000))?;
            scanned += stats.disk_points_scanned;
            returned += stats.points_returned;
            blocks += stats.blocks_read;
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", scanned as f64 / returned.max(1) as f64),
            blocks.to_string(),
        ]);
    }
    report::print_table(&["granularity", "read amp", "blocks read"], &rows);
    println!(
        "\nblock-granular reads collapse read amplification toward 1, which \
         is why the paper's Fig. 12 contrast depends on chunk-width reads"
    );
    Ok(())
}
