//! **Fig. 12** — read amplification of the recent-data query workload on
//! M1–M12, `π_c` vs `π_s` (with tuner-recommended capacities), query windows
//! of 500/1000/5000 ms.
//!
//! ```text
//! cargo run --release -p seplsm-bench --bin fig12 -- [--points N] [--seed S] [--json out.json]
//! ```

use std::sync::Arc;

use seplsm_bench::{args, drive, report};
use seplsm_lsm::DiskModel;
use seplsm_types::Policy;
use seplsm_workload::{RecentQueries, PAPER_DATASETS, PAPER_WINDOWS_MS};

fn main() -> seplsm_types::Result<()> {
    let points: usize = args::flag_or("points", 60_000);
    let seed: u64 = args::flag_or("seed", 12);
    let n = 512usize;
    let sstable = 512usize;
    let every = 500u64;
    let disk = DiskModel::hdd();

    report::banner("Fig. 12: read amplification, recent-data queries, M1-M12");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for ds in PAPER_DATASETS {
        let dataset = ds.workload(points, seed).generate();
        let rec = drive::recommended_policy(
            Arc::new(ds.distribution()),
            ds.delta_t as f64,
            n,
        )?;
        for window in PAPER_WINDOWS_MS {
            let q = RecentQueries::new(window, every);
            let conv = drive::run_recent_queries(
                &dataset,
                Policy::conventional(n),
                sstable,
                q,
                &disk,
            )?;
            let sep =
                drive::run_recent_queries(&dataset, rec, sstable, q, &disk)?;
            rows.push(vec![
                ds.name.to_string(),
                format!("{window}ms"),
                report::f1(conv.mean_read_amplification),
                report::f1(sep.mean_read_amplification),
            ]);
            json.push(serde_json::json!({
                "dataset": ds.name,
                "window_ms": window,
                "pi_c_ra": conv.mean_read_amplification,
                "pi_s_ra": sep.mean_read_amplification,
                "pi_s_policy": rec.name(),
            }));
        }
    }
    report::print_table(&["dataset", "window", "pi_c RA", "pi_s RA"], &rows);
    report::maybe_write_json(args::flag("json"), &serde_json::json!(json))
        .map_err(seplsm_types::Error::Io)?;
    Ok(())
}
