//! **Fig. 15** — SSTable generation-time spans vs a queried range, rendered
//! from real engine state.
//!
//! The paper's Fig. 15 is an illustration: under `π_c` more (and wider)
//! level-1 SSTables overlap a historical query window than under `π_s`.
//! This binary reproduces the picture from data: it ingests a disordered
//! dataset into the production-style tiered engine under both policies and
//! draws each on-disk table as a horizontal segment against the query
//! window, counting the overlaps.
//!
//! ```text
//! cargo run --release -p seplsm-bench --bin fig15 -- [--points N] [--seed S] [--window MS]
//! ```

use std::sync::Arc;

use seplsm_bench::{args, report};
use seplsm_lsm::{EngineConfig, MemStore, TieredEngine};
use seplsm_types::{Policy, TimeRange};
use seplsm_workload::paper_dataset;

const WIDTH: usize = 64;

fn render(
    label: &str,
    engine: &TieredEngine,
    query: TimeRange,
    lo: i64,
    hi: i64,
) -> usize {
    let scale = |t: i64| -> usize {
        (((t - lo) as f64 / (hi - lo).max(1) as f64) * WIDTH as f64)
            .clamp(0.0, WIDTH as f64) as usize
    };
    println!("\n{label}: tables intersecting the view (query marked with |):");
    let (q0, q1) = (
        scale(query.start),
        scale(query.end).max(scale(query.start) + 1),
    );
    let mut overlaps = 0usize;
    for (level, range, count) in engine.table_layout() {
        if range.end < lo || range.start > hi {
            continue;
        }
        let (s, e) = (scale(range.start.max(lo)), scale(range.end.min(hi)));
        let mut line: Vec<char> = vec![' '; WIDTH + 1];
        for cell in line.iter_mut().take(e.max(s + 1)).skip(s) {
            *cell = '=';
        }
        line[q0] = '|';
        line[q1.min(WIDTH)] = '|';
        let hit = range.overlaps(&query);
        if hit {
            overlaps += 1;
        }
        println!(
            "  {:>3} {:>5}pts [{}] {}",
            level,
            count,
            line.iter().collect::<String>(),
            if hit { "<- overlaps query" } else { "" }
        );
    }
    println!("  => {overlaps} tables must be read for this query");
    overlaps
}

fn main() -> seplsm_types::Result<()> {
    let points: usize = args::flag_or("points", 40_000);
    let seed: u64 = args::flag_or("seed", 15);
    let window: i64 = args::flag_or("window", 2_000);

    let ds = paper_dataset("M12").expect("exists");
    let dataset = ds.workload(points, seed).generate();
    report::banner(
        "Fig. 15: SSTable spans vs a historical query window (dataset M12)",
    );

    // A window in the recent third of the key space, where uncompacted
    // level-1 files linger.
    let max_gen = dataset.iter().map(|p| p.gen_time).max().expect("points");
    let query = TimeRange::new(max_gen * 3 / 4, max_gen * 3 / 4 + window);
    // Render a view around the query so the segments are readable.
    let view_lo = query.start - 40 * window;
    let view_hi = query.end + 10 * window;

    let mut counts = Vec::new();
    for (label, policy) in [
        ("pi_c", Policy::conventional(512)),
        ("pi_s (n_seq=256)", Policy::separation(512, 256)?),
    ] {
        let mut engine = TieredEngine::new(
            EngineConfig::new(policy).with_sstable_points(512),
            Arc::new(MemStore::new()),
        )?
        .with_sync_flush();
        for p in &dataset {
            engine.append(*p)?;
        }
        engine.drain();
        counts.push((label, render(label, &engine, query, view_lo, view_hi)));
    }
    println!(
        "\nthe paper's Fig. 15 contrast: {} overlapping tables under {} vs {} under {}",
        counts[0].1, counts[0].0, counts[1].1, counts[1].0
    );
    Ok(())
}
