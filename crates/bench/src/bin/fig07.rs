//! **Fig. 7** — WA under `π_c` (horizontal line) and `π_s(n_seq)` (U-curve)
//! vs experiment; lognormal(μ=5, σ=2), Δt=50, budget n=512, SSTables of 512.
//!
//! ```text
//! cargo run --release -p seplsm-bench --bin fig07 -- [--points N] [--seed S] [--json out.json]
//! ```

use std::sync::Arc;

use seplsm_bench::{args, drive, report};
use seplsm_core::WaModel;
use seplsm_dist::LogNormal;
use seplsm_types::Policy;
use seplsm_workload::SyntheticWorkload;

fn main() -> seplsm_types::Result<()> {
    let points: usize = args::flag_or("points", 300_000);
    let seed: u64 = args::flag_or("seed", 7);
    let n = 512usize;
    let sstable = 512usize;

    let dist = LogNormal::new(5.0, 2.0);
    let dataset = SyntheticWorkload::new(50, dist, points, seed).generate();
    let model = WaModel::new(Arc::new(dist), 50.0, n);

    report::banner("Fig. 7: WA vs n_seq, LogNormal(5,2), dt=50, n=512");

    let rc_measured =
        drive::measure_wa(&dataset, Policy::conventional(n), sstable)?
            .write_amplification();
    let rc_model = model.wa_conventional();
    println!(
        "pi_c : measured WA = {rc_measured:.3}, model r_c = {rc_model:.3}"
    );

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for n_seq in (32..n).step_by(32) {
        let est = model.wa_separation(n_seq)?;
        let measured = drive::measure_wa(
            &dataset,
            Policy::separation(n, n_seq)?,
            sstable,
        )?
        .write_amplification();
        rows.push(vec![
            n_seq.to_string(),
            report::f3(measured),
            report::f3(est.wa),
            report::f1(est.g),
            report::f1(est.n_arrive),
        ]);
        json.push(serde_json::json!({
            "n_seq": n_seq,
            "measured_wa": measured,
            "model_r_s": est.wa,
            "g": est.g,
            "n_arrive": est.n_arrive,
        }));
    }
    report::print_table(
        &["n_seq", "measured", "r_s model", "g(n_seq)", "N_arrive"],
        &rows,
    );
    report::maybe_write_json(
        args::flag("json"),
        &serde_json::json!({
            "r_c": {"measured": rc_measured, "model": rc_model},
            "r_s": json,
        }),
    )
    .map_err(seplsm_types::Error::Io)?;
    Ok(())
}
