//! **Fig. 10** — WA over time under a dynamic delay distribution:
//! `π_c` vs `π_s(½n)` (IoTDB's untuned split) vs `π_adaptive`.
//!
//! The workload is the paper's: lognormal delays with μ=5 and σ stepping
//! 2 → 1.75 → 1.5 → 1.25 → 1 across five equal segments, Δt = 50. The WA
//! series is snapshotted every 512 user points and smoothed with a sliding
//! window, then summarised per segment.
//!
//! ```text
//! cargo run --release -p seplsm-bench --bin fig10 -- [--segment N] [--seed S] [--json out.json]
//! ```

use seplsm_bench::{args, drive, report};
use seplsm_core::AdaptiveConfig;
use seplsm_dist::stats::sliding_mean;
use seplsm_lsm::{EngineConfig, Metrics};
use seplsm_types::Policy;
use seplsm_workload::DynamicWorkload;

fn segment_means(metrics: &Metrics, segments: usize) -> Vec<f64> {
    let wa = sliding_mean(&metrics.windowed_wa(), 16);
    let per = (wa.len() / segments).max(1);
    (0..segments)
        .map(|s| {
            let lo = s * per;
            let hi = ((s + 1) * per).min(wa.len());
            if lo >= hi {
                0.0
            } else {
                wa[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
            }
        })
        .collect()
}

fn main() -> seplsm_types::Result<()> {
    let segment: usize = args::flag_or("segment", 80_000);
    let seed: u64 = args::flag_or("seed", 10);
    let n = 512usize;
    let sstable = 512usize;
    let snapshot = 512u64;

    let workload = DynamicWorkload::paper_fig10(segment, seed);
    let dataset = workload.generate();

    report::banner(
        "Fig. 10: WA under dynamic delays (sigma 2 -> 1.75 -> 1.5 -> 1.25 -> 1)",
    );
    let conventional = drive::measure_wa_windowed(
        &dataset,
        Policy::conventional(n),
        sstable,
        snapshot,
    )?;
    let half = drive::measure_wa_windowed(
        &dataset,
        Policy::separation_even(n)?,
        sstable,
        snapshot,
    )?;
    let (adaptive, tunes) = drive::measure_adaptive(
        &dataset,
        EngineConfig::new(Policy::conventional(n))
            .with_sstable_points(sstable)
            .with_wa_snapshots(snapshot),
        AdaptiveConfig::new(),
    )?;

    let seg_c = segment_means(&conventional, 5);
    let seg_h = segment_means(&half, 5);
    let seg_a = segment_means(&adaptive, 5);
    let mut rows = Vec::new();
    for s in 0..5 {
        rows.push(vec![
            format!("sigma={}", [2.0, 1.75, 1.5, 1.25, 1.0][s]),
            report::f3(seg_c[s]),
            report::f3(seg_h[s]),
            report::f3(seg_a[s]),
        ]);
    }
    rows.push(vec![
        "overall".into(),
        report::f3(conventional.write_amplification()),
        report::f3(half.write_amplification()),
        report::f3(adaptive.write_amplification()),
    ]);
    report::print_table(
        &["segment", "pi_c", "pi_s(n/2)", "pi_adaptive"],
        &rows,
    );

    println!("\nadaptive tuning decisions:");
    for t in &tunes {
        println!(
            "  at {:>9} points: r_c={:.3} r_s*={:.3} -> {}",
            t.at_user_points,
            t.r_c,
            t.r_s_star,
            t.decision.name()
        );
    }

    report::maybe_write_json(
        args::flag("json"),
        &serde_json::json!({
            "segments": ["2", "1.75", "1.5", "1.25", "1"],
            "pi_c": {"per_segment": seg_c, "overall": conventional.write_amplification()},
            "pi_s_half": {"per_segment": seg_h, "overall": half.write_amplification()},
            "pi_adaptive": {"per_segment": seg_a, "overall": adaptive.write_amplification()},
            "tunes": report::tunes_json(&tunes),
        }),
    )
    .map_err(seplsm_types::Error::Io)?;
    Ok(())
}
