//! **Fig. 17** — robustness when delays follow *no single distribution*:
//! (a) the per-segment delay profile of the stream; (b) WA of `π_c`,
//! `π_s(½n)` and `π_adaptive` while ingesting it.
//!
//! The stream chains five structurally different delay laws (lognormal,
//! exponential, uniform, straggler-mixture, mild lognormal). The adaptive
//! analyzer must detect each change and re-tune.
//!
//! ```text
//! cargo run --release -p seplsm-bench --bin fig17 -- [--segment N] [--seed S] [--json out.json]
//! ```

use seplsm_bench::{args, drive, report};
use seplsm_core::AdaptiveConfig;
use seplsm_lsm::EngineConfig;
use seplsm_types::Policy;
use seplsm_workload::DynamicWorkload;

fn main() -> seplsm_types::Result<()> {
    let segment: usize = args::flag_or("segment", 60_000);
    let seed: u64 = args::flag_or("seed", 17);
    let n = 512usize;
    let sstable = 512usize;

    let workload = DynamicWorkload::paper_fig17(segment, seed);
    let dataset = workload.generate();

    report::banner("Fig. 17(a): per-segment delay profile");
    let labels: Vec<String> =
        workload.segments.iter().map(|(_, d)| d.label()).collect();
    let mut rows = Vec::new();
    let bounds = workload.boundaries();
    for (i, label) in labels.iter().enumerate() {
        let lo_tg = if i == 0 { 0 } else { bounds[i - 1] as i64 * 50 };
        let hi_tg = bounds[i] as i64 * 50;
        let delays: Vec<f64> = dataset
            .iter()
            .filter(|p| p.gen_time > lo_tg && p.gen_time <= hi_tg)
            .map(|p| p.delay() as f64)
            .collect();
        let mean = seplsm_dist::stats::mean(&delays);
        let sd = seplsm_dist::stats::stddev(&delays);
        rows.push(vec![
            format!("segment {}", i + 1),
            label.clone(),
            report::f1(mean),
            report::f1(sd),
        ]);
    }
    report::print_table(
        &["segment", "delay law", "mean(ms)", "std(ms)"],
        &rows,
    );

    report::banner("Fig. 17(b): WA while ingesting the mixed stream");
    let conventional =
        drive::measure_wa(&dataset, Policy::conventional(n), sstable)?;
    let half =
        drive::measure_wa(&dataset, Policy::separation_even(n)?, sstable)?;
    let (adaptive, tunes) = drive::measure_adaptive(
        &dataset,
        EngineConfig::new(Policy::conventional(n)).with_sstable_points(sstable),
        AdaptiveConfig::new(),
    )?;
    report::print_table(
        &["strategy", "WA"],
        &[
            vec![
                "pi_c".into(),
                report::f3(conventional.write_amplification()),
            ],
            vec!["pi_s(n/2)".into(), report::f3(half.write_amplification())],
            vec![
                "pi_adaptive".into(),
                report::f3(adaptive.write_amplification()),
            ],
        ],
    );
    println!("\nadaptive decisions ({}):", tunes.len());
    for t in &tunes {
        println!(
            "  at {:>9} points: r_c={:.3} r_s*={:.3} -> {}",
            t.at_user_points,
            t.r_c,
            t.r_s_star,
            t.decision.name()
        );
    }

    report::maybe_write_json(
        args::flag("json"),
        &serde_json::json!({
            "segments": labels,
            "pi_c": conventional.write_amplification(),
            "pi_s_half": half.write_amplification(),
            "pi_adaptive": adaptive.write_amplification(),
            "tunes": report::tunes_json(&tunes),
        }),
    )
    .map_err(seplsm_types::Error::Io)?;
    Ok(())
}
