//! **Fig. 18** — robustness to a *non-constant generation rate* (S-9):
//! (a) the sorted generation-interval profile; (b) WA estimate vs real under
//! `π_c` and `π_s(n̂*_seq)` when the models use a single Δt (the median).
//!
//! ```text
//! cargo run --release -p seplsm-bench --bin fig18 -- [--points N] [--seed S] [--budget B] [--json out.json]
//! ```

use seplsm_bench::{args, drive, report};
use seplsm_dist::stats::percentile_sorted;
use seplsm_workload::S9Workload;

fn main() -> seplsm_types::Result<()> {
    let points: usize = args::flag_or("points", 30_000);
    let seed: u64 = args::flag_or("seed", 18);
    let budget: usize = args::flag_or("budget", 8);

    let workload = S9Workload::new(points, seed);
    let dataset = workload.generate();
    let intervals: Vec<f64> = workload
        .sorted_intervals()
        .into_iter()
        .map(|v| v as f64)
        .collect();

    report::banner("Fig. 18(a): sorted generation intervals of S-9 (ms)");
    let mut rows = Vec::new();
    for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
        rows.push(vec![
            format!("p{p:.0}"),
            report::f1(percentile_sorted(&intervals, p)),
        ]);
    }
    report::print_table(&["percentile", "interval"], &rows);

    report::banner("Fig. 18(b): WA estimate vs real with variable intervals");
    let result = drive::estimate_and_measure(&dataset, budget, budget)?;
    report::print_table(
        &["policy", "estimated", "real"],
        &[
            vec![
                "pi_c".into(),
                report::f3(result.rc_model),
                report::f3(result.rc_measured),
            ],
            vec![
                format!("pi_s(n_seq={})", result.n_seq_star),
                report::f3(result.rs_model),
                report::f3(result.rs_measured),
            ],
        ],
    );
    println!(
        "models used the median interval delta_t={} ms; correct policy: {}",
        result.delta_t,
        result.decision_correct()
    );

    report::maybe_write_json(
        args::flag("json"),
        &serde_json::json!({
            "interval_percentiles": {
                "p50": percentile_sorted(&intervals, 50.0),
                "p99": percentile_sorted(&intervals, 99.0),
            },
            "delta_t": result.delta_t,
            "pi_c": {"model": result.rc_model, "measured": result.rc_measured},
            "pi_s": {
                "n_seq": result.n_seq_star,
                "model": result.rs_model,
                "measured": result.rs_measured,
            },
            "decision_correct": result.decision_correct(),
        }),
    )
    .map_err(seplsm_types::Error::Io)?;
    Ok(())
}
