//! **Ablation** — ζ(n) evaluation parameters: quadrature order, term
//! truncation and tail saturation vs accuracy and runtime.
//!
//! The online tuner needs ζ to be cheap; this ablation shows how far the
//! evaluation can be coarsened before the estimate (and hence the policy
//! decision) moves.
//!
//! ```text
//! cargo run --release -p seplsm-bench --bin ablation_zeta
//! ```

use std::sync::Arc;
use std::time::Instant;

use seplsm_bench::report;
use seplsm_core::{GapModel, ZetaConfig, ZetaModel};
use seplsm_dist::LogNormal;

fn main() -> seplsm_types::Result<()> {
    let dist = LogNormal::new(5.0, 2.0);
    let delta_t = 50.0;
    let n = 512usize;

    // High-precision reference.
    let reference_cfg = ZetaConfig {
        quadrature_order: 256,
        eps_term: 1e-12,
        saturation_eps: 1e-9,
        ..ZetaConfig::default()
    };
    let reference =
        ZetaModel::with_config(Arc::new(dist), delta_t, reference_cfg).zeta(n);

    report::banner(&format!(
        "Ablation: zeta evaluation parameters (reference zeta({n}) = {reference:.3})"
    ));
    let mut rows = Vec::new();
    for order in [8usize, 16, 32, 64, 128] {
        for (eps_term, saturation) in [(1e-6, 1e-5), (1e-9, 1e-6)] {
            let cfg = ZetaConfig {
                quadrature_order: order,
                eps_term,
                saturation_eps: saturation,
                gap: GapModel::MeanGap,
                ..ZetaConfig::default()
            };
            let start = Instant::now();
            let value =
                ZetaModel::with_config(Arc::new(dist), delta_t, cfg).zeta(n);
            let elapsed = start.elapsed();
            rows.push(vec![
                order.to_string(),
                format!("{eps_term:.0e}"),
                format!("{saturation:.0e}"),
                report::f3(value),
                format!("{:+.3}%", (value / reference - 1.0) * 100.0),
                format!("{:.2}ms", elapsed.as_secs_f64() * 1e3),
            ]);
        }
    }
    report::print_table(
        &[
            "order",
            "eps_term",
            "sat_eps",
            "zeta",
            "rel_err",
            "cold time",
        ],
        &rows,
    );
    Ok(())
}
