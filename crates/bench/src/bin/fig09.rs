//! **Fig. 9** — WA under `π_s` across `n_seq` (plus the `π_c` reference) on
//! the twelve synthetic datasets M1–M12, model vs experiment.
//!
//! ```text
//! cargo run --release -p seplsm-bench --bin fig09 -- \
//!     [--points N] [--seed S] [--datasets M1,M5,M12] [--json out.json]
//! ```

use std::sync::Arc;

use seplsm_bench::{args, drive, report};
use seplsm_core::WaModel;
use seplsm_types::Policy;
use seplsm_workload::{paper_dataset, PAPER_DATASETS};

fn main() -> seplsm_types::Result<()> {
    let points: usize = args::flag_or("points", 120_000);
    let seed: u64 = args::flag_or("seed", 9);
    let n = 512usize;
    let sstable = 512usize;
    let n_seq_grid = [50usize, 100, 150, 200, 250, 300, 350, 400, 450];

    let selected: Vec<_> = match args::flag("datasets") {
        Some(list) => list
            .split(',')
            .map(|name| {
                paper_dataset(name.trim())
                    .unwrap_or_else(|| panic!("unknown dataset {name}"))
            })
            .collect(),
        None => PAPER_DATASETS.to_vec(),
    };

    report::banner("Fig. 9: WA on M1-M12, model vs experiment (n=512)");
    let mut json = Vec::new();
    for ds in selected {
        let dataset = ds.workload(points, seed).generate();
        let model =
            WaModel::new(Arc::new(ds.distribution()), ds.delta_t as f64, n);

        let rc_measured =
            drive::measure_wa(&dataset, Policy::conventional(n), sstable)?
                .write_amplification();
        let rc_model = model.wa_conventional();
        println!(
            "\n{} (dt={}, mu={}, sigma={}):  pi_c measured {:.3} | model {:.3}",
            ds.name, ds.delta_t, ds.mu, ds.sigma, rc_measured, rc_model
        );

        let mut rows = Vec::new();
        let mut curve = Vec::new();
        for &n_seq in &n_seq_grid {
            let est = model.wa_separation(n_seq)?;
            let measured = drive::measure_wa(
                &dataset,
                Policy::separation(n, n_seq)?,
                sstable,
            )?
            .write_amplification();
            rows.push(vec![
                n_seq.to_string(),
                report::f3(measured),
                report::f3(est.wa),
            ]);
            curve.push(serde_json::json!({
                "n_seq": n_seq,
                "measured_wa": measured,
                "model_r_s": est.wa,
            }));
        }
        report::print_table(&["n_seq", "measured", "r_s model"], &rows);
        json.push(serde_json::json!({
            "dataset": ds.name,
            "r_c": {"measured": rc_measured, "model": rc_model},
            "r_s": curve,
        }));
    }
    report::maybe_write_json(args::flag("json"), &serde_json::json!(json))
        .map_err(seplsm_types::Error::Io)?;
    Ok(())
}
