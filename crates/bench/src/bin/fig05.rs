//! **Fig. 5** — subsequent-data-point counts: model ζ(n) vs experiment.
//!
//! Two lognormal delay laws (μ=4, σ=1.5 and σ=1.75), Δt = 50. For each
//! buffer capacity, the experiment ingests the dataset under `π_c` with the
//! subsequent-point probe enabled and reports the mean count per compaction;
//! the model column is ζ(n).
//!
//! ```text
//! cargo run --release -p seplsm-bench --bin fig05 -- [--points N] [--seed S] [--json out.json]
//! ```

use std::sync::Arc;

use seplsm_bench::{args, drive, report};
use seplsm_core::ZetaModel;
use seplsm_dist::LogNormal;
use seplsm_types::Policy;
use seplsm_workload::SyntheticWorkload;

fn main() -> seplsm_types::Result<()> {
    let points: usize = args::flag_or("points", 200_000);
    let seed: u64 = args::flag_or("seed", 5);
    let buffer_sizes = [32usize, 64, 96, 128, 192, 256, 320, 384, 448, 512];

    report::banner("Fig. 5: subsequent data points vs buffer capacity (dt=50)");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for sigma in [1.5, 1.75] {
        let dist = LogNormal::new(4.0, sigma);
        let dataset = SyntheticWorkload::new(50, dist, points, seed).generate();
        let model = ZetaModel::new(Arc::new(dist), 50.0);
        for &n in &buffer_sizes {
            let metrics = drive::measure_wa_with_probe(
                &dataset,
                Policy::conventional(n),
                // Match the paper's prototype: the whole buffer becomes one
                // table per merge.
                n,
            )?;
            let measured = metrics.mean_subsequent().unwrap_or(0.0);
            let predicted = model.zeta(n);
            rows.push(vec![
                format!("LogNormal(4,{sigma})"),
                n.to_string(),
                report::f1(measured),
                report::f1(predicted),
                report::f3(if measured > 0.0 {
                    (predicted - measured) / measured
                } else {
                    0.0
                }),
            ]);
            json.push(serde_json::json!({
                "sigma": sigma,
                "buffer": n,
                "measured_subsequent": measured,
                "model_zeta": predicted,
            }));
        }
    }
    report::print_table(
        &["distribution", "buffer", "measured", "zeta(n)", "rel_err"],
        &rows,
    );
    report::maybe_write_json(args::flag("json"), &serde_json::json!(json))
        .map_err(seplsm_types::Error::Io)?;
    Ok(())
}
