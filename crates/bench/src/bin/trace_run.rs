//! **Trace run** — one instrumented ingest with the observability layer
//! attached: prints the aggregate event table and (with `--trace`) writes
//! the full typed event stream as JSONL. Both run on the deterministic
//! logical clock, so two runs with the same `--seed` produce byte-identical
//! traces — the property `scripts/ci.sh` checks.
//!
//! ```text
//! cargo run --release -p seplsm-bench --bin trace_run -- \
//!     [--points N] [--seed S] [--budget N] [--nseq N] [--sstable N] \
//!     [--trace out.jsonl] [--json out.json]
//! ```

use seplsm_bench::{args, drive, report};
use seplsm_dist::LogNormal;
use seplsm_types::Policy;
use seplsm_workload::SyntheticWorkload;

fn main() -> seplsm_types::Result<()> {
    let points: usize = args::flag_or("points", 50_000);
    let seed: u64 = args::flag_or("seed", 1);
    let budget: usize = args::flag_or("budget", 512);
    let nseq: usize = args::flag_or("nseq", 0);
    let sstable: usize = args::flag_or("sstable", 512);
    let trace = args::flag("trace").map(std::path::PathBuf::from);

    let policy = if nseq > 0 {
        Policy::separation(budget, nseq)?
    } else {
        Policy::conventional(budget)
    };
    let dataset =
        SyntheticWorkload::new(50, LogNormal::new(4.0, 1.5), points, seed)
            .generate();

    report::banner("trace run: instrumented ingest");
    let (metrics, aggregate) =
        drive::measure_wa_traced(&dataset, policy, sstable, trace.as_deref())?;
    println!("policy:              {}", policy.name());
    println!("user points:         {}", metrics.user_points);
    println!("write amplification: {:.3}", metrics.write_amplification());
    println!();
    print!("{}", aggregate.render_table());
    if let Some(path) = &trace {
        eprintln!("trace written to {}", path.display());
    }

    report::maybe_write_json(
        args::flag("json"),
        &serde_json::json!({
            "policy": policy.name(),
            "user_points": metrics.user_points,
            "write_amplification": metrics.write_amplification(),
            "flush_points": aggregate.flush_points,
            "compaction_rewritten": aggregate.compaction_rewritten,
            "stalls": aggregate.stalls,
        }),
    )
    .map_err(seplsm_types::Error::Io)?;
    Ok(())
}
