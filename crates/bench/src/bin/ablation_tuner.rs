//! **Ablation** — tuner scan granularity vs decision quality and runtime.
//!
//! Algorithm 1's literal loop evaluates `r_s` at every `n_seq ∈ [1, n−1]`;
//! the online variant scans coarsely and refines around the coarse minimum.
//! This ablation measures how much WA the shortcut gives up.
//!
//! ```text
//! cargo run --release -p seplsm-bench --bin ablation_tuner
//! ```

use std::sync::Arc;
use std::time::Instant;

use seplsm_bench::report;
use seplsm_core::{tune, TunerOptions, WaModel, ZetaConfig};
use seplsm_dist::LogNormal;

fn main() -> seplsm_types::Result<()> {
    let n = 512usize;
    let cases = [
        ("LogNormal(4,1.5) dt=50", LogNormal::new(4.0, 1.5), 50.0),
        ("LogNormal(5,2)   dt=50", LogNormal::new(5.0, 2.0), 50.0),
        ("LogNormal(5,2)   dt=10", LogNormal::new(5.0, 2.0), 10.0),
    ];
    report::banner("Ablation: tuner scan step vs decision quality (n=512)");
    let mut rows = Vec::new();
    for (label, dist, dt) in cases {
        // Exhaustive reference (fresh model per run so timings are honest).
        let reference = {
            let model = WaModel::new(Arc::new(dist), dt, n);
            tune(&model, TunerOptions::default())?
        };
        for step in [1usize, 4, 16, 64] {
            let model = WaModel::with_zeta_config(
                Arc::new(dist),
                dt,
                n,
                ZetaConfig::online(),
            );
            let start = Instant::now();
            let outcome = tune(
                &model,
                TunerOptions {
                    step,
                    record_curve: false,
                },
            )?;
            let elapsed = start.elapsed();
            rows.push(vec![
                label.to_string(),
                step.to_string(),
                outcome.best_n_seq.to_string(),
                report::f3(outcome.r_s_star),
                format!(
                    "{:+.2}%",
                    (outcome.r_s_star / reference.r_s_star - 1.0) * 100.0
                ),
                format!("{:.1}ms", elapsed.as_secs_f64() * 1e3),
            ]);
        }
    }
    report::print_table(
        &[
            "workload",
            "step",
            "n_seq*",
            "r_s*",
            "vs exhaustive",
            "time",
        ],
        &rows,
    );
    Ok(())
}
